#!/usr/bin/env python
"""End-to-end smoke test of the ``repro serve`` daemon.

Spawns the real CLI entry point as a subprocess (optionally under an
ambient ``$REPRO_FAULT_PLAN``), then drives the full request surface
over real sockets: health and readiness, exact counting and probability
answers checked against hard-coded known values, a weight sweep, a
typed 400, a typed 504 from an expired deadline (verifying the
2x-deadline bound), a ``/metrics`` read (JSON and Prometheus text
exposition, with per-endpoint latency quantiles), request-id echo, and
finally a SIGTERM that must drain and exit 0.  Exits non-zero on the first failed check —
made for a CI job, usable by hand::

    PYTHONPATH=src python scripts/serve_smoke.py
"""

import http.client
import json
import os
import signal
import subprocess
import sys
import time

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

FAILURES = []


def check(label, ok, detail=""):
    status = "ok" if ok else "FAIL"
    print("[serve-smoke] {:<42} {} {}".format(label, status, detail))
    if not ok:
        FAILURES.append(label)


def request(host, port, method, path, payload=None, timeout=120,
            headers=None):
    conn = http.client.HTTPConnection(host, port, timeout=timeout)
    try:
        body = json.dumps(payload) if payload is not None else None
        conn.request(method, path, body=body, headers=headers or {})
        resp = conn.getresponse()
        return resp.status, json.loads(resp.read()), dict(resp.getheaders())
    finally:
        conn.close()


def request_text(host, port, method, path, timeout=120):
    conn = http.client.HTTPConnection(host, port, timeout=timeout)
    try:
        conn.request(method, path)
        resp = conn.getresponse()
        return resp.status, resp.read().decode("utf-8"), dict(resp.getheaders())
    finally:
        conn.close()


def prometheus_parses(text):
    """Every line is a ``# TYPE`` comment or ``name{labels} value``."""
    families = set()
    for line in text.splitlines():
        if not line.strip():
            return False
        if line.startswith("# TYPE "):
            families.add(line.split()[2])
            continue
        name_part, _, value = line.rpartition(" ")
        name = name_part.partition("{")[0]
        for suffix in ("_sum", "_count"):
            if name.endswith(suffix):
                name = name[:-len(suffix)]
        if name not in families:
            return False
        try:
            float(value)
        except ValueError:
            return False
    return True


def main():
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(ROOT, "src")
    plan = env.get("REPRO_FAULT_PLAN", "")
    print("[serve-smoke] fault plan: {!r}".format(plan))
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", "--port", "0",
         "--max-concurrency", "2", "--workers", "2", "--compile", "--persist",
         "--cache-dir", os.path.join(ROOT, ".serve-smoke-cache")],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, env=env, cwd=ROOT,
        text=True)
    try:
        line = proc.stdout.readline()
        check("daemon starts and prints its URL",
              "listening on http://" in line, line.strip())
        if FAILURES:
            return 1
        host, port_text = line.strip().rsplit("http://", 1)[1].split(":")
        port = int(port_text)

        status, body, _ = request(host, port, "GET", "/healthz")
        check("GET /healthz", status == 200 and body.get("ok") is True)
        status, body, _ = request(host, port, "GET", "/readyz")
        check("GET /readyz", status == 200)

        status, body, _ = request(host, port, "POST", "/v1/wfomc", {
            "formula": "forall x. exists y. R(x, y)", "n": 5})
        check("POST /v1/wfomc exact count",
              status == 200 and body.get("result") == "28629151",
              body.get("result"))

        status, body, _ = request(host, port, "POST", "/v1/probability", {
            "formula": "forall x. exists y. R(x, y)", "n": 3,
            "weights": {"R": ["1/2", "1"]}})
        check("POST /v1/probability exact fraction",
              status == 200 and body.get("result") == "6859/19683",
              body.get("result"))

        status, body, _ = request(host, port, "POST", "/v1/wfomc_weight_sweep", {
            "formula": "forall x. exists y. R(x, y)", "n": 3,
            "vary": "R", "values": ["1", "2"], "wbar": "1"})
        check("POST /v1/wfomc_weight_sweep",
              status == 200
              and body.get("result", {}).get("results") == ["343", "17576"])

        status, body, _ = request(host, port, "POST", "/v1/wfomc", {
            "formula": "forall x. R(x", "n": 3})
        check("parse error is a typed 400",
              status == 400
              and body.get("error", {}).get("retriable") is False)

        started = time.monotonic()
        status, body, _ = request(host, port, "POST", "/v1/wfomc", {
            "formula": "forall x. forall y. exists z."
                       " ((T(x,y) & T(y,z)) -> T(x,z))",
            "n": 5, "deadline_ms": 300})
        elapsed = time.monotonic() - started
        check("expired deadline is a typed 504",
              status == 504
              and body.get("error", {}).get("type") == "BudgetExceededError"
              and body.get("error", {}).get("retriable") is True)
        check("deadline answered within 2x + slack",
              elapsed < 2 * 0.3 + 2.0, "{:.3f}s".format(elapsed))

        status, body, headers = request(host, port, "GET", "/metrics")
        check("GET /metrics",
              status == 200 and body.get("server", {}).get("requests", 0) > 0)
        check("/metrics carries per-endpoint latency",
              body.get("latency", {}).get("/v1/wfomc", {}).get("count", 0) > 0)
        check("responses carry X-Request-Id",
              len(headers.get("X-Request-Id", "")) == 16,
              headers.get("X-Request-Id", ""))

        status, body, headers = request(
            host, port, "GET", "/healthz",
            headers={"X-Request-Id": "smoke-req-1"})
        check("client X-Request-Id is echoed back",
              headers.get("X-Request-Id") == "smoke-req-1")

        status, text, headers = request_text(
            host, port, "GET", "/metrics?format=prometheus")
        check("GET /metrics?format=prometheus",
              status == 200
              and headers.get("Content-Type", "").startswith("text/plain"))
        check("prometheus exposition parses",
              prometheus_parses(text), "{} lines".format(len(text.splitlines())))
        check("prometheus carries request-duration quantiles",
              'repro_request_duration_seconds{endpoint="/v1/wfomc",'
              'quantile="0.99"}' in text
              and "repro_server_requests_total" in text)

        proc.send_signal(signal.SIGTERM)
        code = proc.wait(timeout=60)
        check("SIGTERM drains and exits 0", code == 0, "exit={}".format(code))
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=30)
        stderr = proc.stderr.read()
        if stderr:
            sys.stderr.write(stderr)
        proc.stdout.close()
        proc.stderr.close()
    if FAILURES:
        print("[serve-smoke] FAILED: {}".format(", ".join(FAILURES)))
        return 1
    print("[serve-smoke] all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
