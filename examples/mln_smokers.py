"""Markov Logic Network inference via the WFOMC reduction (Example 1.2).

The classic "friends & smokers" MLN: smoking tends to propagate along
friendships.  We compute exact query probabilities two ways —

* by definition (enumerate every world, exponential), and
* through the paper's reduction to symmetric WFOMC, which makes the
  model FO2-liftable and polynomial in the domain size —

and show they agree exactly before scaling the lifted route out.

Run:  python examples/mln_smokers.py
"""

import time
from fractions import Fraction

from repro import HARD, MLN, parse
from repro.mln import (
    mln_probability_bruteforce,
    mln_probability_wfomc,
    reduce_to_wfomc,
)


def main():
    mln = MLN(
        [
            # Soft: a smoker's friends tend to smoke (weight 3).
            (3, parse("Smokes(x) & Friends(x, y) -> Smokes(y)")),
            # Soft: smoking is a priori unlikely (weight 1/2 per smoker).
            (Fraction(1, 2), parse("Smokes(x)")),
            # Hard: friendship is irreflexive.
            (HARD, parse("forall x. ~Friends(x, x)")),
        ]
    )
    query = parse("exists x. Smokes(x)")

    print("MLN:", mln)
    print("Query:", query)
    print()

    reduction = reduce_to_wfomc(mln)
    print("Reduction to symmetric WFOMC (Example 1.2):")
    print("  hard constraints Gamma:", reduction.gamma)
    print("  weighted vocabulary:", reduction.weighted_vocabulary)
    print("  (note the negative weight -2 = 1/(1/2 - 1) from the w = 1/2 rule)")
    print()

    print("Exact agreement, world enumeration vs WFOMC reduction:")
    for n in (1, 2):
        brute = mln_probability_bruteforce(mln, query, n)
        lifted = mln_probability_wfomc(mln, query, n)
        assert brute == lifted
        print("  n={}: Pr = {} (both methods)".format(n, brute))
    print()

    print("Scaling out with the lifted solver (enumeration would need")
    print("2^(n + n^2) worlds):")
    for n in (4, 6, 8, 10):
        t0 = time.perf_counter()
        p = mln_probability_wfomc(mln, query, n)
        elapsed = time.perf_counter() - t0
        print("  n={:>2}: Pr(somebody smokes) = {:.6f}   ({:.3f}s, exact rational)".format(
            n, float(p), elapsed))


if __name__ == "__main__":
    main()
