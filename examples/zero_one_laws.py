"""0-1 laws, computed exactly (the Section 1 discussion).

Fagin's 0-1 law: every FO sentence has asymptotic probability 0 or 1
over random labeled structures.  The paper proves no closed-form route
to this exists in general (FOMC is #P1-hard), but for liftable sentences
we can *watch* the convergence with exact arithmetic.

Includes the paper's own running example — where the exact computation
reveals that the limit stated in the paper's Section 1 (mu_n -> 0 for
forall x exists y R(x, y)) is a slip: the sequence (1 - 2^-n)^n tends
to 1.  See EXPERIMENTS.md.

Run:  python examples/zero_one_laws.py
"""


from repro import parse
from repro.asymptotics import mu_n


def show(title, formula, sizes, method="auto"):
    print(title)
    print("  Phi =", formula)
    for n in sizes:
        value = mu_n(formula, n, method=method)
        print("  mu_{:>2} = {:<22} ~ {:.6f}".format(n, str(value)[:22], float(value)))
    print()


def main():
    # The paper's running example: mu_n = (2^n - 1)^n / 2^(n^2) = (1-2^-n)^n.
    show(
        "Every element has an R-successor (limit 1; the paper's '-> 0' is a slip):",
        parse("forall x. exists y. R(x, y)"),
        (1, 2, 4, 8, 16),
    )

    # A genuinely limit-0 sentence: some element relates to EVERYTHING.
    show(
        "Some element relates to everything (limit 0):",
        parse("exists x. forall y. R(x, y)"),
        (1, 2, 4, 8, 16),
    )

    # Limit-1: somewhere a P holds.
    show(
        "Some element satisfies P (limit 1):",
        parse("exists x. P(x)"),
        (1, 2, 4, 8),
    )

    # An extension-axiom-flavored FO2 sentence: every element has a
    # distinct R-neighbor.  Limit 1.
    show(
        "Every element has a distinct neighbor (limit 1):",
        parse("forall x. exists y. (R(x, y) & x != y)"),
        (2, 4, 8, 16),
    )


if __name__ == "__main__":
    main()
