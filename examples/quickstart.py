"""Quickstart: weighted first-order model counting in five minutes.

Run:  python examples/quickstart.py
"""

from fractions import Fraction

from repro import (
    WeightedVocabulary,
    fomc,
    parse,
    probability,
    wfomc,
)


def main():
    # ------------------------------------------------------------------
    # 1. Model counting.  FOMC(Phi, n) counts the labeled structures over
    #    the domain {1..n} that satisfy Phi.
    # ------------------------------------------------------------------
    phi = parse("forall x. exists y. R(x, y)")
    print("Sentence:", phi)
    for n in range(1, 6):
        print("  FOMC over domain of size {}: {}".format(n, fomc(phi, n)))
    print("  (the paper's closed form: (2^n - 1)^n)")
    print()

    # ------------------------------------------------------------------
    # 2. Weighted counting.  Give each relation a weight pair (w, wbar):
    #    a world's weight multiplies w per present tuple, wbar per absent.
    # ------------------------------------------------------------------
    wv = WeightedVocabulary.from_weights({"R": (Fraction(1, 2), 1)}, {"R": 2})
    print("Weighted, with R tuples weighing (1/2, 1):")
    for n in range(1, 4):
        print("  WFOMC(n={}): {}".format(n, wfomc(phi, n, wv)))
    print()

    # ------------------------------------------------------------------
    # 3. Probabilities.  Weights (w, wbar) mean each tuple is present
    #    independently with probability w / (w + wbar): here 1/3.
    # ------------------------------------------------------------------
    print("Pr(every element has an R-successor), tuples present w.p. 1/3:")
    for n in (2, 5, 10, 20):
        p = probability(phi, n, wv)
        print("  n={:>3}: {} ~ {:.6f}".format(n, str(p)[:40], float(p)))
    print()

    # ------------------------------------------------------------------
    # 4. The solver is exact and lifted: FO2 sentences scale to domain
    #    sizes where the 2^(n^2) worlds could never be enumerated.
    # ------------------------------------------------------------------
    big = fomc(phi, 50)
    print("FOMC at n = 50 has {} digits; computed exactly via the".format(len(str(big))))
    print("FO2 cell decomposition (Appendix C of the paper), not enumeration.")


if __name__ == "__main__":
    main()
