"""A tour of the paper's complexity-theoretic constructions, executed.

1. Theorem 4.1(1): #SAT embeds into FO2 model counting (Figure 2).
2. Theorem 4.1(2): QBF embeds into the spectrum problem.
3. Theorem 3.1 / Appendix B: a counting Turing machine encoded as an FO3
   sentence Theta_1 with FOMC(Theta_1, n) = n! * #accepting-paths.
4. Lemma 3.8: the pairing function behind the universal #P1 machine.

Run:  python examples/complexity_tour.py   (takes ~1 minute)
"""

from math import factorial

from repro.complexity import (
    CountingTM,
    QBF,
    Transition,
    decode_pair,
    encode_pair,
    encode_theta1,
    evaluate_qbf,
    has_model,
    qbf_gadget,
    sat_gadget,
)
from repro.complexity.turing import RIGHT
from repro.logic.syntax import num_variables
from repro.propositional.bruteforce import count_models_enumerate
from repro.propositional.formula import pand, pnot, por, pvar
from repro.wfomc.bruteforce import fomc_lineage


def sat_demo():
    print("1. #SAT via FOMC (Figure 2) " + "-" * 30)
    X1, X2 = pvar("X1"), pvar("X2")
    f = por(pand(X1, pnot(X2)), pand(pnot(X1), X2))  # xor: 2 models
    sentence = sat_gadget(f, ["X1", "X2"])
    print("  F = X1 xor X2, #F =", count_models_enumerate(f, ["X1", "X2"]))
    print("  phi_F is FO2:", num_variables(sentence) == 2)
    fomc = fomc_lineage(sentence, 3)
    print("  FOMC(phi_F, 3) = {} = 3! * #F = {}".format(fomc, factorial(3) * 2))
    print()


def qbf_demo():
    print("2. QBF via spectra (Theorem 4.1(2)) " + "-" * 22)
    X1, X2 = pvar("X1"), pvar("X2")
    iff = por(pand(X1, X2), pand(pnot(X1), pnot(X2)))
    for quants in (("forall", "exists"), ("exists", "forall")):
        q = QBF(quants, ("X1", "X2"), iff)
        truth = evaluate_qbf(q)
        model = has_model(qbf_gadget(q), 3)
        print("  {} X1 {} X2 (X1 <-> X2): QBF = {}, gadget has size-3 model = {}".format(
            quants[0], quants[1], truth, model))
        assert truth == model
    print()


def theta1_demo():
    print("3. Theta_1: a counting TM as an FO3 sentence " + "-" * 13)
    tm = CountingTM(
        states=["q0"],
        initial="q0",
        accepting=["q0"],
        num_tapes=1,
        active_tape={"q0": 0},
        delta={
            ("q0", 1): [Transition("q0", 1, RIGHT), Transition("q0", 0, RIGHT)],
            ("q0", 0): [Transition("q0", 0, RIGHT)],
        },
    )
    enc = encode_theta1(tm, epochs=1)
    print("  machine: 1 state, forks on every 1 read -> #acc(n) = 2^(n-1)")
    print("  Theta_1 uses", num_variables(enc.sentence), "variables (FO3)")
    for n in (1, 2):
        fomc = fomc_lineage(enc.sentence, n)
        acc = tm.count_accepting(n, 1)
        print("  n={}: FOMC(Theta_1, n) = {} = n! * #acc = {} * {}".format(
            n, fomc, factorial(n), acc))
        assert fomc == factorial(n) * acc
    print("  (the simulator continues the series: {})".format(
        [tm.count_accepting(n, 1) for n in range(1, 8)]))
    print()


def pairing_demo():
    print("4. The Lemma 3.8 pairing function " + "-" * 24)
    for i, j in ((1, 1), (2, 3), (3, 5)):
        n = encode_pair(i, j)
        print("  e({}, {}) = {} (decodes back to {})".format(i, j, n, decode_pair(n)))
        assert decode_pair(n) == (i, j)
    print("  e(i, j) >= (i j^i + i)^2 bounds the universal machine's clock.")


def main():
    sat_demo()
    qbf_demo()
    theta1_demo()
    pairing_demo()


if __name__ == "__main__":
    main()
