"""Querying a probabilistic knowledge base (the Section 1 motivation).

Systems like NELL or the Knowledge Vault extract facts with per-fact
confidences.  Symmetric WFOMC covers the calibration question: *before*
looking at specific entities, what is the probability that a query
pattern has any answer, given the extractor's per-relation confidence
and the entity-universe size?  That is exactly a tuple-independent CQ
probability, and for gamma-acyclic query shapes Theorem 3.6 computes it
in polynomial time.

This example builds a small synthetic KB schema
(person --worksFor--> org --basedIn--> city, plus a "notable" flag),
sweeps domain sizes and confidences, and cross-checks the lifted answers
against brute-force enumeration where feasible.

Run:  python examples/knowledge_base.py
"""

import time
from fractions import Fraction

from repro.cq import (
    ConjunctiveQuery,
    PositiveClause,
    CQAtom,
    clause_probability,
    cq_probability_bruteforce,
    gamma_acyclic_probability,
)


def main():
    # Extractor confidences per relation (probability a claimed fact is real).
    confidences = {
        "Notable": Fraction(9, 10),   # Notable(person)
        "WorksFor": Fraction(7, 10),  # WorksFor(person, org)
        "BasedIn": Fraction(4, 5),    # BasedIn(org, city)
    }

    # Query: is some notable person employed by a company based in some city?
    # exists p, o, c. Notable(p) & WorksFor(p, o) & BasedIn(o, c)
    def query(n_people, n_orgs, n_cities):
        return ConjunctiveQuery(
            [
                ("Notable", ("p",)),
                ("WorksFor", ("p", "o")),
                ("BasedIn", ("o", "c")),
            ],
            confidences,
            {"p": n_people, "o": n_orgs, "c": n_cities},
        )

    q = query(2, 2, 2)
    print("Query:", q)
    print("gamma-acyclic?", q.is_gamma_acyclic())
    print()

    print("Validation against brute force (small KB):")
    for sizes in ((1, 1, 1), (2, 1, 2), (2, 2, 2)):
        qq = query(*sizes)
        lifted = gamma_acyclic_probability(qq)
        brute = cq_probability_bruteforce(qq)
        assert lifted == brute
        print("  people={}, orgs={}, cities={}: Pr = {}".format(*sizes, lifted))
    print()

    print("Scaling the entity universe (Theorem 3.6, exact rationals):")
    for n in (5, 10, 20, 40):
        t0 = time.perf_counter()
        p = gamma_acyclic_probability(query(n, n, n))
        elapsed = time.perf_counter() - t0
        print("  |universe| = {:>3} per type: Pr = {:.8f}   ({:.3f}s)".format(
            n, float(p), elapsed))
    print()

    # An integrity constraint as a positive clause: every org the KB talks
    # about should have SOME claimed base city or a parent org record.
    # Pr(forall o, c' . BasedIn(o, c') | ParentOrg(o)) -- clause probability
    # via the dual-CQ route of Corollary 3.2's machinery.
    clause = PositiveClause(
        (CQAtom("BasedIn", ("o", "c")), CQAtom("ParentOrg", ("o",)))
    )
    probs = {"BasedIn": Fraction(4, 5), "ParentOrg": Fraction(1, 3)}
    print("Integrity constraint Pr(forall o, c. BasedIn(o,c) | ParentOrg(o)):")
    for n in (1, 2, 4, 8):
        p = clause_probability(clause, probs, n)
        print("  n = {}: {} ~ {:.6f}".format(n, p, float(p)))


if __name__ == "__main__":
    main()
