"""The limits of lifted inference rules (Theorem 3.7's observation).

The lifted-inference community computes WFOMC with a small set of rules
(independence, Shannon expansion, atom counting, separators, pair
decomposition).  This example shows:

1. the rule engine agreeing exactly with the Appendix C cell algorithm
   on FO2 sentences,
2. Q_S4 escaping the rules entirely — while the paper's dedicated
   dynamic program computes it in polynomial time,
3. the Section 2 remark that negative weights cost nothing: we
   reconstruct the weight polynomial from a positive-weights oracle and
   evaluate it at Skolem-style negative weights.

Run:  python examples/lifted_rules_limits.py
"""


from repro import lifted_wfomc, parse, RulesIncompleteError, WeightedVocabulary
from repro.logic.vocabulary import Vocabulary
from repro.weights import WeightPair
from repro.wfomc import (
    evaluate_cardinality_polynomial,
    wfomc_cardinality_polynomial,
    wfomc_fo2,
    wfomc_qs4,
)
from repro.wfomc.bruteforce import wfomc_lineage
from repro.wfomc.qs4 import QS4_SENTENCE


def rules_on_fo2():
    print("1. Rules == cells on FO2 " + "-" * 34)
    for text in (
        "forall x. exists y. R(x, y)",
        "forall x, y. (Smokes(x) & Friends(x, y) -> Smokes(y))",
        "forall x, y. (R(x) | S(x, y) | T(y))",
    ):
        f = parse(text)
        n = 6
        via_rules = lifted_wfomc(f, n)
        via_cells = wfomc_fo2(f, n)
        assert via_rules == via_cells
        print("  {}  n={}  count={}".format(text, n, via_rules))
    print()


def qs4_escapes():
    print("2. Q_S4 escapes the rules " + "-" * 33)
    print("  Q_S4 =", QS4_SENTENCE)
    try:
        lifted_wfomc(QS4_SENTENCE, 4)
        print("  (unexpected: the rules computed it!)")
    except RulesIncompleteError:
        print("  rule engine: RulesIncompleteError — no lifted rule applies")
    print("  dedicated DP (Theorem 3.7):", end=" ")
    print(", ".join("f({0})={1}".format(n, wfomc_qs4(n)) for n in range(1, 6)))
    print()


def negative_weights_for_free():
    print("3. Negative weights from a positive oracle (Section 2) " + "-" * 4)
    f = parse("forall x. exists y. R(x, y)")
    n = 2
    vocab = Vocabulary.of_formula(f)
    coeffs = wfomc_cardinality_polynomial(f, n, vocab, wfomc_lineage)
    print("  cardinality polynomial of {} at n={}:".format(f, n))
    for cardinalities, count in sorted(coeffs.items()):
        print("    {} models with |R| = {}".format(count, cardinalities[0]))
    skolem = WeightedVocabulary(vocab, {"R": WeightPair(1, -1)})
    via_poly = evaluate_cardinality_polynomial(coeffs, n, skolem)
    direct = wfomc_lineage(f, n, skolem)
    assert via_poly == direct
    print("  evaluated at the Skolem pair (1, -1): {} == direct {}".format(
        via_poly, direct))


def main():
    rules_on_fo2()
    qs4_escapes()
    negative_weights_for_free()


if __name__ == "__main__":
    main()
