"""MLN weight learning on compiled arithmetic circuits.

The knowledge-compilation subsystem (``repro.compile``) traces the
counting search once into a weight-symbolic circuit; evaluating the
circuit serves any weight vector, and one backward pass yields exact
gradients.  This demo uses those gradients for the classic statistical-
relational workload: *learning* the soft weights of the friends-and-
smokers MLN by maximum likelihood.

The data is the exact world distribution of a ground-truth MLN (passed
as weighted observations), so maximum likelihood provably recovers the
generating weights — the moment-matching property: the gradient of the
average log-likelihood vanishes *exactly* (a rational identity) at the
true weights.  Watch the ascent walk there from a wrong initialization,
with the partition function and its gradient computed exactly on one
circuit compiled once.

Run:  python examples/mln_weight_learning.py
"""

import time
from fractions import Fraction

from repro import HARD, MLN, parse
from repro.grounding.structures import all_structures
from repro.mln import (
    mln_average_log_likelihood,
    mln_likelihood_gradient,
    mln_weight_learn,
)

TRUE_IMPLIES = Fraction(3)
TRUE_SMOKES = Fraction(1, 2)


def smokers(w_implies, w_smokes):
    return MLN(
        [
            (w_implies, parse("Smokes(x) & Friends(x, y) -> Smokes(y)")),
            (w_smokes, parse("Smokes(x)")),
            (HARD, parse("forall x. ~Friends(x, x)")),
        ]
    )


def model_distribution(mln, n):
    """The MLN's exact world distribution as (probability, world) pairs."""
    worlds = []
    partition = Fraction(0)
    for structure in all_structures(mln.vocabulary, n):
        weight = mln.world_weight(structure)
        if weight:
            worlds.append((weight, structure))
            partition += weight
    return [(weight / partition, structure) for weight, structure in worlds]


def main():
    n = 2
    truth = smokers(TRUE_IMPLIES, TRUE_SMOKES)
    observations = model_distribution(truth, n)
    print("Ground truth: friends-and-smokers MLN with weights "
          "({}, {})".format(TRUE_IMPLIES, TRUE_SMOKES))
    print("Data: its exact world distribution over n={} "
          "({} worlds, weighted)".format(n, len(observations)))
    print()

    # Moment matching: at the generating weights the likelihood gradient
    # is exactly zero — a rational identity, not a numerical near-miss.
    gradient_at_truth = mln_likelihood_gradient(truth, observations, n)
    assert gradient_at_truth == [Fraction(0), Fraction(0)]
    print("Gradient at the true weights (exact Fractions):",
          gradient_at_truth)

    init = smokers(2, Fraction(1, 4))
    print("Initialization: weights (2, 1/4), log-likelihood {:.6f}".format(
        mln_average_log_likelihood(init, observations, n)))
    print()

    start = time.perf_counter()
    result = mln_weight_learn(init, observations, n, steps=300,
                              learning_rate=Fraction(1))
    elapsed = time.perf_counter() - start

    print("Gradient ascent (circuit compiled once, {} steps, {:.2f}s):"
          .format(result.steps_taken, elapsed))
    for step, weights in result.history[::60] + [result.history[-1]]:
        print("  step {:>3}: weights ({:.4f}, {:.4f})".format(
            step, float(weights[0]), float(weights[1])))
    print()

    learned = result.weights
    print("Learned weights: ({:.4f}, {:.4f})  — truth ({}, {})".format(
        float(learned[0]), float(learned[1]), TRUE_IMPLIES, TRUE_SMOKES))
    assert abs(learned[0] - TRUE_IMPLIES) < Fraction(1, 5)
    assert abs(learned[1] - TRUE_SMOKES) < Fraction(1, 20)
    final_ll = mln_average_log_likelihood(result.mln, observations, n)
    init_ll = mln_average_log_likelihood(init, observations, n)
    assert final_ll > init_ll
    print("Log-likelihood improved from {:.6f} to {:.6f}".format(
        init_ll, final_ll))


if __name__ == "__main__":
    main()
