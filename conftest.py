"""Repo-root pytest configuration.

Makes ``src`` importable so ``python -m pytest -q`` works from a clean
checkout without ``pip install -e .`` or a ``PYTHONPATH`` override.
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.abspath(__file__)), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)
