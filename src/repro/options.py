"""One options object for every solver entry point: :class:`SolverOptions`.

Five PRs of engine growth left each public entry point carrying the same
nine knobs (``method``, ``workers``, ``branching``, ``learn``,
``max_learned``, ``persist``, ``cache_dir``, ``phase_saving``,
``compile``) as copy-pasted keyword parameters.  This module replaces
that sprawl with a single frozen dataclass accepted as ``options=`` by
every solver and MLN entry point and threaded as *one object* through
dispatch, worker payloads, and the CLI — adding the tenth knob
(``backend``, the circuit-evaluation backend of
:mod:`repro.compile.backends`) without widening a single signature.

Legacy keyword arguments keep working everywhere through
:meth:`SolverOptions.from_kwargs`: an entry point declares
``def wfomc(formula, n, wv=None, options=None, **legacy)`` and resolves
both styles with one call.  The keyword style is **deprecated** in favor
of ``options=SolverOptions(...)`` — it is not scheduled for removal, but
new knobs will only be added here.

>>> SolverOptions(method="lineage", workers=2)
SolverOptions(method='lineage', workers=2)
>>> SolverOptions.from_kwargs(None, persist=True, branching="moms")
SolverOptions(branching='moms', persist=True)

``None`` for any field means "the engine's default"; the object never
needs to know what that default is, which keeps it decoupled from the
engine layers it configures.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from .resilience.limits import Budget

__all__ = ["SolverOptions", "METHODS", "BRANCHINGS", "BACKEND_NAMES"]

#: Dispatch methods understood by the solver layer.
METHODS = ("auto", "fo2", "lineage", "enumerate")
#: Decision heuristics of the counting engine.
BRANCHINGS = ("evsids", "moms")
#: Circuit-evaluation backends (see :mod:`repro.compile.backends`).
BACKEND_NAMES = ("exact", "batched", "float", "codegen")


@dataclass(frozen=True)
class SolverOptions:
    """Every knob a solver call accepts, as one immutable value.

    Fields
    ------
    method:
        ``"auto"`` (default), ``"fo2"``, ``"lineage"``, or
        ``"enumerate"`` — pins the counting algorithm.
    workers:
        Process-pool width for parallel component counting (``None`` or
        ``0``/``1`` means serial; results are bit-identical either way).
    branching / learn / max_learned / phase_saving / restarts:
        Conflict-driven-search knobs of the grounded counting engine;
        they steer the search only, never the counted value.
        ``restarts`` enables Luby-sequence restarts in the
        clause-learning engine: a positive int is the Luby unit in
        conflicts (restart after ``unit * luby(i)`` conflicts since the
        last restart), ``None``/``0`` disables them (the default).
        Abandoned partial sums are recomputed through the component
        cache, so counts stay bit-identical with restarts on or off.
    persist / cache_dir:
        Back the in-memory caches with the on-disk store of
        :mod:`repro.cache` (at ``cache_dir``, ``$REPRO_CACHE_DIR``, or
        ``~/.cache/repro``).
    compile:
        Serve sweep/batch/probability calls through the
        knowledge-compilation fast path (:mod:`repro.compile`).
    backend:
        Circuit-evaluation backend for the compiled fast path:
        ``"exact"`` (the row interpreter, the default), ``"batched"``
        (K weight vectors per node pass), ``"float"`` (float64 with
        tracked error bounds and automatic exact fallback), or
        ``"codegen"`` (a specialized compiled Python function per
        circuit).  Setting a backend implies ``compile`` on the entry
        points that support it.
    budget:
        A :class:`~repro.resilience.limits.Budget` bounding the call
        (wall-clock deadline, conflict/decision caps, cooperative
        cancellation).  Tripping raises
        :class:`~repro.errors.BudgetExceededError`; caches stay
        consistent, so a retry warm-starts and completes
        bit-identically.  The budget is mutable and identity-hashed
        (it accumulates spend), and it never rides into worker
        payloads — deadlines are enforced in the parent.

    The dataclass is frozen (hashable, safe to share across threads and
    to pickle into worker payloads) and validates its enumerated fields
    at construction, so a typo fails at the call site instead of deep in
    dispatch.
    """

    method: str = "auto"
    workers: int | None = None
    branching: str | None = None
    learn: bool | None = None
    max_learned: int | None = None
    persist: bool | None = None
    cache_dir: str | None = None
    phase_saving: bool | None = None
    restarts: int | None = None
    compile: bool | None = None
    backend: str | None = None
    budget: object | None = None

    def __post_init__(self):
        if self.method not in METHODS:
            raise ValueError("unknown method {!r}; expected one of {}".format(
                self.method, METHODS))
        if self.branching is not None and self.branching not in BRANCHINGS:
            raise ValueError(
                "unknown branching {!r}; expected one of {}".format(
                    self.branching, BRANCHINGS))
        if self.backend is not None and self.backend not in BACKEND_NAMES:
            raise ValueError(
                "unknown backend {!r}; expected one of {}".format(
                    self.backend, BACKEND_NAMES))
        if self.workers is not None and (
                not isinstance(self.workers, int) or self.workers < 0):
            raise ValueError(
                "workers must be a non-negative int or None, got {!r}".format(
                    self.workers))
        if self.max_learned is not None and (
                not isinstance(self.max_learned, int) or self.max_learned < 0):
            raise ValueError(
                "max_learned must be a non-negative int or None, "
                "got {!r}".format(self.max_learned))
        if self.restarts is not None and (
                not isinstance(self.restarts, int) or self.restarts < 0):
            raise ValueError(
                "restarts must be a non-negative int (the Luby unit in "
                "conflicts) or None, got {!r}".format(self.restarts))
        if self.budget is not None and not isinstance(self.budget, Budget):
            raise ValueError(
                "budget must be a repro.resilience.limits.Budget or None, "
                "got {!r}".format(self.budget))

    # -- the legacy-kwargs shim -------------------------------------------

    @classmethod
    def from_kwargs(cls, options=None, /, **kwargs):
        """Resolve an ``options=`` value plus legacy keyword arguments.

        The single shim behind every entry point's ``**legacy``:

        * ``options`` may be ``None``, a :class:`SolverOptions`, or a
          bare method string (so historical positional calls like
          ``wfomc(f, n, wv, "fo2")`` keep working);
        * any non-``None`` legacy kwarg overrides the corresponding
          field (``method=None`` in the kwargs means "keep the base
          method", matching the old per-signature defaults);
        * unknown keyword names raise :class:`TypeError`, exactly as the
          old explicit signatures did.
        """
        if options is None:
            base = cls()
        elif isinstance(options, cls):
            base = options
        elif isinstance(options, str):
            base = cls(method=options)
        else:
            raise TypeError(
                "options must be a SolverOptions, a method string, or "
                "None, got {!r}".format(options))
        if not kwargs:
            return base
        unknown = [k for k in kwargs if k not in _FIELD_NAMES]
        if unknown:
            raise TypeError(
                "unexpected keyword argument(s) {}; valid solver options "
                "are {}".format(", ".join(sorted(unknown)),
                                ", ".join(_FIELD_NAMES)))
        overrides = {k: v for k, v in kwargs.items() if v is not None}
        return base.replace(**overrides) if overrides else base

    def replace(self, **changes):
        """A copy with the given fields replaced (validation re-runs)."""
        return dataclasses.replace(self, **changes)

    def to_kwargs(self):
        """The legacy keyword dict; non-default fields only.

        Round-trips: ``SolverOptions.from_kwargs(None, **o.to_kwargs())
        == o`` for every ``o`` (the property the test suite pins).
        """
        out = {}
        for field in dataclasses.fields(self):
            value = getattr(self, field.name)
            if value != field.default:
                out[field.name] = value
        return out

    # -- views for the layers below ---------------------------------------

    def engine_kwargs(self):
        """The knob subset the counting layers take as keywords."""
        return {
            "branching": self.branching,
            "learn": self.learn,
            "max_learned": self.max_learned,
            "persist": self.persist,
            "cache_dir": self.cache_dir,
            "phase_saving": self.phase_saving,
            "restarts": self.restarts,
        }

    def store_kwargs(self):
        """The persistence subset (compile and cache layers)."""
        return {"persist": self.persist, "cache_dir": self.cache_dir}

    @property
    def compiled(self):
        """Whether the compiled fast path is requested.

        ``compile=True`` asks for it explicitly; naming any non-exact
        ``backend`` implies it (there is no circuit to evaluate
        otherwise).
        """
        return bool(self.compile) or self.backend is not None

    def __repr__(self):
        shown = ", ".join(
            "{}={!r}".format(k, v) for k, v in self.to_kwargs().items())
        return "SolverOptions({})".format(shown)


_FIELD_NAMES = tuple(f.name for f in dataclasses.fields(SolverOptions))
