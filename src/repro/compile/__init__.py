"""``repro.compile``: the knowledge-compilation subsystem.

Symmetric WFOMC separates structure from weights: the expensive object
is the count structure, weights are values plugged into it (the
observation behind the paper's Section 2 weight/probability
correspondences).  This package exploits that separation end to end —
the counting engine's search is traced **once** into a d-DNNF-style
arithmetic circuit (:mod:`.circuit`), and arbitrarily many weight
vectors are then served by linear-time circuit evaluation, with exact
gradients from one backward pass for free.

Entry points
------------

* :func:`compile_cnf` / :func:`compile_formula` /
  :func:`compile_lineage` — trace a propositional instance (or a ground
  lineage) into a :class:`Circuit` over weight-pair leaves;
* :func:`compile_wfomc` — compile a whole ``(formula, n)`` WFOMC
  instance, dispatching to the FO2 cell decomposition or the lineage
  trace like the solver does; returns a :class:`CompiledWFOMC` whose
  ``evaluate``/``gradient`` take any weighted vocabulary;
* the solver fast paths — ``compile=True`` on
  :func:`repro.wfomc.solver.wfomc_weight_sweep` /
  :func:`~repro.wfomc.solver.wfomc_batch` /
  :func:`~repro.wfomc.solver.probability`, and ``repro compile`` /
  ``repro sweep --compile`` on the CLI;
* :func:`repro.mln.learning.mln_weight_learn` — gradient-based MLN
  weight learning on the compiled partition-function circuit, the
  workload the gradients exist for.

All evaluation is exact (ints/Fractions), so compiled results are
bit-identical to direct counting; with ``persist=True`` serialized
circuits live in the ``circuits`` namespace of the on-disk store
(:mod:`repro.cache`) keyed on the weight-independent instance identity.
"""

from .backends import (
    BatchedBackend,
    CodegenBackend,
    EvalBackend,
    ExactBackend,
    FloatBackend,
    backend_stats,
    get_backend,
)
from .circuit import CIRCUIT_FORMAT, Circuit, CircuitBuilder
from .trace import CIRCUITS_NS, compile_cnf, compile_formula, compile_lineage
from .wfomc import (
    CompiledWFOMC,
    clear_compile_cache,
    compile_stats,
    compile_wfomc,
)

__all__ = [
    "CIRCUIT_FORMAT",
    "CIRCUITS_NS",
    "Circuit",
    "CircuitBuilder",
    "CompiledWFOMC",
    "EvalBackend",
    "ExactBackend",
    "BatchedBackend",
    "FloatBackend",
    "CodegenBackend",
    "get_backend",
    "backend_stats",
    "compile_cnf",
    "compile_formula",
    "compile_lineage",
    "compile_wfomc",
    "compile_stats",
    "clear_compile_cache",
]
