"""Circuit-evaluation backends: one `EvalBackend` API, four strategies.

The row interpreter of :meth:`~repro.compile.circuit.Circuit._forward`
is the semantic reference — exact, simple, and the differential oracle
everything else is tested against.  This module puts it behind a small
strategy interface and adds three hardware-fast alternatives:

``exact``
    the row interpreter itself (the default everywhere);
``batched``
    K weight vectors through a *single* pass over the node rows.
    Columns whose leaves do not vary across the batch collapse to
    scalars computed once — in a weight sweep only one or two predicates
    vary, so most of the circuit is evaluated once instead of K times.
    Exact arithmetic, bit-identical to ``exact``;
``codegen``
    per-circuit generated Python (:mod:`repro.compile.codegen`):
    ``evaluate`` runs a compiled straight-line function, and
    ``evaluate_many`` a *staged* batch function specialized on the
    sweep's varying-leaf pattern.  Exact arithmetic, bit-identical to
    ``exact``, and the fastest serving path (the CI gate pins its
    speedup over the interpreter on the Θ₁ k=32 sweep);
``float``
    a float64 forward pass carrying a per-node absolute error bound
    (standard running error analysis with unit roundoff ``u = 2**-53``).
    When the bound at the root is small relative to the value the float
    is returned directly; when it crosses the decision threshold — or
    the computation overflows to non-finite — the backend **falls back
    to the exact interpreter automatically**, so callers never see an
    unqualified wrong answer.

Backends are stateless singletons resolved by :func:`get_backend` from a
name (see :data:`repro.options.BACKEND_NAMES`) or passed as instances
for custom strategies.  Module counters (:func:`backend_stats`) expose
how often each path ran and how often float fell back.
"""

from __future__ import annotations

import math
from fractions import Fraction

from .circuit import _exact
from .codegen import (
    CODEGEN_NODE_LIMIT,
    batch_evaluator,
    leaf_slots,
    scalar_evaluator,
)

__all__ = [
    "EvalBackend",
    "ExactBackend",
    "BatchedBackend",
    "FloatBackend",
    "CodegenBackend",
    "get_backend",
    "backend_stats",
    "clear_backend_stats",
]

_LIT = "L"
_TOT = "T"
_CONST = "C"
_TIMES = "*"
_PLUS = "+"
_POW = "^"

#: Unit roundoff of IEEE-754 binary64.
_U = 2.0 ** -53

_COUNTERS = {
    "exact_evaluations": 0,
    "batched_batches": 0,
    "codegen_evaluations": 0,
    "codegen_batches": 0,
    "codegen_store_hits": 0,
    "float_evaluations": 0,
    "float_fallbacks": 0,
}


def backend_stats():
    """Evaluation counters of the backend layer (copies)."""
    return dict(_COUNTERS)


def clear_backend_stats():
    for name in _COUNTERS:
        _COUNTERS[name] = 0


def leaf_values(keys, pair_of):
    """The flat leaf-value list codegen/batched functions consume:
    two entries per key (``w`` then ``wbar``), normalized by
    :func:`~repro.compile.circuit._exact` exactly as the interpreter
    normalizes leaves (integer-valued weights stay machine ints)."""
    flat = []
    for key in keys:
        w, wbar = pair_of(key)
        flat.append(_exact(w))
        flat.append(_exact(wbar))
    return flat


def _leaf_columns(keys, pair_fns):
    """Per-slot value columns across a batch of weight assignments.

    ``_exact`` normalization is memoized by pair-object identity: a
    symmetric pair function returns one tuple per *predicate* (see
    :meth:`~repro.compile.wfomc.CompiledWFOMC._pair_fn`), so the
    normalization runs once per predicate instead of once per ground
    atom.  The memo keeps a reference to each pair, so an id cannot be
    recycled while it is a key — and the ``is`` check re-verifies the
    match before trusting a cached entry.
    """
    columns = [[] for _ in range(2 * len(keys))]
    memo = {}
    for pair_of in pair_fns:
        for j, key in enumerate(keys):
            pair = pair_of(key)
            cached = memo.get(id(pair))
            if cached is None or cached[0] is not pair:
                w, wbar = pair
                cached = memo[id(pair)] = (pair, _exact(w), _exact(wbar))
            columns[2 * j].append(cached[1])
            columns[2 * j + 1].append(cached[2])
    return columns


def _varying_slots(columns):
    # list.count scans in C — cheaper than a Python-level any() on the
    # mostly-uniform columns of a weight sweep.
    return frozenset(
        i for i, col in enumerate(columns)
        if col.count(col[0]) != len(col))


class EvalBackend:
    """Strategy interface for evaluating a circuit at weight pairs.

    ``pair_of`` arguments are already-normalized callables
    ``key -> (w, wbar)`` (see
    :func:`~repro.compile.circuit._pair_lookup`); ``store`` is an open
    persistent store or ``None`` — only codegen uses it (to persist
    generated source next to the circuit it serves).
    """

    name = "abstract"

    def evaluate(self, circuit, pair_of, store=None):
        raise NotImplementedError

    def evaluate_many(self, circuit, pair_fns, store=None):
        return [self.evaluate(circuit, pf, store=store) for pf in pair_fns]


class ExactBackend(EvalBackend):
    """The row interpreter: the exact reference everything agrees with."""

    name = "exact"

    def evaluate(self, circuit, pair_of, store=None):
        _COUNTERS["exact_evaluations"] += 1
        return Fraction(circuit._forward(pair_of)[circuit.root])


class BatchedBackend(EvalBackend):
    """K weight vectors per node-row pass, uniform columns collapsed.

    A node's column across the batch is materialized only when one of
    its leaf dependencies actually varies; everything else is computed
    once as a scalar.  Exact arithmetic throughout — results are
    bit-identical to :class:`ExactBackend` in the same order.
    """

    name = "batched"

    def evaluate(self, circuit, pair_of, store=None):
        # A batch of one has nothing to share; use the interpreter.
        return _EXACT.evaluate(circuit, pair_of, store=store)

    def evaluate_many(self, circuit, pair_fns, store=None):
        if not pair_fns:
            return []
        _COUNTERS["batched_batches"] += 1
        keys = circuit.leaf_keys()
        columns = _leaf_columns(keys, pair_fns)
        varying = _varying_slots(columns)
        out = _batched_forward(circuit, columns, varying)
        if not isinstance(out, list):
            out = [out] * len(pair_fns)
        return [Fraction(v) for v in out]


def _batched_forward(circuit, columns, varying_slots):
    """The staged batch interpreter: column lists for varying nodes,
    scalars for uniform ones.  Returns the root column (or scalar)."""
    slot = leaf_slots(circuit)
    rows = circuit.rows
    flags = [False] * len(rows)
    vals = [None] * len(rows)
    for i, row in enumerate(rows):
        tag = row[0]
        if tag == _LIT:
            idx = 2 * slot[row[1]] + (0 if row[2] else 1)
            if idx in varying_slots:
                flags[i] = True
                vals[i] = columns[idx]
            else:
                vals[i] = columns[idx][0]
        elif tag == _TOT:
            base = 2 * slot[row[1]]
            if base in varying_slots or base + 1 in varying_slots:
                flags[i] = True
                vals[i] = [a + b for a, b in
                           zip(columns[base], columns[base + 1])]
            else:
                vals[i] = columns[base][0] + columns[base + 1][0]
        elif tag == _CONST:
            vals[i] = row[1]
        elif tag == _TIMES or tag == _PLUS:
            kids = row[1]
            varying = [c for c in kids if flags[c]]
            if not varying:
                if tag == _TIMES:
                    v = 1
                    for c in kids:
                        v *= vals[c]
                        if v == 0:
                            break
                else:
                    v = 0
                    for c in kids:
                        v += vals[c]
                vals[i] = v
                continue
            flags[i] = True
            if tag == _TIMES:
                s = 1
                for c in kids:
                    if not flags[c]:
                        s *= vals[c]
                col = list(vals[varying[0]])
                if s != 1:
                    col = [s * x for x in col]
                for c in varying[1:]:
                    other = vals[c]
                    col = [x * y for x, y in zip(col, other)]
            else:
                s = 0
                for c in kids:
                    if not flags[c]:
                        s += vals[c]
                col = list(vals[varying[0]])
                if s != 0:
                    col = [s + x for x in col]
                for c in varying[1:]:
                    other = vals[c]
                    col = [x + y for x, y in zip(col, other)]
            vals[i] = col
        else:  # _POW
            c, e = row[1], row[2]
            if flags[c]:
                flags[i] = True
                vals[i] = [x ** e for x in vals[c]]
            else:
                vals[i] = vals[c] ** e
    return vals[circuit.root]


class FloatBackend(EvalBackend):
    """Float64 forward pass with a tracked absolute error bound.

    Every node carries ``(value, bound)`` where ``bound`` is a rigorous
    absolute bound on ``|float value - exact value|`` built by running
    error analysis (each float operation contributes the propagated
    child bounds plus one rounding of ``|result| * u``).  ``evaluate``
    returns a *float*; when the root bound exceeds
    ``rel_tol * max(|value|, abs_floor)`` — the decision threshold — or
    the pass leaves finite range, the backend transparently recomputes
    through the exact interpreter and returns that value as a float
    (counted in ``float_fallbacks``).

    Use :meth:`evaluate_bounds` to observe ``(value, bound)`` directly;
    the differential tests check ``|value - exact| <= bound``.
    """

    name = "float"

    def __init__(self, rel_tol=1e-9, abs_floor=1e-300):
        self.rel_tol = rel_tol
        self.abs_floor = abs_floor

    def evaluate_bounds(self, circuit, pair_of):
        """``(value, bound)`` of the float pass; ``(nan, inf)`` when the
        computation leaves finite range."""
        result = _float_forward(circuit, pair_of)
        if result is None:
            return (float("nan"), float("inf"))
        return result

    def evaluate(self, circuit, pair_of, store=None):
        _COUNTERS["float_evaluations"] += 1
        value, bound = self.evaluate_bounds(circuit, pair_of)
        if (math.isfinite(value)
                and bound <= self.rel_tol * max(abs(value), self.abs_floor)):
            return value
        _COUNTERS["float_fallbacks"] += 1
        return float(_EXACT.evaluate(circuit, pair_of, store=store))


def _to_float(value):
    try:
        return float(value)
    except OverflowError:
        return math.inf if value > 0 else -math.inf


def _float_forward(circuit, pair_of):
    """Float values + absolute error bounds per node; None on overflow."""
    rows = circuit.rows
    vals = [0.0] * len(rows)
    errs = [0.0] * len(rows)
    for i, row in enumerate(rows):
        tag = row[0]
        if tag == _LIT:
            w, wbar = pair_of(row[1])
            v = _to_float(_exact(w if row[2] else wbar))
            e = abs(v) * _U  # one conversion rounding
        elif tag == _TOT:
            w, wbar = pair_of(row[1])
            a = _to_float(_exact(w))
            b = _to_float(_exact(wbar))
            v = a + b
            e = (abs(a) + abs(b)) * _U + abs(v) * _U
        elif tag == _CONST:
            v = _to_float(row[1])
            e = abs(v) * _U
        elif tag == _TIMES:
            v, e = 1.0, 0.0
            for c in row[1]:
                cv, ce = vals[c], errs[c]
                nv = v * cv
                e = abs(v) * ce + abs(cv) * e + e * ce + abs(nv) * _U
                v = nv
        elif tag == _PLUS:
            v, e = 0.0, 0.0
            for c in row[1]:
                v += vals[c]
                e += errs[c] + abs(v) * _U
        else:  # _POW
            c, k = row[1], row[2]
            cv, ce = vals[c], errs[c]
            v = cv ** k
            # |(x+d)^k - x^k| <= (|x|+d)^k - |x|^k, plus k-1 roundings.
            e = (abs(cv) + ce) ** k - abs(cv) ** k + abs(v) * _U * (k - 1)
        if not (math.isfinite(v) and math.isfinite(e)):
            return None
        vals[i] = v
        errs[i] = e
    return vals[circuit.root], errs[circuit.root]


class CodegenBackend(EvalBackend):
    """Generated-and-``compile()``d Python per circuit.

    ``evaluate`` runs the straight-line scalar function of
    :func:`~repro.compile.codegen.scalar_evaluator`; ``evaluate_many``
    the staged batch function specialized on which leaf slots vary
    across the batch.  Both are cached on the circuit and (with a
    store) persisted as validated source in the ``circuits`` namespace.
    Exact arithmetic — bit-identical to :class:`ExactBackend`.

    Circuits beyond :data:`~repro.compile.codegen.CODEGEN_NODE_LIMIT`
    nodes are served by the interpreter backends instead (``compile()``
    of a function that long costs more than it saves).
    """

    name = "codegen"

    def evaluate(self, circuit, pair_of, store=None):
        if len(circuit.rows) > CODEGEN_NODE_LIMIT:
            return _EXACT.evaluate(circuit, pair_of, store=store)
        _COUNTERS["codegen_evaluations"] += 1
        fn, keys, from_store = scalar_evaluator(circuit, store=store)
        if from_store:
            _COUNTERS["codegen_store_hits"] += 1
        return Fraction(fn(leaf_values(keys, pair_of)))

    def evaluate_many(self, circuit, pair_fns, store=None):
        if not pair_fns:
            return []
        if len(circuit.rows) > CODEGEN_NODE_LIMIT:
            return _BATCHED.evaluate_many(circuit, pair_fns, store=store)
        _COUNTERS["codegen_batches"] += 1
        keys = circuit.leaf_keys()
        columns = _leaf_columns(keys, pair_fns)
        varying = _varying_slots(columns)
        fn, _keys, from_store = batch_evaluator(circuit, varying, store=store)
        if from_store:
            _COUNTERS["codegen_store_hits"] += 1
        out = fn(columns)
        if not isinstance(out, list):
            out = [out] * len(pair_fns)
        return [Fraction(v) for v in out]


_EXACT = ExactBackend()
_BATCHED = BatchedBackend()

_REGISTRY = {
    "exact": _EXACT,
    "batched": _BATCHED,
    "float": FloatBackend(),
    "codegen": CodegenBackend(),
}


def get_backend(spec):
    """Resolve a backend name (or instance, or ``None``) to a backend.

    Names come from :data:`repro.options.BACKEND_NAMES`; instances pass
    through, so callers can supply a tuned :class:`FloatBackend` or a
    custom strategy.
    """
    if spec is None:
        return _EXACT
    if isinstance(spec, EvalBackend):
        return spec
    backend = _REGISTRY.get(spec)
    if backend is None:
        raise ValueError(
            "unknown evaluation backend {!r}; expected one of {} or an "
            "EvalBackend instance".format(spec, tuple(_REGISTRY)))
    return backend
