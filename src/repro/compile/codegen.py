"""Per-circuit code generation: specialize a Python function per DAG.

The row interpreter of :meth:`~repro.compile.circuit.Circuit._forward`
pays tuple-unpacking, tag-dispatch, and list-indexing overhead on every
node of every evaluation.  For a circuit that is evaluated thousands of
times (the serving workload the paper's amortization argument is about),
that overhead dominates; this module removes it by **emitting a
straight-line Python function per circuit** — one assignment per node,
leaf values passed in as a flat argument list — and ``compile()``-ing it
once.  All arithmetic stays exact (ints and Fractions), so codegen
results are bit-identical to the interpreter.

Two shapes are emitted:

* :func:`scalar_source` — one weight vector per call::

      def _circuit_eval(L):
          v0 = L[0]
          v1 = L[2]
          v2 = v0*v1
          return v2

* :func:`batch_source` — K weight vectors per call, **staged** on which
  leaves actually vary across the batch: nodes whose leaf dependencies
  are uniform across the K vectors are computed once as scalars, and
  only the varying frontier is evaluated per vector (as list
  comprehensions over columns).  A weight sweep varies one or two
  predicates, so most of the circuit collapses into the scalar stage —
  this is where the measured speedup over the row interpreter comes
  from.

Generated functions are cached on the circuit object itself and, with a
store, persisted as *source text* in the ``circuits`` namespace of the
on-disk cache (:data:`~repro.cache.adapters.CIRCUITS_NS`) keyed on the
circuit's rows, so a warm process skips generation.  Loaded source is
never trusted blindly: :func:`validate_source` whitelists the exact line
grammar the generator emits (no attribute access, no string literals, no
names beyond the locals and the two injected globals), and execution
happens with empty ``__builtins__`` — a tampered or corrupted payload is
rejected rather than executed.
"""

from __future__ import annotations

import re
from fractions import Fraction

from ..cache.adapters import CIRCUITS_NS

__all__ = [
    "CODEGEN_FORMAT",
    "CODEGEN_NODE_LIMIT",
    "scalar_source",
    "batch_source",
    "validate_source",
    "compile_source",
    "scalar_evaluator",
    "batch_evaluator",
]

#: Serialization tag for persisted generated source; bump when the
#: emitted grammar or calling convention changes.
CODEGEN_FORMAT = 2

#: Circuits larger than this fall back to the interpreter backends —
#: ``compile()`` of a function this long is no longer amortizable.
CODEGEN_NODE_LIMIT = 1 << 16

_LIT = "L"
_TOT = "T"
_CONST = "C"
_TIMES = "*"
_PLUS = "+"
_POW = "^"

#: The exact line grammar the generators emit.  Anything else —
#: attribute access, string literals, calls beyond F()/zip(), statement
#: separators — fails validation.  RHS charset: names, digits,
#: whitespace, brackets, parentheses, comma, ``*`` ``+`` ``-``.  The
#: optional conditional tail is the batch emitter's neutral-element
#: skip: ``BASE if _sN == 1 else SCALED`` (``== 0`` for sums), the only
#: place ``if``/``else``/comparison appear.
_RHS = r"[A-Za-z0-9_ \[\]\(\),\*\+\-]+"
_LINE_RE = re.compile(
    r"^(?:"
    r"def _circuit_eval(?:_batch)?\(L\):"
    r"|    (?:v\d+|_s\d+) = " + _RHS
    + r"(?: if _s\d+ == [01] else " + _RHS + r")?"
    r"|    return v\d+"
    r")$"
)


def leaf_slots(circuit):
    """``{leaf key: flat slot}``: each key owns two consecutive slots in
    the flat leaf-value list (``2*slot`` for ``w``, ``2*slot + 1`` for
    ``wbar``), in :meth:`~repro.compile.circuit.Circuit.leaf_keys`
    order."""
    return {key: i for i, key in enumerate(circuit.leaf_keys())}


def _const_expr(value):
    if isinstance(value, int):
        return repr(value)
    frac = Fraction(value)
    return "F({}, {})".format(frac.numerator, frac.denominator)


def scalar_source(circuit):
    """Straight-line source for one-vector evaluation.

    The generated ``_circuit_eval(L)`` takes the flat leaf-value list of
    :func:`leaf_slots` (values already normalized by the caller — ints
    for integer-valued weights, exactly like the interpreter's
    ``_exact``) and returns the root value.
    """
    slot = leaf_slots(circuit)
    lines = ["def _circuit_eval(L):"]
    for i, row in enumerate(circuit.rows):
        tag = row[0]
        if tag == _LIT:
            idx = 2 * slot[row[1]] + (0 if row[2] else 1)
            lines.append("    v{} = L[{}]".format(i, idx))
        elif tag == _TOT:
            base = 2 * slot[row[1]]
            lines.append("    v{} = L[{}] + L[{}]".format(i, base, base + 1))
        elif tag == _CONST:
            lines.append("    v{} = {}".format(i, _const_expr(row[1])))
        elif tag == _TIMES:
            lines.append("    v{} = {}".format(
                i, "*".join("v{}".format(c) for c in row[1])))
        elif tag == _PLUS:
            lines.append("    v{} = {}".format(
                i, "+".join("v{}".format(c) for c in row[1])))
        elif tag == _POW:
            lines.append("    v{} = v{}**{}".format(i, row[1], row[2]))
        else:
            raise ValueError("unknown circuit node tag {!r}".format(tag))
    lines.append("    return v{}".format(circuit.root))
    return "\n".join(lines)


def _varying_flags(circuit, slot, varying_slots):
    """Per-node "column varies across the batch" flags."""
    flags = [False] * len(circuit.rows)
    for i, row in enumerate(circuit.rows):
        tag = row[0]
        if tag == _LIT:
            idx = 2 * slot[row[1]] + (0 if row[2] else 1)
            flags[i] = idx in varying_slots
        elif tag == _TOT:
            base = 2 * slot[row[1]]
            flags[i] = base in varying_slots or base + 1 in varying_slots
        elif tag == _TIMES or tag == _PLUS:
            flags[i] = any(flags[c] for c in row[1])
        elif tag == _POW:
            flags[i] = flags[row[1]]
    return flags


def batch_source(circuit, varying_slots):
    """Staged source for K-vector evaluation.

    ``varying_slots`` is the set of flat leaf slots whose column is not
    constant across the batch.  The generated ``_circuit_eval_batch(L)``
    takes a flat list of *columns* (each a list of K values); uniform
    nodes evaluate once as scalars (reading ``column[0]``), varying
    nodes as list comprehensions.  Returns the root column (or a scalar
    when the root itself is uniform — the caller broadcasts).
    """
    slot = leaf_slots(circuit)
    flags = _varying_flags(circuit, slot, varying_slots)
    lines = ["def _circuit_eval_batch(L):"]
    scalar_seq = 0
    for i, row in enumerate(circuit.rows):
        tag = row[0]
        if tag == _LIT:
            idx = 2 * slot[row[1]] + (0 if row[2] else 1)
            suffix = "" if flags[i] else "[0]"
            lines.append("    v{} = L[{}]{}".format(i, idx, suffix))
        elif tag == _TOT:
            base = 2 * slot[row[1]]
            if flags[i]:
                lines.append(
                    "    v{} = [x0 + x1 for x0, x1 in zip(L[{}], L[{}])]"
                    .format(i, base, base + 1))
            else:
                lines.append("    v{} = L[{}][0] + L[{}][0]".format(
                    i, base, base + 1))
        elif tag == _CONST:
            lines.append("    v{} = {}".format(i, _const_expr(row[1])))
        elif tag == _TIMES or tag == _PLUS:
            op = "*" if tag == _TIMES else "+"
            if not flags[i]:
                lines.append("    v{} = {}".format(
                    i, op.join("v{}".format(c) for c in row[1])))
                continue
            uniform = [c for c in row[1] if not flags[c]]
            varying = [c for c in row[1] if flags[c]]
            prefix = ""
            if uniform:
                scalar_seq += 1
                name = "_s{}".format(scalar_seq)
                lines.append("    {} = {}".format(
                    name, op.join("v{}".format(c) for c in uniform)))
                prefix = "{}{}".format(name, op)
            if len(varying) == 1:
                scaled = "[{}x for x in v{}]".format(prefix, varying[0])
                base = "v{}".format(varying[0])
            else:
                names = ", ".join("x{}".format(j) for j in range(len(varying)))
                expr = op.join("x{}".format(j) for j in range(len(varying)))
                args = ", ".join("v{}".format(c) for c in varying)
                scaled = "[{}{} for ({}) in zip({})]".format(
                    prefix, expr, names, args)
                base = "[{} for ({}) in zip({})]".format(expr, names, args)
            if not uniform:
                lines.append("    v{} = {}".format(i, scaled))
            else:
                # Skip the scalar stage at run time when it lands on the
                # operation's neutral element — in a weight sweep most
                # uniform subproducts are exactly 1, and K multiplies by
                # 1 cost real Fraction work.  (``base`` may alias a
                # child column; columns are read-only downstream.)
                neutral = "1" if tag == _TIMES else "0"
                lines.append("    v{} = {} if {} == {} else {}".format(
                    i, base, name, neutral, scaled))
        elif tag == _POW:
            if flags[i]:
                lines.append("    v{} = [x**{} for x in v{}]".format(
                    i, row[2], row[1]))
            else:
                lines.append("    v{} = v{}**{}".format(i, row[1], row[2]))
        else:
            raise ValueError("unknown circuit node tag {!r}".format(tag))
    lines.append("    return v{}".format(circuit.root))
    return "\n".join(lines)


def validate_source(source, batch=False):
    """True when ``source`` matches the generator's line grammar exactly.

    The gate persisted source must pass before execution: every line
    must match the emitted whitelist (:data:`_LINE_RE`), the header must
    be the expected ``def``, and the body must end in a ``return``.
    Combined with empty ``__builtins__`` at exec time, a payload that
    validates cannot reach beyond arithmetic on its arguments.
    """
    if not isinstance(source, str) or "\n" not in source:
        return False
    lines = source.split("\n")
    header = "def _circuit_eval{}(L):".format("_batch" if batch else "")
    if lines[0] != header or not lines[-1].startswith("    return v"):
        return False
    return all(_LINE_RE.match(line) for line in lines)


def compile_source(source, batch=False):
    """``compile()`` + ``exec`` generated source into a callable.

    The execution namespace exposes exactly two globals — ``F``
    (:class:`~fractions.Fraction`, for exact rational constants) and
    ``zip`` — and an empty ``__builtins__``, so even a hostile payload
    that somehow passed validation has nothing to call.
    """
    namespace = {"F": Fraction, "zip": zip, "__builtins__": {}}
    code = compile(source, "<repro-codegen>", "exec")
    exec(code, namespace)
    return namespace["_circuit_eval_batch" if batch else "_circuit_eval"]


# -- cached evaluators --------------------------------------------------------


def _codegen_cache(circuit):
    cache = circuit.runtime_cache
    return cache.setdefault("codegen", {})


def _store_roundtrip(store, store_key, batch, generate):
    """Load validated source from the store, or generate and persist."""
    if store is not None and store_key is not None:
        payload = store.get(CIRCUITS_NS, store_key)
        if (isinstance(payload, tuple) and len(payload) == 3
                and payload[0] == "codegen-src"
                and payload[1] == CODEGEN_FORMAT
                and validate_source(payload[2], batch=batch)):
            return payload[2], True
    source = generate()
    if store is not None and store_key is not None:
        store.put(CIRCUITS_NS, store_key,
                  ("codegen-src", CODEGEN_FORMAT, source))
    return source, False


def scalar_evaluator(circuit, store=None):
    """The compiled one-vector evaluator of a circuit (cached).

    Returns ``(fn, keys)``: call ``fn(flat)`` with the flat leaf-value
    list ordered by ``keys`` (two entries per key).  Generation happens
    once per circuit per process; with a store, the source is persisted
    alongside the circuit (``circuits`` namespace) and a warm process
    revalidates and recompiles instead of regenerating.
    """
    cache = _codegen_cache(circuit)
    cached = cache.get("scalar")
    if cached is not None:
        return cached
    store_key = None
    if store is not None:
        store_key = ("codegen", CODEGEN_FORMAT, "scalar", circuit.root,
                     circuit.rows)
    source, from_store = _store_roundtrip(
        store, store_key, False, lambda: scalar_source(circuit))
    fn = compile_source(source, batch=False)
    result = (fn, circuit.leaf_keys(), from_store)
    cache["scalar"] = result
    return result


def batch_evaluator(circuit, varying_slots, store=None):
    """The compiled staged K-vector evaluator for one varying pattern.

    ``varying_slots`` must be an iterable of flat leaf slots; evaluators
    are cached per ``(circuit, pattern)`` — a repeated sweep over the
    same predicates is a dictionary hit.
    """
    pattern = tuple(sorted(set(varying_slots)))
    cache = _codegen_cache(circuit)
    cached = cache.get(pattern)
    if cached is not None:
        return cached
    store_key = None
    if store is not None:
        store_key = ("codegen", CODEGEN_FORMAT, "batch", pattern,
                     circuit.root, circuit.rows)
    source, from_store = _store_roundtrip(
        store, store_key, True, lambda: batch_source(circuit, set(pattern)))
    fn = compile_source(source, batch=True)
    result = (fn, circuit.leaf_keys(), from_store)
    cache[pattern] = result
    return result
