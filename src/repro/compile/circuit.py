"""The arithmetic-circuit IR: hash-consed DAG nodes over weight leaves.

A :class:`Circuit` is a d-DNNF-style arithmetic circuit in the symmetric
weight pairs of its leaves: evaluating it at a weight assignment
``key -> (w, wbar)`` reproduces an exact weighted model count, and
because every node is a polynomial in the leaf weights, the same DAG
also yields exact gradients by one reverse pass.  Circuits are produced
by tracing the counting engine's search
(:func:`repro.propositional.counter.trace_cnf_clauses` via
:mod:`repro.compile.trace`) or by compiling the FO2 cell decomposition
(:mod:`repro.compile.wfomc`); the expensive search runs once, after
which any number of weight vectors are served by circuit evaluation.

Node kinds
----------

``("L", key, positive)``
    a weight leaf: evaluates to ``w`` of ``key``'s pair when
    ``positive`` else ``wbar``;
``("T", key)``
    a *total* leaf ``w + wbar`` — the full mass of an unconstrained
    variable, also the smoothing factor ``(x | ~x)`` of d-DNNF;
``("C", value)``
    an exact constant (int or Fraction);
``("*", children)`` / ``("+", children)``
    product / sum over earlier node ids (children may repeat: a product
    with a duplicated child is a square);
``("^", child, exponent)``
    integer power (exponent >= 2; smaller powers fold at build time).

Nodes are **hash-consed** by :class:`CircuitBuilder`: structurally equal
nodes share one id, so repeated subproblems become shared subcircuit
references and the DAG is no larger than the (cache-assisted) search
that produced it.  Children always have smaller ids than their parents,
so a single forward scan evaluates the circuit and a single backward
scan accumulates gradients — no recursion, no topological sort.

All arithmetic is exact: leaf weights are ints or Fractions and stay
that way through evaluation and backpropagation, which is what makes
compiled results bit-identical to direct counting.
"""

from __future__ import annotations

from fractions import Fraction

__all__ = ["Circuit", "CircuitBuilder", "CIRCUIT_FORMAT"]

#: Serialization format tag; bump when the node layout changes so
#: persisted circuits self-invalidate instead of decoding wrongly.
CIRCUIT_FORMAT = 1

_LIT = "L"
_TOT = "T"
_CONST = "C"
_TIMES = "*"
_PLUS = "+"
_POW = "^"


def _exact(value):
    """Keep integer-valued weights as machine ints for fast arithmetic."""
    if isinstance(value, int):
        return value
    if isinstance(value, Fraction):
        return value.numerator if value.denominator == 1 else value
    frac = Fraction(value)
    return frac.numerator if frac.denominator == 1 else frac


class CircuitBuilder:
    """Bottom-up hash-consing constructor for :class:`Circuit` DAGs.

    ``times``/``plus``/``pow`` perform light algebraic folding (constant
    accumulation, neutral-element removal, singleton collapse) so traced
    circuits stay compact; they never change the computed value.  The
    ``memo`` dict is free scratch space for tracers (the engine keys it
    on canonical component structures to share subcircuits).
    """

    __slots__ = ("nodes", "_index", "memo")

    def __init__(self):
        self.nodes = []
        self._index = {}
        self.memo = {}

    def spawn(self):
        """A fresh empty builder (used for canonical-space templates)."""
        return CircuitBuilder()

    def _intern(self, row):
        idx = self._index.get(row)
        if idx is None:
            idx = len(self.nodes)
            self.nodes.append(row)
            self._index[row] = idx
        return idx

    # -- leaves ------------------------------------------------------------

    def const(self, value):
        return self._intern((_CONST, _exact(value)))

    def lit(self, key, positive):
        return self._intern((_LIT, key, bool(positive)))

    def tot(self, key):
        return self._intern((_TOT, key))

    # -- operators ---------------------------------------------------------

    def times(self, children):
        """Product node.  Constants fold; a zero annihilates; children
        are sorted (multiplication commutes) for maximal sharing —
        duplicates are kept, a repeated child is a genuine power."""
        const_val = 1
        kids = []
        nodes = self.nodes
        for c in children:
            row = nodes[c]
            if row[0] == _CONST:
                const_val *= row[1]
            else:
                kids.append(c)
        if const_val == 0 or not kids:
            return self.const(const_val)
        if const_val != 1:
            kids.append(self.const(const_val))
        if len(kids) == 1:
            return kids[0]
        kids.sort()
        return self._intern((_TIMES, tuple(kids)))

    def plus(self, children):
        """Sum node.  Constants fold; zeros vanish; children sorted."""
        const_val = 0
        kids = []
        nodes = self.nodes
        for c in children:
            row = nodes[c]
            if row[0] == _CONST:
                const_val += row[1]
            else:
                kids.append(c)
        if not kids:
            return self.const(const_val)
        if const_val != 0:
            kids.append(self.const(const_val))
        if len(kids) == 1:
            return kids[0]
        kids.sort()
        return self._intern((_PLUS, tuple(kids)))

    def is_zero(self, node):
        """True when ``node`` folded to the constant 0 — i.e. the
        subcircuit is structurally zero at *every* weight assignment."""
        row = self.nodes[node]
        return row[0] == _CONST and row[1] == 0

    def pow(self, child, exponent):
        """Integer power node; exponents 0/1 and constant bases fold."""
        if exponent == 0:
            return self.const(1)
        if exponent == 1:
            return child
        row = self.nodes[child]
        if row[0] == _CONST:
            return self.const(row[1] ** exponent)
        return self._intern((_POW, child, int(exponent)))

    # -- template emission -------------------------------------------------

    def inline(self, rows, root, lit_fn=None, tot_fn=None):
        """Re-emit a node-row list into this builder, remapping leaves.

        ``rows`` is a compact node list (children refer to earlier local
        indices, as produced by :meth:`extract` or
        :meth:`Circuit.rows`); ``lit_fn(key, positive)`` / ``tot_fn(key)``
        supply replacement nodes for the leaves (defaulting to plain
        re-interning).  Operator folding re-applies, so inlining a
        template with constants for some leaves simplifies on the fly.
        Returns the id of the re-emitted root.

        Child references are validated (ints pointing strictly at
        *earlier* rows, integer exponents): a structurally damaged row
        list — e.g. a corrupted persisted payload that still decodes —
        raises :class:`ValueError` instead of silently re-emitting a
        circuit that computes something else.
        """
        lit_fn = lit_fn or self.lit
        tot_fn = tot_fn or self.tot
        mapped = [0] * len(rows)
        for i, row in enumerate(rows):
            tag = row[0]
            if tag == _LIT:
                mapped[i] = lit_fn(row[1], row[2])
            elif tag == _TOT:
                mapped[i] = tot_fn(row[1])
            elif tag == _CONST:
                mapped[i] = self.const(row[1])
            elif tag == _TIMES or tag == _PLUS:
                for c in row[1]:
                    if not isinstance(c, int) or not 0 <= c < i:
                        raise ValueError(
                            "node {} has invalid child reference {!r}".format(
                                i, c))
                children = [mapped[c] for c in row[1]]
                mapped[i] = (self.times(children) if tag == _TIMES
                             else self.plus(children))
            elif tag == _POW:
                child, exponent = row[1], row[2]
                if not isinstance(child, int) or not 0 <= child < i:
                    raise ValueError(
                        "node {} has invalid child reference {!r}".format(
                            i, child))
                if not isinstance(exponent, int) or exponent < 0:
                    raise ValueError(
                        "node {} has invalid exponent {!r}".format(i, exponent))
                mapped[i] = self.pow(mapped[child], exponent)
            else:
                raise ValueError("unknown circuit node tag {!r}".format(tag))
        if not rows:
            return self.const(1)
        if not isinstance(root, int) or not 0 <= root < len(rows):
            raise ValueError("invalid root reference {!r}".format(root))
        return mapped[root]

    def emit_template(self, template, leaf_map):
        """Instantiate a canonical-space ``(rows, root)`` template.

        Leaf keys in the template are 1-based slot indices;
        ``leaf_map[slot - 1]`` names the concrete key each slot becomes.
        Hash-consing dedups against everything already in the builder,
        so instantiating the same template twice with the same map is a
        cascade of dictionary hits.
        """
        rows, root = template
        return self.inline(
            rows, root,
            lit_fn=lambda slot, positive: self.lit(leaf_map[slot - 1], positive),
            tot_fn=lambda slot: self.tot(leaf_map[slot - 1]),
        )

    def extract(self, root):
        """``(rows, root)`` of the sub-DAG reachable from ``root``,
        with node ids remapped to a dense local numbering (a template)."""
        rows, new_root = _reachable(self.nodes, root)
        return tuple(rows), new_root

    def build(self, root):
        """Freeze the sub-DAG reachable from ``root`` into a Circuit."""
        rows, new_root = _reachable(self.nodes, root)
        return Circuit(tuple(rows), new_root)


def _reachable(nodes, root):
    """Prune ``nodes`` to the sub-DAG under ``root`` (order preserved)."""
    marked = bytearray(root + 1)
    marked[root] = 1
    for i in range(root, -1, -1):
        if not marked[i]:
            continue
        row = nodes[i]
        tag = row[0]
        if tag == _TIMES or tag == _PLUS:
            for c in row[1]:
                marked[c] = 1
        elif tag == _POW:
            marked[row[1]] = 1
    remap = [0] * (root + 1)
    out = []
    for i in range(root + 1):
        if not marked[i]:
            continue
        row = nodes[i]
        tag = row[0]
        if tag == _TIMES or tag == _PLUS:
            row = (tag, tuple(remap[c] for c in row[1]))
        elif tag == _POW:
            row = (tag, remap[row[1]], row[2])
        remap[i] = len(out)
        out.append(row)
    return out, remap[root]


def _pair_lookup(weights):
    """Normalize a weight source to a ``key -> (w, wbar)`` callable.

    Accepts a mapping or a callable; pair values may be tuples or
    :class:`~repro.weights.WeightPair` (anything that unpacks to two
    exact values).
    """
    if callable(weights):
        return weights
    return weights.__getitem__


class Circuit:
    """An immutable arithmetic circuit: node rows plus a root id.

    Rows are topologically ordered (children precede parents), so
    :meth:`evaluate` is one forward scan and :meth:`gradient` adds one
    backward scan.  Construct circuits through :class:`CircuitBuilder`.
    """

    __slots__ = ("rows", "root", "_runtime")

    def __init__(self, rows, root):
        self.rows = rows
        self.root = root
        self._runtime = None

    @property
    def runtime_cache(self):
        """Per-circuit scratch space for evaluation backends.

        Holds compiled codegen functions and staged batch evaluators
        (:mod:`repro.compile.codegen`); lazily created, never
        serialized — :meth:`to_payload` carries only ``rows``/``root``.
        """
        if self._runtime is None:
            self._runtime = {}
        return self._runtime

    # -- inspection --------------------------------------------------------

    def __len__(self):
        return len(self.rows)

    def leaf_keys(self):
        """The distinct leaf keys, in first-occurrence order."""
        seen = dict()
        for row in self.rows:
            if row[0] in (_LIT, _TOT):
                seen.setdefault(row[1], None)
        return list(seen)

    def depth(self):
        """Longest leaf-to-root path (0 for a single-node circuit)."""
        depths = [0] * len(self.rows)
        for i, row in enumerate(self.rows):
            tag = row[0]
            if tag == _TIMES or tag == _PLUS:
                depths[i] = 1 + max(depths[c] for c in row[1])
            elif tag == _POW:
                depths[i] = 1 + depths[row[1]]
        return depths[self.root]

    def degree(self, key):
        """Polynomial degree of the circuit in ``key``'s weight pair."""
        deg = [0] * len(self.rows)
        for i, row in enumerate(self.rows):
            tag = row[0]
            if tag in (_LIT, _TOT):
                deg[i] = 1 if row[1] == key else 0
            elif tag == _TIMES:
                deg[i] = sum(deg[c] for c in row[1])
            elif tag == _PLUS:
                deg[i] = max(deg[c] for c in row[1])
            elif tag == _POW:
                deg[i] = deg[row[1]] * row[2]
        return deg[self.root]

    def stats(self):
        """Node/edge counts by kind, depth, and distinct leaf keys."""
        counts = {"leaf": 0, "tot": 0, "const": 0, "times": 0, "plus": 0,
                  "pow": 0}
        edges = 0
        for row in self.rows:
            tag = row[0]
            if tag == _LIT:
                counts["leaf"] += 1
            elif tag == _TOT:
                counts["tot"] += 1
            elif tag == _CONST:
                counts["const"] += 1
            elif tag == _TIMES:
                counts["times"] += 1
                edges += len(row[1])
            elif tag == _PLUS:
                counts["plus"] += 1
                edges += len(row[1])
            else:
                counts["pow"] += 1
                edges += 1
        counts["nodes"] = len(self.rows)
        counts["edges"] = edges
        counts["depth"] = self.depth()
        counts["vars"] = len(self.leaf_keys())
        return counts

    # -- evaluation --------------------------------------------------------

    def _forward(self, pair_of):
        """One forward pass: the exact value of every node, in order.

        The single evaluation loop shared by :meth:`evaluate` and
        :meth:`gradient` — a zero product short-circuits (its value is
        exactly 0 either way), and child values are always computed at
        their own rows, so the same pass serves backpropagation.
        """
        vals = [0] * len(self.rows)
        for i, row in enumerate(self.rows):
            tag = row[0]
            if tag == _TIMES:
                v = 1
                for c in row[1]:
                    v *= vals[c]
                    if v == 0:
                        break
                vals[i] = v
            elif tag == _PLUS:
                v = 0
                for c in row[1]:
                    v += vals[c]
                vals[i] = v
            elif tag == _LIT:
                w, wbar = pair_of(row[1])
                vals[i] = _exact(w) if row[2] else _exact(wbar)
            elif tag == _TOT:
                w, wbar = pair_of(row[1])
                vals[i] = _exact(w) + _exact(wbar)
            elif tag == _CONST:
                vals[i] = row[1]
            else:
                vals[i] = vals[row[1]] ** row[2]
        return vals

    def evaluate(self, weights, backend=None, store=None):
        """Value at one weight assignment.

        ``weights`` maps each leaf key to its ``(w, wbar)`` pair (a
        mapping or a callable).  With the default (exact) backend this
        returns a :class:`Fraction`, bit-identical to what direct
        counting computes at the same weights.  ``backend`` selects an
        evaluation backend by name (``"exact"``, ``"batched"``,
        ``"float"``, ``"codegen"``) or instance — see
        :mod:`repro.compile.backends`; the ``"float"`` backend returns a
        float with a tracked error bound (falling back to exact
        arithmetic when the bound is unacceptable), all others are
        bit-identical to exact.
        """
        if backend is None:
            return Fraction(self._forward(_pair_lookup(weights))[self.root])
        from .backends import get_backend
        return get_backend(backend).evaluate(
            self, _pair_lookup(weights), store=store)

    def evaluate_many(self, weight_list, backend=None, store=None):
        """Values at many weight assignments, in input order.

        The batched/codegen backends serve all K assignments in a
        single staged pass over the node rows (uniform columns collapse
        to scalars), which is where the sweep-serving speedup lives.
        """
        if backend is None:
            return [self.evaluate(w) for w in weight_list]
        from .backends import get_backend
        return get_backend(backend).evaluate_many(
            self, [_pair_lookup(w) for w in weight_list], store=store)

    def evaluate_batch(self, weight_list):
        """Deprecated alias of :meth:`evaluate_many` (exact backend)."""
        return self.evaluate_many(weight_list)

    def gradient(self, weights):
        """``(value, grads)`` with ``grads[key] == (d/dw, d/dwbar)``.

        One forward pass computes node values, one reverse pass
        accumulates adjoints over the DAG (product nodes use
        prefix/suffix products, so zero-valued children need no
        division).  All arithmetic is exact.
        """
        pair_of = _pair_lookup(weights)
        rows = self.rows
        vals = self._forward(pair_of)

        adj = [0] * len(rows)
        adj[self.root] = 1
        grads = {}
        for i in range(self.root, -1, -1):
            a = adj[i]
            if a == 0:
                continue
            row = rows[i]
            tag = row[0]
            if tag == _TIMES:
                kids = row[1]
                prefix = [1]
                for c in kids:
                    prefix.append(prefix[-1] * vals[c])
                suffix = 1
                for j in range(len(kids) - 1, -1, -1):
                    c = kids[j]
                    adj[c] += a * prefix[j] * suffix
                    suffix *= vals[c]
            elif tag == _PLUS:
                for c in row[1]:
                    adj[c] += a
            elif tag == _POW:
                c, e = row[1], row[2]
                adj[c] += a * e * vals[c] ** (e - 1)
            elif tag == _LIT:
                gw, gwbar = grads.get(row[1], (0, 0))
                if row[2]:
                    grads[row[1]] = (gw + a, gwbar)
                else:
                    grads[row[1]] = (gw, gwbar + a)
            elif tag == _TOT:
                gw, gwbar = grads.get(row[1], (0, 0))
                grads[row[1]] = (gw + a, gwbar + a)
        for key in self.leaf_keys():
            grads.setdefault(key, (0, 0))
        return (
            Fraction(vals[self.root]),
            {k: (Fraction(gw), Fraction(gwb)) for k, (gw, gwb) in grads.items()},
        )

    # -- smoothing ---------------------------------------------------------

    def scopes(self):
        """Per-node leaf-key scopes (frozensets), index-aligned."""
        scopes = [frozenset()] * len(self.rows)
        for i, row in enumerate(self.rows):
            tag = row[0]
            if tag in (_LIT, _TOT):
                scopes[i] = frozenset((row[1],))
            elif tag == _TIMES or tag == _PLUS:
                s = frozenset()
                for c in row[1]:
                    s |= scopes[c]
                scopes[i] = s
            elif tag == _POW:
                scopes[i] = scopes[row[1]]
        return scopes

    def is_smooth(self):
        """True when every +-node's children share one leaf scope."""
        scopes = self.scopes()
        for row in self.rows:
            if row[0] == _PLUS:
                kids = row[1]
                first = scopes[kids[0]]
                if any(scopes[c] != first for c in kids[1:]):
                    return False
        return True

    def smooth(self):
        """A smoothed equivalent: +-children missing leaves of the node
        scope are multiplied by the ``w + wbar`` total of each missing
        key (exactly d-DNNF smoothing).  Traced circuits are smooth by
        construction, so this is a no-op-sized pass for them."""
        scopes = self.scopes()
        builder = CircuitBuilder()
        mapped = [0] * len(self.rows)
        for i, row in enumerate(self.rows):
            tag = row[0]
            if tag == _LIT:
                mapped[i] = builder.lit(row[1], row[2])
            elif tag == _TOT:
                mapped[i] = builder.tot(row[1])
            elif tag == _CONST:
                mapped[i] = builder.const(row[1])
            elif tag == _TIMES:
                mapped[i] = builder.times([mapped[c] for c in row[1]])
            elif tag == _POW:
                mapped[i] = builder.pow(mapped[row[1]], row[2])
            else:
                target = scopes[i]
                kids = []
                for c in row[1]:
                    missing = target - scopes[c]
                    child = mapped[c]
                    if missing:
                        child = builder.times(
                            [child] + [builder.tot(k)
                                       for k in sorted(missing, key=repr)])
                    kids.append(child)
                mapped[i] = builder.plus(kids)
        return builder.build(mapped[self.root])

    def map_leaves(self, key_fn):
        """Rebuild with leaves rewritten by ``key_fn(key)``.

        ``key_fn`` returns a tagged pair: ``("key", new_key)`` renames
        the leaf, ``("bake", (w, wbar))`` folds it into constants (lit
        becomes ``w`` / ``wbar``, tot becomes ``w + wbar``) — used to
        bake auxiliary Tseitin variables (fixed weight ``(1, 1)``) out
        of a traced circuit.  Folding re-applies, so baked-neutral
        leaves vanish entirely.
        """
        builder = CircuitBuilder()

        def lit_fn(key, positive):
            action, new = key_fn(key)
            if action == "bake":
                return builder.const(new[0] if positive else new[1])
            return builder.lit(new, positive)

        def tot_fn(key):
            action, new = key_fn(key)
            if action == "bake":
                return builder.const(_exact(new[0]) + _exact(new[1]))
            return builder.tot(new)

        root = builder.inline(self.rows, self.root, lit_fn=lit_fn,
                              tot_fn=tot_fn)
        return builder.build(root)

    # -- persistence -------------------------------------------------------

    def to_payload(self):
        """A store-codec-friendly serialization (tuples/ints/Fractions)."""
        return ("accirc", CIRCUIT_FORMAT, self.root, tuple(self.rows))

    @classmethod
    def from_payload(cls, payload):
        """Inverse of :meth:`to_payload`; ``None`` on a foreign payload.

        Rows are re-interned through a fresh builder, so a payload that
        decodes but is structurally damaged degrades to ``None`` rather
        than producing a circuit that fails later.
        """
        try:
            tag, version, root, rows = payload
            if tag != "accirc" or version != CIRCUIT_FORMAT:
                return None
            builder = CircuitBuilder()
            new_root = builder.inline(list(rows), root)
            return builder.build(new_root)
        except (TypeError, ValueError, IndexError, KeyError):
            return None

    def __repr__(self):
        return "Circuit(nodes={}, depth={}, vars={})".format(
            len(self.rows), self.depth(), len(self.leaf_keys()))
