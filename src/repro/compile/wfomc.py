"""Compiling whole WFOMC instances: one circuit, many weight vectors.

:func:`compile_wfomc` dispatches like the solver — the FO2 cell
decomposition when the sentence admits it, lineage grounding plus the
engine's trace mode otherwise — and returns a :class:`CompiledWFOMC`
that evaluates (and differentiates) the symmetric WFOMC of the instance
at any :class:`~repro.logic.vocabulary.WeightedVocabulary` over the same
predicates.  This is the amortization the paper's symmetric setting
invites: the count *structure* is weight-independent, so the expensive
object is built once and every weight vector costs one linear circuit
pass.

The FO2 path compiles the cell decomposition symbolically: cell weights
``u_k`` become products of per-predicate leaves, 2-table weights
``r_kl`` sums over the structure's satisfying patterns, and the
distribution recursion unrolls (memoized on node ids, mirroring the
numeric memo) into a polynomial-size circuit in ``n``.  The expensive
cell/2-table enumeration lives in the shared weight-independent
:class:`~repro.wfomc.fo2.FO2CellStructure`, so per-cell subcircuits are
compiled once per structure and reused across domain sizes, weight
functions, and (with ``persist``) processes.

Gradients are per *predicate*: the circuit's reverse pass yields
per-leaf adjoints, which the lineage path aggregates over all ground
atoms of a predicate — exactly ``d WFOMC / d (w_R, wbar_R)``, the
quantity MLN weight learning needs (:mod:`repro.mln.learning`).
"""

from __future__ import annotations

import itertools
from fractions import Fraction

from ..errors import NotFO2Error
from ..logic.scott import scott_normalize, skolemize_scott
from ..logic.syntax import num_variables, predicates_of
from ..logic.vocabulary import Predicate, Vocabulary, WeightedVocabulary
from ..obs import span
from ..utils import LRUCache, binomial, check_domain_size, vocabulary_signature
from ..wfomc.fo2 import _STRUCTURE_CACHE, FO2CellStructure, _combine_universal
from .circuit import CIRCUIT_FORMAT, Circuit, CircuitBuilder
from .trace import CIRCUITS_NS, _store_for, compile_lineage

__all__ = ["CompiledWFOMC", "compile_wfomc", "compile_stats",
           "clear_compile_cache"]

_METHODS = ("auto", "fo2", "lineage")

#: Compiled instances keyed on (formula, n, ordered vocabulary
#: signature, method); a CompiledWFOMC is a pure function of that key.
_COMPILED_CACHE = LRUCache(maxsize=64)

_COMPILE_COUNTERS = {"compiled": 0, "compile_store_hits": 0,
                     "evaluations": 0, "gradients": 0}


def compile_stats():
    """Counters and cache statistics of the compilation layer."""
    stats = dict(_COMPILE_COUNTERS)
    stats["circuits"] = _COMPILED_CACHE.stats()
    return stats


def clear_compile_cache():
    """Drop compiled instances and zero the compilation counters."""
    _COMPILED_CACHE.clear()
    for name in _COMPILE_COUNTERS:
        _COMPILE_COUNTERS[name] = 0


class CompiledWFOMC:
    """A WFOMC instance compiled to an arithmetic circuit.

    ``kind`` is ``"fo2"`` (leaves are predicate names; ``fixed_pairs``
    carries the Scott/Skolem symbols' constant weight pairs) or
    ``"lineage"`` (leaves are ground-atom labels ``(pred, args)``).
    :meth:`evaluate` and :meth:`gradient` accept any weighted vocabulary
    over the instance's predicates and are bit-identical to direct
    counting at the same weights.
    """

    __slots__ = ("formula", "n", "kind", "circuit", "fixed_pairs")

    def __init__(self, formula, n, kind, circuit, fixed_pairs=None):
        self.formula = formula
        self.n = n
        self.kind = kind
        self.circuit = circuit
        self.fixed_pairs = fixed_pairs or {}

    def _pair_fn(self, weighted_vocabulary):
        if self.kind == "fo2":
            fixed = self.fixed_pairs

            def pair_of(name):
                pair = fixed.get(name)
                if pair is not None:
                    return pair
                pair = weighted_vocabulary.weight(name)
                return (pair.w, pair.wbar)

            return pair_of

        # Lineage leaves are ground atoms (pred, args) but symmetric
        # weights depend on the predicate alone — memoize per name so a
        # batch over many atoms pays one lookup per predicate.
        by_name = {}

        def pair_of(label):
            name = label[0]
            pair = by_name.get(name)
            if pair is None:
                wp = weighted_vocabulary.weight(name)
                pair = by_name[name] = (wp.w, wp.wbar)
            return pair

        return pair_of

    def evaluate(self, weighted_vocabulary, backend=None, store=None):
        """``WFOMC(formula, n)`` at the given weights.

        Exact (:class:`Fraction`) under the default backend; ``backend``
        selects an evaluation backend by name or instance (see
        :mod:`repro.compile.backends` — the exact backends are
        bit-identical, ``"float"`` returns a float with automatic exact
        fallback).  ``store`` lets the codegen backend persist its
        generated source next to the circuit.
        """
        _COMPILE_COUNTERS["evaluations"] += 1
        return self.circuit.evaluate(self._pair_fn(weighted_vocabulary),
                                     backend=backend, store=store)

    def evaluate_many(self, weight_vocabularies, backend=None, store=None):
        """Counts for many weighted vocabularies, in input order.

        The batched/codegen backends serve the whole batch in one
        staged pass over the circuit — the sweep-serving fast path.
        """
        pair_fns = [self._pair_fn(wv) for wv in weight_vocabularies]
        _COMPILE_COUNTERS["evaluations"] += len(pair_fns)
        with span("evaluate_many", cat="compile", n=self.n,
                  k=len(pair_fns), backend=backend or "exact"):
            if backend is None:
                return [self.circuit.evaluate(pf) for pf in pair_fns]
            from .backends import get_backend
            return get_backend(backend).evaluate_many(self.circuit, pair_fns,
                                                      store=store)

    def evaluate_batch(self, weight_vocabularies):
        """Deprecated alias of :meth:`evaluate_many` (exact backend)."""
        return self.evaluate_many(weight_vocabularies)

    def gradient(self, weighted_vocabulary):
        """``(value, {pred: (d/dw, d/dwbar)})`` at the given weights.

        Lineage leaves aggregate over all ground atoms of a predicate,
        so the gradient is with respect to the *symmetric* pair the
        predicate carries; Scott/Skolem symbols of the FO2 path (whose
        pairs are fixed by the reduction) are excluded.
        """
        _COMPILE_COUNTERS["gradients"] += 1
        value, leaf_grads = self.circuit.gradient(
            self._pair_fn(weighted_vocabulary))
        grads = {p.name: (Fraction(0), Fraction(0))
                 for p in weighted_vocabulary.vocabulary}
        for key, (gw, gwbar) in leaf_grads.items():
            name = key if self.kind == "fo2" else key[0]
            entry = grads.get(name)
            if entry is not None:
                grads[name] = (entry[0] + gw, entry[1] + gwbar)
        return value, grads

    def stats(self):
        """The underlying circuit's size/shape statistics."""
        stats = self.circuit.stats()
        stats["kind"] = self.kind
        return stats

    def __repr__(self):
        return "CompiledWFOMC(n={}, kind={}, nodes={})".format(
            self.n, self.kind, len(self.circuit))


# -- the FO2 cell-decomposition compiler -------------------------------------


def _compile_fo2(formula, n, vocabulary, store=None, budget=None):
    """Circuit + fixed fresh-symbol pairs for an FO2 sentence, n >= 1."""
    if num_variables(formula) > 2:
        raise NotFO2Error(
            "sentence uses {} distinct variables; FO2 allows at most 2".format(
                num_variables(formula)))
    for pred in vocabulary:
        if pred.arity > 2:
            raise NotFO2Error(
                "predicate {} has arity {}; the FO2 compiler requires "
                "arity at most 2".format(pred.name, pred.arity))

    wv = WeightedVocabulary.uniform(vocabulary)
    sentences, wv1 = scott_normalize(formula, wv)
    universal, wv2 = skolemize_scott(sentences, wv1)
    matrix = _combine_universal(universal)
    structure = _STRUCTURE_CACHE.get(matrix)
    if structure is None:
        structure = FO2CellStructure(matrix, wv2.vocabulary)
        _STRUCTURE_CACHE.put(matrix, structure)
    structure.store = store

    builder = CircuitBuilder()
    zero_preds = structure.zero_preds
    terms = []
    for bits in itertools.product((False, True), repeat=len(zero_preds)):
        zero_assignment = dict(zip(zero_preds, bits))
        zero_key = tuple(sorted(zero_assignment.items()))
        cells, satisfying = structure.tables(zero_key, zero_assignment,
                                             budget=budget)
        factors = [builder.lit(name, bit)
                   for name, bit in zip(zero_preds, bits)]
        factors.append(_compile_cells(builder, structure, cells,
                                      satisfying, n, budget=budget))
        terms.append(builder.times(factors))
    total = builder.plus(terms)

    # Predicates the matrix never mentions are unconstrained: full mass.
    unconstrained = []
    for pred, _pair in wv2.items():
        if pred.name not in structure.matrix_preds:
            unconstrained.append(
                builder.pow(builder.tot(pred.name), n ** pred.arity))
    if unconstrained:
        total = builder.times([total] + unconstrained)
    circuit = builder.build(total)

    user_names = {p.name for p in vocabulary}
    fixed_pairs = {}
    for pred, pair in wv2.items():
        if pred.name not in user_names:
            fixed_pairs[pred.name] = (pair.w, pair.wbar)
    return circuit, fixed_pairs


def _compile_cells(builder, structure, cells, satisfying, n, budget=None):
    """The distribution recursion of one zero-ary assignment, as nodes.

    Mirrors :meth:`repro.wfomc.fo2.FO2CellDecomposition.run` with node
    ids in place of numbers; the memo keys on node ids, which
    hash-consing makes canonical, so the circuit has one node per
    distinct numeric subproblem.  Structurally-zero branches (a cell
    pair with no satisfying 2-table) are pruned — that pruning is
    weight-independent, so the circuit stays correct for every weight
    assignment.
    """
    k_cells = len(cells)
    if k_cells == 0:
        return builder.const(0 if n > 0 else 1)
    type_slots = structure.type_slots
    cell_w = [
        builder.times([builder.lit(name, bit)
                       for (name, _kind), bit in zip(type_slots, cell_bits)])
        for cell_bits in cells
    ]
    off_diag = structure.off_diag_labels
    r = [[None] * k_cells for _ in range(k_cells)]
    for k in range(k_cells):
        for l in range(k_cells):
            patterns = [
                builder.times([builder.lit(name, bit)
                               for (name, _args), bit in zip(off_diag, bits)])
                for bits in satisfying[k][l]
            ]
            r[k][l] = builder.plus(patterns)

    memo = {}
    last = k_cells - 1

    def suffix(k, remaining, pending):
        if budget is not None:
            budget.tick()
        key = (k, remaining, pending)
        value = memo.get(key)
        if value is not None:
            return value
        rk = r[k]
        if k == last:
            value = builder.times([
                builder.pow(cell_w[k], remaining),
                builder.pow(rk[k], binomial(remaining, 2)),
                builder.pow(pending[0], remaining),
            ])
        else:
            terms = []
            for nk in range(remaining + 1):
                term = builder.times([
                    builder.const(binomial(remaining, nk)),
                    builder.pow(cell_w[k], nk),
                    builder.pow(rk[k], binomial(nk, 2)),
                    builder.pow(pending[0], nk),
                ])
                if builder.is_zero(term):
                    continue
                if nk:
                    new_pending = tuple(
                        builder.times([pending[l - k],
                                       builder.pow(rk[l], nk)])
                        for l in range(k + 1, k_cells)
                    )
                else:
                    new_pending = pending[1:]
                terms.append(builder.times(
                    [term, suffix(k + 1, remaining - nk, new_pending)]))
            value = builder.plus(terms)
        memo[key] = value
        return value

    one = builder.const(1)
    return suffix(0, n, (one,) * k_cells)


# -- dispatch, caching, persistence ------------------------------------------


def _fo2_applicable(formula, vocabulary, n):
    return (n > 0 and num_variables(formula) <= 2
            and all(p.arity <= 2 for p in vocabulary))


def compile_wfomc(formula, n, vocabulary=None, method="auto", persist=None,
                  cache_dir=None, budget=None):
    """Compile one ``(formula, n)`` WFOMC instance into a circuit.

    ``vocabulary`` is a plain (unweighted)
    :class:`~repro.logic.vocabulary.Vocabulary` — compilation is
    weight-independent by construction; it defaults to the predicates of
    the formula.  ``method`` is ``"auto"`` (FO2 when applicable, else
    lineage), ``"fo2"``, or ``"lineage"``.  Results are cached in
    memory and, with ``persist``, serialized to the ``circuits``
    namespace of the on-disk store, keyed on the weight-independent
    instance identity — a fresh process re-serving a sweep deserializes
    instead of re-tracing the search.
    """
    if method not in _METHODS:
        raise ValueError("unknown method {!r}; expected one of {}".format(
            method, _METHODS))
    check_domain_size(n)
    if vocabulary is None:
        arities = predicates_of(formula)
        vocabulary = Vocabulary(Predicate(name, arity)
                                for name, arity in sorted(arities.items()))

    signature = vocabulary_signature(vocabulary, ordered=True)
    cache_key = (formula, n, signature, method)
    store_key = ("wfomc", formula, n, signature, method)
    compiled = _COMPILED_CACHE.get(cache_key)
    if compiled is not None:
        # A memory hit must still honor an explicit persist request: the
        # cached circuit may predate it (compiled without a store).
        store = _store_for(persist, cache_dir)
        if store is not None and store.get(CIRCUITS_NS, store_key) is None:
            store.put(CIRCUITS_NS, store_key, _encode_compiled(compiled))
        return compiled

    store = _store_for(persist, cache_dir)
    if store is not None:
        payload = store.get(CIRCUITS_NS, store_key)
        compiled = _decode_compiled(payload, formula, n)
        if compiled is not None:
            _COMPILE_COUNTERS["compile_store_hits"] += 1
            _COMPILED_CACHE.put(cache_key, compiled)
            return compiled

    with span("compile_wfomc", cat="compile", n=n, method=method):
        if method == "fo2":
            if n == 0:
                # Scott/Skolem prenexing assumes a nonempty domain; the
                # trivial instance compiles through the (empty) lineage.
                circuit = compile_lineage(formula, n, vocabulary,
                                          persist=persist,
                                          cache_dir=cache_dir,
                                          budget=budget)
                compiled = CompiledWFOMC(formula, n, "lineage", circuit)
            else:
                circuit, fixed = _compile_fo2(formula, n, vocabulary,
                                              store=store, budget=budget)
                compiled = CompiledWFOMC(formula, n, "fo2", circuit, fixed)
        elif method == "auto" and _fo2_applicable(formula, vocabulary, n):
            try:
                circuit, fixed = _compile_fo2(formula, n, vocabulary,
                                              store=store, budget=budget)
                compiled = CompiledWFOMC(formula, n, "fo2", circuit, fixed)
            except NotFO2Error:
                compiled = None
        else:
            compiled = None
        if compiled is None:
            circuit = compile_lineage(formula, n, vocabulary, persist=persist,
                                      cache_dir=cache_dir, budget=budget)
            compiled = CompiledWFOMC(formula, n, "lineage", circuit)

    _COMPILE_COUNTERS["compiled"] += 1
    _COMPILED_CACHE.put(cache_key, compiled)
    if store is not None:
        store.put(CIRCUITS_NS, store_key, _encode_compiled(compiled))
    return compiled


def _encode_compiled(compiled):
    fixed = tuple(sorted(
        (name, pair[0], pair[1])
        for name, pair in compiled.fixed_pairs.items()))
    return ("cwfomc", CIRCUIT_FORMAT, compiled.kind, fixed,
            compiled.circuit.to_payload())


def _decode_compiled(payload, formula, n):
    try:
        tag, version, kind, fixed, circuit_payload = payload
        if tag != "cwfomc" or version != CIRCUIT_FORMAT:
            return None
        if kind not in ("fo2", "lineage"):
            return None
        circuit = Circuit.from_payload(circuit_payload)
        if circuit is None:
            return None
        fixed_pairs = {name: (w, wbar) for name, w, wbar in fixed}
        return CompiledWFOMC(formula, n, kind, circuit, fixed_pairs)
    except (TypeError, ValueError):
        return None
