"""Compiling CNFs, propositional formulas, and lineages into circuits.

These are thin drivers over the counting engine's trace mode
(:func:`repro.propositional.counter.trace_cnf_clauses`): the search runs
once, weight-symbolically, and the result is a :class:`~repro.compile.
circuit.Circuit` whose evaluation at any weight assignment is
bit-identical to direct counting at those weights — including negative
and zero weights, which the trace never prunes on.

Leaf handling mirrors the counting wrappers exactly:

* labeled CNF variables become leaves keyed by their *label* (for
  lineages, the ground-atom pair ``(pred, args)``);
* auxiliary Tseitin variables carry the fixed weight ``(1, 1)``, so
  their leaves are baked into constants at compile time (they vanish
  from products and contribute a constant ``2`` where they are
  unconstrained, exactly the mass direct counting assigns them);
* labeled variables that occur in no clause contribute their full
  ``w + wbar`` mass as total leaves.

``persist=True`` stores serialized circuits in the ``circuits``
namespace of the on-disk cache (:mod:`repro.cache`), content-addressed
on the weight-independent canonical key of the input (clauses plus
labels, or ``(formula, n)`` for lineages) and the store's engine tag, so
a second process re-serving a sweep skips compilation entirely.
"""

from __future__ import annotations

from ..grounding.lineage import lineage
from ..grounding.structures import ground_tuples
from ..logic.syntax import predicates_of
from ..logic.vocabulary import Predicate, Vocabulary
from ..cache.adapters import CIRCUITS_NS
from ..propositional.counter import cnf_for_formula, trace_cnf_clauses
from ..utils import vocabulary_signature
from .circuit import Circuit, CircuitBuilder

__all__ = ["CIRCUITS_NS", "compile_cnf", "compile_formula", "compile_lineage"]


def _store_for(persist, cache_dir):
    if not persist:
        return None
    from ..cache import open_store

    store = open_store(cache_dir)
    return None if store.disabled else store


def _load_circuit(store, store_key):
    if store is None or store_key is None:
        return None
    payload = store.get(CIRCUITS_NS, store_key)
    if payload is None:
        return None
    return Circuit.from_payload(payload)


def _save_circuit(store, store_key, circuit):
    if store is not None and store_key is not None:
        store.put(CIRCUITS_NS, store_key, circuit.to_payload())


def compile_cnf(cnf, persist=None, cache_dir=None, store_key=None,
                budget=None):
    """Compile a :class:`~repro.propositional.cnf.CNF` into a circuit.

    The circuit's leaves are the CNF's variable *labels*;
    ``Circuit.evaluate({label: (w, wbar), ...})`` is bit-identical to
    :func:`~repro.propositional.counter.wmc_cnf` with the same weights.
    ``store_key`` overrides the persistence key (callers with a cheaper
    canonical identity, like :func:`compile_lineage`, pass their own).
    """
    store = _store_for(persist, cache_dir)
    if store is not None and store_key is None:
        store_key = ("cnf", tuple(cnf.clauses),
                     tuple(sorted(cnf.labels.items(),
                                  key=lambda item: item[0])),
                     cnf.num_vars)
    cached = _load_circuit(store, store_key)
    if cached is not None:
        return cached

    builder = CircuitBuilder()
    if cnf.contradictory:
        root = builder.const(0)
    else:
        clauses = tuple(cnf.clauses)
        root = trace_cnf_clauses(clauses, builder, budget=budget)
        used = set()
        for c in clauses:
            for lit in c:
                used.add(lit if lit > 0 else -lit)
        unused = [builder.tot(v) for v in sorted(cnf.original_vars())
                  if v not in used]
        if unused:
            root = builder.times([root] + unused)
    traced = builder.build(root)

    labels = cnf.labels

    def relabel(var):
        label = labels.get(var)
        if label is None:
            return ("bake", (1, 1))  # auxiliary Tseitin variable
        return ("key", label)

    circuit = traced.map_leaves(relabel)
    _save_circuit(store, store_key, circuit)
    return circuit


def compile_formula(formula, universe=(), persist=None, cache_dir=None,
                    store_key=None, budget=None):
    """Compile an arbitrary propositional formula into a circuit.

    The twin of :func:`~repro.propositional.counter.wmc_formula`: the
    conversion to CNF is shared with the counting path (one memoized
    ``to_cnf`` per ``(formula, universe)``), labels absent from the
    formula but listed in ``universe`` contribute total leaves.
    """
    cnf = cnf_for_formula(formula, universe)
    return compile_cnf(cnf, persist=persist, cache_dir=cache_dir,
                       store_key=store_key, budget=budget)


def compile_lineage(formula, n, vocabulary=None, persist=None,
                    cache_dir=None, budget=None):
    """Compile the lineage of an FO sentence over domain ``[n]``.

    Returns a circuit over ground-atom leaves ``(pred, args)`` whose
    evaluation at the induced atom weights equals
    :func:`~repro.wfomc.bruteforce.wfomc_lineage` at the corresponding
    weighted vocabulary — for *every* weighted vocabulary over the same
    predicates, which is the whole point: one compile serves any number
    of weight vectors.  ``vocabulary`` defaults to the predicates of the
    formula; pass the full vocabulary when atoms outside the formula
    should contribute their unconstrained mass.
    """
    if vocabulary is None:
        arities = predicates_of(formula)
        vocabulary = Vocabulary(Predicate(name, arity)
                                for name, arity in sorted(arities.items()))
    prop = lineage(formula, n)
    universe = tuple(ground_tuples(vocabulary, n))
    store_key = ("lineage", formula, n,
                 vocabulary_signature(vocabulary, ordered=True))
    return compile_formula(prop, universe, persist=persist,
                           cache_dir=cache_dir, store_key=store_key,
                           budget=budget)
