"""Lineage: grounding an FO sentence to a propositional formula.

Section 2 of the paper defines the lineage ``F_{Phi,n}`` of a sentence over
domain ``[n]`` inductively: quantifiers expand to conjunctions and
disjunctions over domain elements, equality atoms evaluate to constants,
and ground relational atoms become propositional variables labeled
``(pred_name, args)``.  For a fixed sentence the lineage has size
polynomial in ``n``.
"""

from __future__ import annotations

from ..logic.syntax import (
    And,
    Atom,
    Bottom,
    Const,
    Eq,
    Exists,
    Forall,
    Iff,
    Implies,
    Not,
    Or,
    Top,
    Var,
)
from ..utils import LRUCache, check_domain_size, vocabulary_signature
from .structures import ground_tuples
from ..propositional.formula import pand, pnot, por, pvar, PFalse, PTrue

__all__ = ["lineage", "ground_atom_weights", "clear_grounding_caches", "grounding_cache_stats"]

# Ground lineages are pure functions of (formula, n) and formula nodes are
# immutable, so repeated solver calls — weight sweeps, probability
# numerators, batch evaluation — reuse the grounding.  Entries can be
# large, hence the small bound.
_LINEAGE_CACHE = LRUCache(maxsize=64)
_UNIVERSE_CACHE = LRUCache(maxsize=256)


def clear_grounding_caches():
    """Drop all cached lineages and ground-atom universes."""
    _LINEAGE_CACHE.clear()
    _UNIVERSE_CACHE.clear()


def grounding_cache_stats():
    """Hit/miss statistics for the grounding-level caches."""
    return {
        "lineage": _LINEAGE_CACHE.stats(),
        "universe": _UNIVERSE_CACHE.stats(),
    }


def lineage(formula, n):
    """The lineage of ``formula`` over domain ``[n]`` as a prop formula.

    Free variables must have been substituted by constants beforehand.
    Results are memoized on ``(formula, n)``.
    """
    check_domain_size(n)
    key = (formula, n)
    cached = _LINEAGE_CACHE.get(key)
    if cached is None:
        cached = _ground(formula, n, {})
        _LINEAGE_CACHE.put(key, cached)
    return cached


def _term_value(t, env):
    if isinstance(t, Const):
        return t.value
    if isinstance(t, Var):
        try:
            return env[t]
        except KeyError:
            raise ValueError(
                "free variable {} in sentence being grounded".format(t)
            ) from None
    raise TypeError("not a term: {!r}".format(t))


def _ground(f, n, env):
    if isinstance(f, Top):
        return PTrue()
    if isinstance(f, Bottom):
        return PFalse()
    if isinstance(f, Atom):
        args = tuple(_term_value(a, env) for a in f.args)
        return pvar((f.pred, args))
    if isinstance(f, Eq):
        return PTrue() if _term_value(f.left, env) == _term_value(f.right, env) else PFalse()
    if isinstance(f, Not):
        return pnot(_ground(f.body, n, env))
    if isinstance(f, And):
        return pand(*(_ground(p, n, env) for p in f.parts))
    if isinstance(f, Or):
        return por(*(_ground(p, n, env) for p in f.parts))
    if isinstance(f, Implies):
        return por(pnot(_ground(f.antecedent, n, env)), _ground(f.consequent, n, env))
    if isinstance(f, Iff):
        left = _ground(f.left, n, env)
        right = _ground(f.right, n, env)
        return pand(por(pnot(left), right), por(left, pnot(right)))
    if isinstance(f, (Forall, Exists)):
        # Save and restore any outer binding of the same variable name:
        # formulas like the FO2 alpha-towers rebind x inside the scope of
        # an outer x.
        missing = object()
        saved = env.get(f.var, missing)
        parts = []
        for value in range(1, n + 1):
            env[f.var] = value
            parts.append(_ground(f.body, n, env))
        if saved is missing:
            env.pop(f.var, None)
        else:
            env[f.var] = saved
        return pand(*parts) if isinstance(f, Forall) else por(*parts)
    raise TypeError("not a formula: {!r}".format(f))


def ground_atom_weights(weighted_vocabulary, n):
    """Weight function over ground-atom labels, plus the full universe.

    Returns ``(weight_of, universe)`` where ``weight_of`` maps a label
    ``(pred, args)`` to its :class:`~repro.weights.WeightPair` and
    ``universe`` is the tuple of all ground-atom labels ``Tup(n)``.
    """
    key = (vocabulary_signature(weighted_vocabulary.vocabulary), n)
    universe = _UNIVERSE_CACHE.get(key)
    if universe is None:
        universe = tuple(ground_tuples(weighted_vocabulary.vocabulary, n))
        _UNIVERSE_CACHE.put(key, universe)

    def weight_of(label):
        pred, _args = label
        return weighted_vocabulary.weight(pred)

    return weight_of, universe
