"""Grounding: finite structures, ground tuples, and lineage formulas."""

from .structures import Structure, ground_tuples, all_structures, world_weight
from .lineage import lineage, ground_atom_weights

__all__ = [
    "Structure",
    "ground_tuples",
    "all_structures",
    "world_weight",
    "lineage",
    "ground_atom_weights",
]
