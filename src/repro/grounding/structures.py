"""Finite labeled structures over the domain ``[n] = {1, ..., n}``.

The paper counts *labeled* structures: isomorphic structures are distinct.
:func:`all_structures` therefore enumerates every subset of the ground
tuples, which is the exact (exponential) semantic baseline used to validate
all the clever algorithms on small inputs.
"""

from __future__ import annotations

import itertools

from ..utils import check_domain_size

__all__ = ["Structure", "ground_tuples", "all_structures", "world_weight"]


class Structure:
    """A finite structure: a domain size and one relation per predicate.

    ``relations`` maps predicate names to sets of argument tuples.  Tuples
    are tuples of ints in ``1..n``; zero-ary relations hold the empty tuple
    when 'true'.
    """

    __slots__ = ("n", "relations")

    def __init__(self, n, relations=None):
        self.n = check_domain_size(n)
        self.relations = {}
        if relations:
            for name, tuples in relations.items():
                self.relations[name] = frozenset(tuple(t) for t in tuples)

    def domain(self):
        """The domain as a range ``1..n``."""
        return range(1, self.n + 1)

    def holds(self, pred, args):
        """Whether the ground atom ``pred(args)`` is true here."""
        return tuple(args) in self.relations.get(pred, frozenset())

    def with_tuple(self, pred, args):
        """A copy with one extra tuple added to ``pred``."""
        relations = dict(self.relations)
        relations[pred] = relations.get(pred, frozenset()) | {tuple(args)}
        return Structure(self.n, relations)

    def size_of(self, pred):
        """Number of tuples in relation ``pred``."""
        return len(self.relations.get(pred, frozenset()))

    def __eq__(self, other):
        if not isinstance(other, Structure):
            return NotImplemented
        mine = {k: v for k, v in self.relations.items() if v}
        theirs = {k: v for k, v in other.relations.items() if v}
        return self.n == other.n and mine == theirs

    def __hash__(self):
        items = tuple(sorted((k, v) for k, v in self.relations.items() if v))
        return hash((self.n, items))

    def __repr__(self):
        parts = []
        for name in sorted(self.relations):
            tuples = sorted(self.relations[name])
            parts.append("{}={{{}}}".format(name, ", ".join(map(str, tuples))))
        return "Structure(n={}, {})".format(self.n, ", ".join(parts))


def ground_tuples(vocabulary, n):
    """All ground atoms ``(pred_name, args)`` over the domain ``[n]``.

    This is the set ``Tup(n)`` from Section 2, of size
    ``sum_i n**arity(R_i)``.
    """
    check_domain_size(n)
    result = []
    for pred in vocabulary:
        for args in itertools.product(range(1, n + 1), repeat=pred.arity):
            result.append((pred.name, args))
    return result


def all_structures(vocabulary, n):
    """Iterate over every structure for ``vocabulary`` on domain ``[n]``.

    There are ``2**|Tup(n)|`` of them; only call this for tiny inputs.
    """
    tuples = ground_tuples(vocabulary, n)
    names = [p.name for p in vocabulary]
    for bits in itertools.product((False, True), repeat=len(tuples)):
        relations = {name: set() for name in names}
        for present, (pred, args) in zip(bits, tuples):
            if present:
                relations[pred].add(args)
        yield Structure(n, relations)


def world_weight(structure, weighted_vocabulary):
    """The weight of a world: product of ``w``/``wbar`` over all tuples.

    Implements Eq. (3) of the paper with symmetric per-relation weights.
    """
    total = 1
    n = structure.n
    for pred, pair in weighted_vocabulary.items():
        present = structure.size_of(pred.name)
        absent = n ** pred.arity - present
        total *= pair.w ** present * pair.wbar ** absent
    return total
