"""A networked cache tier: HTTP blob server, client, and tiered store.

Symmetric-WFOMC serving fleets amortize compilation and component
counting across *processes and machines*, not just across calls — so
the on-disk store gets an optional shared tier: a tiny HTTP blob server
(:class:`BlobServer`, ``repro cache serve``) exposing a
:class:`~repro.cache.store.PersistentStore` by content address, a
client (:class:`NetworkStoreClient`) with the PR-7 failure discipline
extended across the network boundary, and a :class:`TieredStore` that
composes the two behind the exact interface the cache adapters speak.

The protocol is deliberately dumb — values are opaque payload bytes
keyed by the same SHA-256 content addresses the local store uses:

* ``GET /kv/<namespace>/<hex digest>`` → 200 + payload, or 404
* ``PUT /kv/<namespace>/<hex digest>`` (body = payload) → 204
* ``GET /healthz`` → 200, ``GET /stats`` → JSON store stats

Failure discipline (mirroring :mod:`repro.cache.store`):

* **Classification** — timeouts, refused/reset connections, and 5xx
  responses are *transient*; they get bounded retries with jittered
  exponential backoff (``retries`` counts them).  Anything else
  surviving the retries trips the circuit breaker.
* **Circuit breaker** — a failing tier is disabled (every read misses,
  every write is dropped: the counting path degrades to local-only) and
  re-probed with a doubling interval via ``GET /healthz``, so a
  restarted tier is picked back up without operator action
  (``reenables`` counts recoveries).
* **Torn payloads** — a truncated or corrupted payload fails to decode
  and reads as a miss, never as a wrong value (the local store makes
  the same promise).

Every failure mode is reachable deterministically through the fault
plans of :mod:`repro.resilience.faults`: ``net_timeout``,
``net_refused``, ``net_http_error``, and ``net_torn_payload`` fire at
the client's request boundary.
"""

from __future__ import annotations

import http.client
import json
import logging
import random
import re
import socket
import threading
import time
import urllib.parse
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from ..obs import get_logger, slog, span
from ..resilience.faults import maybe_fire
from .store import key_digest, decode_value, encode_value

#: Structured-log channel for breaker open/close events.
_LOG = get_logger("cache.net")

__all__ = [
    "BlobServer",
    "NetworkStoreClient",
    "TieredStore",
    "serve_blob_store",
]

#: Bounded jittered exponential backoff for transient network errors:
#: up to ``_NET_MAX_RETRIES`` retries starting at ``_NET_RETRY_BASE_S``
#: seconds, doubling, capped.  Module-level so tests can shrink them.
_NET_RETRY_BASE_S = 0.02
_NET_RETRY_CAP_S = 0.25
_NET_MAX_RETRIES = 3

#: Per-request socket timeout (connect + read), seconds.
_NET_TIMEOUT_S = 5.0

#: Circuit-breaker re-probe schedule: first probe after the base
#: interval, doubling up to the cap while probes keep failing.
_NET_PROBE_INTERVAL_S = 0.5
_NET_PROBE_MAX_S = 60.0

#: Buffered remote writes per flush batch (see :class:`TieredStore`).
_REMOTE_FLUSH_THRESHOLD = 64


class _RemoteHTTPError(Exception):
    """A 5xx (or otherwise unusable) blob-tier response."""

    def __init__(self, status):
        super().__init__("blob tier answered HTTP {}".format(status))
        self.status = status


# -- the server --------------------------------------------------------------

_KV_PATH = re.compile(r"^/kv/([A-Za-z0-9_.-]+)/([0-9a-f]{64})$")


class _BlobRequestHandler(BaseHTTPRequestHandler):
    server_version = "repro-blob/1"
    protocol_version = "HTTP/1.1"

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass  # the server is a cache tier; request logs are noise

    def _respond(self, status, payload=b"", content_type="application/octet-stream"):
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        if payload:
            self.wfile.write(payload)

    def do_GET(self):
        store = self.server.store
        if self.path == "/healthz":
            self._respond(200, b"ok", "text/plain")
            return
        if self.path == "/stats":
            body = json.dumps(store.stats()).encode("utf-8")
            self._respond(200, body, "application/json")
            return
        match = _KV_PATH.match(self.path)
        if match is None:
            self._respond(404)
            return
        namespace, digest = match.group(1), bytes.fromhex(match.group(2))
        payload = store.get_raw(namespace, digest)
        if payload is None:
            self._respond(404)
        else:
            self._respond(200, payload)

    def do_PUT(self):
        match = _KV_PATH.match(self.path)
        if match is None:
            self._respond(404)
            return
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            length = 0
        payload = self.rfile.read(length)
        self.server.store.put_raw(
            match.group(1), bytes.fromhex(match.group(2)), payload)
        self._respond(204)


class BlobServer:
    """A threaded HTTP blob tier over one :class:`PersistentStore`.

    ``port=0`` binds an ephemeral port (read it back from ``address``).
    The server thread is a daemon; :meth:`close` shuts it down and
    flushes the backing store.
    """

    def __init__(self, store, host="127.0.0.1", port=0):
        self.store = store
        self._httpd = ThreadingHTTPServer((host, port), _BlobRequestHandler)
        self._httpd.daemon_threads = True
        self._httpd.store = store
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name="repro-blob-server",
            daemon=True)
        self._thread.start()

    @property
    def address(self):
        """``(host, port)`` actually bound."""
        return self._httpd.server_address[:2]

    @property
    def url(self):
        host, port = self.address
        return "http://{}:{}".format(host, port)

    def close(self):
        self._httpd.shutdown()
        self._httpd.server_close()
        self._thread.join(timeout=5)
        self.store.flush()


def serve_blob_store(store, host="127.0.0.1", port=0):
    """Start a :class:`BlobServer`; returns it (callers ``close()`` it)."""
    return BlobServer(store, host=host, port=port)


# -- the client --------------------------------------------------------------


class NetworkStoreClient:
    """Digest-addressed reads/writes against a blob tier, fault-hardened.

    Never raises toward the counting path: a read under any failure is a
    miss, a write under any failure is dropped, and a tier that keeps
    failing is circuit-broken (``disabled``) and re-probed with a
    doubling interval.
    """

    def __init__(self, base_url, timeout=None, max_retries=None, clock=None):
        if "//" not in base_url:
            base_url = "http://" + base_url
        parsed = urllib.parse.urlsplit(base_url)
        if parsed.scheme != "http" or parsed.hostname is None:
            raise ValueError(
                "blob-tier URL must be http://host:port, got {!r}".format(
                    base_url))
        self.host = parsed.hostname
        self.port = parsed.port or 80
        self.base_path = parsed.path.rstrip("/")
        self.url = "http://{}:{}{}".format(self.host, self.port,
                                           self.base_path)
        self.timeout = _NET_TIMEOUT_S if timeout is None else timeout
        self.max_retries = (_NET_MAX_RETRIES if max_retries is None
                            else max_retries)
        self.disabled = False
        self.hits = 0
        self.misses = 0
        self.writes = 0
        self.errors = 0
        self.retries = 0
        self.reenables = 0
        self._closed = False
        self._probe_at = None
        self._probe_interval = _NET_PROBE_INTERVAL_S
        self._probing = False
        #: Injectable for tests that pin the recovery schedule.
        self._clock = clock or time.monotonic
        #: Jitter stream for retry backoff.  Seeded, so a replayed fault
        #: plan sees the same sleep schedule (the *decisions* never
        #: depend on it — only the waiting does).
        self._rng = random.Random("{}:{}".format(self.host, self.port))
        #: Guards breaker state and the probe schedule; never held
        #: across network I/O.
        self._lock = threading.Lock()

    # -- transport ---------------------------------------------------------

    def _request_once(self, method, path, body=None):
        """One HTTP exchange (+ deterministic fault injection)."""
        if maybe_fire("net_refused"):
            raise ConnectionRefusedError("connection refused (injected)")
        if maybe_fire("net_timeout"):
            raise socket.timeout("request timed out (injected)")
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=self.timeout)
        try:
            conn.request(method, self.base_path + path, body=body)
            response = conn.getresponse()
            status = response.status
            payload = response.read()
        finally:
            conn.close()
        if maybe_fire("net_http_error"):
            status, payload = 500, b""
        if status == 200 and maybe_fire("net_torn_payload"):
            # Truncate mid-byte; the trailing 0xff never decodes, so the
            # read becomes a miss rather than a wrong value.
            payload = payload[:len(payload) // 2] + b"\xff"
        return status, payload

    def _request(self, method, path, body=None):
        """The retry loop: transient failures get jittered backoff."""
        delay = _NET_RETRY_BASE_S
        attempt = 0
        while True:
            try:
                status, payload = self._request_once(method, path, body)
            except (OSError, http.client.HTTPException) as exc:
                if attempt >= self.max_retries:
                    raise
                status, payload = None, exc
            if status is not None and not 500 <= status < 600:
                return status, payload
            if status is not None and attempt >= self.max_retries:
                raise _RemoteHTTPError(status)
            attempt += 1
            self.retries += 1
            time.sleep(min(delay, _NET_RETRY_CAP_S)
                       * (0.5 + self._rng.random()))
            delay = min(delay * 2, _NET_RETRY_CAP_S)

    # -- breaker -----------------------------------------------------------

    def _fail(self):
        """Retries exhausted: open the breaker and arm the re-probe."""
        with self._lock:
            self.errors += 1
            self.disabled = True
            self._probe_at = self._clock() + self._probe_interval
        slog(_LOG, logging.WARNING, "breaker_open", url=self.url,
             errors=self.errors)

    def _maybe_reenable(self):
        """Probe a broken tier for recovery.

        The schedule matches the documented contract: the first probe
        fires after the *base* interval, and the interval doubles (up to
        the cap) only after a probe actually fails.  ``_probing``
        guards the network I/O — which deliberately runs outside
        ``self._lock`` — so concurrent callers racing past
        :meth:`available` while a probe is in flight skip instead of
        issuing duplicate probes.
        """
        with self._lock:
            if (not self.disabled or self._closed or self._probing
                    or self._probe_at is None
                    or self._clock() < self._probe_at):
                return
            self._probing = True
        try:
            status, _ = self._request_once("GET", "/healthz")
            ok = status == 200
        except (OSError, http.client.HTTPException):
            ok = False
        with self._lock:
            self._probing = False
            if ok:
                self.disabled = False
                self.reenables += 1
                self._probe_at = None
                self._probe_interval = _NET_PROBE_INTERVAL_S
                slog(_LOG, logging.WARNING, "breaker_closed", url=self.url,
                     reenables=self.reenables)
            else:
                self._probe_interval = min(self._probe_interval * 2,
                                           _NET_PROBE_MAX_S)
                self._probe_at = self._clock() + self._probe_interval

    def available(self):
        """Whether the tier is currently worth talking to."""
        self._maybe_reenable()
        return not self.disabled and not self._closed

    # -- digest-addressed operations ---------------------------------------

    def get_raw(self, namespace, digest):
        """Payload bytes for a digest, or ``None`` (miss *or* failure)."""
        if not self.available():
            return None
        try:
            with span("net.get", cat="cache", ns=namespace):
                status, payload = self._request(
                    "GET", "/kv/{}/{}".format(namespace, digest.hex()))
        except (OSError, http.client.HTTPException, _RemoteHTTPError):
            self._fail()
            return None
        if status == 200:
            self.hits += 1
            return payload
        self.misses += 1
        return None

    def put_raw(self, namespace, digest, payload):
        """Store payload bytes under a digest; dropped on any failure."""
        if not self.available():
            return False
        try:
            with span("net.put", cat="cache", ns=namespace):
                status, _ = self._request(
                    "PUT", "/kv/{}/{}".format(namespace, digest.hex()),
                    body=payload)
        except (OSError, http.client.HTTPException, _RemoteHTTPError):
            self._fail()
            return False
        if status in (200, 201, 204):
            self.writes += 1
            return True
        self.errors += 1
        return False

    def close(self):
        self._closed = True
        self.disabled = True

    def stats(self):
        return {"url": self.url, "disabled": self.disabled,
                "hits": self.hits, "misses": self.misses,
                "writes": self.writes, "errors": self.errors,
                "retries": self.retries, "reenables": self.reenables}


# -- the tiered store --------------------------------------------------------


class TieredStore:
    """Local SQLite store first, shared blob tier second.

    Speaks the exact :class:`~repro.cache.store.PersistentStore`
    interface the adapters and CLI use (unknown attributes delegate to
    the local store), adding:

    * **hedged reads** — a local miss is retried against the remote
      tier; a remote hit is written through to the local store, so each
      entry crosses the network once per process;
    * **write-through** — puts land locally at once and are buffered
      toward the remote tier (flushed in batches, on :meth:`flush`, and
      at :meth:`close`), so a fleet of workers warm-start each other;
    * **degradation** — a disabled remote (circuit breaker) silently
      reduces the store to plain local behavior; a disabled local store
      still serves remote hits (recompute-and-share beats failing).
    """

    def __init__(self, local, remote):
        self.local = local
        self.remote = (remote if isinstance(remote, NetworkStoreClient)
                       else NetworkStoreClient(remote))
        self._remote_pending = []
        self._lock = threading.Lock()

    def __getattr__(self, name):
        # pid, directory, path, disabled, entry_counts, vacuum, ... —
        # everything not overridden is the local store's business.
        return getattr(self.local, name)

    # Aggregated resilience counters (``repro stats`` reads these off
    # every registered store).
    @property
    def retries(self):
        return self.local.retries + self.remote.retries

    @property
    def reenables(self):
        return self.local.reenables + self.remote.reenables

    @property
    def errors(self):
        return self.local.errors + self.remote.errors

    def get(self, namespace, key):
        value = self.local.get(namespace, key)
        if value is not None:
            return value
        digest = key_digest(namespace, key)
        payload = self.remote.get_raw(namespace, digest)
        if payload is None:
            return None
        try:
            value = decode_value(payload)
        except (ValueError, KeyError, IndexError, TypeError,
                UnicodeDecodeError):
            self.remote.errors += 1
            return None
        # Write through, so the next read of this entry stays local.
        self.local.put(namespace, key, value)
        return value

    def put(self, namespace, key, value):
        self.local.put(namespace, key, value)
        try:
            payload = encode_value(value)
        except TypeError:
            return
        with self._lock:
            self._remote_pending.append(
                (namespace, key_digest(namespace, key), payload))
            batch_due = len(self._remote_pending) >= _REMOTE_FLUSH_THRESHOLD
        if batch_due:
            self._flush_remote()

    def _flush_remote(self):
        with self._lock:
            pending, self._remote_pending = self._remote_pending, []
        if not pending:
            return
        if not self.remote.available():
            return  # degrade: the local store already has the rows
        for namespace, digest, payload in pending:
            if not self.remote.put_raw(namespace, digest, payload):
                break  # breaker opened mid-batch; drop the rest

    def flush(self):
        self.local.flush()
        self._flush_remote()

    def close(self):
        self._flush_remote()
        self.remote.close()
        self.local.close()

    def stats(self):
        merged = self.local.stats()
        merged["remote"] = self.remote.stats()
        return merged
