"""The on-disk persistent store: one SQLite file per cache directory.

Layout and guarantees
---------------------

* **Location**: ``$REPRO_CACHE_DIR`` when set, else ``~/.cache/repro``;
  every caller can override it per call with ``cache_dir=``.  One
  directory holds one ``store.sqlite`` file (plus SQLite's WAL
  side-files) shared by all namespaces.
* **Content addressing**: entries are keyed by the SHA-256 digest of
  ``(format version, engine tag, namespace, canonical key repr)``.  The
  engine tag (:data:`ENGINE_TAG`) names the canonical-key format of the
  counting engine generation that wrote the entry, so a future engine
  whose component keys change simply stops seeing the stale rows —
  stale formats self-invalidate without a migration step.
* **Concurrency**: the database runs in WAL mode with a generous busy
  timeout, so concurrent readers (parallel counting workers, a second
  sweep process) never block each other and concurrent writers
  serialize per transaction.  All values are exact and deterministic
  functions of their keys, so ``INSERT OR REPLACE`` races are benign:
  both writers store the same bytes.
* **Write-behind**: :meth:`PersistentStore.put` buffers rows in memory
  and flushes them in one transaction when the buffer fills, on
  :meth:`flush`, and at interpreter exit — a counting run never blocks
  on per-entry disk latency.
* **Corruption**: a truncated or garbage store file is detected on the
  first statement; the store deletes it and starts fresh once, and if
  that also fails it disables itself (every lookup misses, every write
  is dropped).  Counting callers therefore *always* fall back to
  recomputation — a broken cache can never produce a wrong count or an
  exception on the counting path.
* **Fault tolerance**: runtime SQLite errors are *classified* rather
  than treated as uniformly fatal.  Transient ``SQLITE_BUSY``/locked
  errors (cross-process contention past the busy timeout) are retried
  with bounded exponential backoff before the store gives up; a
  disk-full error disables the store gracefully (counting falls back
  to recomputation); corruption detected at runtime deletes and
  recreates the database once, like corruption at open.  A store
  disabled by failure (not by :meth:`~PersistentStore.close`) probes
  for recovery periodically with a doubling interval, so a transient
  outage does not cost the whole process lifetime.  The ``retries``,
  ``reenables``, and ``disk_full`` session counters report all of it.

Cumulative ``hits``/``misses``/``writes`` counters are persisted in the
store itself (table ``counters``), so ``repro cache stats`` reports
cross-process totals — the way a warm second process proves it was
served from disk.
"""

from __future__ import annotations

import atexit
import hashlib
import json
import logging
import os
import sqlite3
import threading
import time
from fractions import Fraction

from ..obs import get_logger, slog, span
from ..resilience.faults import maybe_fire

#: Structured-log channel for store lifecycle events (disable/re-enable).
_LOG = get_logger("cache.store")

__all__ = [
    "ENGINE_TAG",
    "STORE_FILENAME",
    "STORE_URL_ENV",
    "PersistentStore",
    "default_cache_dir",
    "open_store",
    "close_all_stores",
    "encode_value",
    "decode_value",
    "key_digest",
]

#: Name of the SQLite file inside a cache directory.
STORE_FILENAME = "store.sqlite"

#: On-disk format version; bumping it orphans every existing row (the
#: digest embeds it) and the schema check below recreates the tables.
#: Format 2 added the ``last_used`` column that LRU eviction
#: (:meth:`PersistentStore.vacuum`) orders by.
STORE_FORMAT = 2

#: Canonical-key format tag of the engine generation writing the
#: entries.  Bump together with any change to component canonicalization
#: (:func:`repro.propositional.counter._canonical_structure`), the
#: cardinality-polynomial layout, or the FO2 table layout: old rows
#: become unreachable (self-invalidation) instead of wrong.
ENGINE_TAG = "engine-v3"

#: Write-behind buffer flush threshold (rows).
_FLUSH_THRESHOLD = 256

#: Seconds SQLite waits on a locked database before failing.
_BUSY_TIMEOUT_S = 30.0

#: Bounded exponential backoff for transient (busy/locked) SQLite
#: errors: up to ``_MAX_RETRIES`` retries starting at ``_RETRY_BASE_S``
#: seconds, doubling, capped at ``_RETRY_CAP_S``.  Module-level so tests
#: can shrink them.
_RETRY_BASE_S = 0.01
_RETRY_CAP_S = 0.1
_MAX_RETRIES = 5

#: A store disabled by failure (never one closed on purpose) probes for
#: recovery: the first probe runs ``_PROBE_INTERVAL_S`` seconds after
#: the failure, and the interval doubles up to ``_PROBE_MAX_S`` while
#: probes keep failing.
_PROBE_INTERVAL_S = 1.0
_PROBE_MAX_S = 60.0


def _classify(exc):
    """Sort a ``sqlite3.Error`` into a failure class.

    ``"transient"`` — lock contention (retry with backoff);
    ``"disk_full"`` — no space (disable gracefully, recomputation is the
    fallback); ``"corrupt"`` — a damaged database file (delete and
    recreate once, like corruption at open); ``"fatal"`` — everything
    else (disable).
    """
    message = str(exc).lower()
    if isinstance(exc, sqlite3.OperationalError):
        if "locked" in message or "busy" in message:
            return "transient"
        if "disk is full" in message or "disk full" in message:
            return "disk_full"
    if isinstance(exc, sqlite3.DatabaseError):
        if ("malformed" in message or "not a database" in message
                or "corrupt" in message):
            return "corrupt"
    return "fatal"

_SCHEMA = """
CREATE TABLE IF NOT EXISTS kv (
    ns        TEXT NOT NULL,
    key       BLOB NOT NULL,
    value     BLOB NOT NULL,
    last_used INTEGER NOT NULL DEFAULT 0,
    PRIMARY KEY (ns, key)
);
CREATE TABLE IF NOT EXISTS meta (
    k TEXT PRIMARY KEY,
    v TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS counters (
    name  TEXT PRIMARY KEY,
    value INTEGER NOT NULL
);
"""

#: Environment knobs for automatic store maintenance: when set, every
#: clean close (including the atexit flush) vacuums the store down to
#: the configured bound, evicting least-recently-used rows first.
MAX_ENTRIES_ENV = "REPRO_CACHE_MAX_ENTRIES"
MAX_BYTES_ENV = "REPRO_CACHE_MAX_BYTES"

#: When set to a blob-tier URL (``host:port`` or ``http://host:port``),
#: :func:`open_store` layers the networked store of
#: :mod:`repro.cache.netstore` over the local SQLite store, so a fleet
#: of processes warm-starts from a shared cache tier.
STORE_URL_ENV = "REPRO_STORE_URL"


def default_cache_dir():
    """``$REPRO_CACHE_DIR`` when set and non-empty, else ``~/.cache/repro``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return env
    return os.path.join(os.path.expanduser("~"), ".cache", "repro")


# -- exact-value codec -------------------------------------------------------
#
# Values are nested structures of ints, bools, strings, Fractions, tuples,
# lists, and dicts (component counts, cardinality-polynomial coefficient
# tables, FO2 cell/2-table enumerations).  They are stored as tagged JSON:
# scalars pass through natively (Python's json round-trips arbitrary-
# precision ints exactly), containers and Fractions become tagged arrays,
# so decoding is unambiguous and never executes anything.


def _enc(value):
    if value is None or isinstance(value, (bool, str)):
        return value
    if isinstance(value, int):
        return value
    if isinstance(value, Fraction):
        return ["f", value.numerator, value.denominator]
    if isinstance(value, tuple):
        return ["t"] + [_enc(v) for v in value]
    if isinstance(value, list):
        return ["l"] + [_enc(v) for v in value]
    if isinstance(value, dict):
        return ["d"] + [[_enc(k), _enc(v)] for k, v in value.items()]
    raise TypeError("cannot persist value of type {}".format(type(value).__name__))


def _dec(value):
    if isinstance(value, list):
        tag = value[0]
        if tag == "f":
            return Fraction(value[1], value[2])
        if tag == "t":
            return tuple(_dec(v) for v in value[1:])
        if tag == "l":
            return [_dec(v) for v in value[1:]]
        if tag == "d":
            return {_dec(k): _dec(v) for k, v in value[1:]}
        raise ValueError("unknown payload tag {!r}".format(tag))
    return value


def encode_value(value):
    """Serialize an exact value (ints/Fractions/containers) to bytes."""
    return json.dumps(_enc(value), separators=(",", ":")).encode("utf-8")


def decode_value(payload):
    """Inverse of :func:`encode_value`."""
    return _dec(json.loads(payload.decode("utf-8")))


def key_digest(namespace, key):
    """Content address of one entry.

    The digest covers the store format, the engine tag, the namespace,
    and the canonical ``repr`` of the key.  Cache keys are built from
    deterministic-repr values only (ints, Fractions, tuples, interned
    formula nodes), so the digest is stable across processes.
    """
    h = hashlib.sha256()
    h.update(b"repro-cache\x00")
    h.update(str(STORE_FORMAT).encode("ascii"))
    h.update(b"\x00")
    h.update(ENGINE_TAG.encode("ascii"))
    h.update(b"\x00")
    h.update(namespace.encode("utf-8"))
    h.update(b"\x00")
    h.update(repr(key).encode("utf-8"))
    return h.digest()


def _synchronized(method):
    """Run ``method`` under the store's reentrant lock (see ``_lock``)."""
    def wrapper(self, *args, **kwargs):
        with self._lock:
            return method(self, *args, **kwargs)
    wrapper.__name__ = method.__name__
    wrapper.__qualname__ = method.__qualname__
    wrapper.__doc__ = method.__doc__
    return wrapper


class PersistentStore:
    """One on-disk cache directory: namespaced key/value rows + counters.

    Never raises on the counting path: any SQLite-level failure records
    an error, disables the store, and surfaces as cache misses.
    """

    def __init__(self, directory):
        self.directory = os.path.abspath(directory)
        self.path = os.path.join(self.directory, STORE_FILENAME)
        self.pid = os.getpid()
        #: One store instance is shared by every thread of a process (the
        #: serving daemon's executor pool in particular); the write-behind
        #: buffer, the touched-row set, and the failure/probe state are
        #: all compound mutations, so a reentrant lock serializes them.
        #: SQLite work dominates any section the lock covers.
        self._lock = threading.RLock()
        self.disabled = False
        self.hits = 0
        self.misses = 0
        self.errors = 0
        self.retries = 0
        self.reenables = 0
        self.disk_full = 0
        self.recreated = False
        self._closed = False
        self._runtime_recreated = False
        self._probe_at = None
        self._probe_interval = _PROBE_INTERVAL_S
        self._conn = None
        self._pending = {}
        self._touched = set()
        self._unflushed = {"hits": 0, "misses": 0, "writes": 0}
        self._open(allow_recreate=True)

    # -- lifecycle ---------------------------------------------------------

    def _open(self, allow_recreate):
        try:
            os.makedirs(self.directory, exist_ok=True)
            conn = sqlite3.connect(self.path, timeout=_BUSY_TIMEOUT_S,
                                   check_same_thread=False)
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute("PRAGMA synchronous=NORMAL")
            conn.executescript(_SCHEMA)
            row = conn.execute(
                "SELECT v FROM meta WHERE k='format'").fetchone()
            if row is None:
                with conn:
                    conn.execute(
                        "INSERT OR REPLACE INTO meta(k, v) VALUES('format', ?)",
                        (str(STORE_FORMAT),))
            elif row[0] != str(STORE_FORMAT):
                # Older on-disk format: recreate rather than migrate (the
                # digests would not match its rows anyway, and older
                # schemas may lack columns like ``last_used``).
                with conn:
                    conn.execute("DROP TABLE IF EXISTS kv")
                    conn.execute("DELETE FROM counters")
                    conn.execute(
                        "INSERT OR REPLACE INTO meta(k, v) VALUES('format', ?)",
                        (str(STORE_FORMAT),))
                conn.executescript(_SCHEMA)
            self._conn = conn
        except (sqlite3.Error, OSError):
            self.errors += 1
            if self._conn is not None:
                try:
                    self._conn.close()
                except sqlite3.Error:
                    pass
                self._conn = None
            if allow_recreate:
                # A corrupted or truncated store file is cheap to rebuild:
                # delete it (and SQLite's side files) and try once more.
                self.recreated = True
                for suffix in ("", "-wal", "-shm", "-journal"):
                    try:
                        os.unlink(self.path + suffix)
                    except OSError:
                        pass
                self._open(allow_recreate=False)
            else:
                self.disabled = True

    @_synchronized
    def close(self):
        """Flush the write-behind buffer and close the connection.

        When ``$REPRO_CACHE_MAX_ENTRIES`` / ``$REPRO_CACHE_MAX_BYTES``
        are set, the store is vacuumed down to those bounds first, so
        long-lived cache directories stay size-bounded without manual
        ``repro cache vacuum`` runs.
        """
        self.flush()
        if not self.disabled and self._conn is not None:
            bounds = {}
            for env, name in ((MAX_ENTRIES_ENV, "max_entries"),
                              (MAX_BYTES_ENV, "max_bytes")):
                raw = os.environ.get(env)
                if raw:
                    try:
                        bounds[name] = int(raw)
                    except ValueError:
                        pass
            if bounds:
                self.vacuum(**bounds)
        if self._conn is not None:
            try:
                self._conn.close()
            except sqlite3.Error:
                pass
            self._conn = None
        self.disabled = True
        #: A deliberate close is final: the re-enable probe must never
        #: resurrect a store the caller shut down.
        self._closed = True

    # -- failure handling --------------------------------------------------

    def _inject_fault(self):
        """Raise an injected store fault when a FaultPlan says so."""
        if maybe_fire("store_busy"):
            raise sqlite3.OperationalError("database is locked")
        if maybe_fire("store_disk_full"):
            raise sqlite3.OperationalError("database or disk is full")
        if maybe_fire("store_corrupt"):
            raise sqlite3.DatabaseError("database disk image is malformed")

    def _run(self, operation):
        """Run one SQLite operation, retrying transient failures.

        Busy/locked errors get up to ``_MAX_RETRIES`` retries with
        bounded exponential backoff (``retries`` counts them); anything
        else — and a still-locked database after the last retry —
        propagates for :meth:`_fail` to classify.
        """
        delay = _RETRY_BASE_S
        attempt = 0
        while True:
            try:
                self._inject_fault()
                return operation()
            except sqlite3.Error as exc:
                if _classify(exc) != "transient" or attempt >= _MAX_RETRIES:
                    raise
                attempt += 1
                self.retries += 1
                time.sleep(min(delay, _RETRY_CAP_S))
                delay = min(delay * 2, _RETRY_CAP_S)

    def _fail(self, exc=None):
        """A runtime SQLite error that survived the retry loop.

        Corruption gets one in-process delete-and-recreate, exactly like
        corruption detected at open; everything else disables the store
        (graceful fallback to recomputation) and, unless the store was
        deliberately closed, arms the re-enable probe so a transient
        outage does not cost the rest of the process lifetime.
        """
        self.errors += 1
        kind = _classify(exc) if exc is not None else "fatal"
        if kind == "disk_full":
            self.disk_full += 1
        self._pending.clear()
        self._touched.clear()
        if self._conn is not None:
            try:
                self._conn.close()
            except sqlite3.Error:
                pass
            self._conn = None
        if kind == "corrupt" and not self._runtime_recreated:
            self._runtime_recreated = True
            self.recreated = True
            for suffix in ("", "-wal", "-shm", "-journal"):
                try:
                    os.unlink(self.path + suffix)
                except OSError:
                    pass
            self._open(allow_recreate=False)
            if self._conn is not None:
                self.disabled = False
                return
        self.disabled = True
        self._probe_at = time.monotonic() + self._probe_interval
        slog(_LOG, logging.WARNING, "store_disabled", path=self.path,
             kind=kind, errors=self.errors)

    def _maybe_reenable(self):
        """Probe a failure-disabled store for recovery (doubling interval)."""
        if (not self.disabled or self._closed or self._probe_at is None
                or time.monotonic() < self._probe_at):
            return
        self._probe_interval = min(self._probe_interval * 2, _PROBE_MAX_S)
        self._probe_at = time.monotonic() + self._probe_interval
        self.disabled = False
        self._open(allow_recreate=False)
        if self._conn is None:
            self.disabled = True
        else:
            self.reenables += 1
            self._probe_at = None
            self._probe_interval = _PROBE_INTERVAL_S
            slog(_LOG, logging.WARNING, "store_reenabled", path=self.path,
                 reenables=self.reenables)

    # -- key/value ---------------------------------------------------------

    @_synchronized
    def get(self, namespace, key):
        """The decoded value stored for ``key``, or ``None``.

        A payload that fails to decode (foreign writer, partial row,
        torn write) is treated as a miss — never an exception.
        """
        self._maybe_reenable()
        if self.disabled:
            self.misses += 1
            self._unflushed["misses"] += 1
            return None
        digest = key_digest(namespace, key)
        payload = self._pending.get((namespace, digest))
        if payload is None:
            try:
                with span("store.get", cat="cache", ns=namespace):
                    row = self._run(lambda: self._conn.execute(
                        "SELECT value FROM kv WHERE ns=? AND key=?",
                        (namespace, digest)).fetchone())
            except sqlite3.Error as exc:
                self._fail(exc)
                row = None
            payload = row[0] if row is not None else None
            if payload is not None and maybe_fire("store_torn_write"):
                # A torn write must decode to garbage, never to a wrong
                # value: the trailing 0xff byte is invalid UTF-8, so the
                # decode below fails and the read becomes a miss.
                payload = payload[:len(payload) // 2] + b"\xff"
        if payload is None:
            self.misses += 1
            self._unflushed["misses"] += 1
            return None
        try:
            value = decode_value(payload)
        except (ValueError, KeyError, IndexError, TypeError,
                UnicodeDecodeError):
            self.misses += 1
            self._unflushed["misses"] += 1
            return None
        self.hits += 1
        self._unflushed["hits"] += 1
        # Remember the row for the write-behind last-used refresh: LRU
        # eviction (:meth:`vacuum`) orders by this timestamp.
        self._touched.add((namespace, digest))
        return value

    @_synchronized
    def put(self, namespace, key, value):
        """Buffer one row for the next flush (write-behind)."""
        self._maybe_reenable()
        if self.disabled:
            return
        try:
            payload = encode_value(value)
        except TypeError:
            self.errors += 1
            return
        self._pending[(namespace, key_digest(namespace, key))] = payload
        self._unflushed["writes"] += 1
        if len(self._pending) >= _FLUSH_THRESHOLD:
            self.flush()

    @_synchronized
    def flush(self):
        """Write buffered rows, hit timestamps, and counter deltas in
        one transaction."""
        if self.disabled or self._conn is None:
            return
        deltas = {k: v for k, v in self._unflushed.items() if v}
        if not self._pending and not deltas and not self._touched:
            return
        now = int(time.time())
        rows = [(ns, digest, payload, now)
                for (ns, digest), payload in self._pending.items()]
        touched = [(now, ns, digest)
                   for ns, digest in self._touched
                   if (ns, digest) not in self._pending]
        def write():
            # ``with conn`` is one transaction: a failure rolls it back
            # whole, so a retry after a transient error is idempotent.
            with self._conn:
                if rows:
                    self._conn.executemany(
                        "INSERT OR REPLACE INTO kv(ns, key, value, last_used) "
                        "VALUES (?, ?, ?, ?)", rows)
                if touched:
                    self._conn.executemany(
                        "UPDATE kv SET last_used=? WHERE ns=? AND key=?",
                        touched)
                for name, delta in deltas.items():
                    self._conn.execute(
                        "INSERT INTO counters(name, value) VALUES (?, ?) "
                        "ON CONFLICT(name) DO UPDATE SET "
                        "value = value + excluded.value", (name, delta))

        try:
            with span("store.flush", cat="cache", rows=len(rows),
                      touched=len(touched)):
                self._run(write)
        except sqlite3.Error as exc:
            self._fail(exc)
            return
        self._pending.clear()
        self._touched.clear()
        for name in self._unflushed:
            self._unflushed[name] = 0

    # -- raw digest-level access (the networked blob tier) ----------------

    @_synchronized
    def get_raw(self, namespace, digest):
        """The stored payload bytes for a precomputed digest, or ``None``.

        The blob tier (:mod:`repro.cache.netstore`) serves entries by
        their content address without decoding them, so reads skip the
        codec and the hit/miss session counters (those describe the
        counting path).
        """
        self._maybe_reenable()
        if self.disabled:
            return None
        payload = self._pending.get((namespace, digest))
        if payload is not None:
            return payload
        try:
            with span("store.get_raw", cat="cache", ns=namespace):
                row = self._run(lambda: self._conn.execute(
                    "SELECT value FROM kv WHERE ns=? AND key=?",
                    (namespace, digest)).fetchone())
        except sqlite3.Error as exc:
            self._fail(exc)
            return None
        return row[0] if row is not None else None

    @_synchronized
    def put_raw(self, namespace, digest, payload):
        """Buffer raw payload bytes under a precomputed digest.

        The write-behind contract matches :meth:`put`; the payload is
        stored as given (a torn or foreign payload decodes to a miss on
        the read side, never to a wrong value).
        """
        self._maybe_reenable()
        if self.disabled:
            return
        self._pending[(namespace, digest)] = bytes(payload)
        self._unflushed["writes"] += 1
        if len(self._pending) >= _FLUSH_THRESHOLD:
            self.flush()

    # -- inspection / maintenance -----------------------------------------

    @_synchronized
    def entry_counts(self):
        """``{namespace: row count}`` for the rows on disk."""
        if self.disabled or self._conn is None:
            return {}
        try:
            rows = self._conn.execute(
                "SELECT ns, COUNT(*) FROM kv GROUP BY ns ORDER BY ns"
            ).fetchall()
        except sqlite3.Error as exc:
            self._fail(exc)
            return {}
        return dict(rows)

    @_synchronized
    def cumulative_counters(self):
        """Cross-process ``hits``/``misses``/``writes`` totals (flushed)."""
        totals = {"hits": 0, "misses": 0, "writes": 0}
        if self.disabled or self._conn is None:
            return totals
        try:
            rows = self._conn.execute(
                "SELECT name, value FROM counters").fetchall()
        except sqlite3.Error as exc:
            self._fail(exc)
            return totals
        for name, value in rows:
            totals[name] = value
        return totals

    def stats(self):
        """One dict for ``repro cache stats``: path, sizes, counters."""
        counts = self.entry_counts()
        try:
            size = os.path.getsize(self.path)
        except OSError:
            size = 0
        return {
            "path": self.path,
            "size_bytes": size,
            "disabled": self.disabled,
            "recreated": self.recreated,
            "entries": sum(counts.values()),
            "namespaces": counts,
            "session": {"hits": self.hits, "misses": self.misses,
                        "pending_writes": len(self._pending),
                        "errors": self.errors, "retries": self.retries,
                        "reenables": self.reenables,
                        "disk_full": self.disk_full},
            "cumulative": self.cumulative_counters(),
        }

    @_synchronized
    def clear(self):
        """Delete every row and counter; returns the rows removed."""
        self._pending.clear()
        self._touched.clear()
        for name in self._unflushed:
            self._unflushed[name] = 0
        if self.disabled or self._conn is None:
            return 0
        try:
            with self._conn:
                removed = self._conn.execute(
                    "SELECT COUNT(*) FROM kv").fetchone()[0]
                self._conn.execute("DELETE FROM kv")
                self._conn.execute("DELETE FROM counters")
        except sqlite3.Error as exc:
            self._fail(exc)
            return 0
        return removed

    @_synchronized
    def vacuum(self, max_entries=None, max_bytes=None):
        """Size-bounded LRU eviction plus an SQLite ``VACUUM``.

        Evicts least-recently-*hit* rows (``last_used`` timestamp, oldest
        first, insertion order as the tie-break) until the store holds at
        most ``max_entries`` rows and occupies at most ``max_bytes`` on
        disk, then compacts the database file so the space is actually
        returned.  Either bound may be ``None``; with both ``None`` only
        the compaction runs.  A bounded call that evicts nothing skips
        the compaction entirely — the auto-vacuum hook in :meth:`close`
        must cost nothing when the store is already within bounds.
        Returns the number of evicted rows; never raises on the counting
        path (failures disable the store like any other SQLite error).
        """
        self.flush()
        if self.disabled or self._conn is None:
            return 0
        removed = 0
        try:
            conn = self._conn
            total = conn.execute("SELECT COUNT(*) FROM kv").fetchone()[0]
            if max_entries is not None and total > max_entries:
                excess = total - max_entries
                with conn:
                    conn.execute(
                        "DELETE FROM kv WHERE rowid IN (SELECT rowid FROM kv "
                        "ORDER BY last_used ASC, rowid ASC LIMIT ?)",
                        (excess,))
                removed += excess
                total -= excess
            compacted = False
            if max_bytes is not None:
                page_size = conn.execute("PRAGMA page_size").fetchone()[0]
                while total > 0:
                    # Page counts only shrink after a VACUUM, so each
                    # round evicts the oldest eighth, compacts, and
                    # re-measures; rounds stop as soon as the file fits.
                    pages = conn.execute("PRAGMA page_count").fetchone()[0]
                    if pages * page_size <= max_bytes:
                        break
                    batch = max(1, total // 8)
                    with conn:
                        conn.execute(
                            "DELETE FROM kv WHERE rowid IN (SELECT rowid "
                            "FROM kv ORDER BY last_used ASC, rowid ASC "
                            "LIMIT ?)", (batch,))
                    removed += batch
                    total -= batch
                    conn.execute("VACUUM")
                    compacted = True
            explicit_compaction = max_entries is None and max_bytes is None
            if (removed or explicit_compaction) and not compacted:
                conn.execute("VACUUM")
        except sqlite3.Error as exc:
            self._fail(exc)
            return removed
        return removed


# -- per-process store registry ----------------------------------------------

_STORES = {}


def open_store(cache_dir=None, remote_url=None):
    """The process-wide store for a cache directory.

    One store instance per resolved directory, so the write-behind buffer
    and session counters are shared by every adapter over it.  Never
    raises: a directory that cannot be created or opened yields a
    disabled store whose lookups miss.

    When ``remote_url`` is given — or ``$REPRO_STORE_URL`` is set — the
    local store is wrapped in a
    :class:`~repro.cache.netstore.TieredStore` that hedges misses
    against the shared HTTP blob tier and write-throughs both ways, so
    a fleet of processes warm-starts from one cache.  A dead or flaky
    tier degrades to local-only (see the circuit breaker in
    :mod:`repro.cache.netstore`); it can never fail a lookup.
    """
    path = os.path.abspath(cache_dir or default_cache_dir())
    url = (remote_url if remote_url is not None
           else os.environ.get(STORE_URL_ENV)) or None
    registry_key = path if url is None else (path, url)
    store = _STORES.get(registry_key)
    if store is not None and store.pid != os.getpid():
        # Forked child (e.g. a parallel counting worker): SQLite
        # connections must never be used across fork().  Abandon the
        # inherited instance without closing it — its connection and
        # write-behind buffer still belong to the parent — and open a
        # fresh one for this process.
        store = None
    if store is None:
        if url is None:
            store = PersistentStore(path)
        else:
            from .netstore import TieredStore

            # The tiered store wraps the plain per-directory instance
            # (remote_url="" suppresses the env var on the inner call),
            # so plain and tiered opens of one directory share a single
            # SQLite connection and write-behind buffer.
            store = TieredStore(open_store(path, remote_url=""), url)
        _STORES[registry_key] = store
    return store


def close_all_stores():
    """Flush and close every open store (registered at interpreter exit).

    Stores created by another process (inherited over ``fork()``) are
    skipped: their connections and buffers belong to the parent.
    """
    pid = os.getpid()
    for store in list(_STORES.values()):
        if store.pid == pid:
            store.close()
    _STORES.clear()


atexit.register(close_all_stores)
