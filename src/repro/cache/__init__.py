"""``repro.cache``: the disk-backed persistent cache subsystem.

Symmetric WFOMC workloads recompute the same subproblems massively —
across domain sizes, weight functions, MLN weight sweeps, and separate
processes.  The in-memory caches (component values, cardinality
polynomials, FO2 cell structures) die with the process; this package
gives them a content-addressed, versioned, concurrency-safe on-disk
home so a second process warm-starts instead of recomputing.

Opt in per call with ``persist=True`` (and optionally ``cache_dir=``)
on :func:`repro.wfomc.solver.wfomc` and friends, or on the CLI with
``--persist`` / ``--cache-dir``; inspect with ``repro cache
stats|clear|path``.  The store lives under ``$REPRO_CACHE_DIR`` or
``~/.cache/repro`` and is shared by parallel counting workers.  All
persisted values are exact (ints/Fractions), so persisted and
recomputed results are bit-identical; a missing, corrupted, or
unwritable store silently degrades to plain recomputation.
"""

from .adapters import (
    CIRCUITS_NS,
    COMPONENTS_NS,
    FO2_TABLES_NS,
    POLYNOMIALS_NS,
    StoreBackedComponentCache,
    persistent_component_cache,
)
from .netstore import BlobServer, NetworkStoreClient, TieredStore
from .store import (
    ENGINE_TAG,
    STORE_FILENAME,
    STORE_URL_ENV,
    PersistentStore,
    close_all_stores,
    decode_value,
    default_cache_dir,
    encode_value,
    key_digest,
    open_store,
)

__all__ = [
    "ENGINE_TAG",
    "STORE_FILENAME",
    "STORE_URL_ENV",
    "BlobServer",
    "NetworkStoreClient",
    "TieredStore",
    "COMPONENTS_NS",
    "POLYNOMIALS_NS",
    "FO2_TABLES_NS",
    "CIRCUITS_NS",
    "PersistentStore",
    "StoreBackedComponentCache",
    "persistent_component_cache",
    "default_cache_dir",
    "open_store",
    "close_all_stores",
    "encode_value",
    "decode_value",
    "key_digest",
]
