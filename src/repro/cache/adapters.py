"""Read-through/write-behind adapters between in-memory caches and a store.

Three cache layers persist (each in its own namespace):

* ``components`` — counting-engine component values keyed on canonical
  component keys (renamed clause rows + the weight row, exactly the
  in-memory key, so entries are safe to share across weight functions);
* ``polynomials`` — cardinality-polynomial coefficient tables keyed on
  ``(formula, n, ordered vocabulary signature, method)``;
* ``fo2_tables`` — FO2 cell/2-table enumerations keyed on the
  skolemized matrix and the zero-ary assignment;
* ``circuits`` — serialized arithmetic circuits of the knowledge-
  compilation subsystem (:mod:`repro.compile`), keyed on the
  weight-independent canonical identity of the compiled instance.

:class:`StoreBackedComponentCache` speaks the engine's cache protocol
(``get``/``[]=``/``len``/``clear``), layering an in-memory dict in front
of the store so repeated lookups within a process stay dict-speed; the
module-level helpers serve the two table-shaped layers.
"""

from __future__ import annotations

from .store import open_store

__all__ = [
    "COMPONENTS_NS",
    "POLYNOMIALS_NS",
    "FO2_TABLES_NS",
    "CIRCUITS_NS",
    "StoreBackedComponentCache",
    "persistent_component_cache",
]

COMPONENTS_NS = "components"
POLYNOMIALS_NS = "polynomials"
FO2_TABLES_NS = "fo2_tables"
CIRCUITS_NS = "circuits"


class StoreBackedComponentCache:
    """The engine's component cache backed by a persistent store.

    In-memory entries (``mem``, typically the engine's shared cache, so
    persisted and non-persisted runs warm each other within a process)
    are consulted first; misses read through to the store and populate
    memory, writes go to memory immediately and to the store write-behind.
    ``clear`` drops the *memory* layer only — the engine clears its cache
    as an overflow valve, which must not erase the disk investment; use
    :meth:`repro.cache.store.PersistentStore.clear` (or ``repro cache
    clear``) to wipe the disk.
    """

    __slots__ = ("store", "mem")

    def __init__(self, store, mem=None):
        self.store = store
        self.mem = {} if mem is None else mem

    def get(self, key, default=None):
        value = self.mem.get(key)
        if value is not None:
            return value
        value = self.store.get(COMPONENTS_NS, key)
        if value is None:
            return default
        self.mem[key] = value
        return value

    def __setitem__(self, key, value):
        self.mem[key] = value
        self.store.put(COMPONENTS_NS, key, value)

    def __contains__(self, key):
        return self.get(key) is not None

    def __len__(self):
        return len(self.mem)

    def clear(self):
        self.mem.clear()


def persistent_component_cache(cache_dir=None, mem=None):
    """A :class:`StoreBackedComponentCache` over the directory's store.

    Returns ``None`` when the store cannot be opened at all (disabled on
    arrival) — callers then simply keep their in-memory cache, the
    graceful-fallback contract.
    """
    store = open_store(cache_dir)
    if store.disabled:
        return None
    return StoreBackedComponentCache(store, mem=mem)
