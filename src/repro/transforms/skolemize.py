"""Lemma 3.3: eliminating existential quantifiers ("Skolemization").

Given a weighted vocabulary and a sentence ``Phi``, produce an extended
weighted vocabulary and a sentence ``Phi'`` in prenex form with a purely
universal prefix such that ``WFOMC(Phi) == WFOMC(Phi')`` for every domain
size (over nonempty domains).

One step rewrites the *first* existential of the prenex form,

``Phi = forall xbar exists x_i phi(xbar, x_i)``
``Phi' = forall xbar forall x_i (~phi(xbar, x_i) | A(xbar))``

with ``A`` fresh of arity ``|xbar|`` and weights ``(1, -1)``: in worlds
where the witness exists ``A`` is forced true (weight 1); in worlds where
it does not, the two values of ``A(a)`` cancel.  Note ``~phi`` flips the
quantifiers nested inside ``phi``, so a step can create new existentials —
but only at strictly later prefix positions, so the loop terminates after
at most ``|prefix|`` rounds.

As the paper stresses, the transformation preserves the *weighted* count
only: the plain model counts of ``Phi`` and ``Phi'`` differ (otherwise
satisfiability of FO would reduce to the decidable universal fragment).
"""

from __future__ import annotations

from ..logic.syntax import Atom, disj, forall, neg
from ..logic.transform import prenex, split_prenex
from ..weights import SKOLEM

__all__ = ["skolemize"]


def skolemize(formula, weighted_vocabulary):
    """Rewrite ``formula`` to a universally quantified equivalent.

    Returns ``(universal_formula, extended_weighted_vocabulary)``.
    ``universal_formula`` is ``forall v1 ... vk matrix`` with the matrix
    quantifier-free.
    """
    wv = weighted_vocabulary
    current = formula
    while True:
        prefix, matrix = prenex(current)
        first_exists = next(
            (i for i, (q, _v) in enumerate(prefix) if q == "exists"), None
        )
        if first_exists is None:
            return split_prenex(prefix, matrix), wv

        universal_vars = [v for _q, v in prefix[:first_exists]]
        witness_var = prefix[first_exists][1]
        inner = split_prenex(prefix[first_exists + 1 :], matrix)

        name = wv.fresh_name("Sk")
        wv = wv.extend({name: SKOLEM}, {name: len(universal_vars)})
        witness = Atom(name, tuple(universal_vars))

        current = forall(
            universal_vars + [witness_var], disj(neg(inner), witness)
        )
