"""WFOMC-preserving transformations (Lemmas 3.3, 3.4, 3.5)."""

from .skolemize import skolemize
from .positivize import positivize
from .equality import eliminate_equality, wfomc_without_equality

__all__ = ["skolemize", "positivize", "eliminate_equality", "wfomc_without_equality"]
