"""Lemma 3.5: removing the equality predicate.

Replace every equality atom ``x = y`` by a fresh binary relation
``E(x, y)`` and conjoin ``forall x E(x, x)``.  With weights
``w_E = z, wbar_E = 1``, the count ``f(z) = WFOMC(Phi', n)`` is a
polynomial in ``z`` whose monomial degrees equal ``|E|`` and hence lie in
``[n, n**2]``; the coefficient of ``z**n`` collects exactly the worlds
where ``E`` is the identity — i.e. ``WFOMC(Phi, n)``.

Implementation note (documented deviation): the paper sketches reading
the coefficient off with ``n + 1`` oracle calls via finite differences,
which suffices only once the monomials of degree above ``n`` are
annihilated; we instead interpolate the full polynomial exactly from
``n**2 + 1`` oracle evaluations — still polynomially many calls, and
exact over the rationals.
"""

from __future__ import annotations

from fractions import Fraction

from ..logic.syntax import (
    And,
    Atom,
    Bottom,
    Eq,
    Exists,
    Forall,
    Iff,
    Implies,
    Not,
    Or,
    Top,
    Var,
    conj,
    forall,
)
from ..utils import polynomial_interpolate
from ..weights import WeightPair
from ..wfomc.bruteforce import wfomc_lineage

__all__ = ["eliminate_equality", "wfomc_without_equality"]


def _replace_equality(f, e_name):
    if isinstance(f, (Atom, Top, Bottom)):
        return f
    if isinstance(f, Eq):
        return Atom(e_name, (f.left, f.right))
    if isinstance(f, Not):
        return Not(_replace_equality(f.body, e_name))
    if isinstance(f, And):
        return And(tuple(_replace_equality(p, e_name) for p in f.parts))
    if isinstance(f, Or):
        return Or(tuple(_replace_equality(p, e_name) for p in f.parts))
    if isinstance(f, Implies):
        return Implies(
            _replace_equality(f.antecedent, e_name), _replace_equality(f.consequent, e_name)
        )
    if isinstance(f, Iff):
        return Iff(_replace_equality(f.left, e_name), _replace_equality(f.right, e_name))
    if isinstance(f, Forall):
        return Forall(f.var, _replace_equality(f.body, e_name))
    if isinstance(f, Exists):
        return Exists(f.var, _replace_equality(f.body, e_name))
    raise TypeError("not a formula: {!r}".format(f))


def eliminate_equality(formula, weighted_vocabulary):
    """Build the equality-free sentence of Lemma 3.5.

    Returns ``(formula_prime, e_name, base_weighted_vocabulary)`` where
    ``formula_prime`` is ``Phi[= -> E] & forall x E(x, x)`` and the caller
    chooses the weight ``z`` for ``E`` per evaluation (see
    :func:`wfomc_without_equality`).
    """
    e_name = weighted_vocabulary.fresh_name("EqE")
    replaced = _replace_equality(formula, e_name)
    x = Var("eq_x")
    formula_prime = conj(replaced, forall([x], Atom(e_name, (x, x))))
    return formula_prime, e_name, weighted_vocabulary


def wfomc_without_equality(formula, n, weighted_vocabulary, oracle=None):
    """``WFOMC(Phi, n)`` computed through the Lemma 3.5 reduction.

    ``oracle(formula, n, weighted_vocabulary)`` evaluates WFOMC for the
    equality-free sentence (default: the lineage counter).  The reduction
    calls it at ``n**2 + 1`` integer weights for ``E`` and interpolates.
    """
    if oracle is None:
        oracle = wfomc_lineage
    formula_prime, e_name, base_wv = eliminate_equality(formula, weighted_vocabulary)

    if n == 0:
        # Over the empty domain the only world is empty and E is trivially
        # the identity; evaluate directly.
        wv = base_wv.extend({e_name: WeightPair(1, 1)}, {e_name: 2})
        return oracle(formula_prime, 0, wv)

    degree = n * n
    points = []
    for z in range(degree + 1):
        wv = base_wv.extend({e_name: WeightPair(z, 1)}, {e_name: 2})
        points.append((Fraction(z), oracle(formula_prime, n, wv)))
    coefficients = polynomial_interpolate(points)
    return coefficients[n] if n < len(coefficients) else Fraction(0)
