"""Lemma 3.4: eliminating negation from universal sentences.

Input: a sentence in prenex form with a purely universal prefix (e.g. the
output of Lemma 3.3 / :func:`repro.transforms.skolemize`).  Output: a
*positive* universal sentence over an extended weighted vocabulary with
the same WFOMC.

For every relation symbol ``R`` that occurs negated in the NNF matrix we
introduce ``A_R`` ("R is false") and ``B_R`` with weights
``A: (1, 1)``, ``B: (1, -1)``, replace ``~R(t)`` by ``A_R(t)``, and
conjoin the guard

``Delta_R = forall xbar [(R | A_R) & (A_R | B_R) & (R | B_R)](xbar)``

Per tuple ``a`` either exactly one of ``R(a), A_R(a)`` holds — then
``B_R(a)`` is forced true and the two new symbols contribute weight 1 —
or both hold, in which case ``B_R(a)`` is free and the two worlds cancel.
Negated equality atoms are handled the same way with a fresh binary
symbol guarded against ``x = y`` (the equality predicate itself is
removed later by Lemma 3.5).
"""

from __future__ import annotations

from ..logic.syntax import (
    And,
    Atom,
    Bottom,
    Eq,
    Not,
    Or,
    Top,
    Var,
    conj,
    disj,
    forall,
)
from ..logic.transform import nnf, prenex, split_prenex
from ..weights import WeightPair

__all__ = ["positivize"]


def positivize(formula, weighted_vocabulary):
    """Remove all negations from a universal sentence.

    Returns ``(positive_formula, extended_weighted_vocabulary)`` with
    identical WFOMC.  Raises ``ValueError`` if the prenex prefix contains
    an existential (run :func:`repro.transforms.skolemize` first).
    """
    prefix, matrix = prenex(formula)
    if any(q == "exists" for q, _v in prefix):
        raise ValueError("positivize expects a universally quantified sentence")

    matrix = nnf(matrix)
    wv = weighted_vocabulary
    guards = []
    replacements = {}  # symbol name or "=" -> (A_name, B_name)

    def names_for(key, arity, guard_atom_builder):
        nonlocal wv
        if key in replacements:
            return replacements[key]
        a_name = wv.fresh_name("NegA")
        wv = wv.extend({a_name: WeightPair(1, 1)}, {a_name: arity})
        b_name = wv.fresh_name("NegB")
        wv = wv.extend({b_name: WeightPair(1, -1)}, {b_name: arity})
        replacements[key] = (a_name, b_name)
        fresh_vars = tuple(Var("pv{}".format(i)) for i in range(arity))
        base = guard_atom_builder(fresh_vars)
        a_atom = Atom(a_name, fresh_vars)
        b_atom = Atom(b_name, fresh_vars)
        guards.append(
            forall(
                list(fresh_vars),
                conj(disj(base, a_atom), disj(a_atom, b_atom), disj(base, b_atom)),
            )
        )
        return replacements[key]

    def rewrite(g):
        if isinstance(g, (Atom, Eq, Top, Bottom)):
            return g
        if isinstance(g, Not):
            body = g.body
            if isinstance(body, Atom):
                a_name, _b = names_for(
                    body.pred, len(body.args), lambda vs, p=body.pred: Atom(p, vs)
                )
                return Atom(a_name, body.args)
            if isinstance(body, Eq):
                a_name, _b = names_for("=", 2, lambda vs: Eq(vs[0], vs[1]))
                return Atom(a_name, (body.left, body.right))
            raise ValueError("matrix is not in NNF: {!r}".format(g))
        if isinstance(g, And):
            return conj(*(rewrite(p) for p in g.parts))
        if isinstance(g, Or):
            return disj(*(rewrite(p) for p in g.parts))
        raise TypeError("unexpected node in NNF matrix: {!r}".format(g))

    positive_matrix = rewrite(matrix)
    rewritten = split_prenex(prefix, positive_matrix)
    return conj(rewritten, *guards), wv
