"""Complexity-theoretic constructions: Theta_1, the #SAT gadget, spectra."""

from .turing import CountingTM, Transition
from .encoding import encode_theta1, Theta1Encoding
from .gadget import sat_gadget, gadget_model_count_identity
from .qbf import QBF, qbf_gadget, evaluate_qbf
from .pairing import encode_pair, decode_pair, machine_pair_at, machine_index_of
from .universal import ClockedMachine, UniversalCounter
from .spectrum import has_model, spectrum, in_spectrum

__all__ = [
    "CountingTM",
    "Transition",
    "encode_theta1",
    "Theta1Encoding",
    "sat_gadget",
    "gadget_model_count_identity",
    "QBF",
    "qbf_gadget",
    "evaluate_qbf",
    "encode_pair",
    "decode_pair",
    "machine_pair_at",
    "machine_index_of",
    "ClockedMachine",
    "UniversalCounter",
    "has_model",
    "spectrum",
    "in_spectrum",
]
