"""The universal #P1 machine U1 (Lemma 3.8), executably.

``U1`` receives ``n = e(i, j)`` in unary, decodes ``(i, j)``, and
simulates the ``i``-th machine of the dovetailed enumeration on input
``j`` under the clock ``s * j**s + s`` — all within time linear in ``n``
because property (b) of the pairing function dominates the budget.

This module wires those pieces together over a *registry* of base
counting machines (standing in for the standard enumeration of all
counting TMs, which is not materializable): the enumeration pairs
``(r, s)`` pick base machine ``M'_r`` (cycling through the registry) and
clock parameter ``s``.  The tests verify the two properties the proof
rests on: U1's output equals the clocked machine's count, and the budget
bound ``e(i, j) >= (i j^i + i)**2 >= clock`` holds along the way.
"""

from __future__ import annotations

from dataclasses import dataclass

from .pairing import budget, clocked_run_budget, decode_pair, encode_pair, machine_pair_at
from .turing import CountingTM

__all__ = ["ClockedMachine", "UniversalCounter"]


@dataclass
class ClockedMachine:
    """Machine ``M_i = (M'_r, s)``: simulate ``M'_r`` within the clock.

    Counting semantics match the Appendix B conventions: on input ``j``
    the machine runs for a number of epochs sufficient to cover the
    clock ``s * j**s + s`` (each epoch is ``j`` time points), and counts
    accepting configuration paths.
    """

    base: CountingTM
    s: int

    def epochs_for(self, j):
        clock = clocked_run_budget(self.s, j)
        # epochs * j time points cover `clock` steps.
        return max(1, -(-clock // max(j, 1)))

    def count(self, j):
        return self.base.count_accepting(j, self.epochs_for(j))


class UniversalCounter:
    """``U1`` over a finite registry of base machines.

    ``registry`` is a sequence of :class:`CountingTM`; the enumeration
    index ``r`` selects ``registry[(r - 1) % len(registry)]``.
    """

    def __init__(self, registry):
        self.registry = list(registry)
        if not self.registry:
            raise ValueError("need at least one base machine")

    def machine_at(self, i):
        """The i-th clocked machine of the dovetailed enumeration."""
        r, s = machine_pair_at(i)
        base = self.registry[(r - 1) % len(self.registry)]
        return ClockedMachine(base=base, s=s)

    def count(self, n):
        """U1's output on unary input ``n``: decode and simulate.

        Verifies the budget invariant of Lemma 3.8 as it runs.
        """
        i, j = decode_pair(n)
        machine = self.machine_at(i)
        # Property (b): the encoding dominates the clocked budget, so the
        # simulation fits in time linear in n.  (i >= s by the dovetailing,
        # hence (i j^i + i)^2 >= s j^s + s.)
        assert n >= budget(i, j) >= clocked_run_budget(machine.s, j)
        return machine.count(j)

    def query(self, i, j):
        """Convenience: the hard direction of the reduction — a PTIME
        machine with an oracle for U1 computes machine ``i`` on ``j`` by
        encoding and asking."""
        return self.count(encode_pair(i, j))
