"""Nondeterministic multi-tape counting Turing machines (Lemma 3.8).

The #P1 hardness proof (Theorem 3.1) encodes a *counting TM* — a
nondeterministic machine whose output is its number of accepting
computations — into an FO3 sentence.  This module is the executable
substrate: a clocked, multi-tape, binary-alphabet NTM simulator that
counts accepting computations exactly, matching the conventions of the
Appendix B encoding:

* tapes have ``epochs * n`` cells (``epochs`` regions of ``n`` cells);
* the head *clamps* at the tape ends (moving left at the first cell or
  right at the last cell leaves it in place), mirroring the encoding's
  boundary cases for the ``Left``/``Right`` predicates;
* at every step exactly one tape (the active tape of the current state)
  is read and written — the paper notes this is w.l.o.g.;
* a run consists of exactly ``epochs * n`` time points, i.e.
  ``epochs * n - 1`` transitions; a configuration with no applicable
  transition before the last time point kills the computation;
* acceptance is judged by the state at the final time point.

**Counting convention**: we count *distinct configuration paths* (each
step branches over the set of distinct successor configurations).  This
matches the models of the FO3 encoding exactly; it differs from counting
transition choices only in the degenerate case where two distinct
transitions yield the same configuration (e.g. left/right moves that
both clamp on a one-cell tape).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, Tuple

__all__ = ["Transition", "CountingTM", "Configuration"]

LEFT = -1
RIGHT = 1


@dataclass(frozen=True)
class Transition:
    """One nondeterministic choice: write ``write``, move, change state."""

    new_state: str
    write: int  # 0 or 1
    move: int  # LEFT (-1) or RIGHT (+1)

    def __post_init__(self):
        if self.write not in (0, 1):
            raise ValueError("tape alphabet is binary; write must be 0 or 1")
        if self.move not in (LEFT, RIGHT):
            raise ValueError("move must be -1 (left) or +1 (right)")


@dataclass(frozen=True)
class Configuration:
    """A full machine configuration: state, head positions, tape contents."""

    state: str
    heads: Tuple[int, ...]
    tapes: Tuple[Tuple[int, ...], ...]


class CountingTM:
    """A nondeterministic counting TM over the binary alphabet.

    Parameters
    ----------
    states:
        All state names; ``initial`` must be among them.
    initial:
        The start state (the paper's ``q1``).
    accepting:
        States whose presence at the final time point accepts.
    num_tapes:
        Number of tapes; tape 0 is the input tape.
    active_tape:
        Maps each state to the single tape it reads/writes.
    delta:
        ``delta[(state, symbol)]`` is an iterable of :class:`Transition`;
        missing keys mean the computation dies there.
    """

    def __init__(self, states, initial, accepting, num_tapes, active_tape, delta):
        self.states = tuple(states)
        if initial not in self.states:
            raise ValueError("initial state {!r} not among states".format(initial))
        self.initial = initial
        self.accepting = frozenset(accepting)
        if not self.accepting <= set(self.states):
            raise ValueError("accepting states must be a subset of states")
        self.num_tapes = num_tapes
        self.active_tape = dict(active_tape)
        for q in self.states:
            if q not in self.active_tape:
                raise ValueError("state {!r} has no active tape".format(q))
            if not 0 <= self.active_tape[q] < num_tapes:
                raise ValueError("active tape of {!r} out of range".format(q))
        self.delta: Dict[Tuple[str, int], Tuple[Transition, ...]] = {}
        for key, transitions in delta.items():
            self.delta[key] = tuple(transitions)

    def initial_configuration(self, n, epochs):
        """Input ``1**n`` on tape 0 (filling region 1), heads at cell 0."""
        length = epochs * n
        input_tape = tuple([1] * n + [0] * (length - n))
        blank = tuple([0] * length)
        tapes = (input_tape,) + tuple(blank for _ in range(self.num_tapes - 1))
        return Configuration(self.initial, (0,) * self.num_tapes, tapes)

    def successors(self, config):
        """The *set* of distinct successor configurations."""
        tape_index = self.active_tape[config.state]
        head = config.heads[tape_index]
        symbol = config.tapes[tape_index][head]
        transitions = self.delta.get((config.state, symbol), ())
        length = len(config.tapes[tape_index])
        result = set()
        for t in transitions:
            new_tape = list(config.tapes[tape_index])
            new_tape[head] = t.write
            new_head = head + t.move
            if new_head < 0 or new_head >= length:
                new_head = head  # clamp at the tape ends
            heads = list(config.heads)
            heads[tape_index] = new_head
            tapes = list(config.tapes)
            tapes[tape_index] = tuple(new_tape)
            result.add(Configuration(t.new_state, tuple(heads), tuple(tapes)))
        return frozenset(result)

    def count_accepting(self, n, epochs):
        """Number of accepting configuration paths on input ``1**n``.

        A path has exactly ``epochs * n`` time points.  Matches
        ``FOMC(Theta_1, n) / n!`` for the Appendix B encoding of this
        machine with ``c = epochs``.
        """
        if n == 0:
            raise ValueError("the encoding requires a domain of size >= 1")
        steps = epochs * n - 1

        @lru_cache(maxsize=None)
        def count_from(config, remaining):
            if remaining == 0:
                return 1 if config.state in self.accepting else 0
            return sum(
                count_from(succ, remaining - 1) for succ in self.successors(config)
            )

        result = count_from(self.initial_configuration(n, epochs), steps)
        count_from.cache_clear()
        return result

    def run_paths(self, n, epochs):
        """Yield every configuration path (for tests; exponential)."""
        steps = epochs * n - 1

        def walk(config, remaining, path):
            if remaining == 0:
                yield path
                return
            for succ in sorted(
                self.successors(config), key=lambda c: (c.state, c.heads, c.tapes)
            ):
                yield from walk(succ, remaining - 1, path + (succ,))

        start = self.initial_configuration(n, epochs)
        yield from walk(start, steps, (start,))
