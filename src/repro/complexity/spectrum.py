"""Spectrum membership: the decision problem associated with (W)FOMC.

``Spec(Phi)`` is the set of domain sizes over which ``Phi`` has a model.
The paper relates its complexity to NP1 (data), NP (combined, FO2) and
PSPACE (combined, FO): here we provide the exact decision procedure used
by the tests and benchmarks — SAT of the lineage, with early exit.
"""

from __future__ import annotations

from ..grounding.lineage import lineage
from ..propositional.counter import satisfiable
from ..utils import check_domain_size

__all__ = ["has_model", "in_spectrum", "spectrum"]


def has_model(formula, n):
    """Whether ``formula`` has a model over a domain of size ``n``."""
    check_domain_size(n)
    return satisfiable(lineage(formula, n))


def in_spectrum(formula, n):
    """Alias for :func:`has_model`: is ``n in Spec(formula)``?"""
    return has_model(formula, n)


def spectrum(formula, up_to):
    """``Spec(formula)`` intersected with ``{1, ..., up_to}``."""
    return {n for n in range(1, up_to + 1) if has_model(formula, n)}
