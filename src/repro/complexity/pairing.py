"""The pairing function and machine enumeration of Lemma 3.8.

The universal #P1 machine ``U_1`` receives a unary input ``n`` encoding a
pair ``(i, j)`` — "simulate the i-th clocked machine on input j" — via

``e(i, j) = 2**i * 3**(4 i ceil(log3 j)) * (6 j + 1)``

chosen so that (a) ``(i, j)`` is recoverable in linear time, (b)
``e(i, j) >= (i * j**i + i)**2`` bounds the simulation budget, and (c)
``j -> e(i, j)`` is polynomial-time for fixed ``i``.  Decoding works
because ``6j + 1`` is odd and ``!= 0 (mod 3)``: the power of 2 recovers
``i``, stripping all factors of 3 leaves ``6j + 1``.

The machine enumeration dovetails pairs ``(r, s)`` — "machine ``M'_r``
clocked at ``s * j**s + s`` steps" — such that the pair index ``i``
satisfies ``i >= s``, as the proof requires.
"""

from __future__ import annotations

__all__ = [
    "ceil_log3",
    "encode_pair",
    "decode_pair",
    "budget",
    "machine_pair_at",
    "machine_index_of",
    "clocked_run_budget",
]


def ceil_log3(j):
    """``ceil(log_3 j)`` for ``j >= 1`` (exact integer arithmetic)."""
    if j < 1:
        raise ValueError("j must be >= 1")
    k = 0
    power = 1
    while power < j:
        power *= 3
        k += 1
    return k


def encode_pair(i, j):
    """``e(i, j) = 2**i * 3**(4 i ceil(log3 j)) * (6 j + 1)``."""
    if i < 1 or j < 1:
        raise ValueError("indices must be >= 1")
    return 2 ** i * 3 ** (4 * i * ceil_log3(j)) * (6 * j + 1)


def decode_pair(n):
    """Recover ``(i, j)`` from ``n = e(i, j)``.

    Raises ``ValueError`` when ``n`` is not a valid encoding.
    """
    if n < 1:
        raise ValueError("n must be positive")
    i = 0
    while n % 2 == 0:
        n //= 2
        i += 1
    while n % 3 == 0:
        n //= 3
    if n % 6 != 1:
        raise ValueError("not a valid pairing-function value")
    j = (n - 1) // 6
    if i < 1 or j < 1:
        raise ValueError("not a valid pairing-function value")
    return i, j


def budget(i, j):
    """The simulation budget ``(i * j**i + i)**2`` dominated by ``e(i, j)``."""
    return (i * j ** i + i) ** 2


def machine_pair_at(index):
    """The ``index``-th pair ``(r, s)`` in the dovetailed enumeration.

    Pairs are enumerated along anti-diagonals ``r + s = d + 1`` in order
    of increasing ``s``; this lists every pair exactly once and
    guarantees ``index >= s`` (the pair ``(r, s)`` appears no earlier
    than position ``s`` of its diagonal).
    """
    if index < 1:
        raise ValueError("index must be >= 1")
    d = 1
    remaining = index
    while remaining > d:
        remaining -= d
        d += 1
    s = remaining
    r = d + 1 - s
    return r, s


def machine_index_of(r, s):
    """Inverse of :func:`machine_pair_at`."""
    if r < 1 or s < 1:
        raise ValueError("indices must be >= 1")
    d = r + s - 1
    return d * (d - 1) // 2 + s


def clocked_run_budget(s, j):
    """The clock of machine ``(M'_r, s)`` on input ``j``: ``s j**s + s``."""
    return s * j ** s + s
