"""Appendix B: encoding a counting TM into the FO3 sentence Theta_1.

Given a :class:`~repro.complexity.turing.CountingTM` running for ``c``
epochs (``c * n`` time points over a domain of size ``n``), this module
builds a first-order sentence ``Theta_1`` using exactly three variable
names such that, for every ``n >= 1``::

    FOMC(Theta_1, n) == n! * (number of accepting configuration paths)

The ``n!`` counts the choices of the linear order ``<`` on the domain;
for a fixed order the models correspond one-to-one to accepting
computations (Lemma 3.9).

Signature (one predicate per epoch ``e`` / region ``r`` / tape ``tau``):

* ``Lt/2, Succ/2, Min/1, Max/1`` — the order skeleton;
* ``St_q_e/1`` — machine in state ``q`` at time ``t`` of epoch ``e``;
* ``H_tau_e_r/2`` — head of tape ``tau`` at position ``p`` of region ``r``;
* ``T0_.../2, T1_.../2`` — tape cell contents;
* ``L_.../2, R_.../2`` — "head is immediately left/right of ``p``"
  (with clamping at the tape ends), used so transitions fit in three
  variables;
* ``U_.../2`` — frame predicate: cell ``(r, p)`` does not change at ``t``.

Faithfulness notes (differences from the appendix's compressed listing,
each needed to make the model count *exactly* ``n! * #acc``):

* ``U`` (Unchanged) is *defined* by a biconditional — a cell changes iff
  the active tape's head sits on it — rather than merely used; otherwise
  a transition rewriting a symbol in place would leave ``U`` free and
  double-count models.
* The frame axiom is an implication ``(Succ & U) -> (T0 <-> T0')``; the
  appendix's literal ``<->`` form would be unsatisfiable for changed
  cells.
* States/symbols with no outgoing transition get explicit "death" axioms
  so that stuck computations contribute no models.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import factorial

from ..logic.syntax import (
    Atom,
    Eq,
    Iff,
    Var,
    conj,
    disj,
    exists,
    forall,
    neg,
)
from ..logic.vocabulary import WeightedVocabulary
from ..errors import EncodingError
from .turing import LEFT

__all__ = ["Theta1Encoding", "encode_theta1"]

VX, VY, VZ = Var("x"), Var("y"), Var("z")


@dataclass
class Theta1Encoding:
    """The encoded sentence plus metadata for validation."""

    sentence: object
    machine: object
    epochs: int

    def weighted_vocabulary(self):
        """The unweighted (counting) vocabulary of the sentence."""
        return WeightedVocabulary.counting(self.sentence)

    def expected_fomc(self, n):
        """``n! * #accepting-paths`` — the Lemma 3.9 identity."""
        return factorial(n) * self.machine.count_accepting(n, self.epochs)


def encode_theta1(machine, epochs):
    """Build ``Theta_1`` for ``machine`` clocked at ``epochs * n`` steps."""
    if epochs < 1:
        raise EncodingError("need at least one epoch")
    builder = _Builder(machine, epochs)
    return Theta1Encoding(sentence=builder.build(), machine=machine, epochs=epochs)


class _Builder:
    def __init__(self, machine, epochs):
        self.m = machine
        self.c = epochs
        self.sentences = []

    # -- predicate helpers --------------------------------------------------

    @staticmethod
    def lt(a, b):
        return Atom("Lt", (a, b))

    @staticmethod
    def succ(a, b):
        return Atom("Succ", (a, b))

    @staticmethod
    def minimum(a):
        return Atom("Min", (a,))

    @staticmethod
    def maximum(a):
        return Atom("Max", (a,))

    def state(self, q, e, t):
        return Atom("St_{}_{}".format(q, e), (t,))

    def head(self, tau, e, r, t, p):
        return Atom("H_{}_{}_{}".format(tau, e, r), (t, p))

    def tape(self, sym, tau, e, r, t, p):
        return Atom("T{}_{}_{}_{}".format(sym, tau, e, r), (t, p))

    def left(self, tau, e, r, t, p):
        return Atom("L_{}_{}_{}".format(tau, e, r), (t, p))

    def right(self, tau, e, r, t, p):
        return Atom("R_{}_{}_{}".format(tau, e, r), (t, p))

    def unchanged(self, tau, e, r, t, p):
        return Atom("U_{}_{}_{}".format(tau, e, r), (t, p))

    def _epochs(self):
        return range(1, self.c + 1)

    def _regions(self):
        return range(1, self.c + 1)

    def _tapes(self):
        return range(self.m.num_tapes)

    # -- sentence groups ------------------------------------------------------

    def build(self):
        self._order_axioms()
        self._state_axioms()
        self._head_axioms()
        self._symbol_axioms()
        self._initial_configuration()
        self._transition_axioms()
        self._unchanged_definition()
        self._frame_axioms()
        self._inactive_head_axioms()
        self._movement_definitions()
        self._acceptance()
        return conj(*self.sentences)

    def _order_axioms(self):
        x, y, z = VX, VY, VZ
        self.sentences.append(
            forall([x, y], disj(Eq(x, y), self.lt(x, y), self.lt(y, x)))
        )
        self.sentences.append(
            forall([x, y], disj(neg(self.lt(x, y)), neg(self.lt(y, x))))
        )
        self.sentences.append(
            forall(
                [x, y, z],
                disj(neg(self.lt(x, y)), neg(self.lt(y, z)), self.lt(x, z)),
            )
        )
        self.sentences.append(
            forall([x], Iff(self.minimum(x), neg(exists([y], self.lt(y, x)))))
        )
        self.sentences.append(
            forall([x], Iff(self.maximum(x), neg(exists([y], self.lt(x, y)))))
        )
        self.sentences.append(
            forall(
                [x, y],
                Iff(
                    self.succ(x, y),
                    conj(
                        self.lt(x, y),
                        neg(exists([z], conj(self.lt(x, z), self.lt(z, y)))),
                    ),
                ),
            )
        )

    def _state_axioms(self):
        x = VX
        for e in self._epochs():
            self.sentences.append(
                forall([x], disj(*(self.state(q, e, x) for q in self.m.states)))
            )
            states = list(self.m.states)
            for i, q in enumerate(states):
                for q2 in states[i + 1 :]:
                    self.sentences.append(
                        forall(
                            [x],
                            disj(neg(self.state(q, e, x)), neg(self.state(q2, e, x))),
                        )
                    )

    def _head_axioms(self):
        x, y, z = VX, VY, VZ
        for tau in self._tapes():
            for e in self._epochs():
                # At least one position in some region.
                self.sentences.append(
                    forall(
                        [x],
                        exists(
                            [y],
                            disj(*(self.head(tau, e, r, x, y) for r in self._regions())),
                        ),
                    )
                )
                # At most one region.
                regions = list(self._regions())
                for i, r in enumerate(regions):
                    for r2 in regions[i + 1 :]:
                        self.sentences.append(
                            forall(
                                [x, y, z],
                                disj(
                                    neg(self.head(tau, e, r, x, y)),
                                    neg(self.head(tau, e, r2, x, z)),
                                ),
                            )
                        )
                # At most one position within a region.
                for r in regions:
                    self.sentences.append(
                        forall(
                            [x, y, z],
                            disj(
                                neg(self.head(tau, e, r, x, y)),
                                neg(self.head(tau, e, r, x, z)),
                                Eq(y, z),
                            ),
                        )
                    )

    def _symbol_axioms(self):
        x, y = VX, VY
        for tau in self._tapes():
            for e in self._epochs():
                for r in self._regions():
                    self.sentences.append(
                        forall(
                            [x, y],
                            Iff(
                                self.tape(0, tau, e, r, x, y),
                                neg(self.tape(1, tau, e, r, x, y)),
                            ),
                        )
                    )

    def _initial_configuration(self):
        x, y = VX, VY
        q0 = self.m.initial
        self.sentences.append(
            forall([x], disj(neg(self.minimum(x)), self.state(q0, 1, x)))
        )
        for tau in self._tapes():
            self.sentences.append(
                forall(
                    [x, y],
                    disj(
                        neg(self.minimum(x)),
                        neg(self.minimum(y)),
                        self.head(tau, 1, 1, x, y),
                    ),
                )
            )
        # Input 1**n fills region 1 of tape 0; all other cells are 0.
        for tau in self._tapes():
            for r in self._regions():
                sym = 1 if (tau == 0 and r == 1) else 0
                self.sentences.append(
                    forall(
                        [x, y],
                        disj(neg(self.minimum(x)), self.tape(sym, tau, 1, r, x, y)),
                    )
                )

    def _transition_axioms(self):
        x, y, z = VX, VY, VZ  # t, t', p
        for q in self.m.states:
            tau = self.m.active_tape[q]
            for sym in (0, 1):
                transitions = self.m.delta.get((q, sym), ())
                for e in self._epochs():
                    for r in self._regions():
                        pre = conj(
                            self.state(q, e, x),
                            self.head(tau, e, r, x, z),
                            self.tape(sym, tau, e, r, x, z),
                        )
                        if not transitions:
                            # Death: no continuation may be needed.
                            if e < self.c:
                                self.sentences.append(forall([x, z], neg(pre)))
                            else:
                                self.sentences.append(
                                    forall([x, z], disj(neg(pre), self.maximum(x)))
                                )
                            continue
                        # Within-epoch step: Succ(t, t').
                        posts = [
                            self._post(t, tau, e, r, y, z) for t in transitions
                        ]
                        self.sentences.append(
                            forall(
                                [x, y, z],
                                disj(neg(conj(pre, self.succ(x, y))), disj(*posts)),
                            )
                        )
                        # Epoch boundary: Max(t) & Min(t').
                        if e < self.c:
                            posts_next = [
                                self._post(t, tau, e + 1, r, y, z) for t in transitions
                            ]
                            self.sentences.append(
                                forall(
                                    [x, y, z],
                                    disj(
                                        neg(
                                            conj(
                                                pre,
                                                self.maximum(x),
                                                self.minimum(y),
                                            )
                                        ),
                                        disj(*posts_next),
                                    ),
                                )
                            )

    def _post(self, transition, tau, e, r, s, p):
        """The effect of one transition at successor time ``s``, cell ``p``."""
        move = (
            self.left(tau, e, r, s, p)
            if transition.move == LEFT
            else self.right(tau, e, r, s, p)
        )
        return conj(
            self.state(transition.new_state, e, s),
            move,
            self.tape(transition.write, tau, e, r, s, p),
        )

    def _unchanged_definition(self):
        x, y = VX, VY
        for tau in self._tapes():
            active_states = [q for q in self.m.states if self.m.active_tape[q] == tau]
            for e in self._epochs():
                writing = disj(*(self.state(q, e, x) for q in active_states))
                for r in self._regions():
                    self.sentences.append(
                        forall(
                            [x, y],
                            Iff(
                                self.unchanged(tau, e, r, x, y),
                                neg(conj(self.head(tau, e, r, x, y), writing)),
                            ),
                        )
                    )

    def _frame_axioms(self):
        x, y, z = VX, VY, VZ  # t, t', p
        for tau in self._tapes():
            for e in self._epochs():
                for r in self._regions():
                    keep = Iff(
                        self.tape(0, tau, e, r, x, z), self.tape(0, tau, e, r, y, z)
                    )
                    self.sentences.append(
                        forall(
                            [x, y, z],
                            disj(
                                neg(
                                    conj(
                                        self.succ(x, y),
                                        self.unchanged(tau, e, r, x, z),
                                    )
                                ),
                                keep,
                            ),
                        )
                    )
                    if e < self.c:
                        keep_boundary = Iff(
                            self.tape(0, tau, e, r, x, z),
                            self.tape(0, tau, e + 1, r, y, z),
                        )
                        self.sentences.append(
                            forall(
                                [x, y, z],
                                disj(
                                    neg(
                                        conj(
                                            self.maximum(x),
                                            self.minimum(y),
                                            self.unchanged(tau, e, r, x, z),
                                        )
                                    ),
                                    keep_boundary,
                                ),
                            )
                        )

    def _inactive_head_axioms(self):
        x, y, z = VX, VY, VZ  # t, t', p
        for q in self.m.states:
            active = self.m.active_tape[q]
            for tau in self._tapes():
                if tau == active:
                    continue
                for e in self._epochs():
                    for r in self._regions():
                        pre = conj(self.state(q, e, x), self.head(tau, e, r, x, z))
                        self.sentences.append(
                            forall(
                                [x, y, z],
                                disj(
                                    neg(conj(pre, self.succ(x, y))),
                                    self.head(tau, e, r, y, z),
                                ),
                            )
                        )
                        if e < self.c:
                            self.sentences.append(
                                forall(
                                    [x, y, z],
                                    disj(
                                        neg(
                                            conj(
                                                pre,
                                                self.maximum(x),
                                                self.minimum(y),
                                            )
                                        ),
                                        self.head(tau, e + 1, r, y, z),
                                    ),
                                )
                            )

    def _movement_definitions(self):
        x, y, z = VX, VY, VZ  # t, p, auxiliary position
        for tau in self._tapes():
            for e in self._epochs():
                for r in self._regions():
                    # Left: head immediately left of p (clamping at cell 1).
                    in_region = exists(
                        [z], conj(self.succ(z, y), self.head(tau, e, r, x, z))
                    )
                    if r == 1:
                        boundary = conj(self.minimum(y), self.head(tau, e, 1, x, y))
                    else:
                        boundary = conj(
                            self.minimum(y),
                            exists(
                                [z],
                                conj(self.maximum(z), self.head(tau, e, r - 1, x, z)),
                            ),
                        )
                    self.sentences.append(
                        forall(
                            [x, y],
                            Iff(self.left(tau, e, r, x, y), disj(in_region, boundary)),
                        )
                    )
                    # Right: head immediately right of p (clamping at the end).
                    in_region = exists(
                        [z], conj(self.succ(y, z), self.head(tau, e, r, x, z))
                    )
                    if r == self.c:
                        boundary = conj(self.maximum(y), self.head(tau, e, self.c, x, y))
                    else:
                        boundary = conj(
                            self.maximum(y),
                            exists(
                                [z],
                                conj(self.minimum(z), self.head(tau, e, r + 1, x, z)),
                            ),
                        )
                    self.sentences.append(
                        forall(
                            [x, y],
                            Iff(self.right(tau, e, r, x, y), disj(in_region, boundary)),
                        )
                    )

    def _acceptance(self):
        x = VX
        accepting = [self.state(q, self.c, x) for q in sorted(self.m.accepting)]
        if not accepting:
            raise EncodingError("machine has no accepting states")
        self.sentences.append(
            forall([x], disj(neg(self.maximum(x)), disj(*accepting)))
        )
