"""The QBF gadget: PSPACE-hardness of the spectrum problem (Theorem 4.1(2)).

A Quantified Boolean Formula ``Q_1 X_1 ... Q_n X_n F`` is translated to an
FO sentence ``phi`` over ``A/1, B/1, C/1, R/2, S/3`` such that ``phi`` has
a model over a domain of size ``n + 1`` iff the QBF is true.

The backbone (unique ``A``/``B``/``C`` elements and the ``R``-chain
``c_1 .. c_n``) is the Figure 2 gadget.  ``S`` becomes ternary:
``S(c_0, c_i, u)`` with ``u`` ranging over the two distinguished elements
``c_1`` (the ``A`` element, reading "X_i is true") and ``c_n`` (the ``B``
element, reading "X_i is false"); an axiom makes the two readings
complementary.  Each QBF quantifier over ``X_i`` becomes a first-order
quantifier over ``u`` relativized to ``A(u) | B(u)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from ..logic.syntax import (
    Atom,
    Var,
    conj,
    disj,
    exists,
    forall,
    neg,
)
from ..propositional.formula import PAnd, PNot, POr, PTrue, PFalse, PVar, peval
from .gadget import _alpha, _path_on_m_vertices, _unique_nonempty, _A, _B, _C, _R, VX, VY

__all__ = ["QBF", "evaluate_qbf", "qbf_gadget"]


def _S3(a, b, c):
    return Atom("S", (a, b, c))


@dataclass(frozen=True)
class QBF:
    """A prenex QBF: ``quantifiers[i]`` binds ``variables[i]`` in ``matrix``.

    ``quantifiers`` entries are ``"forall"`` or ``"exists"``; ``matrix``
    is a propositional formula over the variable labels.
    """

    quantifiers: Tuple[str, ...]
    variables: Tuple[str, ...]
    matrix: object

    def __post_init__(self):
        if len(self.quantifiers) != len(self.variables):
            raise ValueError("one quantifier per variable required")
        for q in self.quantifiers:
            if q not in ("forall", "exists"):
                raise ValueError("bad quantifier {!r}".format(q))


def evaluate_qbf(qbf):
    """Ground-truth QBF evaluation by recursion over the prefix."""

    def rec(i, assignment):
        if i == len(qbf.variables):
            return peval(qbf.matrix, assignment)
        var = qbf.variables[i]
        results = (
            rec(i + 1, {**assignment, var: value}) for value in (False, True)
        )
        if qbf.quantifiers[i] == "forall":
            return all(results)
        return any(results)

    return rec(0, {})


def qbf_gadget(qbf):
    """The FO sentence whose spectrum contains ``n + 1`` iff ``qbf`` is true."""
    n = len(qbf.variables)
    if n < 2:
        raise ValueError("need at least two QBF variables; pad with a dummy")
    x, y = VX, VY
    u_vars = [Var("u{}".format(i)) for i in range(n)]

    parts = [
        _unique_nonempty(_A),
        _unique_nonempty(_B),
        _unique_nonempty(_C),
        neg(exists([x], conj(_A(x), _B(x)))),
        neg(exists([x], conj(_A(x), _C(x)))),
        neg(exists([x], conj(_B(x), _C(x)))),
        forall([x, y], disj(neg(_R(x, y)), conj(neg(_C(x)), neg(_C(y))))),
        _path_on_m_vertices(n),
    ]
    for m in range(1, 2 * n + 1):
        if m != n:
            parts.append(neg(_path_on_m_vertices(m)))

    # S(x, y, u): x is the C element, y a path vertex, u the A or B element.
    su = Var("su")
    parts.append(
        forall(
            [x, y, su],
            disj(
                neg(_S3(x, y, su)),
                conj(_C(x), neg(_C(y)), disj(_A(su), _B(su))),
            ),
        )
    )
    # The A-reading and B-reading of each S fact are complementary:
    # forall u, v, x, y: A(u) & B(v) -> (S(x,y,u) xor S(x,y,v)).
    u, v = Var("ua"), Var("ub")
    xor = conj(
        disj(_S3(x, y, u), _S3(x, y, v)),
        disj(neg(_S3(x, y, u)), neg(_S3(x, y, v))),
    )
    parts.append(
        forall(
            [u, v, x, y],
            disj(neg(_A(u)), neg(_B(v)), disj(neg(_C(x)), _C(y), xor)),
        )
    )

    # gamma_i(u): X_i reads true at branch element u.
    def gamma(i, u_var):
        if i % 2 == 1:
            return exists([VX], conj(_alpha(i, VX, VY), exists([VY], _S3(VY, VX, u_var))))
        return exists([VY], conj(_alpha(i, VY, VX), exists([VX], _S3(VX, VY, u_var))))

    def translate(prop, branch):
        if isinstance(prop, PTrue):
            from ..logic.syntax import TRUE

            return TRUE
        if isinstance(prop, PFalse):
            from ..logic.syntax import FALSE

            return FALSE
        if isinstance(prop, PVar):
            # X_i's value at branch element u is the S fact itself: as u
            # sweeps the A and B elements, the xor axiom makes the fact
            # take both truth values — simulating both assignments.
            i = qbf.variables.index(prop.label) + 1
            return gamma(i, branch[prop.label])
        if isinstance(prop, PNot):
            return neg(translate(prop.body, branch))
        if isinstance(prop, PAnd):
            return conj(*(translate(p, branch) for p in prop.parts))
        if isinstance(prop, POr):
            return disj(*(translate(p, branch) for p in prop.parts))
        raise TypeError("not a propositional formula: {!r}".format(prop))

    # Build the quantified translation inside-out.  "X_i true" at branch
    # element u means: u is the A element and the S fact for vertex i at u
    # holds — i.e. gamma_i(u) & A(u); by the xor axiom, at the B element
    # the same fact reads negated, so quantifying u over {A, B} elements
    # sweeps both truth values.
    branch = {label: u_vars[i] for i, label in enumerate(qbf.variables)}
    body = translate(qbf.matrix, branch)
    for i in range(n - 1, -1, -1):
        u_i = u_vars[i]
        guard = disj(_A(u_i), _B(u_i))
        if qbf.quantifiers[i] == "forall":
            body = forall([u_i], disj(neg(guard), body))
        else:
            body = exists([u_i], conj(guard, body))
    parts.append(body)
    return conj(*parts)
