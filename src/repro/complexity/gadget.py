"""The #SAT gadget of Theorem 4.1 / Figure 2 (combined complexity).

Given a Boolean formula ``F`` over variables ``X_1..X_n`` (``n >= 2``),
build an FO2 sentence ``phi_F`` over the fixed vocabulary
``A/1, B/1, C/1, R/2, S/2`` such that over a domain of size ``n + 1``::

    FOMC(phi_F, n + 1) == (n + 1)! * #F

Every model consists of a permutation ``c_0, c_1, ..., c_n`` of the
domain with ``C(c_0), A(c_1), B(c_n)`` and ``R`` exactly the chain
``c_1 -> c_2 -> ... -> c_n``; the only freedom left is the set of tuples
``S(c_0, c_i)``, which is in one-to-one correspondence with a truth
assignment to ``X_1..X_n``.  The path-length constraints (no ``A``-to-
``B`` path on ``m`` vertices for any ``m in [2n] - {n}``) pin ``R``: an
extra or missing edge creates a path of a forbidden length, and a
repeated vertex creates a cycle that pumps to one.

Construction notes (details the compressed paper text leaves implicit,
validated exactly by the tests):

* ``n >= 2`` is required: ``n = 1`` would need the path's single vertex
  to be both the unique ``A`` and the unique ``B`` element, which the
  disjointness axioms forbid.
* We add ``S(x, y) -> ~C(y)``: the paper constrains only the *source* of
  ``S`` to be the ``C`` element, leaving ``S(c_0, c_0)`` unconstrained,
  which would double every model count.
"""

from __future__ import annotations

from ..logic.syntax import (
    Atom,
    Eq,
    Var,
    conj,
    disj,
    exists,
    forall,
    neg,
)
from ..propositional.formula import PAnd, PFalse, PNot, POr, PTrue, PVar

__all__ = ["sat_gadget", "gadget_model_count_identity"]

_A = lambda t: Atom("A", (t,))
_B = lambda t: Atom("B", (t,))
_C = lambda t: Atom("C", (t,))
_R = lambda s, t: Atom("R", (s, t))
_S = lambda s, t: Atom("S", (s, t))

VX, VY = Var("x"), Var("y")


def _unique_nonempty(pred):
    """"There is exactly one element satisfying ``pred``" in FO2."""
    x, y = VX, VY
    return conj(
        exists([x], pred(x)),
        forall([x, y], disj(neg(pred(x)), neg(pred(y)), Eq(x, y))),
    )


def _alpha(i, var, other):
    """``alpha_i(var)``: var is the i-th vertex of an A-rooted R-path.

    Built with two alternating variables, so the whole tower is FO2:
    ``alpha_1(x) = A(x)``; ``alpha_{i+1}(y) = exists x (alpha_i(x) & R(x, y))``.
    """
    if i == 1:
        return _A(var)
    return exists([other], conj(_alpha(i - 1, other, var), _R(other, var)))


def _path_on_m_vertices(m):
    """``exists x (alpha_m(x) & B(x))``: an A->B path on ``m`` vertices."""
    if m % 2 == 1:
        return exists([VX], conj(_alpha(m, VX, VY), _B(VX)))
    return exists([VY], conj(_alpha(m, VY, VX), _B(VY)))


def _translate(prop, gamma):
    """Replace each propositional variable label by its FO2 sentence."""
    if isinstance(prop, PTrue):
        from ..logic.syntax import TRUE

        return TRUE
    if isinstance(prop, PFalse):
        from ..logic.syntax import FALSE

        return FALSE
    if isinstance(prop, PVar):
        return gamma[prop.label]
    if isinstance(prop, PNot):
        return neg(_translate(prop.body, gamma))
    if isinstance(prop, PAnd):
        return conj(*(_translate(p, gamma) for p in prop.parts))
    if isinstance(prop, POr):
        return disj(*(_translate(p, gamma) for p in prop.parts))
    raise TypeError("not a propositional formula: {!r}".format(prop))


def sat_gadget(boolean_formula, variable_order):
    """Build ``phi_F`` for a propositional formula over ordered variables.

    ``variable_order`` lists the labels ``X_1..X_n`` (``n >= 2``); every
    variable of ``boolean_formula`` must be listed (extra listed labels
    are fine: they become unconstrained ``S`` tuples, doubling the count
    per unused variable exactly as #SAT over the larger variable set).
    """
    n = len(variable_order)
    if n < 2:
        raise ValueError(
            "the gadget needs n >= 2 variables (with n = 1 the unique A and "
            "B elements would have to coincide); pad F with a fresh variable"
        )
    x, y = VX, VY
    parts = [
        _unique_nonempty(_A),
        _unique_nonempty(_B),
        _unique_nonempty(_C),
        neg(exists([x], conj(_A(x), _B(x)))),
        neg(exists([x], conj(_A(x), _C(x)))),
        neg(exists([x], conj(_B(x), _C(x)))),
        # R avoids the C element entirely.
        forall([x, y], disj(neg(_R(x, y)), conj(neg(_C(x)), neg(_C(y))))),
        # S goes from the C element to non-C elements.
        forall([x, y], disj(neg(_S(x, y)), conj(_C(x), neg(_C(y))))),
        # The A -> B chain on exactly n vertices exists...
        _path_on_m_vertices(n),
    ]
    # ... and no A -> B path on any other number of vertices up to 2n.
    for m in range(1, 2 * n + 1):
        if m != n:
            parts.append(neg(_path_on_m_vertices(m)))

    # gamma_i: "X_i is true", i.e. S reaches the i-th path vertex.
    gamma = {}
    for i, label in enumerate(variable_order, start=1):
        if i % 2 == 1:
            gamma[label] = exists(
                [VX], conj(_alpha(i, VX, VY), exists([VY], _S(VY, VX)))
            )
        else:
            gamma[label] = exists(
                [VY], conj(_alpha(i, VY, VX), exists([VX], _S(VX, VY)))
            )
    parts.append(_translate(boolean_formula, gamma))
    return conj(*parts)


def gadget_model_count_identity(boolean_formula, variable_order, fomc):
    """Check ``FOMC(phi_F, n+1) == (n+1)! * #F``; returns both sides.

    ``fomc(sentence, domain_size)`` is the model counter to use.  Returns
    ``(fomc_value, factorial * sharp_F)`` for the caller to compare.
    """
    from math import factorial

    from ..propositional.bruteforce import count_models_enumerate

    n = len(variable_order)
    sentence = sat_gadget(boolean_formula, variable_order)
    lhs = fomc(sentence, n + 1)
    sharp_f = count_models_enumerate(boolean_formula, universe=variable_order)
    return lhs, factorial(n + 1) * sharp_f
