"""Cross-request coalescing: many requests, one vectorized circuit pass.

The paper's symmetric-WFOMC setting promises amortization — the
counting circuit is weight-independent, so one compile serves every
weight vector any client submits.  The registry already amortizes the
*compile*; this module amortizes the *evaluation*: concurrent admitted
requests that target the same circuit identity ``(formula, n, ordered
vocabulary signature, method)`` are grouped, held for a small window
(``coalesce_window_ms``) or until the group reaches
``coalesce_max_batch``, and then served by **one**
:meth:`~repro.compile.CompiledWFOMC.evaluate_many` pass through the
batched/codegen backends — a K-column staged sweep over the circuit
instead of K independent scalar evaluations.  Exact per-request results
are scattered back to per-request futures, so the wire answers are
bit-identical to uncoalesced serving (the exact backends are pinned
bit-identical to direct dispatch by the differential suite).

Resilience contracts, composed rather than weakened:

* the batch runs under the **tightest** member deadline's
  :class:`~repro.resilience.limits.Budget`, enforced exactly like a
  single request: a loop-side timer fires ``budget.cancel()`` at the
  tightest remaining deadline and the evaluation thread is abandoned;
* a budget trip or a backend fault **splits** the batch: every member
  falls back to ordinary per-request evaluation with whatever remains
  of its *own* deadline, so one stuck batch never becomes a collective
  504 — only members whose own deadlines expired answer 504;
* requests the batcher cannot serve (cold compiles, instances memoized
  as failing to compile, non-point endpoints) bypass it unchanged;
* draining flushes every open window immediately.

Single-threaded discipline: all batcher state is touched only on the
event loop; the only off-loop work is the evaluation itself, which runs
on the daemon's executor.
"""

from __future__ import annotations

import asyncio

from ..obs import span
from ..resilience import Budget

__all__ = ["CoalesceSpec", "RequestCoalescer"]


class CoalesceSpec:
    """What a request must expose to be coalescable.

    ``wv`` is the request's weighted vocabulary (one future column of a
    batch); ``finish`` maps the raw circuit count to the endpoint's
    result (identity for ``/v1/wfomc``, division by the total world
    weight for ``/v1/probability``), so requests for *different*
    endpoints can still share one batch when they target one circuit.
    """

    __slots__ = ("formula", "n", "wv", "finish")

    def __init__(self, formula, n, wv, finish):
        self.formula = formula
        self.n = n
        self.wv = wv
        self.finish = finish


class _Member:
    __slots__ = ("wv", "finish", "call", "deadline_at", "future",
                 "submitted_at")

    def __init__(self, wv, finish, call, deadline_at, future, submitted_at):
        self.wv = wv
        self.finish = finish
        self.call = call
        self.deadline_at = deadline_at
        self.future = future
        self.submitted_at = submitted_at


class _Group:
    __slots__ = ("key", "compiled", "members", "timer")

    def __init__(self, key, compiled, timer):
        self.key = key
        self.compiled = compiled
        self.members = []
        self.timer = timer


class RequestCoalescer:
    """Groups admitted requests by circuit identity; flushes as batches.

    ``run_in_executor`` submits a callable to the daemon's evaluation
    executor and returns an awaitable; ``fallback`` is the daemon's
    ordinary per-request path ``async (call, deadline_ms) -> result``,
    used when a batch splits.
    """

    def __init__(self, run_in_executor, fallback, window_s, max_batch,
                 options, hold_hist=None):
        self._run_in_executor = run_in_executor
        self._fallback = fallback
        self.window_s = max(0.0, float(window_s))
        self.max_batch = max(1, int(max_batch))
        self.options = options
        #: Optional :class:`~repro.obs.Histogram` of per-member window
        #: hold time (submit -> batch start), fed to ``/metrics``.
        self.hold_hist = hold_hist
        self._groups = {}
        self._tasks = set()
        self._draining = False
        self.counters = {
            "batches": 0, "batched_requests": 0, "splits": 0,
            "split_requests": 0, "flush_window": 0, "flush_full": 0,
            "flush_drain": 0,
        }

    # -- submission (event loop only) --------------------------------------

    def submit(self, key, compiled, spec, call, deadline_ms):
        """Enqueue one request; returns its result future, or ``None``.

        ``None`` means the batcher is draining and the caller must use
        the ordinary per-request path.
        """
        if self._draining:
            return None
        loop = asyncio.get_running_loop()
        deadline_at = (None if deadline_ms is None
                       else loop.time() + deadline_ms / 1000.0)
        member = _Member(spec.wv, spec.finish, call, deadline_at,
                         loop.create_future(), loop.time())
        group = self._groups.get(key)
        if group is None:
            timer = loop.call_later(
                self.window_s, self._flush, key, "window")
            group = self._groups[key] = _Group(key, compiled, timer)
        group.members.append(member)
        if len(group.members) >= self.max_batch:
            self._flush(key, "full")
        return member.future

    def _flush(self, key, reason):
        group = self._groups.pop(key, None)
        if group is None:
            return  # a full/drain flush already took it; the timer lost
        group.timer.cancel()
        self.counters["flush_" + reason] += 1
        self.counters["batches"] += 1
        self.counters["batched_requests"] += len(group.members)
        task = asyncio.get_running_loop().create_task(
            self._run_batch(group))
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)

    def drain(self):
        """Stop accepting and flush every open window immediately."""
        self._draining = True
        for key in list(self._groups):
            self._flush(key, "drain")

    # -- batch execution ---------------------------------------------------

    async def _run_batch(self, group):
        loop = asyncio.get_running_loop()
        members = group.members
        if self.hold_hist is not None:
            now = loop.time()
            for m in members:
                self.hold_hist.record(now - m.submitted_at)
        deadlines = [m.deadline_at for m in members
                     if m.deadline_at is not None]
        remaining_s = None
        if deadlines:
            remaining_s = min(deadlines) - loop.time()
            if remaining_s <= 0:
                # The tightest member is already past its deadline:
                # don't start a doomed batch, settle everyone through
                # the per-request path (which 504s only the expired).
                await self._split(members)
                return
        budget = Budget(timeout=remaining_s)
        options = self.options.replace(
            budget=budget, backend=self.options.backend or "batched")
        compiled, vocabularies = group.compiled, [m.wv for m in members]

        def evaluate():
            budget.check()
            from ..wfomc.solver import _codegen_store

            with span("coalesced_batch", cat="serve", k=len(vocabularies),
                      backend=options.backend):
                return compiled.evaluate_many(
                    vocabularies, backend=options.backend,
                    store=_codegen_store(options))

        future = self._run_in_executor(evaluate)
        try:
            if remaining_s is None:
                counts = await future
            else:
                counts = await asyncio.wait_for(
                    asyncio.shield(future), remaining_s)
        except asyncio.TimeoutError:
            # Tightest deadline hit: cancel cooperatively, abandon the
            # batch thread, and split — members with time left fall
            # back, only the expired ones answer 504.
            budget.cancel()
            future.add_done_callback(lambda f: f.exception())
            await self._split(members)
            return
        except Exception:  # noqa: BLE001 — backend fault: split, retry solo
            await self._split(members)
            return
        for member, count in zip(members, counts):
            if member.future.done():  # requester gone (cancelled)
                continue
            try:
                member.future.set_result(member.finish(count))
            except Exception as exc:  # noqa: BLE001 — per-member finish
                member.future.set_exception(exc)

    async def _split(self, members):
        self.counters["splits"] += 1
        self.counters["split_requests"] += len(members)
        loop = asyncio.get_running_loop()

        async def settle(member):
            if member.future.done():
                return
            deadline_ms = None
            if member.deadline_at is not None:
                deadline_ms = max(
                    0.0, (member.deadline_at - loop.time()) * 1000.0)
            try:
                result = await self._fallback(member.call, deadline_ms)
            except Exception as exc:  # noqa: BLE001 — typed per member
                if not member.future.done():
                    member.future.set_exception(exc)
                return
            if not member.future.done():
                member.future.set_result(result)

        await asyncio.gather(*(settle(m) for m in members))

    # -- observability -----------------------------------------------------

    def snapshot(self):
        """Counter view for ``/metrics``."""
        view = dict(self.counters)
        view["open_groups"] = len(self._groups)
        view["window_ms"] = self.window_s * 1000.0
        view["max_batch"] = self.max_batch
        view["avg_batch_size"] = (
            round(view["batched_requests"] / view["batches"], 3)
            if view["batches"] else None)
        return view
