"""The ``repro serve`` daemon: a resilient HTTP inference service.

A single process loads and compiles circuits once (through the
single-flight :class:`~repro.serve.registry.CircuitRegistry` and the
library's own caches) and serves any number of WFOMC / probability /
sweep requests over plain HTTP/1.1 — the paper's data-independence made
operational: compilation is weight-independent, so the expensive work
is amortized across every query a deployment ever answers.

Everything is standard library: ``asyncio`` streams carry the HTTP
surface, a thread pool runs the (GIL-releasing-free, CPU-bound but
budget-interruptible) evaluations, and the robustness layers compose
from PR-7 primitives:

* **deadline propagation** — ``deadline_ms`` becomes a
  :class:`~repro.resilience.limits.Budget` on the request's
  :class:`~repro.options.SolverOptions`, charged inside every counting
  layer and worker-pool poll loop.  The event loop backstops it: at the
  deadline it fires ``budget.cancel()`` (cooperative, thread-safe) and
  gives the evaluation until **2x the deadline** total before
  abandoning the thread and answering 504 anyway — a request never
  outlives twice its deadline, even if the engine is stuck somewhere
  that does not charge the budget.
* **admission control** — :class:`~repro.serve.admission.
  AdmissionController` bounds running + queued work; excess load is
  shed with 429 + ``Retry-After`` before any work starts.
* **graceful degradation** — a failed compile degrades to direct
  counting (registry failure markers); an accelerated backend that
  errors internally falls back down the ladder codegen → batched →
  exact → direct, so the client sees the exact answer, just slower; a
  down store tier is already absorbed by the cache layer
  (:mod:`repro.cache`).  Internal faults become typed 500s, never
  hangs.
* **cross-request coalescing** — concurrent point queries against one
  warm compiled circuit are batched by
  :class:`~repro.serve.coalesce.RequestCoalescer` and served by a
  single vectorized ``evaluate_many`` pass (bit-identical answers,
  tightest-member budget, split-on-fault fallback to solo evaluation).
* **graceful drain** — SIGTERM stops the listener, answers 503 on
  kept-alive connections, flushes open coalescing windows, lets
  in-flight evaluations finish within ``drain_timeout_s``, then exits.

Endpoints: ``GET /healthz | /readyz | /metrics`` and ``POST
/v1/wfomc | /v1/probability | /v1/wfomc_weight_sweep |
/v1/mln_query_sweep`` (see :mod:`repro.serve.protocol` for the wire
format).
"""

from __future__ import annotations

import asyncio
import dataclasses
import functools
import json
import logging
import signal
import threading
import time
from concurrent.futures import ThreadPoolExecutor

from ..errors import BudgetExceededError, ReproError, ServiceDrainingError, \
    ServiceOverloadedError, UnsupportedFormulaError
from ..obs import Histogram, carry, get_logger, new_request_id, slog, span
from ..options import SolverOptions
from ..resilience import Budget
from . import protocol
from .admission import AdmissionController
from .coalesce import CoalesceSpec, RequestCoalescer
from .metrics import metrics_snapshot, prometheus_text
from .registry import CircuitRegistry

__all__ = ["ReproServer", "ServeConfig"]

#: Largest accepted request body; circuits are big, requests are not.
MAX_BODY_BYTES = 4 * 1024 * 1024

#: Idle keep-alive connections are closed after this many seconds.
IDLE_TIMEOUT_S = 60.0

#: Multiple of the deadline a request may spend in total before the
#: daemon abandons the evaluation thread and answers 504 regardless.
GRACE_FACTOR = 2.0

#: The backend fallback ladder of graceful degradation.
_BACKEND_LADDER = {
    "codegen": ("batched", "exact"),
    "batched": ("exact",),
    "float": ("exact",),
}


@dataclasses.dataclass
class ServeConfig:
    """Tunables of one :class:`ReproServer` instance."""

    host: str = "127.0.0.1"
    port: int = 0
    max_concurrency: int = 4
    queue_depth: int = 16
    default_deadline_ms: float | None = None
    drain_timeout_s: float = 10.0
    #: Cross-request coalescing (compiled serving only): concurrent
    #: requests for one circuit identity are held up to
    #: ``coalesce_window_ms`` (or until ``coalesce_max_batch`` queue up)
    #: and served by one vectorized ``evaluate_many`` pass.
    coalesce: bool = True
    coalesce_window_ms: float = 2.0
    coalesce_max_batch: int = 32
    #: Requests slower than this log a warn-level ``slow_request`` event
    #: on ``repro.serve.access`` in addition to the INFO access line.
    slow_request_ms: float = 1000.0
    options: SolverOptions = dataclasses.field(default_factory=SolverOptions)


#: The latency phases the daemon histograms (see ``/metrics``):
#: request parsing, admission-queue wait, registry compiles, executor
#: evaluation, coalescing window hold, and response encoding.
_PHASES = ("parse", "queue", "compile", "evaluate", "coalesce_hold",
           "encode")


def _safe_request_id(value):
    """The client's ``X-Request-Id`` sanitized for echoing, or a fresh one.

    Only filename-safe characters survive (an id is echoed into a
    response header and the access log, so CR/LF and friends must not);
    anything unusable is replaced by a generated id.
    """
    if value:
        value = "".join(ch for ch in value[:64]
                        if ch.isalnum() or ch in "-_.")
        if value:
            return value
    return new_request_id()


class _Prepared:
    """A parsed request: the per-request closure + its coalesce spec.

    ``coalesce`` is ``None`` for endpoints the batcher cannot serve
    (sweeps are already vectorized per request; MLN sweeps are not
    keyed on a single circuit identity).
    """

    __slots__ = ("call", "coalesce")

    def __init__(self, call, coalesce=None):
        self.call = call
        self.coalesce = coalesce


class ReproServer:
    """The asyncio HTTP daemon; create, ``await start()``, ``run()``."""

    def __init__(self, config=None):
        self.config = config or ServeConfig()
        self.registry = CircuitRegistry()
        self.admission = None
        self.coalescer = None
        self.draining = False
        self.address = None
        self._server = None
        self._executor = None
        self._inflight = 0
        self._idle = None
        self._counter_lock = threading.Lock()
        self.counters = {
            "requests": 0, "ok": 0, "input_errors": 0, "shed": 0,
            "draining_rejects": 0, "budget_errors": 0, "internal_errors": 0,
            "deadline_cancels": 0, "abandoned": 0, "degraded": 0,
        }
        self._routes = {
            "/v1/wfomc": self._prep_wfomc,
            "/v1/probability": self._prep_probability,
            "/v1/wfomc_weight_sweep": self._prep_weight_sweep,
            "/v1/mln_query_sweep": self._prep_mln_query_sweep,
        }
        # Per-endpoint end-to-end latency; paths outside the routing
        # table share one "other" histogram so probing garbage paths
        # cannot grow the dict without bound.
        self.latency = {}
        self._latency_lock = threading.Lock()
        self.phases = {name: Histogram() for name in _PHASES}
        self.registry.compile_hist = self.phases["compile"]
        self._access_log = get_logger("serve.access")
        self._events_log = get_logger("serve")

    def _count(self, name, delta=1):
        with self._counter_lock:
            self.counters[name] += delta

    def counters_snapshot(self):
        """A consistent copy of the outcome counters (never torn)."""
        with self._counter_lock:
            return dict(self.counters)

    def _endpoint_hist(self, path):
        """The latency histogram a request records into."""
        if path not in self._routes and path not in ("/healthz", "/readyz",
                                                     "/metrics"):
            path = "other"
        with self._latency_lock:
            hist = self.latency.get(path)
            if hist is None:
                hist = self.latency[path] = Histogram()
        return hist

    # -- lifecycle ---------------------------------------------------------

    async def start(self):
        """Bind the listener; ``self.url`` is valid afterwards."""
        cfg = self.config
        self.admission = AdmissionController(cfg.max_concurrency,
                                             cfg.queue_depth)
        self._executor = ThreadPoolExecutor(
            max_workers=self.admission.max_concurrency,
            thread_name_prefix="repro-serve")
        if cfg.coalesce:
            loop = asyncio.get_running_loop()
            self.coalescer = RequestCoalescer(
                run_in_executor=lambda fn: loop.run_in_executor(
                    self._executor, carry(fn)),
                fallback=self._run_with_deadline,
                window_s=cfg.coalesce_window_ms / 1000.0,
                max_batch=cfg.coalesce_max_batch,
                options=cfg.options,
                hold_hist=self.phases["coalesce_hold"])
        self._idle = asyncio.Event()
        self._idle.set()
        self._server = await asyncio.start_server(
            self._handle_connection, cfg.host, cfg.port)
        self.address = self._server.sockets[0].getsockname()[:2]
        return self

    @property
    def url(self):
        return "http://{}:{}".format(*self.address)

    async def run(self, install_signals=True):
        """Serve until SIGTERM/SIGINT, then drain and return."""
        stop = asyncio.Event()
        if install_signals:
            loop = asyncio.get_running_loop()
            for sig in (signal.SIGTERM, signal.SIGINT):
                loop.add_signal_handler(sig, stop.set)
        await stop.wait()
        await self.shutdown()

    async def shutdown(self):
        """Stop accepting, drain in-flight work, release the executor."""
        self.draining = True
        if self.coalescer is not None:
            # Open coalescing windows flush now: a drain must not strand
            # requests waiting out a batching window.
            self.coalescer.drain()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        try:
            await asyncio.wait_for(self._idle.wait(),
                                   self.config.drain_timeout_s)
        except asyncio.TimeoutError:
            pass
        if self._executor is not None:
            self._executor.shutdown(wait=False)

    # -- the HTTP surface --------------------------------------------------

    async def _handle_connection(self, reader, writer):
        try:
            while True:
                try:
                    request_line = await asyncio.wait_for(
                        reader.readline(), IDLE_TIMEOUT_S)
                except asyncio.TimeoutError:
                    break
                if not request_line:
                    break
                parts = request_line.decode("latin-1").split()
                if len(parts) != 3:
                    await self._respond(
                        writer, 400,
                        protocol.error_body(ReproError("bad request line")),
                        close=True)
                    break
                method, path, version = parts
                headers = {}
                while True:
                    line = await reader.readline()
                    if line in (b"\r\n", b"\n", b""):
                        break
                    name, _, value = line.decode("latin-1").partition(":")
                    headers[name.strip().lower()] = value.strip()
                try:
                    length = int(headers.get("content-length", "0") or "0")
                except ValueError:
                    length = -1
                if not 0 <= length <= MAX_BODY_BYTES:
                    await self._respond(
                        writer, 400,
                        protocol.error_body(ReproError("bad content length")),
                        close=True)
                    break
                body = await reader.readexactly(length) if length else b""
                request_id = _safe_request_id(headers.get("x-request-id"))
                endpoint = path.partition("?")[0]
                started = time.monotonic()
                with span("request", cat="serve", method=method,
                          path=endpoint, id=request_id):
                    status, payload, extra = await self._dispatch(
                        method, path, body)
                elapsed = time.monotonic() - started
                self._endpoint_hist(endpoint).record(elapsed)
                self._access_logs(method, endpoint, status, elapsed,
                                  request_id)
                extra = dict(extra or {})
                extra["X-Request-Id"] = request_id
                keep = (version == "HTTP/1.1" and not self.draining
                        and headers.get("connection", "").lower() != "close")
                await self._respond(writer, status, payload, extra,
                                    close=not keep)
                if not keep:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    def _access_logs(self, method, endpoint, status, elapsed, request_id):
        """One INFO access line per request; WARNING above the threshold."""
        ms = round(elapsed * 1000.0, 3)
        slog(self._access_log, logging.INFO, "request", id=request_id,
             method=method, path=endpoint, status=status, ms=ms)
        if ms >= self.config.slow_request_ms:
            slog(self._access_log, logging.WARNING, "slow_request",
                 id=request_id, method=method, path=endpoint, status=status,
                 ms=ms, threshold_ms=self.config.slow_request_ms)

    _REASONS = {200: "OK", 400: "Bad Request", 404: "Not Found",
                405: "Method Not Allowed", 429: "Too Many Requests",
                500: "Internal Server Error", 503: "Service Unavailable",
                504: "Gateway Timeout"}

    async def _respond(self, writer, status, payload, extra=None,
                       close=False):
        # Endpoint payloads are JSON objects; a bare string is already
        # rendered text (the Prometheus exposition) and ships verbatim.
        if isinstance(payload, str):
            body = payload.encode("utf-8")
            content_type = "text/plain; version=0.0.4; charset=utf-8"
        else:
            body = json.dumps(payload).encode("utf-8")
            content_type = "application/json"
        headers = {
            "Content-Type": content_type,
            "Content-Length": str(len(body)),
            "Connection": "close" if close else "keep-alive",
        }
        headers.update(extra or {})
        head = "HTTP/1.1 {} {}\r\n{}\r\n\r\n".format(
            status, self._REASONS.get(status, "Error"),
            "\r\n".join("{}: {}".format(k, v) for k, v in headers.items()))
        writer.write(head.encode("latin-1") + body)
        await writer.drain()

    async def _dispatch(self, method, path, body):
        self._count("requests")
        try:
            if method == "GET":
                return self._dispatch_get(path)
            if method != "POST":
                return 405, protocol.error_body(
                    ReproError("method {} not allowed".format(method))), {}
            prep = self._routes.get(path)
            if prep is None:
                return 404, protocol.error_body(
                    ReproError("unknown endpoint {}".format(path))), {}
            if self.draining:
                raise ServiceDrainingError(
                    "server is draining; resubmit elsewhere")
            parse_started = time.monotonic()
            try:
                request = json.loads(body.decode("utf-8")) if body else {}
            except (ValueError, UnicodeDecodeError) as exc:
                raise ReproError(
                    "request body must be JSON: {}".format(exc)) from None
            if not isinstance(request, dict):
                raise ReproError("request body must be a JSON object")
            deadline_ms = protocol.parse_deadline_ms(
                request, self.config.default_deadline_ms)
            with span("parse", cat="serve", path=path):
                prepared = prep(request)
            self.phases["parse"].record(time.monotonic() - parse_started)
            result = await self._admit_and_run(prepared, deadline_ms)
            self._count("ok")
            encode_started = time.monotonic()
            with span("encode", cat="serve"):
                encoded = protocol.encode_result(result)
            self.phases["encode"].record(time.monotonic() - encode_started)
            return 200, {"ok": True, "result": encoded}, {}
        except Exception as exc:  # noqa: BLE001 — mapped to typed payloads
            return self._error_response(exc)

    def _dispatch_get(self, path):
        path, _, query = path.partition("?")
        if path == "/healthz":
            return 200, {"ok": True, "draining": self.draining}, {}
        if path == "/readyz":
            if self.draining:
                return 503, protocol.error_body(
                    ServiceDrainingError("draining")), {}
            return 200, {"ok": True}, {}
        if path == "/metrics":
            if "format=prometheus" in query.split("&"):
                return 200, prometheus_text(self), {}
            return 200, metrics_snapshot(self), {}
        return 404, protocol.error_body(
            ReproError("unknown endpoint {}".format(path))), {}

    def _error_response(self, exc):
        status = protocol.error_status(exc)
        extra = {}
        if isinstance(exc, ServiceOverloadedError):
            self._count("shed")
            extra["Retry-After"] = str(exc.retry_after)
        elif isinstance(exc, ServiceDrainingError):
            self._count("draining_rejects")
        elif isinstance(exc, BudgetExceededError):
            self._count("budget_errors")
        elif isinstance(exc, ReproError):
            self._count("input_errors")
        else:
            self._count("internal_errors")
        return status, protocol.error_body(exc), extra

    # -- evaluation --------------------------------------------------------

    async def _admit_and_run(self, prepared, deadline_ms):
        queued = time.monotonic()
        async with self.admission.admit():
            self.phases["queue"].record(time.monotonic() - queued)
            self._inflight += 1
            self._idle.clear()
            try:
                batched = self._try_coalesce(prepared, deadline_ms)
                if batched is not None:
                    return await batched
                return await self._run_with_deadline(prepared.call,
                                                     deadline_ms)
            finally:
                self._inflight -= 1
                if self._inflight == 0:
                    self._idle.set()

    def _try_coalesce(self, prepared, deadline_ms):
        """The request's batch future, or ``None`` to serve it solo.

        Only point queries against a *warm* compiled circuit coalesce.
        Cold instances bypass so the batcher never blocks a window on a
        compile (the first request compiles single-flight as before and
        the next ones coalesce); instances memoized as failing compile
        keep degrading to direct counting unchanged; the ``float``
        backend bypasses because its answers are not the exact wire
        format uncoalesced serving produces.
        """
        spec = prepared.coalesce
        options = self.config.options
        if (self.coalescer is None or spec is None or self.draining
                or not options.compiled or options.backend == "float"):
            return None
        compiled = self.registry.peek(spec.formula, spec.n,
                                      spec.wv.vocabulary, options)
        if compiled is None:
            return None
        key = self.registry.key(spec.formula, spec.n, spec.wv.vocabulary,
                                options)
        return self.coalescer.submit(key, compiled, spec, prepared.call,
                                     deadline_ms)

    async def _run_with_deadline(self, call, deadline_ms):
        loop = asyncio.get_running_loop()
        options = self.config.options
        budget = None
        if deadline_ms is not None:
            budget = Budget(timeout=deadline_ms / 1000.0)
            options = options.replace(budget=budget)
        future = loop.run_in_executor(
            self._executor,
            carry(functools.partial(self._evaluate, call, options)))
        if deadline_ms is None:
            return await future
        deadline_s = deadline_ms / 1000.0
        try:
            return await asyncio.wait_for(asyncio.shield(future), deadline_s)
        except asyncio.TimeoutError:
            pass
        # Deadline reached: cancel cooperatively, grant the budget's
        # checkpoints until 2x the deadline, then abandon the thread.
        self._count("deadline_cancels")
        budget.cancel()
        grace_s = deadline_s * (GRACE_FACTOR - 1.0)
        try:
            return await asyncio.wait_for(asyncio.shield(future), grace_s)
        except asyncio.TimeoutError:
            self._count("abandoned")
            future.add_done_callback(lambda f: f.exception())
            raise BudgetExceededError(
                "timeout", elapsed=deadline_s * GRACE_FACTOR) from None

    def _evaluate(self, call, options):
        """Run one request on an executor thread, degrading as needed."""
        started = time.monotonic()
        last = None
        try:
            for attempt in self._degradation_ladder(options):
                try:
                    with span("evaluate", cat="serve",
                              backend=attempt.backend or "exact"):
                        return call(attempt)
                except ReproError:
                    # Typed: input and budget errors are deterministic; a
                    # slower backend cannot fix them.
                    raise
                except Exception as exc:  # noqa: BLE001 — degrade, then 500
                    last = exc
                    self._count("degraded")
                    slog(self._events_log, logging.WARNING,
                         "backend_degraded",
                         backend=attempt.backend or "exact",
                         compiled=attempt.compiled,
                         exc_type=type(exc).__name__)
            raise last
        finally:
            self.phases["evaluate"].record(time.monotonic() - started)

    @staticmethod
    def _degradation_ladder(options):
        ladder = [options]
        for backend in _BACKEND_LADDER.get(options.backend or "", ()):
            ladder.append(options.replace(backend=backend))
        if options.compiled:
            ladder.append(options.replace(compile=None, backend=None))
        return ladder

    # -- endpoints ---------------------------------------------------------

    def _prep_wfomc(self, body):
        from ..wfomc import wfomc

        formula = protocol.parse_formula(body)
        n = protocol.parse_domain_size(body)
        wv = protocol.parse_weights(formula, body)

        def call(opts):
            opts = self.registry.prepare(formula, n, wv.vocabulary, opts)
            return wfomc(formula, n, wv, options=opts)

        return _Prepared(call, CoalesceSpec(formula, n, wv,
                                            lambda count: count))

    def _prep_probability(self, body):
        from ..wfomc import probability

        formula = protocol.parse_formula(body)
        n = protocol.parse_domain_size(body)
        wv = protocol.parse_weights(formula, body)

        def call(opts):
            opts = self.registry.prepare(formula, n, wv.vocabulary, opts)
            return probability(formula, n, wv, options=opts)

        def finish(count):
            denominator = wv.total_world_weight(n)
            if denominator == 0:
                raise UnsupportedFormulaError(
                    "total world weight is zero; the weights have no "
                    "probabilistic reading")
            return count / denominator

        return _Prepared(call, CoalesceSpec(formula, n, wv, finish))

    def _prep_weight_sweep(self, body):
        from ..wfomc.solver import wfomc_weight_sweep

        formula = protocol.parse_formula(body)
        n = protocol.parse_domain_size(body)
        values, vocabularies = protocol.parse_sweep(formula, body)

        def call(opts):
            opts = self.registry.prepare(
                formula, n, vocabularies[0].vocabulary, opts)
            results = wfomc_weight_sweep(formula, n, vocabularies,
                                         options=opts)
            return {"values": values, "results": results}

        return _Prepared(call)

    def _prep_mln_query_sweep(self, body):
        from ..mln import mln_query_sweep

        query = protocol.parse_formula(body, "query")
        n = protocol.parse_domain_size(body)
        mlns = protocol.parse_mlns(body)

        def call(opts):
            return mln_query_sweep(mlns, query, n, options=opts)

        return _Prepared(call)
