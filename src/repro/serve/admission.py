"""Admission control: bounded concurrency, bounded queue, load shedding.

The daemon runs at most ``max_concurrency`` evaluations at once (that is
also the executor width) and lets at most ``queue_depth`` requests wait
for a slot.  Anything beyond that is shed *before any work starts* with
:class:`~repro.errors.ServiceOverloadedError` — HTTP 429 plus a
``Retry-After`` estimate — so an overloaded daemon stays responsive and
rejects cheaply instead of queueing unboundedly and timing everything
out.

All counters are touched only on the event loop, so they need no lock.
"""

from __future__ import annotations

import asyncio
import contextlib

from ..errors import ServiceOverloadedError

__all__ = ["AdmissionController"]


class AdmissionController:
    """Semaphore-bounded concurrency with a bounded wait queue."""

    def __init__(self, max_concurrency, queue_depth):
        self.max_concurrency = max(1, int(max_concurrency))
        self.queue_depth = max(0, int(queue_depth))
        self._slots = asyncio.Semaphore(self.max_concurrency)
        self.running = 0
        self.waiting = 0
        self.admitted = 0
        self.shed = 0

    def retry_after(self):
        """Seconds a shed client should wait: one drain of the queue."""
        return max(1, self.waiting)

    @contextlib.asynccontextmanager
    async def admit(self):
        """Hold one evaluation slot; shed when the queue is full."""
        if self.waiting >= self.queue_depth and self._slots.locked():
            self.shed += 1
            raise ServiceOverloadedError(
                "admission queue full ({} running, {} waiting)".format(
                    self.running, self.waiting),
                retry_after=self.retry_after())
        self.waiting += 1
        try:
            await self._slots.acquire()
        finally:
            self.waiting -= 1
        self.running += 1
        self.admitted += 1
        try:
            yield
        finally:
            self.running -= 1
            self._slots.release()

    def snapshot(self):
        """Counter view for ``/metrics``."""
        return {
            "max_concurrency": self.max_concurrency,
            "queue_depth": self.queue_depth,
            "running": self.running,
            "waiting": self.waiting,
            "admitted": self.admitted,
            "shed": self.shed,
        }
