"""Admission control: bounded concurrency, bounded queue, load shedding.

The daemon runs at most ``max_concurrency`` evaluations at once (that is
also the executor width) and lets at most ``queue_depth`` requests wait
for a slot.  Anything beyond that is shed *before any work starts* with
:class:`~repro.errors.ServiceOverloadedError` — HTTP 429 plus a
``Retry-After`` estimate — so an overloaded daemon stays responsive and
rejects cheaply instead of queueing unboundedly and timing everything
out.

Slots are handed off through an explicit FIFO of waiter futures rather
than an :class:`asyncio.Semaphore`.  The semaphore's cancellation
semantics have shifted across the 3.10–3.12 interpreters this repo
supports, and none of its variants covers the window this daemon
actually hits: a queued waiter whose slot has been *granted* but whose
task is then cancelled or abandoned (client disconnect, the 2x
hard-abandon, a pending task destroyed at teardown) must hand the slot
to the next waiter — otherwise serve capacity shrinks permanently.
Here the hand-back is explicit and covers ``BaseException``, so even a
``GeneratorExit`` thrown into an abandoned waiter returns the slot.

All counters are touched only on the event loop, so they need no lock.
"""

from __future__ import annotations

import asyncio
import collections
import contextlib

from ..errors import ServiceOverloadedError

__all__ = ["AdmissionController"]


class AdmissionController:
    """FIFO slot queue: bounded concurrency with a bounded wait queue."""

    def __init__(self, max_concurrency, queue_depth):
        self.max_concurrency = max(1, int(max_concurrency))
        self.queue_depth = max(0, int(queue_depth))
        self._free = self.max_concurrency
        self._waiters = collections.deque()
        self.running = 0
        self.admitted = 0
        self.shed = 0

    @property
    def waiting(self):
        """Requests queued for a slot right now."""
        return len(self._waiters)

    def retry_after(self):
        """Seconds a shed client should wait: one drain of the queue."""
        return max(1, self.waiting)

    def _grant_next(self):
        """Hand free slots to queued waiters, oldest first."""
        while self._free > 0 and self._waiters:
            waiter = self._waiters.popleft()
            if waiter.done():  # cancelled while queued; skip it
                continue
            self._free -= 1
            waiter.set_result(None)

    def _release_slot(self):
        self._free += 1
        self._grant_next()

    async def _acquire_slot(self):
        if self._free > 0 and not self._waiters:
            self._free -= 1
            return
        waiter = asyncio.get_running_loop().create_future()
        self._waiters.append(waiter)
        try:
            await waiter
        except BaseException:
            # Cancelled or abandoned.  If the slot was already granted
            # to this waiter (future resolved, exception injected before
            # the task resumed), pass it straight on; otherwise just
            # leave the queue.
            if waiter.done() and not waiter.cancelled():
                self._release_slot()
            else:
                try:
                    self._waiters.remove(waiter)
                except ValueError:
                    pass
            raise

    @contextlib.asynccontextmanager
    async def admit(self):
        """Hold one evaluation slot; shed when the queue is full."""
        must_wait = self._free == 0 or bool(self._waiters)
        if must_wait and self.waiting >= self.queue_depth:
            self.shed += 1
            raise ServiceOverloadedError(
                "admission queue full ({} running, {} waiting)".format(
                    self.running, self.waiting),
                retry_after=self.retry_after())
        await self._acquire_slot()
        self.running += 1
        self.admitted += 1
        try:
            yield
        finally:
            self.running -= 1
            self._release_slot()

    def snapshot(self):
        """Counter view for ``/metrics``."""
        return {
            "max_concurrency": self.max_concurrency,
            "queue_depth": self.queue_depth,
            "running": self.running,
            "waiting": self.waiting,
            "admitted": self.admitted,
            "shed": self.shed,
        }
