"""Compiled-circuit registry: compile once, serve every request.

The daemon's amortization heart.  Circuits are weight-independent
(:func:`repro.compile.compile_wfomc` keys on ``(formula, n, vocabulary
signature, method)``), so one compile serves every weight vector any
client ever submits for that instance.  The registry adds what the
module-level compile cache does not have:

* **single-flight compilation** — N concurrent requests for the same
  cold instance produce one compile; the rest block on a per-key lock
  and reuse it (``waits`` counts the queued ones);
* **failure memoisation** — an instance whose compile failed for a
  budget-independent reason is marked, and later requests degrade to
  direct counting immediately instead of re-failing a compile per
  request;
* **counters** for ``/metrics``.

Budget discipline: a compile interrupted by the request's
:class:`~repro.resilience.limits.Budget` propagates
:class:`~repro.errors.BudgetExceededError` and is *not* marked failed —
the next request (with its own budget) retries and warm-starts from
whatever the caches kept.
"""

from __future__ import annotations

import logging
import threading
import time

from ..errors import BudgetExceededError
from ..obs import get_logger, slog, span
from ..utils import LRUCache, vocabulary_signature

_LOG = get_logger("serve.registry")

__all__ = ["CircuitRegistry"]

#: Marker cached for instances whose compilation failed deterministically.
_FAILED = object()


class CircuitRegistry:
    """Single-flight, bounded registry of compiled WFOMC circuits."""

    def __init__(self, capacity=64):
        self._cache = LRUCache(capacity)
        # Single-flight locks come from a fixed pool indexed by key hash
        # rather than a per-key dict: a dict entry per distinct instance
        # ever served is a memory leak on a long-running daemon (the LRU
        # evicts the circuit but nothing evicted the lock).  A hash
        # collision merely serializes two unrelated cold compiles — the
        # double-checked cache read under the lock keeps single-flight
        # exact either way.
        self._locks = tuple(threading.Lock() for _ in range(capacity))
        self._meta = threading.Lock()
        #: Optional :class:`~repro.obs.Histogram` of compile durations;
        #: the daemon points it at its ``compile`` phase histogram.
        self.compile_hist = None
        self.compiles = 0
        self.hits = 0
        self.failure_hits = 0
        self.waits = 0
        self.failures = 0
        self.degraded_direct = 0

    def _count(self, name):
        with self._meta:
            setattr(self, name, getattr(self, name) + 1)

    def _key_lock(self, key):
        return self._locks[hash(key) % len(self._locks)]

    @staticmethod
    def key(formula, n, vocabulary, options):
        """The weight-independent circuit identity of a request."""
        return (formula, n, vocabulary_signature(vocabulary, ordered=True),
                options.method)

    def prepare(self, formula, n, vocabulary, options):
        """Resolve the options a request should actually run with.

        When ``options`` asks for the compiled fast path, make sure the
        instance's circuit exists (compiling it under the request's
        budget if cold).  Returns ``options`` unchanged on success, or a
        direct-counting replacement when this instance is known not to
        compile — the graceful-degradation contract: a compile miss
        costs the requester a slower answer, never an error.
        """
        if not options.compiled:
            return options
        entry = self._ensure(formula, n, vocabulary, options)
        if entry is _FAILED:
            self._count("degraded_direct")
            return options.replace(compile=None, backend=None)
        return options

    def peek(self, formula, n, vocabulary, options):
        """The live compiled circuit for a request, or ``None``.

        Never compiles: a miss (cold instance) and a memoized failure
        both return ``None``, so callers that can only use a warm
        circuit (the request coalescer) fall back to the ordinary path
        without ever blocking on a compile.  A hit refreshes LRU
        recency — a circuit hot enough to coalesce on should not be the
        next eviction victim.
        """
        entry = self._cache.get(self.key(formula, n, vocabulary, options))
        if entry is None or entry is _FAILED:
            return None
        self._count("hits")
        return entry

    def _ensure(self, formula, n, vocabulary, options):
        key = self.key(formula, n, vocabulary, options)
        entry = self._cache.get(key)
        if entry is not None:
            self._count("failure_hits" if entry is _FAILED else "hits")
            return entry
        lock = self._key_lock(key)
        if not lock.acquire(blocking=False):
            self._count("waits")
            lock.acquire()
        try:
            entry = self._cache.get(key)
            if entry is not None:
                self._count("failure_hits" if entry is _FAILED else "hits")
                return entry
            entry = self._compile(formula, n, vocabulary, options)
            self._cache.put(key, entry)
            return entry
        finally:
            lock.release()

    def _compile(self, formula, n, vocabulary, options):
        from ..compile import compile_wfomc

        started = time.monotonic()
        try:
            with span("registry_compile", cat="serve", n=n,
                      method=options.method):
                compiled = compile_wfomc(
                    formula, n, vocabulary, method=options.method,
                    persist=options.persist, cache_dir=options.cache_dir,
                    budget=options.budget)
        except BudgetExceededError:
            raise
        except Exception as exc:  # noqa: BLE001 — memoized as failed
            self._count("failures")
            slog(_LOG, logging.WARNING, "compile_failed", n=n,
                 method=options.method, exc_type=type(exc).__name__)
            return _FAILED
        finally:
            if self.compile_hist is not None:
                self.compile_hist.record(time.monotonic() - started)
        self._count("compiles")
        return compiled

    def snapshot(self):
        """Counter view for ``/metrics``.

        ``entries`` counts live circuits only; instances memoized as
        failed are reported separately as ``failed_entries`` (both read
        through the cache's locked accessors, never its internals).
        """
        failed = sum(1 for entry in self._cache.values()
                     if entry is _FAILED)
        total = len(self._cache)
        with self._meta:
            return {
                "compiles": self.compiles,
                "hits": self.hits,
                "failure_hits": self.failure_hits,
                "waits": self.waits,
                "failures": self.failures,
                "degraded_direct": self.degraded_direct,
                "entries": total - failed,
                "failed_entries": failed,
            }
