"""Compiled-circuit registry: compile once, serve every request.

The daemon's amortization heart.  Circuits are weight-independent
(:func:`repro.compile.compile_wfomc` keys on ``(formula, n, vocabulary
signature, method)``), so one compile serves every weight vector any
client ever submits for that instance.  The registry adds what the
module-level compile cache does not have:

* **single-flight compilation** — N concurrent requests for the same
  cold instance produce one compile; the rest block on a per-key lock
  and reuse it (``waits`` counts the queued ones);
* **failure memoisation** — an instance whose compile failed for a
  budget-independent reason is marked, and later requests degrade to
  direct counting immediately instead of re-failing a compile per
  request;
* **counters** for ``/metrics``.

Budget discipline: a compile interrupted by the request's
:class:`~repro.resilience.limits.Budget` propagates
:class:`~repro.errors.BudgetExceededError` and is *not* marked failed —
the next request (with its own budget) retries and warm-starts from
whatever the caches kept.
"""

from __future__ import annotations

import threading

from ..errors import BudgetExceededError
from ..utils import LRUCache, vocabulary_signature

__all__ = ["CircuitRegistry"]

#: Marker cached for instances whose compilation failed deterministically.
_FAILED = object()


class CircuitRegistry:
    """Single-flight, bounded registry of compiled WFOMC circuits."""

    def __init__(self, capacity=64):
        self._cache = LRUCache(capacity)
        self._locks = {}
        self._meta = threading.Lock()
        self.compiles = 0
        self.hits = 0
        self.waits = 0
        self.failures = 0
        self.degraded_direct = 0

    def _count(self, name):
        with self._meta:
            setattr(self, name, getattr(self, name) + 1)

    def _key_lock(self, key):
        with self._meta:
            lock = self._locks.get(key)
            if lock is None:
                lock = self._locks[key] = threading.Lock()
            return lock

    def prepare(self, formula, n, vocabulary, options):
        """Resolve the options a request should actually run with.

        When ``options`` asks for the compiled fast path, make sure the
        instance's circuit exists (compiling it under the request's
        budget if cold).  Returns ``options`` unchanged on success, or a
        direct-counting replacement when this instance is known not to
        compile — the graceful-degradation contract: a compile miss
        costs the requester a slower answer, never an error.
        """
        if not options.compiled:
            return options
        entry = self._ensure(formula, n, vocabulary, options)
        if entry is _FAILED:
            self._count("degraded_direct")
            return options.replace(compile=None, backend=None)
        return options

    def _ensure(self, formula, n, vocabulary, options):
        key = (formula, n, vocabulary_signature(vocabulary, ordered=True),
               options.method)
        entry = self._cache.get(key)
        if entry is not None:
            self._count("hits")
            return entry
        lock = self._key_lock(key)
        if not lock.acquire(blocking=False):
            self._count("waits")
            lock.acquire()
        try:
            entry = self._cache.get(key)
            if entry is not None:
                self._count("hits")
                return entry
            entry = self._compile(formula, n, vocabulary, options)
            self._cache.put(key, entry)
            return entry
        finally:
            lock.release()

    def _compile(self, formula, n, vocabulary, options):
        from ..compile import compile_wfomc

        try:
            compiled = compile_wfomc(
                formula, n, vocabulary, method=options.method,
                persist=options.persist, cache_dir=options.cache_dir,
                budget=options.budget)
        except BudgetExceededError:
            raise
        except Exception:
            self._count("failures")
            return _FAILED
        self._count("compiles")
        return compiled

    def snapshot(self):
        """Counter view for ``/metrics``."""
        with self._meta:
            return {
                "compiles": self.compiles,
                "hits": self.hits,
                "waits": self.waits,
                "failures": self.failures,
                "degraded_direct": self.degraded_direct,
                "entries": len(self._cache._data),
            }
