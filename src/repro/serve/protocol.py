"""Wire protocol for the ``repro serve`` daemon.

Requests and responses are JSON.  Exact rationals never degrade: every
:class:`~fractions.Fraction` crosses the wire as a ``"p/q"`` string (or
``"p"`` for integers) in both directions, so a served answer is
bit-identical to the library call it stands for.

Request fields (POST bodies):

``formula`` / ``query``
    An FO sentence in the :func:`repro.logic.parse` surface syntax.
``n``
    Domain size.
``weights``
    Optional ``{"R": ["w", "wbar"], ...}`` per-predicate weight pairs;
    unnamed predicates default to ``(1, 1)`` exactly like the CLI.
``vary`` / ``values`` / ``wbar``
    Weight-sweep axis (mirrors ``repro sweep``).
``mlns``
    A list of MLNs, each a list of ``[weight, formula]`` pairs where
    ``weight`` is a fraction string or ``"hard"``.
``deadline_ms``
    Per-request wall-clock deadline, mapped onto a
    :class:`~repro.resilience.limits.Budget` by the daemon.

Error payloads are typed: ``{"ok": false, "error": {"type", "message",
"retriable"}}`` with the HTTP status carrying the family —
400 input, 429 shed (``Retry-After``), 503 draining, 504 budget,
500 internal.
"""

from __future__ import annotations

from fractions import Fraction

from ..errors import (
    BudgetExceededError,
    ReproError,
    ServiceDrainingError,
    ServiceOverloadedError,
)
from ..logic import Predicate, Vocabulary, WeightedVocabulary, parse
from ..logic.syntax import predicates_of
from ..weights import WeightPair

__all__ = [
    "encode_result",
    "error_body",
    "error_status",
    "parse_deadline_ms",
    "parse_domain_size",
    "parse_formula",
    "parse_mlns",
    "parse_sweep",
    "parse_weights",
]

#: Error classes whose requests are safe to resubmit verbatim.
RETRIABLE = (BudgetExceededError, ServiceOverloadedError,
             ServiceDrainingError)


def encode_result(value):
    """JSON-encodable view of a result; Fractions become ``"p/q"``."""
    if isinstance(value, Fraction):
        return str(value)
    if isinstance(value, bool) or value is None:
        return value
    if isinstance(value, (int, float, str)):
        return value
    if isinstance(value, dict):
        return {str(k): encode_result(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [encode_result(v) for v in value]
    return str(value)


def error_status(exc):
    """The HTTP status for an exception, per the family taxonomy."""
    if isinstance(exc, ServiceOverloadedError):
        return 429
    if isinstance(exc, ServiceDrainingError):
        return 503
    if isinstance(exc, BudgetExceededError):
        return 504
    if isinstance(exc, ReproError):
        return 400
    return 500


def error_body(exc):
    """The typed JSON error payload for an exception."""
    return {
        "ok": False,
        "error": {
            "type": type(exc).__name__,
            "message": str(exc) or type(exc).__name__,
            "retriable": isinstance(exc, RETRIABLE),
        },
    }


def _require(body, field, kinds, label):
    if field not in body:
        raise ReproError("missing required field {!r}".format(field))
    value = body[field]
    if isinstance(value, bool) or not isinstance(value, kinds):
        raise ReproError("field {!r} must be {}".format(field, label))
    return value


def _fraction(text, field):
    if isinstance(text, bool) or not isinstance(text, (str, int)):
        raise ReproError(
            "field {!r} holds a non-rational value {!r}".format(field, text))
    try:
        return Fraction(str(text))
    except (ValueError, ZeroDivisionError) as exc:
        raise ReproError(
            "bad fraction in field {!r}: {}".format(field, exc)) from None


def parse_formula(body, field="formula"):
    """Parse the sentence under ``field`` (raises typed input errors)."""
    return parse(_require(body, field, str, "a formula string"))


def parse_domain_size(body):
    """The ``n`` field; range validation happens in the solver."""
    return _require(body, "n", int, "an integer domain size")


def parse_deadline_ms(body, default_ms=None):
    """The per-request deadline in milliseconds, or ``default_ms``."""
    raw = body.get("deadline_ms", default_ms)
    if raw is None:
        return None
    if isinstance(raw, bool) or not isinstance(raw, (int, float)) or raw < 0:
        raise ReproError('field "deadline_ms" must be a non-negative number')
    return float(raw)


def parse_weights(formula, body):
    """The request's :class:`WeightedVocabulary` (CLI-equivalent rules)."""
    arities = predicates_of(formula)
    vocab = Vocabulary(Predicate(name, arity)
                       for name, arity in sorted(arities.items()))
    weights = {name: WeightPair(1, 1) for name in arities}
    raw = body.get("weights") or {}
    if not isinstance(raw, dict):
        raise ReproError('field "weights" must be an object of'
                         ' NAME: [w, wbar] pairs')
    for name, pair in raw.items():
        if name not in weights:
            raise ReproError(
                "predicate {} does not occur in the sentence".format(name))
        if not isinstance(pair, (list, tuple)) or len(pair) != 2:
            raise ReproError(
                "weight for {} must be a [w, wbar] pair".format(name))
        weights[name] = WeightPair(_fraction(pair[0], "weights"),
                                   _fraction(pair[1], "weights"))
    return WeightedVocabulary(vocab, weights)


def parse_sweep(formula, body):
    """``(values, vocabularies)`` for a weight sweep request."""
    base = parse_weights(formula, body)
    vary = _require(body, "vary", str, "a predicate name")
    if vary not in base.vocabulary:
        raise ReproError(
            "predicate {} does not occur in the sentence".format(vary))
    raw_values = _require(body, "values", (list, tuple), "a list of weights")
    if not raw_values:
        raise ReproError('field "values" must be non-empty')
    wbar = _fraction(body.get("wbar", 1), "wbar")
    values = [_fraction(v, "values") for v in raw_values]
    vocabularies = [base.with_weight(vary, WeightPair(value, wbar))
                    for value in values]
    return values, vocabularies


def parse_mlns(body):
    """The list of :class:`~repro.mln.MLN` models of a query sweep."""
    from ..mln import HARD, MLN

    raw = _require(body, "mlns", (list, tuple), "a list of MLNs")
    if not raw:
        raise ReproError('field "mlns" must be non-empty')
    mlns = []
    for i, constraints in enumerate(raw):
        if not isinstance(constraints, (list, tuple)) or not constraints:
            raise ReproError(
                "mlns[{}] must be a non-empty list of [weight, formula]"
                " pairs".format(i))
        parsed = []
        for entry in constraints:
            if not isinstance(entry, (list, tuple)) or len(entry) != 2:
                raise ReproError(
                    "mlns[{}] entries must be [weight, formula]"
                    " pairs".format(i))
            weight_raw, formula_text = entry
            if isinstance(weight_raw, str) and weight_raw.lower() == "hard":
                weight = HARD
            else:
                weight = _fraction(weight_raw, "mlns")
            if not isinstance(formula_text, str):
                raise ReproError(
                    "mlns[{}] formulas must be strings".format(i))
            parsed.append((weight, parse(formula_text)))
        try:
            mlns.append(MLN(parsed))
        except ValueError as exc:
            raise ReproError("mlns[{}]: {}".format(i, exc)) from None
    return mlns
