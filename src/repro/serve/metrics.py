"""The daemon's ``/metrics`` snapshot and Prometheus exposition.

One JSON document merging every observable layer: the HTTP server's own
request/outcome counters, per-endpoint latency and per-phase timing
histograms (p50/p95/p99), admission control, the compiled-circuit
registry, the engine and solver caches, the compilation layer, open
persistent stores (local counters plus the network tier's retry/breaker
state), and any active fault-injection plan.  Everything here is a
cheap in-memory read — ``/metrics`` is safe to poll.

``/metrics?format=prometheus`` renders the same data as Prometheus text
exposition (format 0.0.4): the outcome counters as ``repro_*_total``
counters, the latency histograms as summaries with ``quantile`` labels
— scrapeable by a stock Prometheus without an exporter sidecar.
"""

from __future__ import annotations

import os

__all__ = ["metrics_snapshot", "prometheus_text"]


def _store_metrics():
    from ..cache.store import _STORES

    rows = {"retries": 0, "reenables": 0, "disk_full": 0,
            "net_retries": 0, "net_reenables": 0, "net_errors": 0,
            "open": 0}
    for store in list(_STORES.values()):
        if store.pid != os.getpid():
            continue
        rows["open"] += 1
        if hasattr(store, "remote"):
            # The tiered store's local half is registered separately;
            # only the network-tier counters are new information.
            rows["net_retries"] += store.remote.retries
            rows["net_reenables"] += store.remote.reenables
            rows["net_errors"] += store.remote.errors
            rows["open"] -= 1
            continue
        for name in ("retries", "reenables", "disk_full"):
            rows[name] += getattr(store, name)
    return rows


def _latency_metrics(server):
    with server._latency_lock:
        hists = dict(server.latency)
    return {endpoint: hist.snapshot() for endpoint, hist in hists.items()}


def metrics_snapshot(server):
    """Everything observable about a running :class:`ReproServer`."""
    from ..compile import compile_stats
    from ..propositional.counter import engine_stats
    from ..resilience.faults import fault_counters
    from ..wfomc.solver import solver_cache_stats

    engine = engine_stats()
    engine.pop("cnf_cache", None)
    faults = {k: v for k, v in fault_counters().items() if v}
    return {
        "ok": True,
        "draining": server.draining,
        "server": server.counters_snapshot(),
        "latency": _latency_metrics(server),
        "phases": {name: hist.snapshot()
                   for name, hist in server.phases.items()},
        "admission": server.admission.snapshot() if server.admission else {},
        "coalesce": server.coalescer.snapshot() if server.coalescer else {},
        "registry": server.registry.snapshot(),
        "engine": engine,
        "solver_caches": solver_cache_stats(),
        "compile": compile_stats(),
        "store": _store_metrics(),
        "faults_fired": faults,
    }


def _escape_label(value):
    return (str(value).replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _summary_lines(lines, metric, label, snapshots):
    """Render ``{label_value: Histogram.snapshot()}`` as one summary
    metric family with ``quantile`` labels plus ``_sum``/``_count``."""
    lines.append("# TYPE {} summary".format(metric))
    for value, snap in sorted(snapshots.items()):
        if not snap["count"]:
            continue
        tag = '{}="{}"'.format(label, _escape_label(value))
        for q, key in (("0.5", "p50"), ("0.95", "p95"), ("0.99", "p99")):
            lines.append('{}{{{},quantile="{}"}} {}'.format(
                metric, tag, q, snap[key]))
        lines.append("{}_sum{{{}}} {}".format(metric, tag, snap["sum"]))
        lines.append("{}_count{{{}}} {}".format(metric, tag, snap["count"]))


def prometheus_text(server):
    """The Prometheus text exposition (format 0.0.4) of the snapshot."""
    lines = []
    for name, value in sorted(server.counters_snapshot().items()):
        metric = "repro_server_{}_total".format(name)
        lines.append("# TYPE {} counter".format(metric))
        lines.append("{} {}".format(metric, value))
    lines.append("# TYPE repro_server_draining gauge")
    lines.append("repro_server_draining {}".format(int(server.draining)))
    _summary_lines(lines, "repro_request_duration_seconds", "endpoint",
                   _latency_metrics(server))
    _summary_lines(lines, "repro_phase_duration_seconds", "phase",
                   {name: hist.snapshot()
                    for name, hist in server.phases.items()})
    if server.admission is not None:
        for name, value in sorted(server.admission.snapshot().items()):
            metric = "repro_admission_{}".format(name)
            lines.append("# TYPE {} gauge".format(metric))
            lines.append("{} {}".format(metric, value))
    return "\n".join(lines) + "\n"
