"""The daemon's ``/metrics`` snapshot.

One JSON document merging every observable layer: the HTTP server's own
request/outcome counters, admission control, the compiled-circuit
registry, the engine and solver caches, the compilation layer, open
persistent stores (local counters plus the network tier's retry/breaker
state), and any active fault-injection plan.  Everything here is a
cheap in-memory read — ``/metrics`` is safe to poll.
"""

from __future__ import annotations

import os

__all__ = ["metrics_snapshot"]


def _store_metrics():
    from ..cache.store import _STORES

    rows = {"retries": 0, "reenables": 0, "disk_full": 0,
            "net_retries": 0, "net_reenables": 0, "net_errors": 0,
            "open": 0}
    for store in list(_STORES.values()):
        if store.pid != os.getpid():
            continue
        rows["open"] += 1
        if hasattr(store, "remote"):
            # The tiered store's local half is registered separately;
            # only the network-tier counters are new information.
            rows["net_retries"] += store.remote.retries
            rows["net_reenables"] += store.remote.reenables
            rows["net_errors"] += store.remote.errors
            rows["open"] -= 1
            continue
        for name in ("retries", "reenables", "disk_full"):
            rows[name] += getattr(store, name)
    return rows


def metrics_snapshot(server):
    """Everything observable about a running :class:`ReproServer`."""
    from ..compile import compile_stats
    from ..propositional.counter import engine_stats
    from ..resilience.faults import fault_counters
    from ..wfomc.solver import solver_cache_stats

    engine = engine_stats()
    engine.pop("cnf_cache", None)
    faults = {k: v for k, v in fault_counters().items() if v}
    return {
        "ok": True,
        "draining": server.draining,
        "server": dict(server.counters),
        "admission": server.admission.snapshot() if server.admission else {},
        "coalesce": server.coalescer.snapshot() if server.coalescer else {},
        "registry": server.registry.snapshot(),
        "engine": engine,
        "solver_caches": solver_cache_stats(),
        "compile": compile_stats(),
        "store": _store_metrics(),
        "faults_fired": faults,
    }
