"""``repro.serve``: the resilient HTTP inference daemon.

Run it with ``repro serve`` (see :mod:`repro.cli`) or embed it::

    import asyncio
    from repro.serve import ReproServer, ServeConfig

    async def main():
        server = await ReproServer(ServeConfig(port=8080)).start()
        print(server.url)
        await server.run()          # serves until SIGTERM/SIGINT

    asyncio.run(main())

The package splits by concern: :mod:`~repro.serve.protocol` (wire
format and error taxonomy), :mod:`~repro.serve.registry` (single-flight
compiled-circuit registry), :mod:`~repro.serve.admission` (bounded
concurrency and load shedding), :mod:`~repro.serve.coalesce`
(cross-request batching into vectorized circuit passes),
:mod:`~repro.serve.metrics` (``/metrics`` snapshot), and
:mod:`~repro.serve.daemon` (the asyncio HTTP loop, deadline
propagation, degradation, and drain).
"""

from .admission import AdmissionController
from .coalesce import RequestCoalescer
from .daemon import ReproServer, ServeConfig
from .registry import CircuitRegistry

__all__ = [
    "AdmissionController",
    "CircuitRegistry",
    "RequestCoalescer",
    "ReproServer",
    "ServeConfig",
]
