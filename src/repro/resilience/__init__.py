"""Fault tolerance and resource limits for the counting stack.

Two small, dependency-free modules:

* :mod:`repro.resilience.limits` — :class:`Budget`: wall-clock
  deadlines, conflict/decision caps, and cooperative cancellation,
  carried on :class:`~repro.options.SolverOptions` and checked cheaply
  inside the engine's inner loops.  Tripping raises
  :class:`~repro.errors.BudgetExceededError` with partial stats;
  every cache stays consistent, so a retried call warm-starts and
  completes bit-identically (anytime behavior).

* :mod:`repro.resilience.faults` — :class:`FaultPlan`: a seeded,
  deterministic fault injector (store busy/corruption/torn-write/
  disk-full, worker crashes) activatable programmatically or through
  ``$REPRO_FAULT_PLAN`` for subprocess tests.  The fault-injection
  differential suite (``tests/test_faults.py``) uses it to prove the
  solver/MLN entry points return bit-identical results under every
  fault class.
"""

from .limits import Budget
from .faults import FaultPlan, active_plan, clear_plan, install_plan, maybe_fire

__all__ = [
    "Budget",
    "FaultPlan",
    "active_plan",
    "clear_plan",
    "install_plan",
    "maybe_fire",
]
