"""Resource budgets for long-running counts: :class:`Budget`.

Outside the liftable fragments exact counting is unavoidably
superpolynomial, so real workloads *will* run long.  A :class:`Budget`
bounds one logical call — wall-clock deadline, conflict cap, decision
cap, and a cooperative cancellation token — and is carried on
:class:`~repro.options.SolverOptions` into every counting layer.

The engine charges the budget at its natural unit boundaries
(:meth:`Budget.spend_decision`, :meth:`Budget.spend_conflict`); layers
without such units (FO2 cell recursion, trace compilation, future
polling) call :meth:`Budget.tick`.  All three are cheap: counter
bumps plus an explicit-limit comparison, with the clock consulted only
every :data:`CHECK_MASK` + 1 ticks (and on the very first, so a zero
timeout trips immediately).  Tripping raises
:class:`~repro.errors.BudgetExceededError` carrying the reason,
elapsed time, and spent counters.

Budgets are *anytime-safe by construction*: every cache in the stack
(engine component cache, FO2 memo tables, compiled-circuit caches, the
persistent store's write-behind buffer) only ever records fully
computed values, so an aborted call leaves them consistent and a retry
warm-starts from the completed work, finishing bit-identically to an
uninterrupted run.

A ``Budget`` is mutable (it accumulates spend) and identity-hashed, so
a frozen ``SolverOptions`` holding one stays hashable.  It is *not*
shipped to worker processes: deadlines and cancellation are enforced in
the parent while polling worker futures, which keeps worker payloads
picklable and the sub-engines deterministic.
"""

from __future__ import annotations

import time

from ..errors import BudgetExceededError

__all__ = ["Budget", "CHECK_MASK"]

#: The clock is consulted when ``ticks & CHECK_MASK == 1`` — every 64th
#: tick, including the first, so even ``timeout=0`` trips on entry.
CHECK_MASK = 63


class Budget:
    """Wall-clock / conflict / decision limits plus cancellation.

    Parameters
    ----------
    timeout:
        Wall-clock seconds allowed from construction (or the last
        :meth:`restart`).  ``None`` means unlimited.
    max_conflicts / max_decisions:
        Caps on CDCL conflicts / decisions charged via
        :meth:`spend_conflict` / :meth:`spend_decision`.
    clock:
        Injectable monotonic clock (seconds) for deterministic tests.
    """

    __slots__ = ("timeout", "max_conflicts", "max_decisions", "_clock",
                 "_start", "decisions", "conflicts", "ticks", "_cancelled")

    def __init__(self, timeout=None, max_conflicts=None, max_decisions=None,
                 clock=time.monotonic):
        if timeout is not None and timeout < 0:
            raise ValueError("timeout must be >= 0 or None")
        for name, value in (("max_conflicts", max_conflicts),
                            ("max_decisions", max_decisions)):
            if value is not None and (not isinstance(value, int) or value < 0):
                raise ValueError("{} must be a non-negative int or None"
                                 .format(name))
        self.timeout = timeout
        self.max_conflicts = max_conflicts
        self.max_decisions = max_decisions
        self._clock = clock
        self._start = clock()
        self.decisions = 0
        self.conflicts = 0
        self.ticks = 0
        self._cancelled = False

    # -- the cancellation token -------------------------------------------

    def cancel(self):
        """Request cooperative cancellation.

        Safe to call from another thread or a signal handler; the run
        raises :class:`BudgetExceededError` (``reason="cancelled"``) at
        its next check point.
        """
        self._cancelled = True

    @property
    def cancelled(self):
        return self._cancelled

    # -- clock views -------------------------------------------------------

    def elapsed(self):
        """Seconds since construction (or the last :meth:`restart`)."""
        return self._clock() - self._start

    def remaining(self):
        """Seconds left before the deadline; ``None`` if no timeout."""
        if self.timeout is None:
            return None
        return max(0.0, self.timeout - self.elapsed())

    def restart(self):
        """Reset the clock and all spend counters for a fresh attempt."""
        self._start = self._clock()
        self.decisions = 0
        self.conflicts = 0
        self.ticks = 0
        self._cancelled = False

    # -- charging ----------------------------------------------------------

    def _trip(self, reason):
        raise BudgetExceededError(
            reason, elapsed=self.elapsed(),
            spent={"decisions": self.decisions, "conflicts": self.conflicts})

    def check(self):
        """Full check: cancellation, then the wall-clock deadline."""
        if self._cancelled:
            self._trip("cancelled")
        if self.timeout is not None and self.elapsed() >= self.timeout:
            self._trip("timeout")

    def tick(self):
        """Cheap progress heartbeat; consults the clock every 64 ticks."""
        self.ticks += 1
        if self.ticks & CHECK_MASK == 1:
            self.check()

    def spend_decision(self):
        """Charge one engine decision (also ticks)."""
        self.decisions += 1
        if (self.max_decisions is not None
                and self.decisions > self.max_decisions):
            self._trip("max_decisions")
        self.tick()

    def spend_conflict(self):
        """Charge one learned conflict (also ticks)."""
        self.conflicts += 1
        if (self.max_conflicts is not None
                and self.conflicts > self.max_conflicts):
            self._trip("max_conflicts")
        self.tick()

    def __repr__(self):
        parts = []
        for name in ("timeout", "max_conflicts", "max_decisions"):
            value = getattr(self, name)
            if value is not None:
                parts.append("{}={!r}".format(name, value))
        if self._cancelled:
            parts.append("cancelled=True")
        return "Budget({})".format(", ".join(parts))
