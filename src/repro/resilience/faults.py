"""Deterministic fault injection: :class:`FaultPlan`.

Fault tolerance that is never exercised rots.  A :class:`FaultPlan` is
a seeded, reproducible description of *which* faults fire at *which*
call counts, parsed from a compact spec string so subprocess tests can
activate it through the ``$REPRO_FAULT_PLAN`` environment variable.
Production code asks :func:`maybe_fire` at each injection point; with
no plan installed the call is a module-global ``None`` check.

Spec grammar — tokens separated by ``;`` or whitespace::

    seed=N                 seed for the probabilistic streams (default 0)
    KIND@I[,J,...]         fire at the given 1-based call indices
    KIND~N                 fire on every Nth call
    KIND?P                 fire each call with probability P (per-kind
                           deterministic stream seeded on (seed, kind))

Any rule may append ``:once=PATH``: the fault fires only if ``PATH``
does not yet exist and atomically creates it when firing — a
cross-process single-shot marker, e.g. "crash the first worker task,
but only once across pool retries".

Fault kinds (the injection points live in :mod:`repro.cache.store`,
:mod:`repro.cache.netstore`, and :mod:`repro.propositional.counter`):

========================  ==============================================
``store_busy``            transient ``sqlite3`` "database is locked"
``store_disk_full``       ``sqlite3`` "database or disk is full"
``store_corrupt``         ``sqlite3`` "database disk image is malformed"
``store_torn_write``      a stored payload is truncated mid-byte on read
``worker_crash``          a pool worker hard-exits (``os._exit``) mid-task
``net_timeout``           a networked-store request times out
``net_refused``           a networked-store connection is refused
``net_http_error``        the blob tier answers HTTP 500
``net_torn_payload``      a blob-tier payload is truncated mid-byte
========================  ==============================================

Examples::

    REPRO_FAULT_PLAN='store_busy@1,2'          # first two store ops hit BUSY
    REPRO_FAULT_PLAN='worker_crash~1'          # every worker task crashes
    REPRO_FAULT_PLAN='seed=7;store_busy?0.2'   # 20% of ops, reproducibly
    REPRO_FAULT_PLAN='net_timeout~3'           # every 3rd blob request hangs

Plans are fork-aware *and* thread-safe: per-kind call counters and
probability streams reset when the pid changes, so every forked (or
pre-forked serving) worker sees the same deterministic schedule, and
all counter updates take a per-plan lock, so a plan set via
``$REPRO_FAULT_PLAN`` is honored — with exact deterministic counts —
inside ``asyncio`` executor threads and any other concurrent caller.
The environment variable is re-read whenever its value changes, so a
test can flip plans without reloading modules.
"""

from __future__ import annotations

import os
import random
import re
import threading

from ..errors import FaultPlanError

__all__ = ["FAULT_KINDS", "FaultPlan", "active_plan", "clear_plan",
           "install_plan", "maybe_fire", "fault_counters"]

ENV_VAR = "REPRO_FAULT_PLAN"

FAULT_KINDS = ("store_busy", "store_disk_full", "store_corrupt",
               "store_torn_write", "worker_crash",
               "net_timeout", "net_refused", "net_http_error",
               "net_torn_payload")

_TOKEN = re.compile(
    r"^(?P<kind>[a-z_]+)(?P<op>[@~?])(?P<arg>[^:]+?)(?::once=(?P<once>.+))?$")


class FaultPlan:
    """A parsed, deterministic schedule of injected faults."""

    def __init__(self, spec):
        self.spec = spec
        self.seed = 0
        self._rules = {}
        self._parse(spec)
        self._pid = os.getpid()
        self.calls = {kind: 0 for kind in self._rules}
        self.fired = {kind: 0 for kind in self._rules}
        self._rngs = {}
        #: Injection points run on whatever thread executes the faulted
        #: layer — the serving daemon's executor pool in particular.  The
        #: lock makes each call-count increment and stream draw atomic,
        #: so concurrent callers consume the deterministic schedule
        #: exactly once per call instead of racing increments away.
        self._lock = threading.Lock()

    def _parse(self, spec):
        tokens = [t for t in re.split(r"[;\s]+", spec.strip()) if t]
        if not tokens:
            raise FaultPlanError("empty fault-plan spec")
        rules = []
        for token in tokens:
            if token.startswith("seed="):
                try:
                    self.seed = int(token[len("seed="):])
                except ValueError:
                    raise FaultPlanError(
                        "bad seed in fault plan: {!r}".format(token)) from None
                continue
            match = _TOKEN.match(token)
            if match is None:
                raise FaultPlanError(
                    "bad fault-plan token {!r}; expected KIND@I[,J..], "
                    "KIND~N, or KIND?P".format(token))
            kind = match.group("kind")
            if kind not in FAULT_KINDS:
                raise FaultPlanError(
                    "unknown fault kind {!r}; expected one of {}".format(
                        kind, FAULT_KINDS))
            if kind in self._rules or any(k == kind for k, _ in rules):
                raise FaultPlanError(
                    "duplicate rule for fault kind {!r}".format(kind))
            op, arg = match.group("op"), match.group("arg")
            try:
                if op == "@":
                    payload = frozenset(int(i) for i in arg.split(","))
                    if not payload or min(payload) < 1:
                        raise ValueError
                elif op == "~":
                    payload = int(arg)
                    if payload < 1:
                        raise ValueError
                else:
                    payload = float(arg)
                    if not 0.0 <= payload <= 1.0:
                        raise ValueError
            except ValueError:
                raise FaultPlanError(
                    "bad argument in fault-plan token {!r}".format(
                        token)) from None
            rules.append((kind, (op, payload, match.group("once"))))
        self._rules = dict(rules)

    def _maybe_reset_for_fork(self):
        pid = os.getpid()
        if pid != self._pid:
            # A forked worker inherits the parent's counters; reset so
            # every worker sees the same deterministic schedule.
            self._pid = pid
            self.calls = {kind: 0 for kind in self._rules}
            self.fired = {kind: 0 for kind in self._rules}
            self._rngs = {}

    def _rng(self, kind):
        rng = self._rngs.get(kind)
        if rng is None:
            # String seeding is deterministic (hashed with SHA-512), so
            # the per-kind stream reproduces across processes and runs.
            rng = self._rngs[kind] = random.Random(
                "{}:{}".format(self.seed, kind))
        return rng

    def should_fire(self, kind):
        """Count one call at ``kind``'s injection point; True to fault."""
        rule = self._rules.get(kind)
        if rule is None:
            return False
        with self._lock:
            self._maybe_reset_for_fork()
            self.calls[kind] += 1
            count = self.calls[kind]
            op, payload, once = rule
            if op == "@":
                fire = count in payload
            elif op == "~":
                fire = count % payload == 0
            else:
                fire = self._rng(kind).random() < payload
            if fire and once is not None:
                # The marker file is the cross-process single-shot gate;
                # O_EXCL creation keeps it atomic across processes, the
                # plan lock keeps it atomic across threads.
                try:
                    with open(once, "x"):
                        pass
                except OSError:  # exists already, or uncreatable
                    fire = False
            if fire:
                self.fired[kind] += 1
            return fire

    def stats(self):
        """Per-kind call/fired counters (for ``repro stats`` and tests)."""
        return {"spec": self.spec,
                "calls": dict(self.calls),
                "fired": dict(self.fired)}

    def __repr__(self):
        return "FaultPlan({!r})".format(self.spec)


# -- activation -----------------------------------------------------------
#
# Precedence: a programmatically installed plan wins over the
# environment.  The env plan is cached keyed on the spec string, so
# changing or unsetting $REPRO_FAULT_PLAN mid-process takes effect at
# the next injection point (tests flip it freely).

_INSTALLED = None
_ENV_SPEC = None
_ENV_PLAN = None
#: Guards the env-plan cache: concurrent first calls from executor
#: threads must agree on one plan object (two plans would each keep
#: private call counters and double the schedule).
_ENV_LOCK = threading.Lock()


def install_plan(plan):
    """Install a plan (or spec string) for this process; returns it."""
    global _INSTALLED
    if isinstance(plan, str):
        plan = FaultPlan(plan)
    _INSTALLED = plan
    return plan


def clear_plan():
    """Remove any programmatically installed plan."""
    global _INSTALLED
    _INSTALLED = None


def active_plan():
    """The currently active plan, or ``None``."""
    global _ENV_SPEC, _ENV_PLAN
    if _INSTALLED is not None:
        return _INSTALLED
    spec = os.environ.get(ENV_VAR)
    with _ENV_LOCK:
        if not spec:
            _ENV_SPEC = _ENV_PLAN = None
            return None
        if spec != _ENV_SPEC:
            _ENV_PLAN = FaultPlan(spec)
            _ENV_SPEC = spec
        return _ENV_PLAN


def maybe_fire(kind):
    """True when the active plan (if any) injects a ``kind`` fault now."""
    plan = _INSTALLED
    if plan is None:
        if _ENV_SPEC is None and ENV_VAR not in os.environ:
            return False
        plan = active_plan()
        if plan is None:
            return False
    return plan.should_fire(kind)


def fault_counters():
    """Aggregated fired-fault counters of the active plan (may be {})."""
    plan = _INSTALLED if _INSTALLED is not None else _ENV_PLAN
    if plan is None:
        return {}
    return dict(plan.fired)
