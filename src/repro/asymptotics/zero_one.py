"""0-1 laws computed through FOMC (the Section 1 discussion).

``mu_n(Phi)`` is the fraction of labeled structures over ``[n]``
satisfying ``Phi``; Fagin's 0-1 law says it converges to 0 or 1 for
every FO sentence.  The paper's #P1-hardness result shows there is no
*elementary* proof route via closed-form model counts — no closed
formula for ``FOMC(Phi, n)`` is computable in general — but for the
sentences our solvers handle, ``mu_n`` is computable exactly, and the
examples/benchmarks display the convergence.

Also included: the (simplified) extension axioms of Table 2, the
building blocks of Fagin's transfer-theorem proof.
"""

from __future__ import annotations

from fractions import Fraction

from ..logic.syntax import Atom, Var, conj, disj, exists, forall, neg, Eq
from ..logic.vocabulary import WeightedVocabulary
from ..utils import check_domain_size
from ..wfomc.solver import wfomc

__all__ = ["mu_n", "mu_sequence", "extension_axiom", "simplified_extension_axiom"]


def mu_n(formula, n, method="auto"):
    """``mu_n(Phi) = FOMC(Phi, n) / 2**|Tup(n)|`` as an exact Fraction."""
    check_domain_size(n)
    wv = WeightedVocabulary.counting(formula)
    count = wfomc(formula, n, wv, method=method)
    total = 2 ** wv.vocabulary.num_ground_tuples(n)
    return Fraction(count, total)


def mu_sequence(formula, sizes, method="auto"):
    """``[mu_n(Phi) for n in sizes]`` — watch the 0-1 law converge."""
    return [mu_n(formula, n, method=method) for n in sizes]


def simplified_extension_axiom():
    """The simplified extension axiom from Table 2 (an open problem).

    ``forall x1, x2, x3 (distinct -> exists y E(x1,y) & E(x2,y) & E(x3,y))``
    """
    return extension_axiom(3)


def extension_axiom(k, predicate="E"):
    """The k-ary "common neighbor" extension axiom over a binary ``E``.

    ``forall x1..xk (pairwise distinct -> exists y. E(x1,y) & ... & E(xk,y))``

    Each extension axiom has asymptotic probability 1 (Fagin); the exact
    counting complexity of even the simplified ``k = 3`` case is open
    (Table 2).
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    xs = [Var("x{}".format(i)) for i in range(1, k + 1)]
    y = Var("y")
    distinct = [
        neg(Eq(xs[i], xs[j])) for i in range(k) for j in range(i + 1, k)
    ]
    common = exists([y], conj(*(Atom(predicate, (x, y)) for x in xs)))
    if distinct:
        # ~(x_i all distinct) | common, via De Morgan on the disequalities.
        body = disj(*(neg(d) for d in distinct), common)
    else:
        body = common
    return forall(xs, body)
