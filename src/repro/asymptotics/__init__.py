"""Asymptotics: 0-1 laws and extension axioms (Section 1)."""

from .zero_one import mu_n, mu_sequence, extension_axiom, simplified_extension_axiom

__all__ = ["mu_n", "mu_sequence", "extension_axiom", "simplified_extension_axiom"]
