"""A rule-based lifted WFOMC engine — and its limits (Theorem 3.7's point).

The lifted-inference literature computes symmetric WFOMC by applying a
small set of *lifted rules*; the paper observes (discussion of Theorem
3.7) that the known rule sets compute all of FO2 yet **cannot** compute
Q_S4 — "we do not yet have a candidate for a complete set of lifted
inference rules".  This module makes that observation executable: an
engine with the standard rules, which

* computes every Skolemized FO2 theory in polynomial time (validated
  against the Appendix C cell algorithm), and
* raises :class:`RulesIncompleteError` on Q_S4 — while the special
  dynamic program of :mod:`repro.wfomc.qs4` computes it fine.

Rules (on theories of universally quantified clauses over typed,
pairwise-disjoint domains):

independence
    Clauses sharing no ground atoms count independently (their product).
ground Shannon expansion
    A literal all of whose argument domains are singletons is a single
    ground atom: branch on it (this subsumes the zero-ary expansion of
    Appendix C).
unary atom counting
    Condition on the number ``k`` of elements of domain ``D`` where a
    unary predicate ``P`` holds: ``D`` splits into a ``P``-part and a
    ``~P``-part, the ``P``-literals resolve, and a binomial weight
    ``C(|D|, k) w^k wbar^(|D|-k)`` accounts for ``P``'s atoms.
separator (independent instances)
    If every clause has a variable of domain ``D`` occurring in every
    atom, at a per-relation-consistent position, the clause instances
    for distinct elements share no atoms: ``count = q ** |D|``.
pair decomposition
    If every clause has exactly the two variables ``x, y`` of the same
    domain ``D`` and every atom uses both, the grounding splits into
    diagonal and unordered-pair instances:
    ``count = diag**|D| * offdiag**C(|D|, 2)``.  (With ``x: D1, y: D2``
    from different domains the bipartite variant gives
    ``count = inst ** (|D1| * |D2|)``.)

Limitations (by design — this is the *incomplete* rule set the paper
talks about): no equality atoms, no repeated variables inside an atom,
and no rule invents the Q_S4 recursion.
"""

from __future__ import annotations

import itertools
from fractions import Fraction
from typing import Dict, FrozenSet, Tuple

from ..errors import UnsupportedFormulaError
from ..logic.scott import scott_normalize, skolemize_scott
from ..logic.syntax import Eq, Var
from ..logic.transform import matrix_to_cnf_clauses
from ..logic.vocabulary import WeightedVocabulary
from ..utils import binomial, check_domain_size

__all__ = ["RulesIncompleteError", "LiftedRulesEngine", "lifted_wfomc"]


class RulesIncompleteError(UnsupportedFormulaError):
    """No lifted rule applies: the theory escapes this rule set."""


# A literal is (positive, pred, args) with args a tuple of variable names;
# a clause is (literals: frozenset, var_domains: tuple[(var, domain), ...]).
Literal = Tuple[bool, str, Tuple[str, ...]]
Clause = Tuple[FrozenSet[Literal], Tuple[Tuple[str, str], ...]]


def _clause(literals, var_domains):
    relevant = {v for _s, _p, args in literals for v in args}
    doms = tuple(sorted((v, d) for v, d in var_domains if v in relevant))
    return (frozenset(literals), doms)


def _clause_domains(clause):
    return dict(clause[1])


def _signatures_of(clause):
    doms = _clause_domains(clause)
    return {
        (pred, tuple(doms[v] for v in args)) for _s, pred, args in clause[0]
    }


class LiftedRulesEngine:
    """The rule engine; see the module docstring for the rule set."""

    def __init__(self, weighted_vocabulary, domain_sizes):
        self.wv = weighted_vocabulary
        self.sizes: Dict[str, int] = dict(domain_sizes)
        self._fresh = 0
        self._memo = {}

    # -- helpers -------------------------------------------------------------

    def _fresh_domain(self, size):
        self._fresh += 1
        name = "@d{}".format(self._fresh)
        self.sizes[name] = size
        return name

    def _signature_size(self, signature):
        _pred, domains = signature
        size = 1
        for d in domains:
            size *= self.sizes[d]
        return size

    def _mass(self, signatures):
        """Weight mass of unconstrained ground atoms: prod (w+wbar)^|sig|."""
        total = Fraction(1)
        for sig in signatures:
            pair = self.wv.weight(sig[0])
            total *= pair.total ** self._signature_size(sig)
        return total

    def _universe(self, clauses):
        result = set()
        for c in clauses:
            result |= _signatures_of(c)
        return result

    def _descend(self, parent_universe, clauses, factor=Fraction(1)):
        """Count a subproblem, massing out atoms the step dropped."""
        lost = parent_universe - self._universe(clauses)
        return factor * self._mass(lost) * self.count(frozenset(clauses))

    # -- the engine ----------------------------------------------------------

    def count(self, clauses):
        """WMC over exactly the ground atoms the clause set mentions."""
        clauses = frozenset(clauses)
        if not clauses:
            return Fraction(1)
        key = (clauses, tuple(sorted(self.sizes.items())))
        cached = self._memo.get(key)
        if cached is not None:
            return cached
        result = self._apply_rules(clauses)
        self._memo[key] = result
        return result

    def _apply_rules(self, clauses):
        universe = self._universe(clauses)

        # Simplification: tautologies and empty domains.
        simplified = set()
        changed = False
        for c in clauses:
            lits, doms = c
            if not lits:
                return Fraction(0)
            if any((not s, p, a) in lits for s, p, a in lits):
                changed = True
                continue  # tautology
            if any(self.sizes[d] == 0 for _v, d in doms):
                changed = True
                continue  # vacuous universal over an empty domain
            simplified.add(c)
        if changed:
            return self._descend(universe, simplified)

        for rule in (
            self._rule_independence,
            self._rule_ground_shannon,
            self._rule_separator,
            self._rule_atom_counting,
            self._rule_pair,
        ):
            result = rule(clauses, universe)
            if result is not None:
                return result

        raise RulesIncompleteError(
            "no lifted rule applies to the residual theory {}; this theory "
            "escapes the rule set (as Q_S4 does, Theorem 3.7)".format(
                sorted(repr(c) for c in clauses)
            )
        )

    # -- rule: independence ----------------------------------------------------

    def _rule_independence(self, clauses, universe):
        clause_list = list(clauses)
        if len(clause_list) < 2:
            return None
        parent = list(range(len(clause_list)))

        def find(i):
            while parent[i] != i:
                parent[i] = parent[parent[i]]
                i = parent[i]
            return i

        sig_owner = {}
        for i, c in enumerate(clause_list):
            for sig in _signatures_of(c):
                if sig in sig_owner:
                    ri, rj = find(i), find(sig_owner[sig])
                    parent[ri] = rj
                else:
                    sig_owner[sig] = i
        groups = {}
        for i, c in enumerate(clause_list):
            groups.setdefault(find(i), []).append(c)
        if len(groups) < 2:
            return None
        total = Fraction(1)
        for group in groups.values():
            total *= self.count(frozenset(group))
        return total

    # -- rule: ground Shannon expansion ----------------------------------------

    def _ground_literal(self, clause):
        doms = _clause_domains(clause)
        for s, p, args in clause[0]:
            if all(self.sizes[doms[v]] == 1 for v in args):
                return (p, tuple(doms[v] for v in args))
        return None

    def _rule_ground_shannon(self, clauses, universe):
        target = None
        for c in clauses:
            target = self._ground_literal(c)
            if target is not None:
                break
        if target is None:
            return None
        pred, arg_domains = target
        pair = self.wv.weight(pred)
        total = Fraction(0)
        for value, weight in ((True, pair.w), (False, pair.wbar)):
            conditioned = []
            dead = False
            for lits, doms in clauses:
                cdoms = dict(doms)
                new_lits = set()
                satisfied = False
                for s, p, args in lits:
                    if (
                        p == pred
                        and tuple(cdoms[v] for v in args) == arg_domains
                        and all(self.sizes[cdoms[v]] == 1 for v in args)
                    ):
                        if s == value:
                            satisfied = True
                            break
                        continue  # falsified literal drops out
                    new_lits.add((s, p, args))
                if satisfied:
                    continue
                if not new_lits:
                    dead = True
                    break
                conditioned.append(_clause(new_lits, doms))
            if dead:
                continue
            total += self._descend(
                universe - {target}, conditioned, factor=weight
            )
        return total

    # -- rule: separator ---------------------------------------------------------

    def _rule_separator(self, clauses, universe):
        # Size-1 domains are handled by ground Shannon expansion; applying
        # the separator to them would loop (a fresh unit domain replaces a
        # unit domain forever).
        domains = {
            d for c in clauses for _v, d in c[1] if self.sizes[d] >= 2
        }
        for domain in sorted(domains):
            choice = self._find_separators(clauses, domain)
            if choice is None:
                continue
            unit = self._fresh_domain(1)
            instance = []
            for c, sep_var in zip(sorted(clauses, key=repr), choice):
                lits, doms = c
                new_doms = tuple(
                    (v, unit if v == sep_var else d) for v, d in doms
                )
                instance.append(_clause(lits, new_doms))
            q = self.count(frozenset(instance))
            return q ** self.sizes[domain]
        return None

    def _find_separators(self, clauses, domain):
        """Pick one separator var per clause with consistent positions.

        Returns a list of variable names aligned with ``sorted(clauses,
        key=repr)`` or ``None``.
        """
        ordered = sorted(clauses, key=repr)
        candidate_lists = []
        for lits, doms in ordered:
            cdoms = dict(doms)
            candidates = []
            for v, d in doms:
                if d != domain:
                    continue
                if all(args.count(v) == 1 for _s, _p, args in lits):
                    if all(v in args for _s, _p, args in lits):
                        candidates.append(v)
            if not candidates:
                return None
            candidate_lists.append(candidates)

        def backtrack(i, positions, chosen):
            if i == len(ordered):
                return list(chosen)
            lits, _doms = ordered[i]
            for v in candidate_lists[i]:
                new_positions = dict(positions)
                ok = True
                for _s, p, args in lits:
                    pos = args.index(v)
                    if new_positions.setdefault(p, pos) != pos:
                        ok = False
                        break
                if not ok:
                    continue
                chosen.append(v)
                result = backtrack(i + 1, new_positions, chosen)
                if result is not None:
                    return result
                chosen.pop()
            return None

        return backtrack(0, {}, [])

    # -- rule: unary atom counting -------------------------------------------

    def _rule_atom_counting(self, clauses, universe):
        target = None
        for pred, arg_domains in sorted(universe):
            if len(arg_domains) == 1:
                target = (pred, arg_domains[0])
                break
        if target is None:
            return None
        pred, domain = target
        n = self.sizes[domain]
        pair = self.wv.weight(pred)
        expected_sig = (pred, (domain,))

        total = Fraction(0)
        for k in range(n + 1):
            part_true = self._fresh_domain(k)
            part_false = self._fresh_domain(n - k)
            rewritten = []
            for c in clauses:
                rewritten.extend(
                    self._split_clause(c, domain, part_true, part_false, pred)
                )
            expected = set()
            for sig in universe:
                if sig == expected_sig:
                    continue
                expected |= set(
                    self._expand_signature(sig, domain, part_true, part_false)
                )
            weight = binomial(n, k) * pair.w ** k * pair.wbar ** (n - k)
            if weight == 0:
                continue
            total += self._descend(expected, rewritten, factor=weight)
        return total

    def _split_clause(self, clause, domain, part_true, part_false, pred):
        """All assignments of the clause's ``domain`` vars to the two parts,
        resolving ``pred`` literals (true on ``part_true``)."""
        lits, doms = clause
        split_vars = [v for v, d in doms if d == domain]
        results = []
        for assignment in itertools.product(
            (part_true, part_false), repeat=len(split_vars)
        ):
            mapping = dict(zip(split_vars, assignment))
            if any(self.sizes[mapping[v]] == 0 for v in split_vars):
                # A variable ranges over an empty part: this copy of the
                # universal clause is vacuously true.  (Dropping it here is
                # essential: the clause representation prunes variables
                # that vanish from the literals, which would otherwise turn
                # a vacuous copy into a live constraint.)
                continue
            new_doms = tuple((v, mapping.get(v, d)) for v, d in doms)
            new_lits = set()
            satisfied = False
            for s, p, args in lits:
                if p == pred and len(args) == 1 and args[0] in mapping:
                    holds = mapping[args[0]] == part_true
                    if s == holds:
                        satisfied = True
                        break
                    continue
                new_lits.add((s, p, args))
            if satisfied:
                continue
            results.append(_clause(new_lits, new_doms))
        return results

    def _expand_signature(self, signature, domain, part_true, part_false):
        pred, arg_domains = signature
        slots = [
            (part_true, part_false) if d == domain else (d,) for d in arg_domains
        ]
        for combo in itertools.product(*slots):
            yield (pred, combo)

    # -- rule: pair decomposition ----------------------------------------------

    def _rule_pair(self, clauses, universe):
        shapes = []
        for lits, doms in clauses:
            if len(doms) != 2:
                return None
            (v1, d1), (v2, d2) = doms
            if not all(
                v1 in args and v2 in args and args.count(v1) == 1 and args.count(v2) == 1
                for _s, _p, args in lits
            ):
                return None
            shapes.append(((v1, d1), (v2, d2)))
        domains = {d for shape in shapes for _v, d in shape}
        if len(domains) == 1:
            (domain,) = domains
            n = self.sizes[domain]
            # Diagonal instance: both variables name the same element.
            unit = self._fresh_domain(1)
            diag = [
                _clause(lits, tuple((v, unit) for v, _d in doms))
                for lits, doms in clauses
            ]
            diag_count = self.count(frozenset(diag))
            # Unordered-pair instance: both orientations conjoined.
            u1 = self._fresh_domain(1)
            u2 = self._fresh_domain(1)
            off = []
            for lits, doms in clauses:
                (v1, _), (v2, _) = doms
                off.append(_clause(lits, ((v1, u1), (v2, u2))))
                off.append(_clause(lits, ((v1, u2), (v2, u1))))
            off_count = self.count(frozenset(off))
            return diag_count ** n * off_count ** binomial(n, 2)
        if len(domains) == 2:
            d1, d2 = sorted(domains)
            # Bipartite: each (a, b) pair is independent.
            u1 = self._fresh_domain(1)
            u2 = self._fresh_domain(1)
            instance = []
            for lits, doms in clauses:
                mapping = {v: (u1 if d == d1 else u2) for v, d in doms}
                instance.append(
                    _clause(lits, tuple((v, mapping[v]) for v, _d in doms))
                )
            q = self.count(frozenset(instance))
            return q ** (self.sizes[d1] * self.sizes[d2])
        return None


def _formula_to_clauses(sentences, root_domain):
    """Universal sentences -> typed clause set for the engine."""
    clauses = []
    for sent in sentences:
        var_domains = tuple((v.name, root_domain) for v in sent.vars)
        for cnf_clause in matrix_to_cnf_clauses(sent.matrix):
            literals = set()
            for positive, atom in cnf_clause:
                if isinstance(atom, Eq):
                    raise UnsupportedFormulaError(
                        "the lifted rule engine does not handle equality; "
                        "use repro.wfomc.fo2 or Lemma 3.5"
                    )
                args = []
                for t in atom.args:
                    if not isinstance(t, Var):
                        raise UnsupportedFormulaError(
                            "constants are not supported by the rule engine"
                        )
                    args.append(t.name)
                if len(args) != len(set(args)):
                    raise UnsupportedFormulaError(
                        "atom {} repeats a variable; the rule engine requires "
                        "repeated-variable-free atoms".format(atom)
                    )
                literals.add((positive, atom.pred, tuple(args)))
            clauses.append(_clause(literals, var_domains))
    return clauses


def lifted_wfomc(formula, n, weighted_vocabulary=None):
    """Symmetric WFOMC by lifted rules alone.

    Pipeline: Scott normalization, Skolemization (Lemma 3.3), CNF, then
    the rule engine.  Raises :class:`RulesIncompleteError` when the rule
    set cannot finish — notably on Q_S4 and other genuinely-FO3+
    theories — which is precisely the phenomenon Theorem 3.7 points at.
    """
    check_domain_size(n)
    wv = weighted_vocabulary or WeightedVocabulary.counting(formula)
    if n == 0:
        from ..wfomc.bruteforce import wfomc_lineage

        return wfomc_lineage(formula, 0, wv)

    sentences, wv1 = scott_normalize(formula, wv)
    universal, wv2 = skolemize_scott(sentences, wv1)

    engine = LiftedRulesEngine(wv2, {"@root": n})
    clauses = _formula_to_clauses(universal, "@root")

    mentioned = set()
    for c in clauses:
        mentioned |= {pred for pred, _doms in _signatures_of(c)}
    total = engine.count(frozenset(clauses))
    for pred, pair in wv2.items():
        if pred.name not in mentioned:
            total *= pair.total ** (n ** pred.arity)
    return total
