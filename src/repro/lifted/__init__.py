"""A lifted-inference rule engine (the Section 3.2 / Theorem 3.7 rule set)."""

from .rules import LiftedRulesEngine, RulesIncompleteError, lifted_wfomc

__all__ = ["LiftedRulesEngine", "RulesIncompleteError", "lifted_wfomc"]
