"""Markov Logic Networks (Example 1.1).

An MLN is a finite set of constraints ``(w, phi)`` where ``phi`` is a
formula with free variables ``x`` and ``w`` is a weight in ``[0, inf]``
(``inf`` marks a hard constraint).  Over a finite domain ``[n]`` it
defines a weight for every structure ``D``:

``W(D) = prod over soft (w, phi) and tuples a with D |= phi[a/x] of w``

and hard constraints must hold outright.  Probabilities normalize by
``W(true)``.  Note the paper's convention: weights are the weights
themselves, not their logarithms.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from fractions import Fraction

from ..logic.evaluate import evaluate
from ..logic.syntax import forall, free_variables, predicates_of
from ..logic.vocabulary import Predicate, Vocabulary
from ..utils import as_fraction

__all__ = ["HARD", "MLNConstraint", "MLN"]


class _Hard:
    """Sentinel weight for hard constraints (the paper's ``w = inf``)."""

    def __repr__(self):
        return "HARD"


HARD = _Hard()


@dataclass(frozen=True)
class MLNConstraint:
    """One constraint ``(weight, formula)``; free variables are implicit.

    ``weight`` is a rational (soft) or :data:`HARD`.
    """

    weight: object
    formula: object

    def __post_init__(self):
        if self.weight is not HARD:
            object.__setattr__(self, "weight", as_fraction(self.weight))

    def is_hard(self):
        return self.weight is HARD

    def free_variables(self):
        """The free variables, in sorted name order (the tuple ``x``)."""
        return tuple(sorted(free_variables(self.formula), key=lambda v: v.name))

    def universal_closure(self):
        return forall(list(self.free_variables()), self.formula)


class MLN:
    """A Markov Logic Network: a list of constraints over one vocabulary."""

    def __init__(self, constraints):
        self.constraints = [
            c if isinstance(c, MLNConstraint) else MLNConstraint(*c) for c in constraints
        ]
        arities = {}
        for c in self.constraints:
            for name, arity in predicates_of(c.formula).items():
                if arities.setdefault(name, arity) != arity:
                    raise ValueError("conflicting arities for predicate {}".format(name))
        self._vocabulary = Vocabulary(
            Predicate(name, arity) for name, arity in sorted(arities.items())
        )

    @property
    def vocabulary(self):
        return self._vocabulary

    def soft_constraints(self):
        return [c for c in self.constraints if not c.is_hard()]

    def hard_constraints(self):
        return [c for c in self.constraints if c.is_hard()]

    def world_weight(self, structure):
        """``W(D)``: zero if a hard constraint fails, else the soft product."""
        for c in self.hard_constraints():
            if not self._closure_holds(c, structure):
                return Fraction(0)
        weight = Fraction(1)
        for c in self.soft_constraints():
            count = self._count_satisfied_groundings(c, structure)
            weight *= c.weight ** count
        return weight

    @staticmethod
    def _closure_holds(constraint, structure):
        return evaluate(constraint.universal_closure(), structure)

    @staticmethod
    def _count_satisfied_groundings(constraint, structure):
        variables = constraint.free_variables()
        count = 0
        for values in itertools.product(structure.domain(), repeat=len(variables)):
            assignment = dict(zip(variables, values))
            if evaluate(constraint.formula, structure, assignment):
                count += 1
        return count

    def __repr__(self):
        return "MLN({})".format(
            "; ".join(
                "({}, {})".format(c.weight, c.formula) for c in self.constraints
            )
        )
