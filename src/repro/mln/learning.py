"""Gradient-based MLN weight learning on compiled circuits.

The new workload the knowledge-compilation subsystem unlocks: given an
MLN whose soft weights are *initial guesses* and a set of (possibly
weighted) observed worlds, :func:`mln_weight_learn` runs exact-rational
gradient ascent on the average log-likelihood

``L(w) = sum_i (c_i / W) * log(w_i)  -  log Z(w)``

where ``c_i`` is the (weighted) number of satisfied groundings of soft
constraint ``i`` in the data, ``W`` the total observation weight, and
``Z`` the partition function.  The gradient of ``log Z`` is the
expected-counts term of standard MLN learning; here it is computed
*exactly* from one arithmetic circuit:

* the Example 1.2 reduction is applied once with its structure frozen
  (:func:`~repro.mln.reduction.reduction_template` with
  ``keep_all_soft=True``), giving a hard sentence ``Gamma`` and one
  fresh relation ``R_i`` per soft constraint with symbolic weight
  ``u_i = 1 / (w_i - 1)``;
* ``G(u) = WFOMC(Gamma, n, u)`` is compiled into a circuit
  (:func:`repro.compile.compile_wfomc`) — the expensive object, built
  once for the whole ascent;
* ``Z(w) = G(u(w)) * prod_i (w_i - 1)^{n^{a_i}}`` (footnote 3 of the
  paper), so by the chain rule

  ``d log Z / d w_i = (dG/du_i / G) * (-1 / (w_i - 1)^2)
  + n^{a_i} / (w_i - 1)``

  with ``dG/du_i`` read off the circuit's reverse-mode gradient.

Every step is a Fraction computation; a ``limit_denominator``
rationalization keeps the iterates tame without ever leaving exact
arithmetic on the counting side.  The reduction has a pole at
``w_i = 1`` (the likelihood itself is smooth there, but ``u_i``
diverges), so iterates are clamped to stay on their initial side of 1;
start above 1 to learn attractive constraints, below for repulsive.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from fractions import Fraction

from ..logic.syntax import predicates_of
from ..logic.vocabulary import Predicate, Vocabulary, WeightedVocabulary
from ..options import SolverOptions
from ..utils import as_fraction
from ..weights import WeightPair
from .model import MLN
from .reduction import reduction_template

__all__ = [
    "MLNLearnResult",
    "mln_weight_learn",
    "mln_likelihood_gradient",
    "mln_average_log_likelihood",
]

#: Iterates keep at least this margin away from the reduction pole at
#: ``w = 1`` and from 0.
_POLE_MARGIN = Fraction(1, 1000)

#: Denominator bound applied to iterates between steps (the counting
#: arithmetic itself stays exact; this only keeps step sizes rational
#: numbers of bounded size).
_MAX_DENOMINATOR = 10 ** 12


@dataclass
class MLNLearnResult:
    """Outcome of a :func:`mln_weight_learn` run.

    ``mln`` is the input MLN with learned soft weights; ``weights`` the
    learned values in soft-constraint order; ``gradient`` the final
    average-log-likelihood gradient (one entry per soft constraint);
    ``converged`` whether its max-norm fell under the tolerance before
    the step budget ran out.  ``history`` records ``(step, weights)``
    snapshots for inspection/demos.
    """

    mln: MLN
    weights: list
    gradient: list
    steps_taken: int
    converged: bool
    history: list = field(default_factory=list)


def _normalize_observations(observations):
    """``[(weight, structure)]`` plus the total weight.

    Accepts bare structures (weight 1) or ``(weight, structure)`` pairs
    — fractional weights let a caller hand the learner an entire
    distribution (e.g. the exact model distribution, for which the MLE
    recovers the generating weights).
    """
    weighted = []
    for obs in observations:
        if isinstance(obs, tuple):
            weight, structure = obs
            weighted.append((as_fraction(weight), structure))
        else:
            weighted.append((Fraction(1), obs))
    total = sum(w for w, _ in weighted)
    if total <= 0:
        raise ValueError("observations must carry positive total weight")
    return weighted, total


def _data_counts(entries, weighted):
    """Weighted satisfied-grounding counts per soft constraint."""
    counts = []
    for constraint, _name, _arity in entries:
        total = Fraction(0)
        for weight, structure in weighted:
            total += weight * MLN._count_satisfied_groundings(
                constraint, structure)
        counts.append(total)
    return counts


def _learning_setup(mln, n, opts):
    """Frozen reduction template + compiled partition circuit."""
    from ..compile import compile_wfomc

    gamma, entries, _base_wv = reduction_template(mln, keep_all_soft=True)
    arities = predicates_of(gamma)
    vocabulary = Vocabulary(Predicate(name, arity)
                            for name, arity in sorted(arities.items()))
    compiled = compile_wfomc(gamma, n, vocabulary, method=opts.method,
                             budget=opts.budget, **opts.store_kwargs())
    return entries, vocabulary, compiled


def _weighted_vocabulary(vocabulary, entries, weights):
    """The reduction's weighted vocabulary at the current soft weights."""
    pairs = {}
    arities = {}
    reduced = {name: (i, arity) for i, (_c, name, arity) in enumerate(entries)}
    for pred in vocabulary:
        arities[pred.name] = pred.arity
        slot = reduced.get(pred.name)
        if slot is None:
            pairs[pred.name] = WeightPair(1, 1)
        else:
            w = weights[slot[0]]
            pairs[pred.name] = WeightPair(1 / (w - 1), 1)
    return WeightedVocabulary.from_weights(pairs, arities)


def _check_weights(weights):
    for i, w in enumerate(weights):
        if w <= 0:
            raise ValueError(
                "soft weight {} is {} <= 0; MLN weights must be positive"
                .format(i, w))
        if w == 1:
            raise ValueError(
                "soft weight {} is exactly 1, the pole of the WFOMC "
                "reduction; start the ascent at any other value (a "
                "weight-1 constraint is vacuous)".format(i))


def _gradient_at(compiled, vocabulary, entries, weights, counts, total, n):
    """Average-log-likelihood gradient (one Fraction per soft weight)."""
    wv = _weighted_vocabulary(vocabulary, entries, weights)
    value, pred_grads = compiled.gradient(wv)
    if value == 0:
        raise ZeroDivisionError(
            "the MLN assigns zero weight to every world at the current "
            "soft weights")
    gradient = []
    for i, (_constraint, name, arity) in enumerate(entries):
        w = weights[i]
        tuples = n ** arity
        du_dw = -1 / (w - 1) ** 2
        dlogz = (pred_grads[name][0] / value) * du_dw + Fraction(tuples, 1) / (w - 1)
        gradient.append(counts[i] / (total * w) - dlogz)
    return gradient, value


def mln_likelihood_gradient(mln, observations, n, options=None, **legacy):
    """The exact average-log-likelihood gradient at the MLN's weights.

    Returns one Fraction per *soft* constraint (in constraint order).
    Exposed separately so the gradient can be validated against finite
    differences of the likelihood on rational perturbations.  The
    gradient pass is always exact (the circuit's reverse mode carries
    Fractions regardless of ``options.backend``).
    """
    opts = SolverOptions.from_kwargs(options, **legacy)
    weighted, total = _normalize_observations(observations)
    entries, vocabulary, compiled = _learning_setup(mln, n, opts)
    weights = [c.weight for c, _name, _arity in entries]
    _check_weights(weights)
    counts = _data_counts(entries, weighted)
    gradient, _value = _gradient_at(compiled, vocabulary, entries, weights,
                                    counts, total, n)
    return gradient


def _log_fraction(value):
    """``log`` of a positive Fraction without overflowing floats."""
    if value <= 0:
        raise ValueError("log of a non-positive partition value")
    value = Fraction(value)
    return math.log(value.numerator) - math.log(value.denominator)


def mln_average_log_likelihood(mln, observations, n, options=None, **legacy):
    """The (float) average log-likelihood of the observations.

    ``Z`` is computed exactly through the compiled circuit and the
    reduction identity ``Z = G * prod (w_i - 1)^{n^{a_i}}``; only the
    final logarithms are floating point, so this is a readout for
    monitoring and finite-difference checks, not a counting result.
    The exact evaluation backends (``"codegen"``, ``"batched"``) are
    honored; the ``"float"`` backend is not (the log readout needs the
    exact partition value) and falls back to exact.
    """
    opts = SolverOptions.from_kwargs(options, **legacy)
    weighted, total = _normalize_observations(observations)
    entries, vocabulary, compiled = _learning_setup(mln, n, opts)
    weights = [c.weight for c, _name, _arity in entries]
    _check_weights(weights)
    counts = _data_counts(entries, weighted)
    wv = _weighted_vocabulary(vocabulary, entries, weights)
    backend = opts.backend if opts.backend != "float" else None
    value = compiled.evaluate(wv, backend=backend)
    partition = value
    for i, (_c, _name, arity) in enumerate(entries):
        partition *= (weights[i] - 1) ** (n ** arity)
    result = -_log_fraction(partition)
    for i in range(len(entries)):
        if counts[i]:
            result += (counts[i] / total) * math.log(weights[i])
    return result


def mln_weight_learn(mln, observations, n, *, steps=80,
                     learning_rate=Fraction(1, 8), tolerance=Fraction(1, 5000),
                     options=None, max_denominator=_MAX_DENOMINATOR, **legacy):
    """Learn the MLN's soft weights by exact gradient ascent.

    ``mln`` supplies the structure and the *initial* soft weights;
    ``observations`` is an iterable of fully-observed
    :class:`~repro.grounding.structures.Structure` worlds (optionally
    ``(weight, structure)`` pairs — pass the exact model distribution of
    a known MLN and the ascent recovers its weights, the moment-matching
    property of maximum likelihood).  The partition function is compiled
    to a circuit **once**; each of the up-to-``steps`` iterations costs
    one circuit gradient pass, never a new count search.

    ``options`` is a :class:`~repro.options.SolverOptions` (legacy
    ``method=``/``persist=``/``cache_dir=`` keywords keep working and
    are deprecated); it configures compilation and persistence.  The
    gradient passes themselves always run exact (reverse mode carries
    Fractions — ``options.backend`` accelerates the forward-only entry
    points, not the ascent).

    Steps that would cross the reduction pole at ``w = 1`` (or 0) are
    halved until they stay on the initial side, and iterates are
    rationalized to ``max_denominator``.  Returns an
    :class:`MLNLearnResult`; the counting side stays exact throughout,
    so a run is deterministic and reproducible.
    """
    opts = SolverOptions.from_kwargs(options, **legacy)
    weighted, total = _normalize_observations(observations)
    entries, vocabulary, compiled = _learning_setup(mln, n, opts)
    if not entries:
        return MLNLearnResult(mln=mln, weights=[], gradient=[],
                              steps_taken=0, converged=True)
    weights = [as_fraction(c.weight) for c, _name, _arity in entries]
    _check_weights(weights)
    counts = _data_counts(entries, weighted)
    learning_rate = as_fraction(learning_rate)
    tolerance = as_fraction(tolerance)

    history = []
    gradient = []
    converged = False
    step = 0
    for step in range(1, steps + 1):
        gradient, _value = _gradient_at(compiled, vocabulary, entries,
                                        weights, counts, total, n)
        if max(abs(g) for g in gradient) <= tolerance:
            converged = True
            step -= 1
            break
        new_weights = []
        for i, g in enumerate(gradient):
            w = weights[i]
            delta = learning_rate * g
            candidate = w + delta
            # Stay strictly on this weight's side of the pole at 1 (and
            # above 0): halve the step until the iterate is safe.
            while not _safe(w, candidate):
                delta /= 2
                candidate = w + delta
                if abs(delta) < Fraction(1, 10 ** 9):
                    candidate = w
                    break
            tamed = candidate.limit_denominator(max_denominator)
            new_weights.append(tamed if _safe(w, tamed) else candidate)
        weights = new_weights
        history.append((step, list(weights)))
    else:
        gradient, _value = _gradient_at(compiled, vocabulary, entries,
                                        weights, counts, total, n)
        converged = max(abs(g) for g in gradient) <= tolerance

    learned = _rebuild_mln(mln, entries, weights)
    return MLNLearnResult(mln=learned, weights=weights, gradient=gradient,
                          steps_taken=step, converged=converged,
                          history=history)


def _safe(current, candidate):
    if candidate <= _POLE_MARGIN:
        return False
    if current > 1:
        return candidate > 1 + _POLE_MARGIN
    return candidate < 1 - _POLE_MARGIN


def _rebuild_mln(mln, entries, weights):
    """The input MLN with its soft weights replaced by the learned ones."""
    learned_of = {id(constraint): weights[i]
                  for i, (constraint, _name, _arity) in enumerate(entries)}
    constraints = []
    for c in mln.constraints:
        new_weight = learned_of.get(id(c))
        if new_weight is None:
            constraints.append(c)
        else:
            constraints.append((new_weight, c.formula))
    return MLN(constraints)
