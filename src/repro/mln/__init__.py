"""Markov Logic Networks: exact semantics, the reduction to symmetric
WFOMC, lifted inference entry points, and circuit-based weight learning."""

from .model import HARD, MLN, MLNConstraint
from .inference import (
    mln_partition_bruteforce,
    mln_probability,
    mln_probability_bruteforce,
    mln_query_sweep,
)
from .learning import (
    MLNLearnResult,
    mln_average_log_likelihood,
    mln_likelihood_gradient,
    mln_weight_learn,
)
from .reduction import (
    MLNReduction,
    mln_probability_wfomc,
    reduce_to_wfomc,
    reduction_template,
)

__all__ = [
    "HARD",
    "MLN",
    "MLNConstraint",
    "mln_probability",
    "mln_query_sweep",
    "mln_probability_bruteforce",
    "mln_partition_bruteforce",
    "MLNReduction",
    "reduction_template",
    "reduce_to_wfomc",
    "mln_probability_wfomc",
    "MLNLearnResult",
    "mln_weight_learn",
    "mln_likelihood_gradient",
    "mln_average_log_likelihood",
]
