"""Markov Logic Networks: exact semantics and the reduction to symmetric WFOMC."""

from .model import HARD, MLN, MLNConstraint
from .inference import mln_probability_bruteforce, mln_partition_bruteforce
from .reduction import MLNReduction, reduce_to_wfomc, mln_probability_wfomc

__all__ = [
    "HARD",
    "MLN",
    "MLNConstraint",
    "mln_probability_bruteforce",
    "mln_partition_bruteforce",
    "MLNReduction",
    "reduce_to_wfomc",
    "mln_probability_wfomc",
]
