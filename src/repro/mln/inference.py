"""Exact MLN inference: the serving path and the enumeration baseline.

:func:`mln_probability` is the production entry point: it routes a query
through the Example 1.2 WFOMC reduction (lifted FO2 algorithm or
grounded CDCL counting, both exact) and accepts the full solver knob set
— ``workers`` for parallel component counting and ``persist``/
``cache_dir`` for the disk-backed cache of :mod:`repro.cache`, so
repeated queries and MLN weight sweeps re-run in fresh processes
warm-start from disk.  :func:`mln_query_sweep` evaluates one query under
many MLN weightings through the shared caches.

The ``*_bruteforce`` functions enumerate all worlds —
``Pr_MLN(Phi) = W(Phi) / W(true)`` where ``W(Phi)`` sums the MLN weight
of every world satisfying ``Phi`` and all hard constraints.  Exponential;
they validate the reduction on small domains.
"""

from __future__ import annotations

from fractions import Fraction

from ..grounding.structures import all_structures
from ..logic.evaluate import evaluate
from ..utils import check_domain_size

__all__ = [
    "mln_probability",
    "mln_query_sweep",
    "mln_partition_bruteforce",
    "mln_probability_bruteforce",
]


def mln_probability(mln, query, n, method="auto", workers=None, persist=None,
                    cache_dir=None):
    """Exact ``Pr_MLN(query)`` over domain ``[n]`` via the WFOMC reduction.

    The scalable inference path: polynomial in ``n`` whenever the reduced
    sentence is FO2, exact CDCL counting otherwise.  ``workers`` counts
    independent lineage components on a process pool; ``persist``/
    ``cache_dir`` serve repeated queries from the persistent on-disk
    cache (results are bit-identical either way).
    """
    from .reduction import mln_probability_wfomc

    return mln_probability_wfomc(mln, query, n, method=method,
                                 workers=workers, persist=persist,
                                 cache_dir=cache_dir)


def mln_query_sweep(mlns, query, n, method="auto", workers=None,
                    persist=None, cache_dir=None):
    """``Pr_MLN(query)`` for each MLN in ``mlns`` (a weight sweep).

    The MLNs typically share their structure and differ only in soft
    weights — the shape of tuning a model.  Every evaluation flows
    through the shared lineage/component caches, and with ``persist``
    the component values survive the process, so re-running a sweep
    (or extending it with new weights) warm-starts from disk.
    """
    return [
        mln_probability(mln, query, n, method=method, workers=workers,
                        persist=persist, cache_dir=cache_dir)
        for mln in mlns
    ]


def mln_partition_bruteforce(mln, n):
    """``W(true)``: the MLN partition function over domain ``[n]``."""
    check_domain_size(n)
    total = Fraction(0)
    for structure in all_structures(mln.vocabulary, n):
        total += mln.world_weight(structure)
    return total


def mln_probability_bruteforce(mln, query, n):
    """``Pr_MLN(query)`` over domain ``[n]`` by enumerating all worlds."""
    check_domain_size(n)
    numerator = Fraction(0)
    denominator = Fraction(0)
    for structure in all_structures(mln.vocabulary, n):
        weight = mln.world_weight(structure)
        if weight == 0:
            continue
        denominator += weight
        if evaluate(query, structure):
            numerator += weight
    if denominator == 0:
        raise ZeroDivisionError("the MLN assigns zero weight to every world")
    return numerator / denominator
