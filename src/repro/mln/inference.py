"""Exact MLN inference: the serving path and the enumeration baseline.

:func:`mln_probability` is the production entry point: it routes a query
through the Example 1.2 WFOMC reduction (lifted FO2 algorithm or
grounded CDCL counting, both exact) and accepts the full solver knob set
— ``workers`` for parallel component counting and ``persist``/
``cache_dir`` for the disk-backed cache of :mod:`repro.cache`, so
repeated queries and MLN weight sweeps re-run in fresh processes
warm-start from disk.  :func:`mln_query_sweep` evaluates one query under
many MLN weightings through the shared caches.

The ``*_bruteforce`` functions enumerate all worlds —
``Pr_MLN(Phi) = W(Phi) / W(true)`` where ``W(Phi)`` sums the MLN weight
of every world satisfying ``Phi`` and all hard constraints.  Exponential;
they validate the reduction on small domains.
"""

from __future__ import annotations

from fractions import Fraction

from ..grounding.structures import all_structures
from ..logic.evaluate import evaluate
from ..options import SolverOptions
from ..utils import check_domain_size

__all__ = [
    "mln_probability",
    "mln_query_sweep",
    "mln_partition_bruteforce",
    "mln_probability_bruteforce",
]


def mln_probability(mln, query, n, options=None, **legacy):
    """Exact ``Pr_MLN(query)`` over domain ``[n]`` via the WFOMC reduction.

    The scalable inference path: polynomial in ``n`` whenever the reduced
    sentence is FO2, exact CDCL counting otherwise.  ``options`` is a
    :class:`~repro.options.SolverOptions` (legacy ``method=``/
    ``workers=``/``persist=``/``cache_dir=`` keywords keep working,
    deprecated).  ``workers`` counts independent lineage components on a
    process pool; ``persist``/``cache_dir`` serve repeated queries from
    the persistent on-disk cache (results are bit-identical either way).
    """
    from .reduction import mln_probability_wfomc

    return mln_probability_wfomc(
        mln, query, n, options=SolverOptions.from_kwargs(options, **legacy))


def mln_query_sweep(mlns, query, n, options=None, **legacy):
    """``Pr_MLN(query)`` for each MLN in ``mlns`` (a weight sweep).

    The MLNs typically share their structure and differ only in soft
    weights — the shape of tuning a model.  Every evaluation flows
    through the shared lineage/component caches, and with ``persist``
    the component values survive the process, so re-running a sweep
    (or extending it with new weights) warm-starts from disk.

    ``options.compile`` (or a non-default ``options.backend``) serves
    the whole sweep from two compiled circuits: when every MLN shares
    one reduction structure (the Example 1.2 template with all soft
    constraints reduced), ``WFOMC(query & Gamma)`` and ``WFOMC(Gamma)``
    are compiled once and all weightings are evaluated through the
    unified :meth:`~repro.compile.CompiledWFOMC.evaluate_many` surface
    with the selected backend.  Sweeps whose MLNs differ structurally —
    or contain a weight-1 soft constraint, the pole of the frozen
    reduction — fall back to the per-MLN loop automatically.
    """
    opts = SolverOptions.from_kwargs(options, **legacy)
    mlns = list(mlns)
    if not mlns:
        return []
    if opts.compiled and opts.method != "enumerate":
        shared = _compiled_query_sweep(mlns, query, n, opts)
        if shared is not None:
            return shared
    return [mln_probability(mln, query, n, options=opts) for mln in mlns]


def _compiled_query_sweep(mlns, query, n, opts):
    """Serve a structure-sharing sweep from two compiled circuits.

    Returns ``None`` when the sweep cannot take the shared route (MLN
    structures differ, or some soft weight sits on the ``w = 1`` pole of
    the frozen reduction template) — the caller falls back to the
    per-MLN path, which handles both.
    """
    from ..logic.syntax import conj, predicates_of
    from ..weights import WeightPair
    from .reduction import reduction_template

    templates = [reduction_template(mln, keep_all_soft=True) for mln in mlns]
    gamma, entries, base_wv = templates[0]
    shape = (gamma, [(name, arity) for _c, name, arity in entries])
    for g, e, _base in templates[1:]:
        if (g, [(name, arity) for _c, name, arity in e]) != shape:
            return None
    for _g, e, _base in templates:
        if any(c.weight == 1 for c, _name, _arity in e):
            return None

    conditioned = conj(query, gamma)
    arities = predicates_of(conditioned)
    vocabularies = []
    for _g, e, base in templates:
        new_weights = {name: WeightPair(1 / (c.weight - 1), 1)
                       for c, name, _arity in e}
        new_arities = {name: arity for _c, name, arity in e}
        wv = base.extend(new_weights, new_arities)
        missing = {name: WeightPair(1, 1)
                   for name in arities if name not in wv.vocabulary}
        if missing:
            wv = wv.extend(missing, {k: arities[k] for k in missing})
        vocabularies.append(wv)

    from ..compile import compile_wfomc

    vocabulary = vocabularies[0].vocabulary
    num_c = compile_wfomc(conditioned, n, vocabulary, method=opts.method,
                          budget=opts.budget, **opts.store_kwargs())
    den_c = compile_wfomc(gamma, n, vocabulary, method=opts.method,
                          budget=opts.budget, **opts.store_kwargs())
    numerators = num_c.evaluate_many(vocabularies, backend=opts.backend)
    denominators = den_c.evaluate_many(vocabularies, backend=opts.backend)
    results = []
    for numerator, denominator in zip(numerators, denominators):
        if denominator == 0:
            raise ZeroDivisionError(
                "the MLN assigns zero weight to every world")
        results.append(numerator / denominator)
    return results


def mln_partition_bruteforce(mln, n):
    """``W(true)``: the MLN partition function over domain ``[n]``."""
    check_domain_size(n)
    total = Fraction(0)
    for structure in all_structures(mln.vocabulary, n):
        total += mln.world_weight(structure)
    return total


def mln_probability_bruteforce(mln, query, n):
    """``Pr_MLN(query)`` over domain ``[n]`` by enumerating all worlds."""
    check_domain_size(n)
    numerator = Fraction(0)
    denominator = Fraction(0)
    for structure in all_structures(mln.vocabulary, n):
        weight = mln.world_weight(structure)
        if weight == 0:
            continue
        denominator += weight
        if evaluate(query, structure):
            numerator += weight
    if denominator == 0:
        raise ZeroDivisionError("the MLN assigns zero weight to every world")
    return numerator / denominator
