"""Exact MLN inference by world enumeration (the semantic baseline).

``Pr_MLN(Phi) = W(Phi) / W(true)`` where ``W(Phi)`` sums the MLN weight
of every world satisfying ``Phi`` and all hard constraints.  Exponential;
used to validate the WFOMC reduction on small domains.
"""

from __future__ import annotations

from fractions import Fraction

from ..grounding.structures import all_structures
from ..logic.evaluate import evaluate
from ..utils import check_domain_size

__all__ = ["mln_partition_bruteforce", "mln_probability_bruteforce"]


def mln_partition_bruteforce(mln, n):
    """``W(true)``: the MLN partition function over domain ``[n]``."""
    check_domain_size(n)
    total = Fraction(0)
    for structure in all_structures(mln.vocabulary, n):
        total += mln.world_weight(structure)
    return total


def mln_probability_bruteforce(mln, query, n):
    """``Pr_MLN(query)`` over domain ``[n]`` by enumerating all worlds."""
    check_domain_size(n)
    numerator = Fraction(0)
    denominator = Fraction(0)
    for structure in all_structures(mln.vocabulary, n):
        weight = mln.world_weight(structure)
        if weight == 0:
            continue
        denominator += weight
        if evaluate(query, structure):
            numerator += weight
    if denominator == 0:
        raise ZeroDivisionError("the MLN assigns zero weight to every world")
    return numerator / denominator
