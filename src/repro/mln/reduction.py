"""The MLN -> symmetric WFOMC reduction (Example 1.2).

Every soft constraint ``(w, phi(x))`` is replaced by

* a hard constraint ``forall x (R(x) | phi(x))`` with a fresh relation
  ``R`` of arity ``|x|``, and
* the symmetric weight pair ``(1/(w-1), 1)`` for ``R``.

Why this works (footnote 3 of the paper): where ``phi(a)`` is false,
``R(a)`` is forced true contributing ``1/(w-1)``; where ``phi(a)`` is
true, ``R(a)`` is free, contributing ``1/(w-1) + 1 = w/(w-1)``.  The
ratio between the two cases is ``1 : w`` — exactly the soft constraint's
effect.  For ``w < 1`` the weight ``1/(w-1)`` is negative: the paper's
example of negative weights arising in practice.  ``w = 1`` constraints
are vacuous and dropped; ``w = 0`` yields weight ``-1``.

The reduction is independent of the domain size, and

``Pr_MLN(Phi) = Pr(Phi | Gamma) = WFOMC(Phi & Gamma) / WFOMC(Gamma)``

over the resulting symmetric weighted vocabulary, where ``Gamma``
conjoins all hard constraints.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..logic.syntax import Atom, conj, disj, forall
from ..logic.vocabulary import WeightedVocabulary
from ..options import SolverOptions
from ..weights import WeightPair
from ..wfomc.solver import wfomc

__all__ = ["MLNReduction", "reduction_template", "reduce_to_wfomc",
           "mln_probability_wfomc"]


@dataclass
class MLNReduction:
    """Result of the Example 1.2 reduction.

    Attributes
    ----------
    gamma:
        The conjunction of all hard constraints (original and generated).
    weighted_vocabulary:
        Symmetric weights: ``(1, 1)`` for original relations and
        ``(1/(w-1), 1)`` for the generated ones.
    """

    gamma: object
    weighted_vocabulary: WeightedVocabulary

    def probability(self, query, n, options=None, **legacy):
        """``Pr_MLN(query) = WFOMC(query & gamma) / WFOMC(gamma)``.

        Numerator and denominator are computed over the *same* weighted
        vocabulary (covering any query-only predicates with neutral
        weights), so unconstrained atoms normalize away correctly.
        ``options`` is a :class:`~repro.options.SolverOptions` (legacy
        ``method=``/``workers=``/``persist=``/``cache_dir=`` keywords
        keep working, deprecated) forwarded to
        :func:`~repro.wfomc.solver.wfomc` — with ``persist``, repeated
        queries over one MLN (or a weight sweep re-run in a fresh
        process) are served from the on-disk component cache.
        ``options.compile``/``options.backend`` route both counts
        through the knowledge-compilation fast path and the selected
        circuit-evaluation backend.
        """
        opts = SolverOptions.from_kwargs(options, **legacy)
        conditioned = conj(query, self.gamma)
        wv = self._wv_for(conditioned)
        if opts.compiled and opts.method != "enumerate":
            from ..compile import compile_wfomc

            num_c = compile_wfomc(conditioned, n, wv.vocabulary,
                                  method=opts.method, budget=opts.budget,
                                  **opts.store_kwargs())
            den_c = compile_wfomc(self.gamma, n, wv.vocabulary,
                                  method=opts.method, budget=opts.budget,
                                  **opts.store_kwargs())
            numerator = num_c.evaluate(wv, backend=opts.backend)
            denominator = den_c.evaluate(wv, backend=opts.backend)
        else:
            numerator = wfomc(conditioned, n, wv, options=opts)
            denominator = wfomc(self.gamma, n, wv, options=opts)
        if denominator == 0:
            raise ZeroDivisionError("the MLN assigns zero weight to every world")
        return numerator / denominator

    def _wv_for(self, formula):
        """The weighted vocabulary extended to cover ``formula``'s symbols.

        Query predicates absent from the MLN get the neutral pair (1, 1).
        """
        from ..logic.syntax import predicates_of

        wv = self.weighted_vocabulary
        arities = predicates_of(formula)
        missing = {
            name: WeightPair(1, 1) for name in arities if name not in wv.vocabulary
        }
        if missing:
            wv = wv.extend(missing, {k: arities[k] for k in missing})
        return wv


def reduction_template(mln, keep_all_soft=False):
    """The weight-independent *shape* of the Example 1.2 reduction.

    Returns ``(gamma, entries, base_wv)``: the hard sentence, one
    ``(constraint, fresh_name, arity)`` entry per reduced soft
    constraint, and the uniform weighted vocabulary over the MLN's own
    predicates.  ``keep_all_soft`` keeps weight-1 constraints in the
    template (they are vacuous and normally dropped) — the weight
    learner needs the template's structure to stay *fixed* while the
    weights move, so it reduces every soft constraint unconditionally.
    """
    wv = WeightedVocabulary.uniform(mln.vocabulary)
    hard_parts = [c.universal_closure() for c in mln.hard_constraints()]

    entries = []
    used_names = set()
    for c in mln.soft_constraints():
        if not keep_all_soft and c.weight == 1:
            continue  # a weight-1 constraint changes nothing
        name = wv.fresh_name("MR")
        while name in used_names:
            name = name + "_"
        used_names.add(name)
        variables = c.free_variables()
        entries.append((c, name, len(variables)))
        witness = Atom(name, variables)
        hard_parts.append(forall(list(variables), disj(witness, c.formula)))

    gamma = conj(*hard_parts)
    return gamma, entries, wv


def reduce_to_wfomc(mln):
    """Apply the Example 1.2 reduction; returns an :class:`MLNReduction`."""
    gamma, entries, wv = reduction_template(mln)
    new_weights = {}
    new_arities = {}
    for constraint, name, arity in entries:
        new_weights[name] = WeightPair(1 / (constraint.weight - 1), 1)
        new_arities[name] = arity
    extended = wv.extend(new_weights, new_arities)
    return MLNReduction(gamma=gamma, weighted_vocabulary=extended)


def mln_probability_wfomc(mln, query, n, options=None, **legacy):
    """``Pr_MLN(query)`` computed through the WFOMC reduction."""
    reduction = reduce_to_wfomc(mln)
    return reduction.probability(
        query, n, options=SolverOptions.from_kwargs(options, **legacy))
