"""Small numeric and combinatorial helpers used across the library.

All weighted model counts in this library are exact: weights are
:class:`fractions.Fraction` values and counts are Python integers or
Fractions.  The helpers here keep that exactness (no floats anywhere on the
counting paths).
"""

from __future__ import annotations

import itertools
import threading
from collections import OrderedDict
from fractions import Fraction
from math import comb, factorial

from .errors import DomainSizeError

__all__ = [
    "LRUCache",
    "vocabulary_signature",
    "weights_signature",
    "as_fraction",
    "binomial",
    "multinomial",
    "compositions",
    "weak_compositions",
    "prod",
    "falling_factorial",
    "polynomial_interpolate",
    "check_domain_size",
    "powerset",
]


class LRUCache:
    """A small bounded mapping with least-recently-used eviction.

    Used for the solver dispatch, lineage, and cardinality-polynomial
    caches: entries can be large (whole ground lineages), so the bound is
    on entry *count* and callers pick sizes matching the entry weight.

    Thread-safe: the serving daemon (:mod:`repro.serve`) evaluates
    concurrent requests on executor threads that share every module-level
    cache, and an unguarded ``move_to_end`` racing an eviction can raise
    ``KeyError`` off the counting path.  A plain lock around the mutating
    operations costs nanoseconds against the cache-miss work it guards.
    """

    __slots__ = ("maxsize", "hits", "misses", "_data", "_lock")

    _MISSING = object()

    def __init__(self, maxsize):
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self._data = OrderedDict()
        self._lock = threading.Lock()

    def get(self, key, default=None):
        with self._lock:
            value = self._data.get(key, self._MISSING)
            if value is self._MISSING:
                self.misses += 1
                return default
            self.hits += 1
            self._data.move_to_end(key)
            return value

    def put(self, key, value):
        with self._lock:
            data = self._data
            if key in data:
                data.move_to_end(key)
            data[key] = value
            while len(data) > self.maxsize:
                data.popitem(last=False)

    def __contains__(self, key):
        with self._lock:
            return key in self._data

    def __len__(self):
        # Locked: ``len(OrderedDict)`` racing a ``put`` mid-eviction can
        # observe a transiently wrong size; metrics readers (the serving
        # daemon's ``/metrics``) want a consistent count.
        with self._lock:
            return len(self._data)

    def values(self):
        """A consistent point-in-time list of the cached values."""
        with self._lock:
            return list(self._data.values())

    def peek(self, key, default=None):
        """``get`` without touching recency or the hit/miss counters."""
        with self._lock:
            value = self._data.get(key, self._MISSING)
            return default if value is self._MISSING else value

    def clear(self):
        with self._lock:
            self._data.clear()
            self.hits = 0
            self.misses = 0

    def stats(self):
        lookups = self.hits + self.misses
        return {
            "entries": len(self),
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": round(self.hits / lookups, 4) if lookups else None,
        }


def vocabulary_signature(vocabulary, ordered=False):
    """A hashable ``(name, arity)`` signature of a vocabulary.

    ``ordered=False`` (default) sorts the pairs, giving an
    order-insensitive key for caches whose values do not depend on
    predicate iteration order (ground-atom universes).  Pass
    ``ordered=True`` when the cached value *is* ordered by the
    vocabulary's iteration order — e.g. cardinality-polynomial
    coefficient vectors — so differently-ordered vocabularies never
    share an entry.
    """
    signature = tuple((p.name, p.arity) for p in vocabulary)
    return signature if ordered else tuple(sorted(signature))


def weights_signature(weighted_vocabulary):
    """A hashable, order-independent key for a weighted vocabulary.

    Embeds each predicate's weight pair, so two vocabularies share a key
    exactly when they weigh the same predicates identically.
    """
    return tuple(
        sorted(
            (p.name, p.arity) + tuple(weighted_vocabulary.weight(p.name))
            for p in weighted_vocabulary.vocabulary
        )
    )


def as_fraction(value):
    """Coerce ``value`` to an exact :class:`~fractions.Fraction`.

    Integers and Fractions pass through; strings like ``"1/3"`` are parsed;
    floats are rejected because they would silently destroy exactness.
    """
    if isinstance(value, Fraction):
        return value
    if isinstance(value, bool):
        raise TypeError("booleans are not valid weights")
    if isinstance(value, int):
        return Fraction(value)
    if isinstance(value, str):
        return Fraction(value)
    if isinstance(value, float):
        raise TypeError(
            "float weights are not allowed; use fractions.Fraction or a "
            "string like '1/3' to keep all counts exact"
        )
    raise TypeError("cannot interpret {!r} as an exact weight".format(value))


def binomial(n, k):
    """Binomial coefficient ``C(n, k)``, zero outside the valid range."""
    if k < 0 or k > n or n < 0:
        return 0
    return comb(n, k)


def multinomial(counts):
    """Multinomial coefficient ``(sum counts)! / prod(count_i!)``."""
    total = sum(counts)
    result = factorial(total)
    for c in counts:
        result //= factorial(c)
    return result


def weak_compositions(n, k):
    """Yield all tuples of ``k`` non-negative ints summing to ``n``.

    The number of such tuples is ``C(n + k - 1, k - 1)``; callers should
    keep ``k`` small.  ``k == 0`` yields the empty tuple only when ``n == 0``.
    """
    if k == 0:
        if n == 0:
            yield ()
        return
    if k == 1:
        yield (n,)
        return
    for first in range(n + 1):
        for rest in weak_compositions(n - first, k - 1):
            yield (first,) + rest


# Alias used in older call sites; a "composition" here always allows zeros.
compositions = weak_compositions


def prod(values, start=1):
    """Exact product of an iterable (Fractions and ints mix freely)."""
    result = start
    for v in values:
        result = result * v
    return result


def falling_factorial(n, k):
    """``n * (n-1) * ... * (n-k+1)``; equals 0 when ``k > n >= 0``."""
    result = 1
    for i in range(k):
        result *= n - i
    return result


def polynomial_interpolate(points):
    """Exact coefficients of the polynomial through ``points``.

    ``points`` is a sequence of ``(x, y)`` pairs with distinct x values;
    the result is a list ``[c0, c1, ...]`` of Fractions such that
    ``sum(c_i x**i) == y`` at every given point.  Uses Lagrange
    interpolation over the rationals, so the result is exact.

    This powers the equality-removal reduction (Lemma 3.5): the paper reads
    off one coefficient of a degree-``n**2`` polynomial, which requires
    evaluating the WFOMC oracle at polynomially many points.
    """
    xs = [as_fraction(x) for x, _ in points]
    ys = [as_fraction(y) for _, y in points]
    if len(set(xs)) != len(xs):
        raise ValueError("interpolation points must have distinct x values")
    degree = len(points) - 1
    coeffs = [Fraction(0)] * (degree + 1)
    for i, (xi, yi) in enumerate(zip(xs, ys)):
        # Build the Lagrange basis polynomial L_i as a coefficient vector.
        basis = [Fraction(1)]
        denom = Fraction(1)
        for j, xj in enumerate(xs):
            if j == i:
                continue
            denom *= xi - xj
            # Multiply basis by (x - xj).
            new = [Fraction(0)] * (len(basis) + 1)
            for k, c in enumerate(basis):
                new[k + 1] += c
                new[k] -= c * xj
            basis = new
        scale = yi / denom
        for k, c in enumerate(basis):
            coeffs[k] += c * scale
    return coeffs


def check_domain_size(n):
    """Validate that ``n`` is a non-negative integer domain size."""
    if not isinstance(n, int) or isinstance(n, bool) or n < 0:
        raise DomainSizeError("domain size must be a non-negative int, got {!r}".format(n))
    return n


def powerset(iterable):
    """Yield all subsets (as tuples) of the given iterable."""
    items = list(iterable)
    for r in range(len(items) + 1):
        yield from itertools.combinations(items, r)
