"""Abstract syntax for first-order logic over a relational vocabulary.

The language matches Section 2 of the paper: relational atoms, equality,
the Boolean connectives, and the two quantifiers.  Domain elements are the
integers ``1..n``; constants may appear in formulas (they are used by the
grounding machinery when quantifiers are expanded).

All nodes are immutable and hashable, so formulas can be used as dictionary
keys and deduplicated structurally.  Connective constructors perform light
normalization (flattening of nested conjunctions/disjunctions and constant
folding) via the helpers :func:`conj`, :func:`disj` and :func:`neg`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple, Union

__all__ = [
    "Term", "Var", "Const",
    "Formula", "Atom", "Eq", "Not", "And", "Or", "Implies", "Iff",
    "Forall", "Exists", "Top", "Bottom", "TRUE", "FALSE",
    "conj", "disj", "neg", "forall", "exists", "variables",
    "free_variables", "all_variables", "num_variables",
    "predicates_of", "atoms_of", "substitute",
    "is_quantifier_free", "is_sentence",
]


# ---------------------------------------------------------------------------
# Terms
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Var:
    """A logical variable, identified by its name."""

    name: str

    def __repr__(self):
        return self.name


@dataclass(frozen=True)
class Const:
    """A domain constant; domain elements are integers ``1..n``."""

    value: int

    def __repr__(self):
        return "c{}".format(self.value)


Term = Union[Var, Const]


def variables(names):
    """Convenience: ``x, y = variables("x y")``."""
    parts = names.split()
    result = tuple(Var(p) for p in parts)
    return result if len(result) > 1 else result[0]


# ---------------------------------------------------------------------------
# Formulas
# ---------------------------------------------------------------------------

class Formula:
    """Base class for all formula nodes (marker; all nodes are dataclasses)."""

    __slots__ = ()

    # Operator sugar so formulas compose readably in examples and tests:
    # ``R(x) | S(x, y)``, ``~P(x)``, ``A >> B`` for implication.
    def __and__(self, other):
        return conj(self, other)

    def __or__(self, other):
        return disj(self, other)

    def __invert__(self):
        return neg(self)

    def __rshift__(self, other):
        return Implies(self, other)


@dataclass(frozen=True, repr=False)
class Top(Formula):
    """The constant ``true``."""

    def __repr__(self):
        return "true"


@dataclass(frozen=True, repr=False)
class Bottom(Formula):
    """The constant ``false``."""

    def __repr__(self):
        return "false"


TRUE = Top()
FALSE = Bottom()


@dataclass(frozen=True, repr=False)
class Atom(Formula):
    """A relational atom ``R(t1, ..., tk)``; ``pred`` is the symbol name."""

    pred: str
    args: Tuple[Term, ...]

    def __repr__(self):
        if not self.args:
            return self.pred
        return "{}({})".format(self.pred, ", ".join(repr(a) for a in self.args))


@dataclass(frozen=True, repr=False)
class Eq(Formula):
    """The equality atom ``left = right`` (the built-in ``=`` predicate)."""

    left: Term
    right: Term

    def __repr__(self):
        return "{} = {}".format(self.left, self.right)


@dataclass(frozen=True, repr=False)
class Not(Formula):
    """Negation."""

    body: Formula

    def __repr__(self):
        return "~{}".format(_paren(self.body))


@dataclass(frozen=True, repr=False)
class And(Formula):
    """N-ary conjunction; use :func:`conj` to construct with flattening."""

    parts: Tuple[Formula, ...]

    def __repr__(self):
        return " & ".join(_paren(p) for p in self.parts)


@dataclass(frozen=True, repr=False)
class Or(Formula):
    """N-ary disjunction; use :func:`disj` to construct with flattening."""

    parts: Tuple[Formula, ...]

    def __repr__(self):
        return " | ".join(_paren(p) for p in self.parts)


@dataclass(frozen=True, repr=False)
class Implies(Formula):
    """Implication ``antecedent -> consequent``."""

    antecedent: Formula
    consequent: Formula

    def __repr__(self):
        return "{} -> {}".format(_paren(self.antecedent), _paren(self.consequent))


@dataclass(frozen=True, repr=False)
class Iff(Formula):
    """Biconditional ``left <-> right``."""

    left: Formula
    right: Formula

    def __repr__(self):
        return "{} <-> {}".format(_paren(self.left), _paren(self.right))


@dataclass(frozen=True, repr=False)
class Forall(Formula):
    """Universal quantification over a single variable."""

    var: Var
    body: Formula

    def __repr__(self):
        return "forall {}. {}".format(self.var.name, _paren(self.body))


@dataclass(frozen=True, repr=False)
class Exists(Formula):
    """Existential quantification over a single variable."""

    var: Var
    body: Formula

    def __repr__(self):
        return "exists {}. {}".format(self.var.name, _paren(self.body))


def _paren(f):
    """Parenthesize composite subformulas for unambiguous printing."""
    if isinstance(f, (Atom, Eq, Top, Bottom, Not)):
        return repr(f)
    return "({})".format(repr(f))


# ---------------------------------------------------------------------------
# Smart constructors
# ---------------------------------------------------------------------------

def conj(*parts):
    """Conjunction with flattening and constant folding."""
    flat = []
    for p in parts:
        if isinstance(p, Top):
            continue
        if isinstance(p, Bottom):
            return FALSE
        if isinstance(p, And):
            flat.extend(p.parts)
        else:
            flat.append(p)
    if not flat:
        return TRUE
    if len(flat) == 1:
        return flat[0]
    return And(tuple(flat))


def disj(*parts):
    """Disjunction with flattening and constant folding."""
    flat = []
    for p in parts:
        if isinstance(p, Bottom):
            continue
        if isinstance(p, Top):
            return TRUE
        if isinstance(p, Or):
            flat.extend(p.parts)
        else:
            flat.append(p)
    if not flat:
        return FALSE
    if len(flat) == 1:
        return flat[0]
    return Or(tuple(flat))


def neg(f):
    """Negation with double-negation and constant folding."""
    if isinstance(f, Top):
        return FALSE
    if isinstance(f, Bottom):
        return TRUE
    if isinstance(f, Not):
        return f.body
    return Not(f)


def forall(vars_, body):
    """``forall([x, y], f)`` builds nested universal quantifiers."""
    if isinstance(vars_, Var):
        vars_ = [vars_]
    result = body
    for v in reversed(list(vars_)):
        result = Forall(v, result)
    return result


def exists(vars_, body):
    """``exists([x, y], f)`` builds nested existential quantifiers."""
    if isinstance(vars_, Var):
        vars_ = [vars_]
    result = body
    for v in reversed(list(vars_)):
        result = Exists(v, result)
    return result


# ---------------------------------------------------------------------------
# Structural queries
# ---------------------------------------------------------------------------

def free_variables(f):
    """The set of variables occurring free in ``f``."""
    if isinstance(f, (Top, Bottom)):
        return frozenset()
    if isinstance(f, Atom):
        return frozenset(a for a in f.args if isinstance(a, Var))
    if isinstance(f, Eq):
        return frozenset(t for t in (f.left, f.right) if isinstance(t, Var))
    if isinstance(f, Not):
        return free_variables(f.body)
    if isinstance(f, (And, Or)):
        result = frozenset()
        for p in f.parts:
            result |= free_variables(p)
        return result
    if isinstance(f, Implies):
        return free_variables(f.antecedent) | free_variables(f.consequent)
    if isinstance(f, Iff):
        return free_variables(f.left) | free_variables(f.right)
    if isinstance(f, (Forall, Exists)):
        return free_variables(f.body) - {f.var}
    raise TypeError("not a formula: {!r}".format(f))


def all_variables(f):
    """All variable names used in ``f``, bound or free.

    This is the quantity that defines the FOk fragments: a sentence is in
    FOk when it uses at most ``k`` *distinct* variable names (reuse of the
    same name in nested quantifiers is allowed and counts once).
    """
    if isinstance(f, (Top, Bottom)):
        return frozenset()
    if isinstance(f, Atom):
        return frozenset(a.name for a in f.args if isinstance(a, Var))
    if isinstance(f, Eq):
        return frozenset(t.name for t in (f.left, f.right) if isinstance(t, Var))
    if isinstance(f, Not):
        return all_variables(f.body)
    if isinstance(f, (And, Or)):
        result = frozenset()
        for p in f.parts:
            result |= all_variables(p)
        return result
    if isinstance(f, Implies):
        return all_variables(f.antecedent) | all_variables(f.consequent)
    if isinstance(f, Iff):
        return all_variables(f.left) | all_variables(f.right)
    if isinstance(f, (Forall, Exists)):
        return all_variables(f.body) | {f.var.name}
    raise TypeError("not a formula: {!r}".format(f))


def num_variables(f):
    """Number of distinct variable names in ``f`` (the k of FOk)."""
    return len(all_variables(f))


def predicates_of(f):
    """Mapping ``{name: arity}`` of all relation symbols occurring in ``f``.

    Raises ``ValueError`` if the same name occurs with two different arities.
    """
    result = {}

    def walk(g):
        if isinstance(g, Atom):
            arity = len(g.args)
            if result.setdefault(g.pred, arity) != arity:
                raise ValueError(
                    "predicate {} used with arities {} and {}".format(
                        g.pred, result[g.pred], arity
                    )
                )
        elif isinstance(g, Eq) or isinstance(g, (Top, Bottom)):
            pass
        elif isinstance(g, Not):
            walk(g.body)
        elif isinstance(g, (And, Or)):
            for p in g.parts:
                walk(p)
        elif isinstance(g, Implies):
            walk(g.antecedent)
            walk(g.consequent)
        elif isinstance(g, Iff):
            walk(g.left)
            walk(g.right)
        elif isinstance(g, (Forall, Exists)):
            walk(g.body)
        else:
            raise TypeError("not a formula: {!r}".format(g))

    walk(f)
    return result


def atoms_of(f):
    """The set of :class:`Atom` and :class:`Eq` nodes occurring in ``f``."""
    result = set()

    def walk(g):
        if isinstance(g, (Atom, Eq)):
            result.add(g)
        elif isinstance(g, (Top, Bottom)):
            pass
        elif isinstance(g, Not):
            walk(g.body)
        elif isinstance(g, (And, Or)):
            for p in g.parts:
                walk(p)
        elif isinstance(g, Implies):
            walk(g.antecedent)
            walk(g.consequent)
        elif isinstance(g, Iff):
            walk(g.left)
            walk(g.right)
        elif isinstance(g, (Forall, Exists)):
            walk(g.body)
        else:
            raise TypeError("not a formula: {!r}".format(g))

    walk(f)
    return result


def substitute(f, mapping):
    """Replace free variables of ``f`` according to ``mapping``.

    ``mapping`` maps :class:`Var` to terms (:class:`Var` or :class:`Const`).
    Quantifiers shadow: a bound variable is removed from the mapping inside
    its scope.  The caller is responsible for avoiding capture (grounding
    always substitutes constants, which can never be captured).
    """
    if not mapping:
        return f

    def sub_term(t):
        if isinstance(t, Var):
            return mapping.get(t, t)
        return t

    if isinstance(f, (Top, Bottom)):
        return f
    if isinstance(f, Atom):
        return Atom(f.pred, tuple(sub_term(a) for a in f.args))
    if isinstance(f, Eq):
        return Eq(sub_term(f.left), sub_term(f.right))
    if isinstance(f, Not):
        return neg(substitute(f.body, mapping))
    if isinstance(f, And):
        return conj(*(substitute(p, mapping) for p in f.parts))
    if isinstance(f, Or):
        return disj(*(substitute(p, mapping) for p in f.parts))
    if isinstance(f, Implies):
        return Implies(substitute(f.antecedent, mapping), substitute(f.consequent, mapping))
    if isinstance(f, Iff):
        return Iff(substitute(f.left, mapping), substitute(f.right, mapping))
    if isinstance(f, (Forall, Exists)):
        inner = {k: v for k, v in mapping.items() if k != f.var}
        cls = type(f)
        return cls(f.var, substitute(f.body, inner))
    raise TypeError("not a formula: {!r}".format(f))


def is_quantifier_free(f):
    """True when ``f`` contains no quantifier."""
    if isinstance(f, (Atom, Eq, Top, Bottom)):
        return True
    if isinstance(f, Not):
        return is_quantifier_free(f.body)
    if isinstance(f, (And, Or)):
        return all(is_quantifier_free(p) for p in f.parts)
    if isinstance(f, Implies):
        return is_quantifier_free(f.antecedent) and is_quantifier_free(f.consequent)
    if isinstance(f, Iff):
        return is_quantifier_free(f.left) and is_quantifier_free(f.right)
    if isinstance(f, (Forall, Exists)):
        return False
    raise TypeError("not a formula: {!r}".format(f))


def is_sentence(f):
    """True when ``f`` has no free variables."""
    return not free_variables(f)
