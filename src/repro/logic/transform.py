"""Syntactic transformations: NNF, prenex normal form, CNF of a matrix.

These are the workhorse rewrites behind the paper's reductions:

* :func:`nnf` pushes negations to the atoms (eliminating ``->`` and ``<->``),
* :func:`prenex` pulls all quantifiers to the front, renaming bound
  variables apart — note that prenexing may *increase* the number of
  distinct variables (FO2 is not closed under prenexing; that is exactly
  why Scott's reduction exists, see :mod:`repro.logic.scott`),
* :func:`matrix_to_cnf_clauses` turns a quantifier-free matrix into a set
  of clauses by distribution (used to present universally quantified
  sentences as conjunctions of clauses, Section 3.1).
"""

from __future__ import annotations

import itertools

from .syntax import (
    And,
    Atom,
    Bottom,
    Eq,
    Exists,
    Forall,
    Iff,
    Implies,
    Not,
    Or,
    Top,
    Var,
    conj,
    disj,
    exists,
    forall,
    neg,
    substitute,
)

__all__ = ["nnf", "prenex", "split_prenex", "simplify", "matrix_to_cnf_clauses", "fresh_var"]


def nnf(f):
    """Negation normal form: negations only on atoms; no ``->``/``<->``."""

    def pos(g):
        if isinstance(g, (Atom, Eq, Top, Bottom)):
            return g
        if isinstance(g, Not):
            return negf(g.body)
        if isinstance(g, And):
            return conj(*(pos(p) for p in g.parts))
        if isinstance(g, Or):
            return disj(*(pos(p) for p in g.parts))
        if isinstance(g, Implies):
            return disj(negf(g.antecedent), pos(g.consequent))
        if isinstance(g, Iff):
            return disj(
                conj(pos(g.left), pos(g.right)),
                conj(negf(g.left), negf(g.right)),
            )
        if isinstance(g, Forall):
            return Forall(g.var, pos(g.body))
        if isinstance(g, Exists):
            return Exists(g.var, pos(g.body))
        raise TypeError("not a formula: {!r}".format(g))

    def negf(g):
        if isinstance(g, (Atom, Eq)):
            return Not(g)
        if isinstance(g, Top):
            return Bottom()
        if isinstance(g, Bottom):
            return Top()
        if isinstance(g, Not):
            return pos(g.body)
        if isinstance(g, And):
            return disj(*(negf(p) for p in g.parts))
        if isinstance(g, Or):
            return conj(*(negf(p) for p in g.parts))
        if isinstance(g, Implies):
            return conj(pos(g.antecedent), negf(g.consequent))
        if isinstance(g, Iff):
            return disj(
                conj(pos(g.left), negf(g.right)),
                conj(negf(g.left), pos(g.right)),
            )
        if isinstance(g, Forall):
            return Exists(g.var, negf(g.body))
        if isinstance(g, Exists):
            return Forall(g.var, negf(g.body))
        raise TypeError("not a formula: {!r}".format(g))

    return pos(f)


def fresh_var(used, base="v"):
    """A variable name not in ``used`` (a set of names); updates nothing."""
    if base not in used:
        return Var(base)
    i = 1
    while "{}{}".format(base, i) in used:
        i += 1
    return Var("{}{}".format(base, i))


def prenex(f):
    """Prenex normal form: ``(prefix, matrix)``.

    ``prefix`` is a list of ``('forall'|'exists', Var)`` pairs and
    ``matrix`` is quantifier-free.  Bound variables are renamed apart, so
    the prefix length equals the number of quantifier occurrences in the
    NNF of ``f``.
    """
    g = nnf(f)
    used = set()

    def collect(h):
        from .syntax import all_variables

        used.update(all_variables(h))

    collect(g)

    def pull(h):
        if isinstance(h, (Atom, Eq, Top, Bottom, Not)):
            return [], h
        if isinstance(h, (Forall, Exists)):
            quant = "forall" if isinstance(h, Forall) else "exists"
            var = h.var
            body = h.body
            # Rename the bound variable to a globally fresh one.
            new = fresh_var(used, var.name)
            if new != var:
                body = substitute(body, {var: new})
            used.add(new.name)
            prefix, matrix = pull(body)
            return [(quant, new)] + prefix, matrix
        if isinstance(h, (And, Or)):
            prefixes = []
            matrices = []
            for p in h.parts:
                pre, mat = pull(p)
                prefixes.extend(pre)
                matrices.append(mat)
            combined = conj(*matrices) if isinstance(h, And) else disj(*matrices)
            return prefixes, combined
        raise TypeError("unexpected node in NNF: {!r}".format(h))

    return pull(g)


def split_prenex(prefix, matrix):
    """Rebuild a formula from a prenex ``(prefix, matrix)`` pair."""
    result = matrix
    for quant, var in reversed(prefix):
        result = Forall(var, result) if quant == "forall" else Exists(var, result)
    return result


def simplify(f):
    """Light simplification: constant folding via the smart constructors."""
    if isinstance(f, (Atom, Eq, Top, Bottom)):
        return f
    if isinstance(f, Not):
        return neg(simplify(f.body))
    if isinstance(f, And):
        return conj(*(simplify(p) for p in f.parts))
    if isinstance(f, Or):
        return disj(*(simplify(p) for p in f.parts))
    if isinstance(f, Implies):
        return disj(neg(simplify(f.antecedent)), simplify(f.consequent))
    if isinstance(f, Iff):
        left = simplify(f.left)
        right = simplify(f.right)
        if isinstance(left, Top):
            return right
        if isinstance(right, Top):
            return left
        if isinstance(left, Bottom):
            return neg(right)
        if isinstance(right, Bottom):
            return neg(left)
        return Iff(left, right)
    if isinstance(f, Forall):
        body = simplify(f.body)
        if isinstance(body, (Top, Bottom)):
            return body
        return Forall(f.var, body)
    if isinstance(f, Exists):
        body = simplify(f.body)
        if isinstance(body, (Top, Bottom)):
            return body
        return Exists(f.var, body)
    raise TypeError("not a formula: {!r}".format(f))


def matrix_to_cnf_clauses(matrix):
    """CNF of a quantifier-free matrix, as a list of literal lists.

    A literal is ``(positive: bool, atom)`` where atom is :class:`Atom` or
    :class:`Eq`.  Distribution is exponential in the worst case, which is
    acceptable for the fixed sentences this library manipulates.  Tautologous
    clauses (containing both an atom and its negation) are dropped; the
    empty clause list means ``true`` and ``[[]]`` means ``false``.
    """
    g = nnf(matrix)

    def clauses_of(h):
        # Returns a list of clauses (each a frozenset of literals).
        if isinstance(h, Top):
            return []
        if isinstance(h, Bottom):
            return [frozenset()]
        if isinstance(h, (Atom, Eq)):
            return [frozenset([(True, h)])]
        if isinstance(h, Not):
            return [frozenset([(False, h.body)])]
        if isinstance(h, And):
            result = []
            for p in h.parts:
                result.extend(clauses_of(p))
            return result
        if isinstance(h, Or):
            factor_lists = [clauses_of(p) for p in h.parts]
            if any(lst == [] for lst in factor_lists):
                return []  # a disjunct is 'true'
            result = []
            for combo in itertools.product(*factor_lists):
                merged = frozenset().union(*combo)
                result.append(merged)
            return result
        raise TypeError("unexpected node in NNF matrix: {!r}".format(h))

    raw = clauses_of(g)
    cleaned = []
    seen = set()
    for clause in raw:
        atoms_pos = {a for sign, a in clause if sign}
        atoms_neg = {a for sign, a in clause if not sign}
        if atoms_pos & atoms_neg:
            continue  # tautology
        if clause in seen:
            continue
        seen.add(clause)
        cleaned.append(sorted(clause, key=lambda lit: (repr(lit[1]), lit[0])))
    return cleaned
