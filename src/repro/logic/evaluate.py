"""Evaluate a first-order formula on a finite structure.

Structures live in :mod:`repro.grounding.structures`; evaluation is the
textbook recursive definition with quantifiers ranging over ``1..n``.
This is the semantic ground truth that every counting algorithm in the
library is validated against.
"""

from __future__ import annotations

from .syntax import (
    And,
    Atom,
    Bottom,
    Const,
    Eq,
    Exists,
    Forall,
    Iff,
    Implies,
    Not,
    Or,
    Top,
    Var,
)

__all__ = ["evaluate"]


def evaluate(formula, structure, assignment=None):
    """Truth value of ``formula`` in ``structure`` under ``assignment``.

    ``assignment`` maps :class:`Var` to domain elements (ints); it must
    cover all free variables of the formula.
    """
    env = dict(assignment) if assignment else {}
    return _eval(formula, structure, env)


def _term_value(t, env):
    if isinstance(t, Const):
        return t.value
    if isinstance(t, Var):
        try:
            return env[t]
        except KeyError:
            raise ValueError("unbound variable {} during evaluation".format(t)) from None
    raise TypeError("not a term: {!r}".format(t))


def _eval(f, structure, env):
    if isinstance(f, Top):
        return True
    if isinstance(f, Bottom):
        return False
    if isinstance(f, Atom):
        args = tuple(_term_value(a, env) for a in f.args)
        return structure.holds(f.pred, args)
    if isinstance(f, Eq):
        return _term_value(f.left, env) == _term_value(f.right, env)
    if isinstance(f, Not):
        return not _eval(f.body, structure, env)
    if isinstance(f, And):
        return all(_eval(p, structure, env) for p in f.parts)
    if isinstance(f, Or):
        return any(_eval(p, structure, env) for p in f.parts)
    if isinstance(f, Implies):
        return (not _eval(f.antecedent, structure, env)) or _eval(f.consequent, structure, env)
    if isinstance(f, Iff):
        return _eval(f.left, structure, env) == _eval(f.right, structure, env)
    if isinstance(f, (Forall, Exists)):
        # Save and restore any outer binding of the same variable name, so
        # formulas that rebind a variable inside its own scope (e.g. the
        # FO2 path formulas of Section 4) evaluate correctly.
        missing = object()
        saved = env.get(f.var, missing)
        is_forall = isinstance(f, Forall)
        result = is_forall
        for value in structure.domain():
            env[f.var] = value
            truth = _eval(f.body, structure, env)
            if truth != is_forall:
                result = truth
                break
        if saved is missing:
            env.pop(f.var, None)
        else:
            env[f.var] = saved
        return result
    raise TypeError("not a formula: {!r}".format(f))
