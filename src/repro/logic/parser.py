"""A small recursive-descent parser for first-order formulas.

Grammar (precedence from loosest to tightest)::

    formula   := iff
    iff       := implies ( "<->" implies )*
    implies   := or ( "->" implies )?          (right associative)
    or        := and ( "|" and )*
    and       := unary ( "&" unary )*
    unary     := "~" unary | quantified | atom
    quantified:= ("forall" | "exists") var ("," var)* "." unary-or-paren
    atom      := name "(" term ("," term)* ")" | name
               | term "=" term | term "!=" term
               | "true" | "false" | "(" formula ")"
    term      := lowercase identifier (variable) | integer (constant)

Convention: identifiers that start with an uppercase letter are predicate
symbols; identifiers that start with a lowercase letter are variables.
Examples::

    parse("forall x. exists y. R(x, y)")
    parse("forall x, y. (R(x) | S(x, y) | T(y))")
    parse("exists x, y. R(x, y) & x != y")
"""

from __future__ import annotations

import re

from ..errors import ParseError
from .syntax import (
    Const,
    Eq,
    Iff,
    Implies,
    Var,
    Atom,
    TRUE,
    FALSE,
    conj,
    disj,
    exists,
    forall,
    neg,
)

__all__ = ["parse"]

_TOKEN_RE = re.compile(
    r"\s*(?:(?P<lparen>\()|(?P<rparen>\))|(?P<comma>,)|(?P<dot>\.)"
    r"|(?P<iff><->)|(?P<implies>->)|(?P<neq>!=)|(?P<eq>=)"
    r"|(?P<and>&)|(?P<or>\|)|(?P<not>~)"
    r"|(?P<int>\d+)|(?P<name>[A-Za-z_][A-Za-z0-9_']*))"
)

_KEYWORDS = {"forall", "exists", "true", "false"}


def _tokenize(text):
    tokens = []
    pos = 0
    while pos < len(text):
        m = _TOKEN_RE.match(text, pos)
        if m is None:
            if text[pos:].strip():
                raise ParseError("unexpected character {!r}".format(text[pos]), pos)
            break
        kind = m.lastgroup
        value = m.group(kind)
        tokens.append((kind, value, m.start(kind)))
        pos = m.end()
    tokens.append(("eof", "", len(text)))
    return tokens


class _Parser:
    def __init__(self, text):
        self.text = text
        self.tokens = _tokenize(text)
        self.index = 0

    def peek(self):
        return self.tokens[self.index]

    def advance(self):
        tok = self.tokens[self.index]
        self.index += 1
        return tok

    def expect(self, kind):
        tok = self.advance()
        if tok[0] != kind:
            raise ParseError("expected {}, got {!r}".format(kind, tok[1]), tok[2])
        return tok

    # formula := iff
    def parse_formula(self):
        return self.parse_iff()

    def parse_iff(self):
        left = self.parse_implies()
        while self.peek()[0] == "iff":
            self.advance()
            right = self.parse_implies()
            left = Iff(left, right)
        return left

    def parse_implies(self):
        left = self.parse_or()
        if self.peek()[0] == "implies":
            self.advance()
            right = self.parse_implies()
            return Implies(left, right)
        return left

    def parse_or(self):
        parts = [self.parse_and()]
        while self.peek()[0] == "or":
            self.advance()
            parts.append(self.parse_and())
        return disj(*parts) if len(parts) > 1 else parts[0]

    def parse_and(self):
        parts = [self.parse_unary()]
        while self.peek()[0] == "and":
            self.advance()
            parts.append(self.parse_unary())
        return conj(*parts) if len(parts) > 1 else parts[0]

    def parse_unary(self):
        kind, value, pos = self.peek()
        if kind == "not":
            self.advance()
            return neg(self.parse_unary())
        if kind == "name" and value in ("forall", "exists"):
            return self.parse_quantified()
        return self.parse_atom()

    def parse_quantified(self):
        kind, value, pos = self.advance()
        quantifier = forall if value == "forall" else exists
        vars_ = [self.parse_variable()]
        while self.peek()[0] == "comma":
            self.advance()
            vars_.append(self.parse_variable())
        self.expect("dot")
        body = self.parse_unary_or_quantified_body()
        return quantifier(vars_, body)

    def parse_unary_or_quantified_body(self):
        # The body of a quantifier extends through connectives:
        # "forall x. R(x) & S(x)" scopes over the whole conjunction.
        return self.parse_iff()

    def parse_variable(self):
        kind, value, pos = self.advance()
        if kind != "name" or not value[0].islower() or value in _KEYWORDS:
            raise ParseError("expected a variable name, got {!r}".format(value), pos)
        return Var(value)

    def parse_term(self):
        kind, value, pos = self.advance()
        if kind == "int":
            return Const(int(value))
        if kind == "name" and value[0].islower() and value not in _KEYWORDS:
            return Var(value)
        raise ParseError("expected a term, got {!r}".format(value), pos)

    def parse_atom(self):
        kind, value, pos = self.peek()
        if kind == "lparen":
            self.advance()
            inner = self.parse_formula()
            self.expect("rparen")
            return self.maybe_equality_suffix_formula(inner)
        if kind == "name" and value == "true":
            self.advance()
            return TRUE
        if kind == "name" and value == "false":
            self.advance()
            return FALSE
        if kind == "name" and value[0].isupper():
            self.advance()
            args = ()
            if self.peek()[0] == "lparen":
                self.advance()
                arg_list = [self.parse_term()]
                while self.peek()[0] == "comma":
                    self.advance()
                    arg_list.append(self.parse_term())
                self.expect("rparen")
                args = tuple(arg_list)
            return Atom(value, args)
        # Otherwise it must be an equality between terms.
        left = self.parse_term()
        kind, value, pos = self.advance()
        if kind == "eq":
            return Eq(left, self.parse_term())
        if kind == "neq":
            return neg(Eq(left, self.parse_term()))
        raise ParseError("expected '=' or '!=' after term, got {!r}".format(value), pos)

    def maybe_equality_suffix_formula(self, inner):
        return inner


def parse(text):
    """Parse ``text`` into a formula; raises :class:`ParseError` on failure."""
    parser = _Parser(text)
    result = parser.parse_formula()
    kind, value, pos = parser.peek()
    if kind != "eof":
        raise ParseError("unexpected trailing input {!r}".format(value), pos)
    return result
