"""Relational vocabularies and symmetric weighted vocabularies (Section 2).

A :class:`Vocabulary` is an ordered collection of :class:`Predicate`
symbols.  A :class:`WeightedVocabulary` additionally carries a
:class:`~repro.weights.WeightPair` per symbol — the "(sigma, w, wbar)"
triple the paper calls a *weighted vocabulary*.  The symmetric WFOMC
problem extends these per-relation weights uniformly to all ground tuples.
"""

from __future__ import annotations

from dataclasses import dataclass
from ..errors import WeightError
from ..weights import WeightPair, ONE_ONE
from .syntax import Atom, Const, Var, predicates_of

__all__ = ["Predicate", "Vocabulary", "WeightedVocabulary"]


@dataclass(frozen=True)
class Predicate:
    """A relation symbol with a fixed arity.

    Predicates are callable, so ``R = Predicate("R", 2); R(x, y)`` builds
    the atom ``R(x, y)``.  Integer arguments are wrapped as constants.
    """

    name: str
    arity: int

    def __call__(self, *args):
        if len(args) != self.arity:
            raise TypeError(
                "predicate {} has arity {}, got {} arguments".format(
                    self.name, self.arity, len(args)
                )
            )
        terms = tuple(Const(a) if isinstance(a, int) else a for a in args)
        for t in terms:
            if not isinstance(t, (Var, Const)):
                raise TypeError("invalid term {!r}".format(t))
        return Atom(self.name, terms)

    def __repr__(self):
        return "{}/{}".format(self.name, self.arity)


class Vocabulary:
    """An ordered, immutable collection of predicates, indexed by name."""

    def __init__(self, predicates=()):
        self._preds = {}
        for p in predicates:
            if not isinstance(p, Predicate):
                raise TypeError("expected Predicate, got {!r}".format(p))
            existing = self._preds.get(p.name)
            if existing is not None and existing.arity != p.arity:
                raise ValueError(
                    "conflicting arities for {}: {} vs {}".format(
                        p.name, existing.arity, p.arity
                    )
                )
            self._preds[p.name] = p

    @classmethod
    def of_formula(cls, formula):
        """The vocabulary of all relation symbols occurring in ``formula``."""
        return cls(Predicate(name, arity) for name, arity in sorted(predicates_of(formula).items()))

    def __iter__(self):
        return iter(self._preds.values())

    def __len__(self):
        return len(self._preds)

    def __contains__(self, name):
        return name in self._preds

    def __getitem__(self, name):
        return self._preds[name]

    def names(self):
        return list(self._preds)

    def extend(self, predicates):
        """A new vocabulary with extra predicates appended."""
        return Vocabulary(list(self) + list(predicates))

    def num_ground_tuples(self, n):
        """``|Tup(n)| = sum_i n**arity(R_i)`` — number of ground atoms."""
        return sum(n ** p.arity for p in self)

    def __eq__(self, other):
        return isinstance(other, Vocabulary) and self._preds == other._preds

    def __repr__(self):
        return "Vocabulary({})".format(", ".join(repr(p) for p in self))


class WeightedVocabulary:
    """A vocabulary plus a symmetric weight pair for every predicate.

    Construct from a mapping of names to weight pairs (tuples coerce):

    >>> wv = WeightedVocabulary.from_weights({"R": (1, 1), "S": ("1/2", "1/2")},
    ...                                       arities={"R": 1, "S": 2})
    """

    def __init__(self, vocabulary, weights):
        self.vocabulary = vocabulary
        self._weights = {}
        for p in vocabulary:
            if p.name not in weights:
                raise WeightError("no weights given for predicate {}".format(p.name))
            pair = weights[p.name]
            if not isinstance(pair, WeightPair):
                pair = WeightPair(*pair)
            self._weights[p.name] = pair
        extra = set(weights) - set(vocabulary.names())
        if extra:
            raise WeightError("weights given for unknown predicates: {}".format(sorted(extra)))

    @classmethod
    def from_weights(cls, weights, arities):
        """Build vocabulary and weights together from plain dicts."""
        vocab = Vocabulary(Predicate(name, arities[name]) for name in weights)
        return cls(vocab, weights)

    @classmethod
    def uniform(cls, vocabulary, pair=ONE_ONE):
        """Give every predicate the same weight pair (default ``(1, 1)``)."""
        if not isinstance(pair, WeightPair):
            pair = WeightPair(*pair)
        return cls(vocabulary, {p.name: pair for p in vocabulary})

    @classmethod
    def counting(cls, formula):
        """The unweighted vocabulary of ``formula``: FOMC weights (1, 1)."""
        return cls.uniform(Vocabulary.of_formula(formula))

    def weight(self, name):
        """The :class:`WeightPair` of predicate ``name``."""
        try:
            return self._weights[name]
        except KeyError:
            raise WeightError("predicate {} has no weights".format(name)) from None

    def items(self):
        return [(p, self._weights[p.name]) for p in self.vocabulary]

    def extend(self, new_weights, new_arities):
        """A new weighted vocabulary with extra weighted predicates.

        Used by the reductions of Lemmas 3.3-3.5, which repeatedly extend
        the weighted vocabulary with fresh symbols.
        """
        preds = [Predicate(name, new_arities[name]) for name in new_weights]
        vocab = self.vocabulary.extend(preds)
        weights = dict(self._weights)
        for name, pair in new_weights.items():
            if name in weights:
                raise WeightError("predicate {} already present".format(name))
            weights[name] = pair if isinstance(pair, WeightPair) else WeightPair(*pair)
        return WeightedVocabulary(vocab, weights)

    def with_weight(self, name, pair):
        """A copy with the weight of one predicate replaced."""
        if not isinstance(pair, WeightPair):
            pair = WeightPair(*pair)
        weights = dict(self._weights)
        if name not in weights:
            raise WeightError("predicate {} not in vocabulary".format(name))
        weights[name] = pair
        return WeightedVocabulary(self.vocabulary, weights)

    def fresh_name(self, base):
        """A predicate name starting with ``base`` not already used."""
        if base not in self.vocabulary:
            return base
        i = 1
        while "{}_{}".format(base, i) in self.vocabulary:
            i += 1
        return "{}_{}".format(base, i)

    def total_world_weight(self, n):
        """``WFOMC(true, n, w, wbar) = prod_t (w(t) + wbar(t))``.

        This is the normalization constant that turns weighted counts into
        probabilities.
        """
        result = 1
        for p, pair in self.items():
            result *= pair.total ** (n ** p.arity)
        return result

    def __repr__(self):
        pairs = ", ".join(
            "{}: ({}, {})".format(p.name, w.w, w.wbar) for p, w in self.items()
        )
        return "WeightedVocabulary({})".format(pairs)
