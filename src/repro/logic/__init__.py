"""First-order logic kernel: syntax, parsing, transformations, evaluation."""

from .syntax import (
    Var,
    Const,
    Atom,
    Eq,
    Not,
    And,
    Or,
    Implies,
    Iff,
    Forall,
    Exists,
    Top,
    Bottom,
    TRUE,
    FALSE,
    conj,
    disj,
    neg,
    forall,
    exists,
    free_variables,
    all_variables,
    num_variables,
    predicates_of,
    substitute,
    is_quantifier_free,
    is_sentence,
    atoms_of,
)
from .vocabulary import Predicate, Vocabulary, WeightedVocabulary
from .parser import parse
from .transform import nnf, prenex, simplify, matrix_to_cnf_clauses
from .evaluate import evaluate
from .scott import scott_normalize, UniversalSentence

__all__ = [
    "Var", "Const", "Atom", "Eq", "Not", "And", "Or", "Implies", "Iff",
    "Forall", "Exists", "Top", "Bottom", "TRUE", "FALSE",
    "conj", "disj", "neg", "forall", "exists",
    "free_variables", "all_variables", "num_variables", "predicates_of",
    "substitute", "is_quantifier_free", "is_sentence", "atoms_of",
    "Predicate", "Vocabulary", "WeightedVocabulary",
    "parse", "nnf", "prenex", "simplify", "matrix_to_cnf_clauses",
    "evaluate", "scott_normalize", "UniversalSentence",
]
