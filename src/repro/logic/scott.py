"""Scott's reduction: flattening nested quantifiers (paper Section 4, App. C).

Given a sentence ``phi``, Scott's reduction introduces a fresh relation
symbol ``S_psi`` for every quantified subformula ``psi`` and asserts the
defining axiom ``forall xbar (S_psi(xbar) <-> Q y psi')``.  The result is a
conjunction of prenex sentences whose quantifier prefix has length at most
``k`` for ``phi`` in FOk, and:

1. the finite models of ``phi`` and of the conjunction are in one-to-one
   correspondence (each new symbol is functionally determined), and
2. giving every new symbol the weight pair ``(1, 1)`` preserves WFOMC.

We split each biconditional axiom into its two prenex halves, so the output
is a list of :class:`PrenexSentence` whose prefixes match one of the shapes
``forall*`` or ``forall* exists`` — exactly what Skolemization (Lemma 3.3)
consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..weights import WeightPair, SKOLEM
from .syntax import (
    And,
    Atom,
    Bottom,
    Eq,
    Exists,
    Forall,
    Iff,
    Implies,
    Not,
    Or,
    Top,
    Var,
    conj,
    disj,
    free_variables,
    neg,
)

__all__ = ["PrenexSentence", "UniversalSentence", "scott_normalize", "skolemize_scott"]


@dataclass(frozen=True)
class PrenexSentence:
    """A prenex sentence: quantifier prefix plus quantifier-free matrix.

    ``prefix`` is a tuple of ``("forall" | "exists", Var)`` pairs.
    """

    prefix: Tuple[Tuple[str, Var], ...]
    matrix: object

    def __repr__(self):
        head = " ".join("{} {}.".format(q, v.name) for q, v in self.prefix)
        return "{} {}".format(head, self.matrix) if head else repr(self.matrix)


@dataclass(frozen=True)
class UniversalSentence:
    """A purely universal sentence ``forall vars. matrix``."""

    vars: Tuple[Var, ...]
    matrix: object

    def __repr__(self):
        head = " ".join("forall {}.".format(v.name) for v in self.vars)
        return "{} {}".format(head, self.matrix) if head else repr(self.matrix)


class _NameSupply:
    def __init__(self, taken):
        self.taken = set(taken)

    def fresh(self, base):
        if base not in self.taken:
            self.taken.add(base)
            return base
        i = 1
        while "{}{}".format(base, i) in self.taken:
            i += 1
        name = "{}{}".format(base, i)
        self.taken.add(name)
        return name


def scott_normalize(formula, weighted_vocabulary):
    """Apply Scott's reduction to a sentence.

    Returns ``(sentences, extended_weighted_vocabulary)`` where
    ``sentences`` is a list of :class:`PrenexSentence` (prefix shapes
    ``forall*`` or ``forall* exists``) whose conjunction has the same
    WFOMC as ``formula`` under the extended vocabulary.
    """
    free = free_variables(formula)
    if free:
        raise ValueError("Scott reduction needs a sentence, free vars: {}".format(free))

    names = _NameSupply(weighted_vocabulary.vocabulary.names())
    axioms: List[PrenexSentence] = []
    new_weights = {}
    new_arities = {}

    def define(quantifier, var, body):
        """Introduce S <-> (Q var. body); return the replacing atom."""
        fv = sorted(free_variables(body) - {var}, key=lambda v: v.name)
        name = names.fresh("Sc")
        new_weights[name] = WeightPair(1, 1)
        new_arities[name] = len(fv)
        head = Atom(name, tuple(fv))
        prefix_fv = tuple(("forall", v) for v in fv)
        if quantifier == "exists":
            # (exists v body) -> head  ===  forall fv forall v (~body | head)
            axioms.append(
                PrenexSentence(prefix_fv + (("forall", var),), disj(neg(body), head))
            )
            # head -> (exists v body)  ===  forall fv exists v (~head | body)
            axioms.append(
                PrenexSentence(prefix_fv + (("exists", var),), disj(neg(head), body))
            )
        else:
            # head -> (forall v body)  ===  forall fv forall v (~head | body)
            axioms.append(
                PrenexSentence(prefix_fv + (("forall", var),), disj(neg(head), body))
            )
            # (forall v body) -> head  ===  forall fv exists v (~body | head)
            axioms.append(
                PrenexSentence(prefix_fv + (("exists", var),), disj(neg(body), head))
            )
        return head

    def replace(g):
        if isinstance(g, (Atom, Eq, Top, Bottom)):
            return g
        if isinstance(g, Not):
            return neg(replace(g.body))
        if isinstance(g, And):
            return conj(*(replace(p) for p in g.parts))
        if isinstance(g, Or):
            return disj(*(replace(p) for p in g.parts))
        if isinstance(g, Implies):
            return Implies(replace(g.antecedent), replace(g.consequent))
        if isinstance(g, Iff):
            return Iff(replace(g.left), replace(g.right))
        if isinstance(g, Forall):
            return define("forall", g.var, replace(g.body))
        if isinstance(g, Exists):
            return define("exists", g.var, replace(g.body))
        raise TypeError("not a formula: {!r}".format(g))

    top = replace(formula)
    sentences = [PrenexSentence((), top)] + axioms
    extended = weighted_vocabulary.extend(new_weights, new_arities)
    return sentences, extended


def skolemize_scott(sentences, weighted_vocabulary):
    """Skolemize Scott-shaped prenex sentences (Lemma 3.3, simple case).

    Every input sentence has prefix ``forall*`` or ``forall* exists``.
    The latter, ``forall xbar exists y m``, becomes
    ``forall xbar forall y (~m | A(xbar))`` with a fresh symbol ``A`` of
    arity ``|xbar|`` and the cancellation weights ``(1, -1)``: in worlds
    where the existential witness exists, ``A`` is forced true and weighs
    ``1``; where it does not, the two choices of ``A`` cancel.

    Returns ``(universal_sentences, extended_weighted_vocabulary)``.
    """
    names = _NameSupply(weighted_vocabulary.vocabulary.names())
    new_weights = {}
    new_arities = {}
    result = []

    for sent in sentences:
        kinds = [q for q, _v in sent.prefix]
        if all(q == "forall" for q in kinds):
            result.append(UniversalSentence(tuple(v for _q, v in sent.prefix), sent.matrix))
            continue
        if kinds.count("exists") != 1 or kinds[-1] != "exists":
            raise ValueError(
                "expected Scott-shaped prefix forall*[exists], got {}".format(kinds)
            )
        universal_vars = tuple(v for _q, v in sent.prefix[:-1])
        last_var = sent.prefix[-1][1]
        name = names.fresh("Sk")
        new_weights[name] = SKOLEM
        new_arities[name] = len(universal_vars)
        witness = Atom(name, universal_vars)
        matrix = disj(neg(sent.matrix), witness)
        result.append(UniversalSentence(universal_vars + (last_var,), matrix))

    extended = weighted_vocabulary.extend(new_weights, new_arities)
    return result, extended
