"""repro: Symmetric Weighted First-Order Model Counting (PODS 2015).

A complete, exact-arithmetic reproduction of Beame, Van den Broeck,
Gribkoff & Suciu, *Symmetric Weighted First-Order Model Counting*,
PODS 2015.  The library provides:

* an FO logic kernel (:mod:`repro.logic`) with a parser, normal forms,
  Scott's reduction, and finite-model evaluation;
* exact weighted model counting for propositional formulas
  (:mod:`repro.propositional`) and for FO sentences by grounding
  (:mod:`repro.grounding`, :mod:`repro.wfomc.bruteforce`);
* the polynomial-time lifted algorithms: FO2 cell decomposition
  (Appendix C), gamma-acyclic conjunctive queries (Theorem 3.6), the
  Q_S4 dynamic program (Theorem 3.7), and chain queries (Example 3.10);
* the WFOMC-preserving reductions of Lemmas 3.3-3.5
  (:mod:`repro.transforms`);
* Markov Logic Networks and the Example 1.2 reduction (:mod:`repro.mln`),
  including circuit-based weight learning (:func:`repro.mln.mln_weight_learn`);
* the knowledge-compilation subsystem (:mod:`repro.compile`): the
  counting search traced once into an arithmetic circuit, serving any
  number of weight vectors — and their exact gradients — by circuit
  evaluation;
* the paper's complexity-theoretic constructions
  (:mod:`repro.complexity`): the FO3 Turing-machine encoding Theta_1,
  the #SAT gadget of Figure 2, the QBF/PSPACE gadget, the Lemma 3.8
  pairing function, and spectrum decision procedures.

Quick start::

    >>> from repro import parse, fomc
    >>> fomc(parse("forall x. exists y. R(x, y)"), 5)
    28629151
    >>> # == (2**5 - 1)**5
"""

from .errors import (
    BudgetExceededError,
    DomainSizeError,
    EncodingError,
    FaultPlanError,
    NotFO2Error,
    NotGammaAcyclicError,
    ParseError,
    ReproError,
    SelfJoinError,
    ServiceDrainingError,
    ServiceOverloadedError,
    UnsupportedFormulaError,
    WeightError,
)
from .options import SolverOptions
from .resilience import Budget, FaultPlan
from .weights import WeightPair, ONE_ONE, SKOLEM, from_probability
from .logic import (
    Predicate,
    Vocabulary,
    WeightedVocabulary,
    Var,
    parse,
)
from .wfomc import (
    fomc,
    probability,
    wfomc,
    wfomc_batch,
    wfomc_weight_sweep,
    wfomc_fo2,
    wfomc_qs4,
    chain_probability,
    QS4_SENTENCE,
)
from .cq import (
    CQAtom,
    ConjunctiveQuery,
    Hypergraph,
    gamma_acyclic_probability,
)
from .compile import Circuit, CompiledWFOMC, compile_wfomc
from .mln import (
    HARD,
    MLN,
    mln_probability,
    mln_probability_bruteforce,
    mln_probability_wfomc,
    mln_query_sweep,
    mln_weight_learn,
)
from .lifted import RulesIncompleteError, lifted_wfomc

__version__ = "0.2.0"

__all__ = [
    "ReproError",
    "ParseError",
    "UnsupportedFormulaError",
    "NotFO2Error",
    "NotGammaAcyclicError",
    "SelfJoinError",
    "DomainSizeError",
    "WeightError",
    "EncodingError",
    "BudgetExceededError",
    "FaultPlanError",
    "ServiceOverloadedError",
    "ServiceDrainingError",
    "SolverOptions",
    "Budget",
    "FaultPlan",
    "WeightPair",
    "ONE_ONE",
    "SKOLEM",
    "from_probability",
    "Predicate",
    "Vocabulary",
    "WeightedVocabulary",
    "Var",
    "parse",
    "fomc",
    "wfomc",
    "probability",
    "wfomc_batch",
    "wfomc_weight_sweep",
    "wfomc_fo2",
    "wfomc_qs4",
    "chain_probability",
    "QS4_SENTENCE",
    "CQAtom",
    "ConjunctiveQuery",
    "Hypergraph",
    "gamma_acyclic_probability",
    "Circuit",
    "CompiledWFOMC",
    "compile_wfomc",
    "HARD",
    "MLN",
    "mln_probability",
    "mln_query_sweep",
    "mln_probability_bruteforce",
    "mln_probability_wfomc",
    "mln_weight_learn",
    "RulesIncompleteError",
    "lifted_wfomc",
    "__version__",
]
