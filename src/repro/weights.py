"""Weight pairs and the weight/probability correspondence (paper Section 2).

A symmetric WFOMC instance assigns every relation symbol ``R`` a pair of
weights ``(w, wbar)``: each ground tuple of ``R`` contributes a factor ``w``
to the weight of a world when it is present and ``wbar`` when it is absent.
The paper (Eq. 4) relates the variants:

* ``WMC(F, w, wbar) = WMC(F, w/wbar, 1) * prod(wbar)``
* probabilities are the special case ``p = w / (w + wbar)``.

Negative weights are first-class citizens here: the Skolemization reduction
(Lemma 3.3) requires the weight pair ``(1, -1)``, and the MLN reduction
(Example 1.2) produces weight ``1/(w-1)`` which is negative for ``w < 1``.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from .errors import WeightError
from .utils import as_fraction

__all__ = ["WeightPair", "ONE_ONE", "SKOLEM", "from_probability", "to_probability"]


@dataclass(frozen=True)
class WeightPair:
    """Weights ``(w, wbar)`` for a single relation symbol.

    ``w`` multiplies the weight of a world for every tuple present in the
    relation, ``wbar`` for every tuple absent.  Unweighted model counting is
    the pair ``(1, 1)``.
    """

    w: Fraction
    wbar: Fraction

    def __post_init__(self):
        object.__setattr__(self, "w", as_fraction(self.w))
        object.__setattr__(self, "wbar", as_fraction(self.wbar))

    @property
    def total(self):
        """Weight mass of one tuple summed over present/absent: ``w + wbar``."""
        return self.w + self.wbar

    def probability(self):
        """The probability ``w / (w + wbar)`` this pair corresponds to.

        Raises :class:`WeightError` when ``w + wbar == 0`` (such pairs, e.g.
        the Skolem pair ``(1, -1)``, have no probabilistic reading).
        """
        if self.total == 0:
            raise WeightError(
                "weight pair {} has w + wbar == 0 and no probability form".format(self)
            )
        return self.w / self.total

    def __iter__(self):
        yield self.w
        yield self.wbar

    def __repr__(self):
        return "WeightPair({}, {})".format(self.w, self.wbar)


#: The unweighted pair: plain model counting.
ONE_ONE = WeightPair(1, 1)

#: The Skolemization pair of Lemma 3.3: cancels worlds in pairs.
SKOLEM = WeightPair(1, -1)


def from_probability(p):
    """Weight pair ``(p, 1 - p)`` whose probability reading is ``p``.

    Any rational ``p`` is accepted, including values outside ``[0, 1]``
    (the paper explicitly works with "negative probabilities" produced by
    the MLN reduction).
    """
    p = as_fraction(p)
    return WeightPair(p, 1 - p)


def to_probability(pair):
    """Inverse of :func:`from_probability` up to scaling; see the paper Eq. 4."""
    return pair.probability()
