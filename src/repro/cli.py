"""Command-line interface: ``python -m repro <command> ...``.

Commands
--------
count        FOMC of a sentence over a domain size
wfomc        weighted count, with ``--weight R=w,wbar`` options
batch        weighted counts at several domain sizes in one run
probability  probability of the sentence under the weight semantics
stats        run a weighted count and pretty-print every engine/cache
             statistic the run touched
cache        inspect the persistent on-disk cache: ``stats`` / ``clear``
             / ``path``
spectrum     which domain sizes up to a bound admit a model
mu           the labeled-structure fraction mu_n (0-1 laws)

``--stats`` on the counting commands prints engine/cache statistics to
stderr after the result; ``--workers N`` counts independent lineage
components on a process pool (bit-identical to a serial run).
``--persist`` backs the component/polynomial/FO2 caches with the
disk store under ``--cache-dir`` (default ``$REPRO_CACHE_DIR`` or
``~/.cache/repro``), so a repeated run — even in a new process — is
served from disk.  The grounded counting engine's conflict-driven
search is configurable: ``--branching {evsids,moms}`` picks the
decision heuristic, ``--no-learn`` disables clause learning (the
pre-CDCL engine), and ``--max-learned N`` bounds the learned-clause
database.  None of these change the counted value.

Examples::

    python -m repro count "forall x. exists y. R(x, y)" 5
    python -m repro wfomc "exists y. S(y)" 4 --weight S=1/2,1
    python -m repro batch "forall x, y. (R(x) | S(x, y))" 1 2 3 4
    python -m repro count "forall x, y, z. (R(x, y) | S(y, z))" 4 --workers 4
    python -m repro count "forall x, y. (R(x) | S(x, y))" 3 --no-learn
    python -m repro count "forall x, y. (R(x) | S(x, y))" 4 --persist
    python -m repro stats "forall x, y. (R(x) | S(x, y) | T(y))" 3
    python -m repro cache stats
    python -m repro probability "exists x. P(x)" 3
    python -m repro spectrum "exists x, y. x != y" 4
    python -m repro mu "forall x. exists y. R(x, y)" 8
"""

from __future__ import annotations

import argparse
import sys
from fractions import Fraction

from .complexity.spectrum import spectrum
from .asymptotics.zero_one import mu_n
from .logic.parser import parse
from .logic.syntax import predicates_of
from .logic.vocabulary import Vocabulary, Predicate, WeightedVocabulary
from .propositional.counter import engine_stats
from .weights import WeightPair
from .wfomc.solver import fomc, probability, solver_cache_stats, wfomc, wfomc_batch

__all__ = ["main", "build_parser"]


def _parse_weight_option(option):
    """``R=1/2,1`` -> ``("R", WeightPair(1/2, 1))``."""
    try:
        name, pair_text = option.split("=", 1)
        w_text, wbar_text = pair_text.split(",", 1)
        return name, WeightPair(Fraction(w_text), Fraction(wbar_text))
    except (ValueError, ZeroDivisionError) as exc:
        raise argparse.ArgumentTypeError(
            "weight options look like NAME=w,wbar (e.g. R=1/2,1): {}".format(exc)
        )


def _weighted_vocabulary(formula, weight_options):
    arities = predicates_of(formula)
    vocab = Vocabulary(Predicate(n, a) for n, a in sorted(arities.items()))
    weights = {name: WeightPair(1, 1) for name in arities}
    for name, pair in weight_options or []:
        if name not in weights:
            raise SystemExit(
                "predicate {} does not occur in the sentence".format(name)
            )
        weights[name] = pair
    return WeightedVocabulary(vocab, weights)


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Symmetric weighted first-order model counting (PODS 2015).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p, batch=False):
        p.add_argument("formula", help="an FO sentence, e.g. 'forall x. exists y. R(x, y)'")
        if batch:
            p.add_argument("ns", type=int, nargs="+", metavar="n", help="domain sizes")
        else:
            p.add_argument("n", type=int, help="domain size")
        p.add_argument(
            "--method",
            choices=("auto", "fo2", "lineage", "enumerate"),
            default="auto",
        )
        p.add_argument(
            "--stats",
            action="store_true",
            help="print engine and cache statistics to stderr",
        )
        p.add_argument(
            "--workers",
            type=int,
            default=None,
            metavar="N",
            help="count independent lineage components on N worker "
                 "processes (results are bit-identical to a serial run)",
        )
        p.add_argument(
            "--branching",
            choices=("evsids", "moms"),
            default=None,
            help="decision heuristic of the grounded counting engine "
                 "(default: evsids; moms is the pre-CDCL heuristic, kept "
                 "for ablation)",
        )
        p.add_argument(
            "--no-learn",
            action="store_true",
            help="disable conflict-driven clause learning (use the "
                 "learning-free MOMS engine; the count is identical)",
        )
        p.add_argument(
            "--max-learned",
            type=int,
            default=None,
            metavar="N",
            help="bound on the learned-clause database of one component "
                 "search before an LBD-based reduction (default 4096)",
        )
        p.add_argument(
            "--persist",
            action="store_true",
            help="back the component/polynomial/FO2 caches with the "
                 "on-disk store, shared across runs and processes "
                 "(results are bit-identical with or without it)",
        )
        p.add_argument(
            "--cache-dir",
            default=None,
            metavar="DIR",
            help="persistent cache location (default: $REPRO_CACHE_DIR "
                 "or ~/.cache/repro)",
        )

    p_count = sub.add_parser("count", help="unweighted model count (FOMC)")
    add_common(p_count)

    p_wfomc = sub.add_parser("wfomc", help="weighted model count")
    add_common(p_wfomc)
    p_wfomc.add_argument(
        "--weight",
        action="append",
        type=_parse_weight_option,
        metavar="NAME=w,wbar",
        help="weights for one predicate (default 1,1); repeatable",
    )

    p_batch = sub.add_parser("batch", help="weighted counts at several domain sizes")
    add_common(p_batch, batch=True)
    p_batch.add_argument(
        "--weight",
        action="append",
        type=_parse_weight_option,
        metavar="NAME=w,wbar",
        help="weights for one predicate (default 1,1); repeatable",
    )

    p_prob = sub.add_parser("probability", help="probability of the sentence")
    add_common(p_prob)
    p_prob.add_argument(
        "--weight",
        action="append",
        type=_parse_weight_option,
        metavar="NAME=w,wbar",
    )

    p_stats = sub.add_parser(
        "stats",
        help="run a weighted count and pretty-print the full engine and "
             "solver-cache statistics",
    )
    add_common(p_stats)
    p_stats.add_argument(
        "--weight",
        action="append",
        type=_parse_weight_option,
        metavar="NAME=w,wbar",
        help="weights for one predicate (default 1,1); repeatable",
    )

    p_cache = sub.add_parser(
        "cache",
        help="inspect or clear the persistent on-disk cache",
    )
    cache_sub = p_cache.add_subparsers(dest="cache_command", required=True)
    for name, help_text in (
        ("stats", "entry counts per cache layer plus cumulative hit/"
                  "miss/write counters (cross-process)"),
        ("clear", "delete every persisted entry and counter"),
        ("path", "print the resolved cache directory"),
    ):
        p = cache_sub.add_parser(name, help=help_text)
        p.add_argument(
            "--cache-dir",
            default=None,
            metavar="DIR",
            help="persistent cache location (default: $REPRO_CACHE_DIR "
                 "or ~/.cache/repro)",
        )

    p_spec = sub.add_parser("spectrum", help="domain sizes with a model")
    p_spec.add_argument("formula")
    p_spec.add_argument("max_n", type=int)

    p_mu = sub.add_parser("mu", help="labeled-structure fraction mu_n")
    p_mu.add_argument("formula")
    p_mu.add_argument("n", type=int)

    return parser


def _print_stats():
    """One line per cache layer; solver stats cover grounding and FO2."""
    print("engine: {}".format(engine_stats()), file=sys.stderr)
    for name, stats in solver_cache_stats().items():
        print("solver.{}: {}".format(name, stats), file=sys.stderr)


def _print_stats_pretty(stream=None):
    """Aligned breakdown of the engine counters and every solver cache."""
    stream = stream or sys.stdout
    engine = engine_stats()
    cnf_cache = engine.pop("cnf_cache", None)
    print("engine", file=stream)
    width = max(len(name) for name in engine)
    for name, value in engine.items():
        print("  {:<{}}  {}".format(name, width, value), file=stream)
    caches = dict(solver_cache_stats())
    if cnf_cache is not None:
        caches["cnf_conversions"] = cnf_cache
    print("solver caches", file=stream)
    width = max(len(name) for name in caches)
    for name, stats in caches.items():
        row = "  ".join(
            "{}={}".format(k, v) for k, v in stats.items()
        ) if isinstance(stats, dict) else str(stats)
        print("  {:<{}}  {}".format(name, width, row), file=stream)


def _engine_options(args):
    return {
        "workers": getattr(args, "workers", None),
        "branching": getattr(args, "branching", None),
        "learn": False if getattr(args, "no_learn", False) else None,
        "max_learned": getattr(args, "max_learned", None),
        "persist": True if getattr(args, "persist", False) else None,
        "cache_dir": getattr(args, "cache_dir", None),
    }


def _cache_main(args):
    """The ``repro cache`` subcommand: stats / clear / path."""
    import os

    from .cache import STORE_FILENAME, default_cache_dir, open_store

    directory = os.path.abspath(args.cache_dir or default_cache_dir())
    if args.cache_command == "path":
        print(directory)
        return 0
    store_file = os.path.join(directory, STORE_FILENAME)
    if not os.path.exists(store_file):
        # Don't create a store just to look at it.
        if args.cache_command == "stats":
            print("path     {}".format(store_file))
            print("entries  0  (no store file)")
        else:
            print("cleared 0 entries (no store file at {})".format(store_file))
        return 0
    store = open_store(directory)
    if args.cache_command == "clear":
        removed = store.clear()
        print("cleared {} entries from {}".format(removed, store.path))
        return 0
    stats = store.stats()
    print("path     {}".format(stats["path"]))
    print("size     {} bytes".format(stats["size_bytes"]))
    if stats["disabled"]:
        print("status   disabled (store unusable; runs fall back to "
              "recomputation)")
    elif stats["recreated"]:
        print("status   recreated (previous store file was corrupt)")
    print("entries  {}".format(stats["entries"]))
    for namespace, count in stats["namespaces"].items():
        print("  {:<14} {}".format(namespace, count))
    cumulative = stats["cumulative"]
    print("cumulative (all processes)")
    for name in ("hits", "misses", "writes"):
        print("  {:<14} {}".format(name, cumulative[name]))
    return 0


def main(argv=None):
    args = build_parser().parse_args(argv)
    if args.command == "cache":
        return _cache_main(args)
    formula = parse(args.formula)

    options = _engine_options(args)
    if args.command == "count":
        print(fomc(formula, args.n, method=args.method, **options))
    elif args.command == "wfomc":
        wv = _weighted_vocabulary(formula, args.weight)
        print(wfomc(formula, args.n, wv, method=args.method, **options))
    elif args.command == "batch":
        wv = _weighted_vocabulary(formula, args.weight)
        results = wfomc_batch(formula, args.ns, wv, method=args.method,
                              **options)
        for n, value in results.items():
            print("{}\t{}".format(n, value))
    elif args.command == "probability":
        wv = _weighted_vocabulary(formula, args.weight)
        value = probability(formula, args.n, wv, method=args.method,
                            **options)
        print("{} (~{:.6f})".format(value, float(value)))
    elif args.command == "stats":
        wv = _weighted_vocabulary(formula, args.weight)
        value = wfomc(formula, args.n, wv, method=args.method, **options)
        print("result  {}".format(value))
        _print_stats_pretty()
    elif args.command == "spectrum":
        members = spectrum(formula, args.max_n)
        print(" ".join(str(n) for n in sorted(members)) or "(empty)")
    elif args.command == "mu":
        value = mu_n(formula, args.n)
        print("{} (~{:.6f})".format(value, float(value)))
    if getattr(args, "stats", False) and args.command != "stats":
        _print_stats()
    if getattr(args, "persist", False):
        # Make this run's results visible to other processes now rather
        # than at interpreter exit (callers may invoke main() in-process).
        from .cache import open_store

        open_store(getattr(args, "cache_dir", None)).flush()
    return 0


if __name__ == "__main__":
    sys.exit(main())
