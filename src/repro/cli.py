"""Command-line interface: ``python -m repro <command> ...``.

Commands
--------
count        FOMC of a sentence over a domain size
wfomc        weighted count, with ``--weight R=w,wbar`` options
batch        weighted counts at several domain sizes in one run
             (``--compile`` serves them from compiled circuits)
sweep        weighted counts of one instance at many weights for one
             predicate (``--vary R --values 1/2,1,2``; ``--compile``
             compiles the instance once and evaluates the circuit)
probability  probability of the sentence under the weight semantics
compile      compile a WFOMC instance into an arithmetic circuit and
             report its node/edge/depth statistics
stats        run a weighted count and pretty-print every engine/cache
             statistic the run touched (including circuit-compilation
             counters and trace-template sizes)
cache        inspect the persistent on-disk cache: ``stats`` / ``clear``
             / ``vacuum`` (size-bounded LRU eviction) / ``path``
spectrum     which domain sizes up to a bound admit a model
mu           the labeled-structure fraction mu_n (0-1 laws)

``--stats`` on the counting commands prints engine/cache statistics to
stderr after the result; ``--workers N`` counts independent lineage
components on a process pool (bit-identical to a serial run).
``--persist`` backs the component/polynomial/FO2 caches with the
disk store under ``--cache-dir`` (default ``$REPRO_CACHE_DIR`` or
``~/.cache/repro``), so a repeated run — even in a new process — is
served from disk.  The grounded counting engine's conflict-driven
search is configurable: ``--branching {evsids,moms}`` picks the
decision heuristic, ``--no-learn`` disables clause learning (the
pre-CDCL engine), ``--max-learned N`` bounds the learned-clause
database, ``--no-phase-saving`` disables backjump polarity memory, and
``--restarts N`` enables Luby restarts with unit N conflicts.
None of these change the counted value.  ``--backend
{exact,batched,float,codegen}`` picks the circuit-evaluation backend of
the compiled fast path (and implies ``--compile`` where that applies);
all flags are gathered into one :class:`repro.SolverOptions` object and
threaded through the solver stack as-is.

``--timeout SECONDS``, ``--max-conflicts N``, and ``--max-decisions N``
bound a counting run with a :class:`repro.Budget`; a tripped budget
aborts with exit code 4 and leaves every cache consistent, so the same
command re-run with a larger budget warm-starts from the completed
work and returns the bit-identical count.

Exit codes
----------

====  ====================================================
0     success
2     command-line usage error (argparse)
3     bad input: parse errors, unsupported sentences, bad
      weights (any :class:`repro.ReproError`)
4     budget exceeded (:class:`repro.BudgetExceededError`)
70    internal error (``EX_SOFTWARE``; traceback on stderr)
====  ====================================================

Examples::

    python -m repro count "forall x. exists y. R(x, y)" 5
    python -m repro wfomc "exists y. S(y)" 4 --weight S=1/2,1
    python -m repro batch "forall x, y. (R(x) | S(x, y))" 1 2 3 4
    python -m repro sweep "forall x, y. (R(x) | S(x, y))" 3 --vary R \
        --values "1/2,1,3/2,2" --compile
    python -m repro sweep "forall x, y. (R(x) | S(x, y))" 3 --vary R \
        --values "1/2,1,3/2,2" --backend codegen
    python -m repro compile "forall x. exists y. R(x, y)" 6
    python -m repro cache vacuum --max-entries 100000
    python -m repro count "forall x, y, z. (R(x, y) | S(y, z))" 4 --workers 4
    python -m repro count "forall x, y. (R(x) | S(x, y))" 3 --no-learn
    python -m repro count "forall x, y. (R(x) | S(x, y))" 4 --persist
    python -m repro stats "forall x, y. (R(x) | S(x, y) | T(y))" 3
    python -m repro cache stats
    python -m repro probability "exists x. P(x)" 3
    python -m repro spectrum "exists x, y. x != y" 4
    python -m repro mu "forall x. exists y. R(x, y)" 8
"""

from __future__ import annotations

import argparse
import sys
from fractions import Fraction

from .complexity.spectrum import spectrum
from .asymptotics.zero_one import mu_n
from .errors import BudgetExceededError, ReproError
from .logic.parser import parse
from .logic.syntax import predicates_of
from .logic.vocabulary import Vocabulary, Predicate, WeightedVocabulary
from .options import BACKEND_NAMES, SolverOptions
from .propositional.counter import engine_stats
from .resilience.limits import Budget
from .weights import WeightPair
from .wfomc.solver import fomc, probability, solver_cache_stats, wfomc, wfomc_batch

__all__ = ["main", "build_parser"]


def _parse_weight_option(option):
    """``R=1/2,1`` -> ``("R", WeightPair(1/2, 1))``."""
    try:
        name, pair_text = option.split("=", 1)
        w_text, wbar_text = pair_text.split(",", 1)
        return name, WeightPair(Fraction(w_text), Fraction(wbar_text))
    except (ValueError, ZeroDivisionError) as exc:
        raise argparse.ArgumentTypeError(
            "weight options look like NAME=w,wbar (e.g. R=1/2,1): {}".format(exc)
        )


def _weighted_vocabulary(formula, weight_options):
    arities = predicates_of(formula)
    vocab = Vocabulary(Predicate(n, a) for n, a in sorted(arities.items()))
    weights = {name: WeightPair(1, 1) for name in arities}
    for name, pair in weight_options or []:
        if name not in weights:
            raise ReproError(
                "predicate {} does not occur in the sentence".format(name)
            )
        weights[name] = pair
    return WeightedVocabulary(vocab, weights)


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Symmetric weighted first-order model counting (PODS 2015).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p, batch=False):
        p.add_argument("formula", help="an FO sentence, e.g. 'forall x. exists y. R(x, y)'")
        if batch:
            p.add_argument("ns", type=int, nargs="+", metavar="n", help="domain sizes")
        else:
            p.add_argument("n", type=int, help="domain size")
        p.add_argument(
            "--method",
            choices=("auto", "fo2", "lineage", "enumerate"),
            default="auto",
        )
        p.add_argument(
            "--stats",
            action="store_true",
            help="print engine and cache statistics to stderr",
        )
        p.add_argument(
            "--workers",
            type=int,
            default=None,
            metavar="N",
            help="count independent lineage components on N worker "
                 "processes (results are bit-identical to a serial run)",
        )
        p.add_argument(
            "--branching",
            choices=("evsids", "moms"),
            default=None,
            help="decision heuristic of the grounded counting engine "
                 "(default: evsids; moms is the pre-CDCL heuristic, kept "
                 "for ablation)",
        )
        p.add_argument(
            "--no-learn",
            action="store_true",
            help="disable conflict-driven clause learning (use the "
                 "learning-free MOMS engine; the count is identical)",
        )
        p.add_argument(
            "--max-learned",
            type=int,
            default=None,
            metavar="N",
            help="bound on the learned-clause database of one component "
                 "search before an LBD-based reduction (default 4096)",
        )
        p.add_argument(
            "--no-phase-saving",
            action="store_true",
            help="disable backjump phase saving (branch every decision "
                 "w-first; the count is identical)",
        )
        p.add_argument(
            "--restarts",
            type=int,
            default=None,
            metavar="N",
            help="enable Luby restarts in the clause-learning search "
                 "with unit N conflicts (default: no restarts; the "
                 "count is identical)",
        )
        p.add_argument(
            "--persist",
            action="store_true",
            help="back the component/polynomial/FO2 caches with the "
                 "on-disk store, shared across runs and processes "
                 "(results are bit-identical with or without it)",
        )
        p.add_argument(
            "--cache-dir",
            default=None,
            metavar="DIR",
            help="persistent cache location (default: $REPRO_CACHE_DIR "
                 "or ~/.cache/repro)",
        )
        p.add_argument(
            "--backend",
            choices=BACKEND_NAMES,
            default=None,
            help="circuit-evaluation backend for the compiled fast path "
                 "(implies --compile where that applies): exact row "
                 "interpreter, batched multi-weight pass, float64 with "
                 "tracked error bounds and exact fallback, or per-circuit "
                 "generated code",
        )
        p.add_argument(
            "--timeout",
            type=float,
            default=None,
            metavar="SECONDS",
            help="wall-clock budget for the run; exceeding it exits "
                 "with code 4 (caches stay consistent, so a rerun with "
                 "a larger budget warm-starts from the completed work)",
        )
        p.add_argument(
            "--max-conflicts",
            type=int,
            default=None,
            metavar="N",
            help="abort after N counting-engine conflicts (exit code 4)",
        )
        p.add_argument(
            "--max-decisions",
            type=int,
            default=None,
            metavar="N",
            help="abort after N counting-engine decisions (exit code 4)",
        )
        p.add_argument(
            "--trace",
            default=None,
            metavar="FILE",
            help="record spans for the run and write Chrome trace-event "
                 "JSON to FILE (load it at chrome://tracing or "
                 "ui.perfetto.dev); results are unchanged",
        )

    p_count = sub.add_parser("count", help="unweighted model count (FOMC)")
    add_common(p_count)

    p_wfomc = sub.add_parser("wfomc", help="weighted model count")
    add_common(p_wfomc)
    p_wfomc.add_argument(
        "--weight",
        action="append",
        type=_parse_weight_option,
        metavar="NAME=w,wbar",
        help="weights for one predicate (default 1,1); repeatable",
    )

    p_batch = sub.add_parser("batch", help="weighted counts at several domain sizes")
    add_common(p_batch, batch=True)
    p_batch.add_argument(
        "--weight",
        action="append",
        type=_parse_weight_option,
        metavar="NAME=w,wbar",
        help="weights for one predicate (default 1,1); repeatable",
    )
    p_batch.add_argument(
        "--compile",
        action="store_true",
        help="serve every domain size through the knowledge-compilation "
             "fast path (compile one circuit per size, then evaluate; "
             "bit-identical results)",
    )

    p_sweep = sub.add_parser(
        "sweep",
        help="weighted counts of one instance at many weights for one "
             "predicate",
    )
    add_common(p_sweep)
    p_sweep.add_argument(
        "--weight",
        action="append",
        type=_parse_weight_option,
        metavar="NAME=w,wbar",
        help="base weights for the non-varied predicates; repeatable",
    )
    p_sweep.add_argument(
        "--vary",
        required=True,
        metavar="NAME",
        help="predicate whose weight w is swept",
    )
    p_sweep.add_argument(
        "--values",
        required=True,
        metavar="w1,w2,...",
        help="comma-separated exact w values for the varied predicate "
             "(e.g. 1/2,1,3/2)",
    )
    p_sweep.add_argument(
        "--wbar",
        default="1",
        metavar="V",
        help="fixed wbar of the varied predicate (default 1)",
    )
    p_sweep.add_argument(
        "--compile",
        action="store_true",
        help="compile the instance to an arithmetic circuit once and "
             "evaluate every weight set on it (bit-identical results)",
    )

    p_compile = sub.add_parser(
        "compile",
        help="compile a WFOMC instance into an arithmetic circuit and "
             "report its size",
    )
    p_compile.add_argument("formula")
    p_compile.add_argument("n", type=int)
    p_compile.add_argument(
        "--method", choices=("auto", "fo2", "lineage"), default="auto")
    p_compile.add_argument(
        "--persist", action="store_true",
        help="store the serialized circuit in the on-disk cache "
             "(namespace 'circuits')")
    p_compile.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="persistent cache location (default: $REPRO_CACHE_DIR or "
             "~/.cache/repro)")
    p_compile.add_argument(
        "--weight",
        action="append",
        type=_parse_weight_option,
        metavar="NAME=w,wbar",
        help="weights to evaluate the compiled circuit at (default 1,1)",
    )

    p_prob = sub.add_parser("probability", help="probability of the sentence")
    add_common(p_prob)
    p_prob.add_argument(
        "--weight",
        action="append",
        type=_parse_weight_option,
        metavar="NAME=w,wbar",
    )

    p_stats = sub.add_parser(
        "stats",
        help="run a weighted count and pretty-print the full engine and "
             "solver-cache statistics",
    )
    add_common(p_stats)
    p_stats.add_argument(
        "--weight",
        action="append",
        type=_parse_weight_option,
        metavar="NAME=w,wbar",
        help="weights for one predicate (default 1,1); repeatable",
    )
    p_stats.add_argument(
        "--json",
        action="store_true",
        help="emit the result and every statistic as one JSON document "
             "on stdout (scrapeable without the daemon)",
    )

    p_cache = sub.add_parser(
        "cache",
        help="inspect or clear the persistent on-disk cache",
    )
    cache_sub = p_cache.add_subparsers(dest="cache_command", required=True)
    for name, help_text in (
        ("stats", "entry counts per cache layer plus cumulative hit/"
                  "miss/write counters (cross-process)"),
        ("clear", "delete every persisted entry and counter"),
        ("vacuum", "evict least-recently-used entries down to a size "
                   "bound and compact the store file"),
        ("path", "print the resolved cache directory"),
        ("serve", "serve this directory's store as a shared HTTP blob "
                  "tier (point other processes at it with "
                  "$REPRO_STORE_URL)"),
    ):
        p = cache_sub.add_parser(name, help=help_text)
        p.add_argument(
            "--cache-dir",
            default=None,
            metavar="DIR",
            help="persistent cache location (default: $REPRO_CACHE_DIR "
                 "or ~/.cache/repro)",
        )
        if name == "stats":
            p.add_argument(
                "--json",
                action="store_true",
                help="emit the store statistics as one JSON document",
            )
        if name == "serve":
            p.add_argument(
                "--host", default="127.0.0.1", metavar="ADDR",
                help="bind address (default 127.0.0.1)")
            p.add_argument(
                "--port", type=int, default=0, metavar="PORT",
                help="bind port (default 0 = ephemeral; the bound "
                     "address is printed on stdout)")
        if name == "vacuum":
            p.add_argument(
                "--max-entries", type=int, default=None, metavar="N",
                help="keep at most N entries (least-recently-hit evicted "
                     "first)")
            p.add_argument(
                "--max-bytes", type=int, default=None, metavar="N",
                help="shrink the store file to at most N bytes (default "
                     "268435456 = 256 MiB when neither bound is given)")

    p_trace = sub.add_parser(
        "trace",
        help="run any repro command with span tracing on and write "
             "Chrome trace-event JSON, e.g. "
             "repro trace -o t.json sweep ... --compile")
    p_trace.add_argument(
        "--out", "-o", default="trace.json", metavar="FILE",
        help="trace output file (default trace.json); place this flag "
             "BEFORE the wrapped command")
    p_trace.add_argument(
        "rest", nargs=argparse.REMAINDER, metavar="command ...",
        help="the repro command to run under tracing")

    p_spec = sub.add_parser("spectrum", help="domain sizes with a model")
    p_spec.add_argument("formula")
    p_spec.add_argument("max_n", type=int)

    p_mu = sub.add_parser("mu", help="labeled-structure fraction mu_n")
    p_mu.add_argument("formula")
    p_mu.add_argument("n", type=int)

    p_serve = sub.add_parser(
        "serve",
        help="run the HTTP inference daemon (compile once, serve many)")
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument(
        "--port", type=int, default=0,
        help="listen port (default 0: pick an ephemeral port and print it)")
    p_serve.add_argument(
        "--max-concurrency", type=int, default=4, metavar="N",
        help="evaluations running at once (also the worker-thread count)")
    p_serve.add_argument(
        "--queue-depth", type=int, default=16, metavar="N",
        help="requests allowed to wait for a slot before load is shed "
             "with HTTP 429")
    p_serve.add_argument(
        "--default-deadline-ms", type=float, default=None, metavar="MS",
        help="deadline applied to requests that do not carry their own "
             "deadline_ms (default: none)")
    p_serve.add_argument(
        "--drain-timeout", type=float, default=10.0, metavar="SECONDS",
        help="how long SIGTERM waits for in-flight requests (default 10)")
    p_serve.add_argument(
        "--coalesce-window-ms", type=float, default=2.0, metavar="MS",
        help="how long concurrent requests for one compiled circuit wait "
             "to be batched into a single vectorized evaluation pass "
             "(default 2; only with --compile)")
    p_serve.add_argument(
        "--max-batch", type=int, default=32, metavar="N",
        help="flush a coalescing batch as soon as it reaches N requests "
             "(default 32)")
    p_serve.add_argument(
        "--no-coalesce", action="store_true",
        help="disable cross-request coalescing (serve every request "
             "with its own evaluation pass)")
    p_serve.add_argument(
        "--method", choices=("auto", "fo2", "lineage", "enumerate"),
        default="auto")
    p_serve.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="worker processes per evaluation (see the counting commands)")
    p_serve.add_argument(
        "--compile", action="store_true",
        help="serve through the compiled-circuit registry (compile each "
             "instance once, evaluate per request)")
    p_serve.add_argument(
        "--backend", choices=BACKEND_NAMES, default=None,
        help="circuit-evaluation backend for compiled serving")
    p_serve.add_argument(
        "--persist", action="store_true",
        help="back every cache layer with the on-disk store")
    p_serve.add_argument("--cache-dir", default=None, metavar="DIR")
    p_serve.add_argument(
        "--slow-request-ms", type=float, default=1000.0, metavar="MS",
        help="requests slower than this log a warn-level slow_request "
             "event in addition to the access line (default 1000)")
    p_serve.add_argument(
        "--log-level", choices=("debug", "info", "warning", "error"),
        default="info",
        help="level of the daemon's structured JSON logs on stderr "
             "(access log at info, degradation events at warning)")

    return parser


def _print_stats():
    """One line per cache layer; solver stats cover grounding and FO2."""
    from .compile import compile_stats

    print("engine: {}".format(engine_stats()), file=sys.stderr)
    for name, stats in solver_cache_stats().items():
        print("solver.{}: {}".format(name, stats), file=sys.stderr)
    print("compile: {}".format(compile_stats()), file=sys.stderr)


def _print_stats_pretty(stream=None):
    """Aligned breakdown of the engine counters and every solver cache."""
    from .compile import compile_stats

    stream = stream or sys.stdout
    engine = engine_stats()
    cnf_cache = engine.pop("cnf_cache", None)
    print("engine", file=stream)
    width = max(len(name) for name in engine)
    for name, value in engine.items():
        print("  {:<{}}  {}".format(name, width, value), file=stream)
    caches = dict(solver_cache_stats())
    if cnf_cache is not None:
        caches["cnf_conversions"] = cnf_cache
    print("solver caches", file=stream)
    width = max(len(name) for name in caches)
    for name, stats in caches.items():
        row = "  ".join(
            "{}={}".format(k, v) for k, v in stats.items()
        ) if isinstance(stats, dict) else str(stats)
        print("  {:<{}}  {}".format(name, width, row), file=stream)
    compiled = compile_stats()
    circuits = compiled.pop("circuits", None)
    print("compile", file=stream)
    width = max(len(name) for name in compiled) if compiled else 8
    for name, value in compiled.items():
        print("  {:<{}}  {}".format(name, width, value), file=stream)
    if circuits is not None:
        row = "  ".join("{}={}".format(k, v) for k, v in circuits.items())
        print("  {:<{}}  {}".format("circuits", width, row), file=stream)
    _print_resilience_stats(stream)


def _print_resilience_stats(stream):
    """Store retry/re-enable counters and injected-fault counts, if any."""
    from .cache.store import _STORES
    from .resilience.faults import fault_counters

    import os

    rows = {}
    for store in _STORES.values():
        if store.pid != os.getpid():
            continue
        if hasattr(store, "remote"):
            # A tiered store's local half is registered separately; only
            # its network-tier counters are new information here.
            for name in ("retries", "reenables"):
                key = "net_{}".format(name)
                rows[key] = rows.get(key, 0) + getattr(store.remote, name)
            continue
        for name in ("retries", "reenables", "disk_full"):
            rows[name] = rows.get(name, 0) + getattr(store, name)
    fired = {k: v for k, v in fault_counters().items() if v}
    if not any(rows.values()) and not fired:
        return
    print("resilience", file=stream)
    names = list(rows) + ["faults_fired.{}".format(k) for k in fired]
    width = max(len(name) for name in names)
    for name, value in rows.items():
        print("  {:<{}}  {}".format(name, width, value), file=stream)
    for kind, count in fired.items():
        print("  {:<{}}  {}".format(
            "faults_fired.{}".format(kind), width, count), file=stream)


def _stats_document(result=None):
    """The statistics of :func:`_print_stats_pretty` as one JSON-safe dict."""
    from .compile import compile_stats

    document = {
        "engine": engine_stats(),
        "solver_caches": solver_cache_stats(),
        "compile": compile_stats(),
    }
    if result is not None:
        document["result"] = str(result)
    return document


def _budget(args):
    """A :class:`Budget` from the command line, or ``None``."""
    timeout = getattr(args, "timeout", None)
    max_conflicts = getattr(args, "max_conflicts", None)
    max_decisions = getattr(args, "max_decisions", None)
    if timeout is None and max_conflicts is None and max_decisions is None:
        return None
    return Budget(timeout=timeout, max_conflicts=max_conflicts,
                  max_decisions=max_decisions)


def _engine_options(args):
    """The parsed command line as one :class:`SolverOptions` object."""
    return SolverOptions(
        method=getattr(args, "method", "auto"),
        workers=getattr(args, "workers", None),
        branching=getattr(args, "branching", None),
        learn=False if getattr(args, "no_learn", False) else None,
        max_learned=getattr(args, "max_learned", None),
        persist=True if getattr(args, "persist", False) else None,
        cache_dir=getattr(args, "cache_dir", None),
        phase_saving=(False if getattr(args, "no_phase_saving", False)
                      else None),
        restarts=getattr(args, "restarts", None),
        compile=True if getattr(args, "compile", False) else None,
        backend=getattr(args, "backend", None),
        budget=_budget(args),
    )


def _cache_main(args):
    """The ``repro cache`` subcommand: stats / clear / path."""
    import os

    from .cache import STORE_FILENAME, default_cache_dir, open_store

    directory = os.path.abspath(args.cache_dir or default_cache_dir())
    if args.cache_command == "path":
        print(directory)
        return 0
    if args.cache_command == "serve":
        return _cache_serve(directory, args.host, args.port)
    store_file = os.path.join(directory, STORE_FILENAME)
    if not os.path.exists(store_file):
        # Don't create a store just to look at it.
        if args.cache_command == "stats":
            if getattr(args, "json", False):
                import json

                print(json.dumps({"path": store_file, "entries": 0,
                                  "exists": False}))
            else:
                print("path     {}".format(store_file))
                print("entries  0  (no store file)")
        else:
            print("cleared 0 entries (no store file at {})".format(store_file))
        return 0
    store = open_store(directory)
    if args.cache_command == "clear":
        removed = store.clear()
        print("cleared {} entries from {}".format(removed, store.path))
        return 0
    if args.cache_command == "vacuum":
        max_entries = args.max_entries
        max_bytes = args.max_bytes
        if max_entries is None and max_bytes is None:
            max_bytes = 1 << 28  # 256 MiB default bound
        removed = store.vacuum(max_entries=max_entries, max_bytes=max_bytes)
        try:
            size = os.path.getsize(store.path)
        except OSError:
            size = 0
        print("evicted {} entries; {} now {} bytes, {} entries".format(
            removed, store.path, size,
            sum(store.entry_counts().values())))
        return 0
    stats = store.stats()
    if getattr(args, "json", False):
        import json

        print(json.dumps(stats, default=str))
        return 0
    print("path     {}".format(stats["path"]))
    print("size     {} bytes".format(stats["size_bytes"]))
    if stats["disabled"]:
        print("status   disabled (store unusable; runs fall back to "
              "recomputation)")
    elif stats["recreated"]:
        print("status   recreated (previous store file was corrupt)")
    print("entries  {}".format(stats["entries"]))
    for namespace, count in stats["namespaces"].items():
        print("  {:<14} {}".format(namespace, count))
    cumulative = stats["cumulative"]
    print("cumulative (all processes)")
    for name in ("hits", "misses", "writes"):
        print("  {:<14} {}".format(name, cumulative[name]))
    return 0


def _cache_serve(directory, host, port):
    """Block serving the directory's store as an HTTP blob tier."""
    import signal
    import threading

    from .cache import open_store
    from .cache.netstore import BlobServer

    store = open_store(directory, remote_url="")
    server = BlobServer(store, host=host, port=port)
    print("serving blob store {} on {}".format(store.path, server.url),
          flush=True)
    stop = threading.Event()
    for signame in ("SIGINT", "SIGTERM"):
        try:
            signal.signal(getattr(signal, signame), lambda *_: stop.set())
        except (ValueError, OSError):
            pass  # non-main thread or unsupported platform
    try:
        stop.wait()
    finally:
        server.close()
    return 0


def _serve_main(args):
    """The ``repro serve`` subcommand: block in the inference daemon."""
    import asyncio
    import logging

    from .obs import configure_logging
    from .serve import ReproServer, ServeConfig

    configure_logging(level=getattr(logging, args.log_level.upper()))
    options = SolverOptions(
        method=args.method,
        workers=args.workers,
        persist=True if args.persist else None,
        cache_dir=args.cache_dir,
        compile=True if args.compile else None,
        backend=args.backend,
    )
    config = ServeConfig(
        host=args.host,
        port=args.port,
        max_concurrency=args.max_concurrency,
        queue_depth=args.queue_depth,
        default_deadline_ms=args.default_deadline_ms,
        drain_timeout_s=args.drain_timeout,
        coalesce=not args.no_coalesce,
        coalesce_window_ms=args.coalesce_window_ms,
        coalesce_max_batch=args.max_batch,
        slow_request_ms=args.slow_request_ms,
        options=options,
    )

    async def _run_server():
        server = await ReproServer(config).start()
        print("repro serve listening on {}".format(server.url), flush=True)
        await server.run()

    asyncio.run(_run_server())
    return 0


def main(argv=None):
    """Parse the command line, run the command, map errors to exit codes.

    Exit codes: ``0`` success; ``2`` usage error (argparse); ``3`` bad
    input (any :class:`ReproError`); ``4`` budget exceeded; ``70``
    internal error (``EX_SOFTWARE``, traceback on stderr).
    """
    args = build_parser().parse_args(argv)
    try:
        return _run(args)
    except BudgetExceededError as exc:
        print("repro: {}".format(exc), file=sys.stderr)
        return 4
    except ReproError as exc:
        print("repro: {}".format(exc), file=sys.stderr)
        return 3
    except Exception:
        import traceback

        traceback.print_exc()
        return 70


def _trace_main(args):
    """``repro trace [-o FILE] <command ...>``: one enable/export pair."""
    from .obs import disable_tracing, enable_tracing, export_trace

    rest = list(args.rest)
    if rest and rest[0] == "--":
        rest = rest[1:]
    if not rest:
        raise ReproError(
            "trace needs a command to run, e.g. repro trace -o t.json "
            "count 'forall x. exists y. R(x, y)' 5")
    wrapped = build_parser().parse_args(rest)
    if wrapped.command == "trace":
        raise ReproError("trace cannot wrap itself")
    enable_tracing()
    try:
        code = _run(wrapped)
    finally:
        events = export_trace(args.out, recorder=disable_tracing())
        print("trace: wrote {} events to {}".format(events, args.out),
              file=sys.stderr)
    return code


def _run(args):
    if args.command == "trace":
        return _trace_main(args)
    trace_file = getattr(args, "trace", None)
    if trace_file:
        from .obs import disable_tracing, enable_tracing, export_trace, \
            tracing_enabled

        if tracing_enabled():
            # Already under ``repro trace`` (or an embedding caller's
            # recorder): let the outer wrapper own enable/export.
            return _run_command(args)
        enable_tracing()
        try:
            return _run_command(args)
        finally:
            events = export_trace(trace_file, recorder=disable_tracing())
            print("trace: wrote {} events to {}".format(events, trace_file),
                  file=sys.stderr)
    return _run_command(args)


def _run_command(args):
    if args.command == "cache":
        return _cache_main(args)
    if args.command == "serve":
        return _serve_main(args)
    formula = parse(args.formula)

    options = _engine_options(args)
    if args.command == "count":
        print(fomc(formula, args.n, options=options))
    elif args.command == "wfomc":
        wv = _weighted_vocabulary(formula, args.weight)
        print(wfomc(formula, args.n, wv, options=options))
    elif args.command == "batch":
        wv = _weighted_vocabulary(formula, args.weight)
        results = wfomc_batch(formula, args.ns, wv, options=options)
        for n, value in results.items():
            print("{}\t{}".format(n, value))
    elif args.command == "sweep":
        from .wfomc.solver import wfomc_weight_sweep

        base = _weighted_vocabulary(formula, args.weight)
        if args.vary not in base.vocabulary:
            raise ReproError(
                "predicate {} does not occur in the sentence".format(args.vary))
        try:
            wbar = Fraction(args.wbar)
            values = [Fraction(v) for v in args.values.split(",") if v]
        except (ValueError, ZeroDivisionError) as exc:
            raise ReproError("bad --values/--wbar: {}".format(exc)) from None
        vocabularies = [base.with_weight(args.vary, WeightPair(value, wbar))
                        for value in values]
        results = wfomc_weight_sweep(formula, args.n, vocabularies,
                                     options=options)
        for value, count in zip(values, results):
            print("{}\t{}".format(value, count))
    elif args.command == "compile":
        from .compile import compile_wfomc

        wv = _weighted_vocabulary(formula, args.weight)
        compiled = compile_wfomc(
            formula, args.n, wv.vocabulary, method=args.method,
            persist=True if args.persist else None,
            cache_dir=args.cache_dir)
        stats = compiled.stats()
        print("kind    {}".format(stats.pop("kind")))
        for name in ("nodes", "edges", "depth", "vars", "leaf", "tot",
                     "times", "plus", "pow", "const"):
            print("{:<7} {}".format(name, stats.pop(name)))
        value = compiled.evaluate(wv)
        print("value   {}  (at the given weights)".format(value))
    elif args.command == "probability":
        wv = _weighted_vocabulary(formula, args.weight)
        value = probability(formula, args.n, wv, options=options)
        print("{} (~{:.6f})".format(value, float(value)))
    elif args.command == "stats":
        wv = _weighted_vocabulary(formula, args.weight)
        value = wfomc(formula, args.n, wv, options=options)
        if args.json:
            import json

            print(json.dumps(_stats_document(value), default=str))
        else:
            print("result  {}".format(value))
            _print_stats_pretty()
    elif args.command == "spectrum":
        members = spectrum(formula, args.max_n)
        print(" ".join(str(n) for n in sorted(members)) or "(empty)")
    elif args.command == "mu":
        value = mu_n(formula, args.n)
        print("{} (~{:.6f})".format(value, float(value)))
    if getattr(args, "stats", False) and args.command != "stats":
        _print_stats()
    if getattr(args, "persist", False):
        # Make this run's results visible to other processes now rather
        # than at interpreter exit (callers may invoke main() in-process).
        from .cache import open_store

        open_store(getattr(args, "cache_dir", None)).flush()
    return 0


if __name__ == "__main__":
    sys.exit(main())
