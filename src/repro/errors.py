"""Exception hierarchy for the ``repro`` library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch a single base class.  More specific subclasses indicate
which solver or transformation rejected the input.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the library."""


class ParseError(ReproError):
    """Raised when a formula string cannot be parsed."""

    def __init__(self, message, position=None):
        if position is not None:
            message = "{} (at position {})".format(message, position)
        super().__init__(message)
        self.position = position


class UnsupportedFormulaError(ReproError):
    """Raised when a solver does not support the given sentence.

    For example the FO2 lifted solver raises this for sentences that use
    three or more logical variables, or predicates of arity above two.
    """


class NotFO2Error(UnsupportedFormulaError):
    """Raised when a sentence is outside the FO2 fragment."""


class NotGammaAcyclicError(UnsupportedFormulaError):
    """Raised when a conjunctive query is not gamma-acyclic."""


class SelfJoinError(UnsupportedFormulaError):
    """Raised when a CQ algorithm requires a self-join-free query."""


class DomainSizeError(ReproError):
    """Raised when a domain size is negative or otherwise invalid."""


class WeightError(ReproError):
    """Raised when weights are missing or inconsistent for a vocabulary."""


class EncodingError(ReproError):
    """Raised when a Turing machine cannot be encoded into FO3."""
