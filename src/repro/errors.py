"""Exception hierarchy for the ``repro`` library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch a single base class.  More specific subclasses
indicate which solver or transformation rejected the input.

The taxonomy splits into three families, and the CLI maps each family
to a distinct exit code (see :mod:`repro.cli`):

*Input errors* — the request itself is malformed: :class:`ParseError`,
:class:`UnsupportedFormulaError` (and its fragment-specific
subclasses), :class:`DomainSizeError`, :class:`WeightError`,
:class:`EncodingError`, :class:`FaultPlanError`.  Retrying the same
call can never succeed; the caller must fix the input.  CLI exit
code 3.

*Resource errors* — the input is fine but the run hit a configured
limit: :class:`BudgetExceededError`.  These are *anytime* failures:
every cache layer only ever stores fully computed values, so a retry
with a larger budget (or none) warm-starts from the work already done
and completes bit-identically to an uninterrupted run.  CLI exit
code 4.

*Internal errors* — anything not derived from :class:`ReproError`
escaping a library call is a bug, never an input problem.  CLI exit
code 70 (BSD ``EX_SOFTWARE``).

Degraded-but-successful execution (a crashed worker retried or served
serially, a persistent store disabled after exhausting retries) is
deliberately *not* an error: results stay bit-identical, and the event
is reported through stats counters instead (``worker_retries``,
``degraded_to_serial`` on ``EngineStats``; ``retries``/``reenables``/
``disk_full`` in ``PersistentStore.stats()``).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the library."""


class ParseError(ReproError):
    """Raised when a formula string cannot be parsed."""

    def __init__(self, message, position=None):
        if position is not None:
            message = "{} (at position {})".format(message, position)
        super().__init__(message)
        self.position = position


class UnsupportedFormulaError(ReproError):
    """Raised when a solver does not support the given sentence.

    For example the FO2 lifted solver raises this for sentences that use
    three or more logical variables, or predicates of arity above two.
    """


class NotFO2Error(UnsupportedFormulaError):
    """Raised when a sentence is outside the FO2 fragment."""


class NotGammaAcyclicError(UnsupportedFormulaError):
    """Raised when a conjunctive query is not gamma-acyclic."""


class SelfJoinError(UnsupportedFormulaError):
    """Raised when a CQ algorithm requires a self-join-free query."""


class DomainSizeError(ReproError):
    """Raised when a domain size is negative or otherwise invalid."""


class WeightError(ReproError):
    """Raised when weights are missing or inconsistent for a vocabulary."""


class EncodingError(ReproError):
    """Raised when a Turing machine cannot be encoded into FO3."""


class FaultPlanError(ReproError):
    """Raised when a fault-plan spec string cannot be parsed.

    See :class:`repro.resilience.faults.FaultPlan` for the grammar.
    """


class ServiceOverloadedError(ReproError):
    """The serving daemon shed a request under admission control.

    Retriable by contract: the request was rejected *before* any work
    started, so resubmitting it (after ``retry_after`` seconds) is
    always safe.  Maps to HTTP 429 with a ``Retry-After`` header in
    :mod:`repro.serve`.
    """

    def __init__(self, message="service overloaded", retry_after=1):
        super().__init__(message)
        self.retry_after = retry_after


class ServiceDrainingError(ReproError):
    """The serving daemon is shutting down and rejects new work.

    Raised between SIGTERM and process exit; in-flight requests still
    complete.  Maps to HTTP 503 in :mod:`repro.serve`; retriable
    against another replica.
    """


class BudgetExceededError(ReproError):
    """A run hit its :class:`~repro.resilience.limits.Budget`.

    Attributes
    ----------
    reason:
        What tripped: ``"timeout"``, ``"max_conflicts"``,
        ``"max_decisions"``, or ``"cancelled"``.
    elapsed:
        Wall-clock seconds spent inside the budget when it tripped.
    spent:
        ``{"decisions": n, "conflicts": m}`` charged against the budget.
    engine_stats:
        The partial :class:`~repro.propositional.counter.EngineStats` of
        the interrupted engine run, when one was active (``None`` for
        aborts in the FO2/compile layers before any grounded search).

    The exception is safe to retry: caches only ever hold completed
    values, so a follow-up call with a fresh budget resumes from the
    cached partial work and returns the bit-identical final answer.
    """

    def __init__(self, reason, elapsed=None, spent=None, engine_stats=None):
        self.reason = reason
        self.elapsed = elapsed
        self.spent = dict(spent) if spent else {}
        self.engine_stats = engine_stats
        detail = "budget exceeded ({})".format(reason)
        if elapsed is not None:
            detail += " after {:.3f}s".format(elapsed)
        if self.spent:
            detail += " [{}]".format(", ".join(
                "{}={}".format(k, v) for k, v in sorted(self.spent.items())))
        super().__init__(detail)
