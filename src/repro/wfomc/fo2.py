"""The FO2 lifted algorithm: polynomial data complexity (Appendix C, [37]).

Pipeline, following Van den Broeck et al. as reviewed in Appendix C:

1. **Scott-normalize** the sentence: nested quantifiers are flattened into
   a conjunction of prenex sentences with prefixes ``forall*`` or
   ``forall* exists`` over fresh defined symbols (weight ``(1, 1)``).
2. **Skolemize** away the existentials (Lemma 3.3), introducing symbols
   with the cancellation weights ``(1, -1)``.
3. The residue is a single universal sentence ``forall x forall y psi``
   over predicates of arity at most 2 (plus zero-ary symbols).
4. **Shannon-expand** the zero-ary symbols (as prescribed in Appendix C).
5. Run the **cell decomposition**: a 1-type (cell) is a truth assignment
   to all unary atoms ``U(x)`` and reflexive binary atoms ``B(x, x)``;
   the weighted count is a sum over how the ``n`` domain elements are
   partitioned among the valid cells:

   ``sum_{n_1+...+n_K = n} multinomial * prod_k u_k**n_k
   * prod_k r_kk**C(n_k, 2) * prod_{k<l} r_kl**(n_k n_l)``

   where ``u_k`` is the weight of cell ``k`` and ``r_kl`` the summed
   weight of the binary "2-tables" between a cell-``k`` and a cell-``l``
   element that satisfy ``psi`` in both directions.

Equality atoms are supported natively: ``x = y`` is false for the two
distinct elements of a 2-table and true on the diagonal.

The number of terms is ``C(n + K - 1, K - 1)`` for ``K`` valid cells —
polynomial in ``n`` for a fixed sentence, which is the PTIME
data-complexity result this module reproduces.
"""

from __future__ import annotations

import itertools
from fractions import Fraction

from ..errors import NotFO2Error
from ..logic.scott import scott_normalize, skolemize_scott
from ..logic.syntax import (
    Var,
    free_variables,
    num_variables,
    substitute,
    conj,
)
from ..logic.vocabulary import WeightedVocabulary
from ..grounding.lineage import _ground  # grounding of a quantifier-free matrix
from ..propositional.formula import peval, prop_vars
from ..utils import LRUCache, binomial, check_domain_size, weights_signature

__all__ = [
    "wfomc_fo2",
    "FO2CellStructure",
    "FO2CellDecomposition",
    "fo2_cache_stats",
    "clear_fo2_caches",
]

#: Weight-*independent* cell structures keyed on the *skolemized matrix*:
#: the matrix grounding, the valid-cell enumeration, and the satisfying
#: 2-table patterns — the exponential part of the construction — are a
#: pure function of the matrix, so weight sweeps over one sentence share
#: a single structure.  (The matrix, not the formula, is the key because
#: the fresh Scott/Skolem symbol names depend on the caller's vocabulary:
#: a vocabulary that already uses a Skolem-like name shifts the fresh
#: names, and a structure cached under the formula alone would mix them
#: up across vocabularies.)
_STRUCTURE_CACHE = LRUCache(maxsize=128)

#: Weighted cell decompositions keyed on ``(formula, weights)``.  A
#: decomposition layers cell weights, 2-table weights, and the memoized
#: distribution recursion on top of a shared structure; every domain size
#: (``wfomc_batch``) and repeated call reuses the same instance.
_DECOMPOSITION_CACHE = LRUCache(maxsize=128)

#: Bound on memoized recursion entries per decomposition instance; the
#: table is cleared wholesale when it fills.
_MAX_RECURSE_MEMO = 1 << 16

_MISSING = object()


def fo2_cache_stats():
    """Hit/miss statistics for both FO2 cache layers."""
    return {
        "structures": _STRUCTURE_CACHE.stats(),
        "decompositions": _DECOMPOSITION_CACHE.stats(),
    }


def clear_fo2_caches():
    """Drop all cached FO2 cell structures and decompositions."""
    _STRUCTURE_CACHE.clear()
    _DECOMPOSITION_CACHE.clear()

_X = Var("fo2_x")
_Y = Var("fo2_y")


def _combine_universal(sentences):
    """Merge universal sentences into one matrix over canonical vars x, y."""
    parts = []
    for sent in sentences:
        if len(sent.vars) > 2:
            raise NotFO2Error(
                "sentence has a {}-variable prefix; not FO2".format(len(sent.vars))
            )
        mapping = {}
        if len(sent.vars) >= 1:
            mapping[sent.vars[0]] = _X
        if len(sent.vars) == 2:
            mapping[sent.vars[1]] = _Y
        parts.append(substitute(sent.matrix, mapping))
    return conj(*parts)


class FO2CellStructure:
    """The weight-independent half of a cell decomposition.

    Holds everything that depends only on the sentence: the grounded
    matrix, the predicate classification, the valid cells per zero-ary
    assignment, and — the exponential part of the construction — the
    satisfying 2-table bit patterns of every cell pair.  One structure is
    shared by every :class:`FO2CellDecomposition` built over it, so a
    weight sweep enumerates cells and 2-tables exactly once.
    """

    def __init__(self, matrix, vocabulary):
        free = free_variables(matrix)
        if not free <= {_X, _Y}:
            raise NotFO2Error("matrix has unexpected free variables: {}".format(free))

        #: Stable cross-process identity of this structure (formula reprs
        #: are deterministic), used as the persistent-store key prefix.
        self.matrix_key = repr(matrix)
        #: Optional :class:`repro.cache.PersistentStore` consulted by
        #: :meth:`tables` (attached by :func:`wfomc_fo2` under
        #: ``persist=True``).
        self.store = None

        # Ground the matrix at the three element patterns we need.
        # Elements 1 and 2 stand for "an element of cell k / cell l".
        self.diag_prop = _ground(matrix, 2, {_X: 1, _Y: 1})
        self.pair_prop_xy = _ground(matrix, 2, {_X: 1, _Y: 2})
        self.pair_prop_yx = _ground(matrix, 2, {_X: 2, _Y: 1})

        # Only predicates that actually occur in the matrix participate in
        # the decomposition; unconstrained predicates are handled by the
        # caller with a (w + wbar)**|tuples| factor.
        self.matrix_preds = {
            name
            for name, _args in (
                prop_vars(self.diag_prop)
                | prop_vars(self.pair_prop_xy)
                | prop_vars(self.pair_prop_yx)
            )
        }
        self.zero_preds = []
        self.unary_preds = []
        self.binary_preds = []
        for pred in vocabulary:
            if pred.name not in self.matrix_preds:
                continue
            if pred.arity == 0:
                self.zero_preds.append(pred.name)
            elif pred.arity == 1:
                self.unary_preds.append(pred.name)
            elif pred.arity == 2:
                self.binary_preds.append(pred.name)
            else:
                raise NotFO2Error(
                    "predicate {} has arity {} > 2; the FO2 lifted solver "
                    "requires arity at most 2".format(pred.name, pred.arity)
                )

        # Type slots: unary atoms and reflexive binary atoms of one element.
        self.type_slots = [(u, "unary") for u in self.unary_preds] + [
            (b, "refl") for b in self.binary_preds
        ]

        # Off-diagonal binary atoms between elements 1 and 2: the 2-table
        # variables of a cell pair.
        self.off_diag_labels = []
        for b in self.binary_preds:
            self.off_diag_labels.append((b, (1, 2)))
            self.off_diag_labels.append((b, (2, 1)))

        #: zero_key -> (cells, satisfying 2-table patterns per cell pair);
        #: filled lazily and shared by every weighted decomposition.
        self._zero_tables = {}

    def _type_assignment(self, cell_bits, element):
        """Ground-atom assignment for one element's 1-type."""
        assignment = {}
        for (name, kind), bit in zip(self.type_slots, cell_bits):
            if kind == "unary":
                assignment[(name, (element,))] = bit
            else:
                assignment[(name, (element, element))] = bit
        return assignment

    def tables(self, zero_key, zero_assignment, budget=None):
        """``(cells, satisfying)`` for one zero-ary assignment.

        ``cells`` lists the valid 1-types (bit tuples over
        ``type_slots``); ``satisfying[k][l]`` lists the 2-table bit
        tuples (over ``off_diag_labels``) that satisfy the matrix in both
        directions between a cell-``k`` and a cell-``l`` element.  This
        is the exponential enumeration, done once per sentence and reused
        by every weight function and domain size — and, when a persistent
        store is attached, once per sentence *ever*: the enumeration is
        read through the ``fo2_tables`` namespace keyed on the skolemized
        matrix and the zero-ary assignment, so a second process skips it.
        """
        cached = self._zero_tables.get(zero_key)
        if cached is not None:
            return cached
        store = self.store
        if store is not None:
            persisted = store.get("fo2_tables", (self.matrix_key, zero_key))
            if persisted is not None:
                tables = (persisted[0], persisted[1])
                self._zero_tables[zero_key] = tables
                return tables
        base = {(name, ()): bit for name, bit in zero_assignment.items()}

        # Valid cells: 1-types whose element satisfies psi(x, x).
        cells = []
        for bits in itertools.product((False, True), repeat=len(self.type_slots)):
            if budget is not None:
                budget.tick()
            assignment = dict(base)
            assignment.update(self._type_assignment(bits, 1))
            if peval(self.diag_prop, assignment):
                cells.append(bits)

        k_cells = len(cells)
        off_diag_labels = self.off_diag_labels
        satisfying = [[None] * k_cells for _ in range(k_cells)]
        for k in range(k_cells):
            for l in range(k_cells):
                assignment = dict(base)
                assignment.update(self._type_assignment(cells[k], 1))
                assignment.update(self._type_assignment(cells[l], 2))
                good = []
                for bits in itertools.product((False, True), repeat=len(off_diag_labels)):
                    if budget is not None:
                        budget.tick()
                    for label, bit in zip(off_diag_labels, bits):
                        assignment[label] = bit
                    if peval(self.pair_prop_xy, assignment) and peval(
                        self.pair_prop_yx, assignment
                    ):
                        good.append(bits)
                satisfying[k][l] = good

        tables = (cells, satisfying)
        self._zero_tables[zero_key] = tables
        if store is not None:
            store.put("fo2_tables", (self.matrix_key, zero_key), tables)
        return tables


class FO2CellDecomposition:
    """The cell decomposition of a universal FO2 matrix.

    Layers one weight function over a (possibly shared)
    :class:`FO2CellStructure`: cell weights ``u_k``, 2-table pair weights
    ``r_kl``, and the memoized distribution recursion.  Exposes the
    pieces so tests and benchmarks can inspect them; :func:`wfomc_fo2` is
    the user-facing wrapper.  ``structure`` may be a prebuilt
    :class:`FO2CellStructure` or a matrix formula (one is built).
    """

    def __init__(self, structure, weighted_vocabulary):
        if not isinstance(structure, FO2CellStructure):
            structure = FO2CellStructure(
                structure, weighted_vocabulary.vocabulary
            )
        self.structure = structure
        self.wv = weighted_vocabulary

        # Per-zero-assignment cell/pair-weight tables and the memo table of
        # the distribution recursion; both survive across calls (and across
        # domain sizes) for the lifetime of the decomposition instance.
        self._tables = {}
        self._recurse_memo = {}

    # The structural pieces read like attributes of the decomposition.

    @property
    def matrix_preds(self):
        return self.structure.matrix_preds

    @property
    def zero_preds(self):
        return self.structure.zero_preds

    @property
    def unary_preds(self):
        return self.structure.unary_preds

    @property
    def binary_preds(self):
        return self.structure.binary_preds

    @property
    def type_slots(self):
        return self.structure.type_slots

    def _type_weight(self, cell_bits):
        weight = Fraction(1)
        for (name, _kind), bit in zip(self.structure.type_slots, cell_bits):
            pair = self.wv.weight(name)
            weight *= pair.w if bit else pair.wbar
        return weight

    def _cell_tables(self, zero_key, zero_assignment, budget=None):
        """Cells, cell weights, and 2-table pair weights for one assignment
        of the zero-ary atoms.  The expensive enumeration lives in the
        shared structure; this layer only sums weights over the stored
        satisfying patterns, so it is polynomial in their number."""
        cached = self._tables.get(zero_key)
        if cached is not None:
            return cached
        cells, satisfying = self.structure.tables(zero_key, zero_assignment,
                                                  budget=budget)

        cell_weights = [self._type_weight(bits) for bits in cells]

        k_cells = len(cells)
        off_diag_labels = self.structure.off_diag_labels
        pair_weights = [self.wv.weight(name) for name, _args in off_diag_labels]
        r = [[Fraction(0)] * k_cells for _ in range(k_cells)]
        for k in range(k_cells):
            for l in range(k_cells):
                total = Fraction(0)
                for bits in satisfying[k][l]:
                    weight = Fraction(1)
                    for pair, bit in zip(pair_weights, bits):
                        weight *= pair.w if bit else pair.wbar
                    total += weight
                r[k][l] = total

        tables = (cells, cell_weights, r)
        self._tables[zero_key] = tables
        return tables

    def run(self, n, zero_assignment, budget=None):
        """The weighted count for one assignment of the zero-ary atoms."""
        check_domain_size(n)
        zero_key = tuple(sorted(zero_assignment.items()))
        cells, cell_weights, r = self._cell_tables(zero_key, zero_assignment,
                                                   budget=budget)

        k_cells = len(cells)
        if k_cells == 0:
            return Fraction(0) if n > 0 else Fraction(1)

        # Sum over all ways to distribute n elements among the cells.
        # ``suffix(k, remaining, pending)`` is the summed weight of
        # distributing ``remaining`` elements among cells ``k..K-1``, where
        # ``pending[l - k]`` carries the cross-cell factor
        # ``prod_{j<k} r[j][l]**n_j`` accumulated from earlier cells.  It
        # depends only on its arguments, so it is memoized — distinct
        # prefixes routinely converge on the same ``pending`` (whenever the
        # ``r`` values collapse to 0/1, as in unweighted counting), and the
        # memo also persists across calls and domain sizes.
        memo = self._recurse_memo
        last = k_cells - 1

        def suffix(k, remaining, pending):
            if budget is not None:
                budget.tick()
            key = (zero_key, k, remaining, pending)
            value = memo.get(key, _MISSING)
            if value is not _MISSING:
                return value
            rk = r[k]
            if k == last:
                value = (
                    cell_weights[k] ** remaining
                    * rk[k] ** binomial(remaining, 2)
                    * pending[0] ** remaining
                )
            else:
                value = Fraction(0)
                for nk in range(remaining + 1):
                    term = (
                        binomial(remaining, nk)
                        * cell_weights[k] ** nk
                        * rk[k] ** binomial(nk, 2)
                        * pending[0] ** nk
                    )
                    if term == 0:
                        continue
                    if nk:
                        new_pending = tuple(
                            pending[l - k] * rk[l] ** nk
                            for l in range(k + 1, k_cells)
                        )
                    else:
                        new_pending = pending[1:]
                    value += term * suffix(k + 1, remaining - nk, new_pending)
            if len(memo) >= _MAX_RECURSE_MEMO:
                memo.clear()
            memo[key] = value
            return value

        return suffix(0, n, (Fraction(1),) * k_cells)


def wfomc_fo2(formula, n, weighted_vocabulary=None, persist=None,
              cache_dir=None, budget=None):
    """Symmetric WFOMC of an FO2 sentence in time polynomial in ``n``.

    ``formula`` may use nested quantifiers, equality, and any Boolean
    connectives, but at most two distinct variables and predicates of
    arity at most two.  Raises :class:`~repro.errors.NotFO2Error`
    otherwise.  ``persist``/``cache_dir`` read the exponential cell and
    2-table enumeration through the on-disk store of :mod:`repro.cache`.
    ``budget`` (a :class:`~repro.resilience.limits.Budget`) bounds the
    cell/2-table enumeration and the distribution recursion; aborting
    leaves every memo table consistent (only completed values are ever
    stored), so a retried call warm-starts.
    """
    check_domain_size(n)
    wv = weighted_vocabulary or WeightedVocabulary.counting(formula)

    if n == 0:
        # Scott/Skolem prenexing assumes a nonempty domain (pulling a
        # quantifier over a disjunct is unsound over the empty domain), so
        # evaluate the trivial n = 0 instance directly: the lineage over an
        # empty domain mentions no ground atoms at all.
        from .bruteforce import wfomc_lineage

        return wfomc_lineage(formula, 0, wv, persist=persist,
                             cache_dir=cache_dir)

    if num_variables(formula) > 2:
        raise NotFO2Error(
            "sentence uses {} distinct variables; FO2 allows at most 2".format(
                num_variables(formula)
            )
        )
    for pred in wv.vocabulary:
        if pred.arity > 2:
            raise NotFO2Error(
                "predicate {} has arity {}; the FO2 solver requires arity "
                "at most 2".format(pred.name, pred.arity)
            )

    cache_key = (formula, weights_signature(wv))
    cached = _DECOMPOSITION_CACHE.get(cache_key)
    if cached is None:
        # Scott/Skolem are cheap syntactic transforms (re-run per weight
        # function because the fresh symbols carry weights); the expensive
        # cell/2-table enumeration lives in the weight-independent
        # structure, keyed on the resulting matrix.
        sentences, wv1 = scott_normalize(formula, wv)
        universal, wv2 = skolemize_scott(sentences, wv1)
        matrix = _combine_universal(universal)
        structure = _STRUCTURE_CACHE.get(matrix)
        if structure is None:
            structure = FO2CellStructure(matrix, wv2.vocabulary)
            _STRUCTURE_CACHE.put(matrix, structure)
        decomposition = FO2CellDecomposition(structure, wv2)
        _DECOMPOSITION_CACHE.put(cache_key, (decomposition, wv2))
    else:
        decomposition, wv2 = cached
    if persist:
        from ..cache import open_store

        store = open_store(cache_dir)
        decomposition.structure.store = store if not store.disabled else None
    else:
        # Persistence is per-call opt-in, but structures live in the
        # module cache: a store attached by an earlier persisted call
        # must not leak into this one.
        decomposition.structure.store = None

    # Shannon expansion over zero-ary predicates (Appendix C).
    zero_preds = decomposition.zero_preds
    total = Fraction(0)
    for bits in itertools.product((False, True), repeat=len(zero_preds)):
        zero_assignment = dict(zip(zero_preds, bits))
        weight = Fraction(1)
        for name, bit in zip(zero_preds, bits):
            pair = wv2.weight(name)
            weight *= pair.w if bit else pair.wbar
        if weight == 0:
            continue
        total += weight * decomposition.run(n, zero_assignment, budget=budget)

    # Predicates never mentioned by the matrix are unconstrained: every
    # ground atom contributes its full mass w + wbar.
    for pred, pair in wv2.items():
        if pred.name not in decomposition.matrix_preds:
            total *= pair.total ** (n ** pred.arity)
    return total
