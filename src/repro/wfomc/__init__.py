"""WFOMC solvers: brute force, FO2 lifted, special-query DPs, closed forms."""

from .bruteforce import wfomc_enumerate, wfomc_lineage, fomc_lineage
from .closed_forms import (
    fomc_forall_exists,
    wfomc_forall_exists,
    wfomc_exists_unary,
    table1_fomc,
    table1_wfomc,
)
from .fo2 import wfomc_fo2, fo2_cache_stats, clear_fo2_caches
from .qs4 import wfomc_qs4, QS4_SENTENCE
from .chain import chain_probability
from .polynomial import (
    wfomc_cardinality_polynomial,
    evaluate_cardinality_polynomial,
)
from .solver import (
    wfomc,
    fomc,
    probability,
    wfomc_batch,
    wfomc_weight_sweep,
    solver_cache_stats,
    clear_solver_caches,
)

__all__ = [
    "wfomc_enumerate",
    "wfomc_lineage",
    "fomc_lineage",
    "fomc_forall_exists",
    "wfomc_forall_exists",
    "wfomc_exists_unary",
    "table1_fomc",
    "table1_wfomc",
    "wfomc_fo2",
    "fo2_cache_stats",
    "clear_fo2_caches",
    "wfomc_qs4",
    "QS4_SENTENCE",
    "chain_probability",
    "wfomc_cardinality_polynomial",
    "evaluate_cardinality_polynomial",
    "wfomc",
    "fomc",
    "probability",
    "wfomc_batch",
    "wfomc_weight_sweep",
    "solver_cache_stats",
    "clear_solver_caches",
]
