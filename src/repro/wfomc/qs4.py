"""The query Q_S4 and its dynamic program (Theorem 3.7).

``Q_S4 = forall x1 x2 y1 y2 (S(x1,y1) | ~S(x2,y1) | S(x2,y2) | ~S(x1,y2))``

is the sentence whose data complexity was left open in [18] and settled
in this paper: it is in PTIME, but no previously known lifted inference
rule computes it.  The proof shows every model of the domain-restricted
variant ``Q_{n1,n2}`` satisfies exactly one of

* ``Pa = exists x forall y S(x, y)``   (a fully-connected row), or
* ``Pb = exists y forall x ~S(x, y)``  (an empty column),

and counts the two cases by mutual recursion:

``f(n1, 0) = 1``, ``f(n1, n2) = sum_{k=1..n1} C(n1,k) w**(k n2) g(n1-k, n2)``
``g(0, n2) = 1``, ``g(n1, n2) = sum_{l=1..n2} C(n2,l) wbar**(n1 l) f(n1, n2-l)``

with ``WFOMC(Q_S4, n) = f(n, n) + g(n, n)``.

Boundary note (validated against brute force in the tests): for
``n1 = n2 = 0`` neither ``Pa`` nor ``Pb`` can hold — the infinite-descent
argument needs an element to start from — yet the empty structure *is* a
model, so the count is 1, not ``f(0,0) + g(0,0) = 2``.
"""

from __future__ import annotations

from fractions import Fraction
from functools import lru_cache

from ..logic.parser import parse
from ..utils import binomial, check_domain_size
from ..weights import WeightPair

__all__ = ["QS4_SENTENCE", "wfomc_qs4", "wfomc_qs4_rectangular"]


#: The sentence of Theorem 3.7, as a parsed formula (predicate ``S``).
QS4_SENTENCE = parse(
    "forall x1. forall x2. forall y1. forall y2. "
    "(S(x1, y1) | ~S(x2, y1) | S(x2, y2) | ~S(x1, y2))"
)


def wfomc_qs4_rectangular(n1, n2, pair):
    """WFOMC of ``Q_{n1,n2}`` where x's range over [n1] and y's over [n2].

    The domains are nested (``[n1] subseteq [n2]`` or vice versa) as in the
    paper's proof; only the sizes matter for the symmetric count.
    """
    check_domain_size(n1)
    check_domain_size(n2)
    if not isinstance(pair, WeightPair):
        pair = WeightPair(*pair)
    w, wbar = pair.w, pair.wbar

    @lru_cache(maxsize=None)
    def f(a, b):
        # Weighted count of models of Q_{a,b} satisfying Pa.
        if b == 0:
            return Fraction(1)
        total = Fraction(0)
        for k in range(1, a + 1):
            total += binomial(a, k) * w ** (k * b) * g(a - k, b)
        return total

    @lru_cache(maxsize=None)
    def g(a, b):
        # Weighted count of models of Q_{a,b} satisfying Pb.
        if a == 0:
            return Fraction(1)
        total = Fraction(0)
        for l in range(1, b + 1):
            total += binomial(b, l) * wbar ** (a * l) * f(a, b - l)
        return total

    if n1 == 0 and n2 == 0:
        return Fraction(1)
    return f(n1, n2) + g(n1, n2)


def wfomc_qs4(n, pair=WeightPair(1, 1)):
    """``WFOMC(Q_S4, n, w, wbar)`` in polynomial time (Theorem 3.7)."""
    return wfomc_qs4_rectangular(n, n, pair)
