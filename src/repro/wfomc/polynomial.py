"""WFOMC as a polynomial in the weights (Section 2).

For a fixed sentence and domain size, ``WFOMC(Phi, n, w, wbar)`` is a
multivariate polynomial in the relation weights: the coefficient of
``prod_i w_i**c_i`` counts (with the ``wbar`` mass of the remaining
atoms folded in) the models with ``c_i`` tuples in each ``R_i``.  The
paper uses this to argue that *negative* weights are no harder than
positive ones: polynomially many oracle calls at positive weights
recover all coefficients, after which the polynomial can be evaluated
anywhere.

This module implements that argument literally:
:func:`wfomc_cardinality_polynomial` reconstructs the coefficients
``a[c_1, ..., c_m]`` of the *cardinality generating polynomial*

``WFOMC(Phi, n, w, 1) = sum_c a[c] * prod_i w_i**c_i``

(where ``a[c]`` is the number of models with ``|R_i| = c_i``) from
oracle evaluations at positive integer weight vectors, by iterated
univariate interpolation.  :func:`evaluate_cardinality_polynomial` then
reproduces WFOMC at arbitrary — including negative — weights via
``WFOMC(Phi, n, w, wbar) = sum_c a[c] prod_i w_i**c_i wbar_i**(N_i - c_i)``.
"""

from __future__ import annotations

import itertools
from fractions import Fraction

from ..logic.vocabulary import WeightedVocabulary
from ..utils import polynomial_interpolate
from ..weights import WeightPair

__all__ = ["wfomc_cardinality_polynomial", "evaluate_cardinality_polynomial"]


def wfomc_cardinality_polynomial(formula, n, vocabulary, oracle):
    """Reconstruct the model-cardinality coefficients from an oracle.

    Parameters
    ----------
    formula, n:
        The sentence and domain size.
    vocabulary:
        A :class:`~repro.logic.vocabulary.Vocabulary` listing the
        relations (fixing the variable order of the polynomial).
    oracle:
        ``oracle(formula, n, weighted_vocabulary) -> Fraction`` computing
        symmetric WFOMC; it is only ever called with *positive* integer
        weights ``(w_i, 1)``.

    Returns a dict mapping cardinality vectors ``(c_1, ..., c_m)`` to the
    number of models with exactly those relation sizes.  The number of
    oracle calls is ``prod_i (N_i + 1)`` with ``N_i = n**arity(R_i)`` —
    polynomial in ``n`` for a fixed vocabulary, as the paper claims.
    """
    preds = list(vocabulary)
    degrees = [n ** p.arity for p in preds]

    # Evaluate the polynomial on the grid {1..N_i+1}^m, then interpolate
    # one variable at a time.  Positive points only, per the argument.
    grid_axes = [range(1, d + 2) for d in degrees]

    values = {}
    for point in itertools.product(*grid_axes):
        weights = {
            p.name: WeightPair(Fraction(w), Fraction(1))
            for p, w in zip(preds, point)
        }
        wv = WeightedVocabulary(vocabulary, weights)
        values[point] = Fraction(oracle(formula, n, wv))

    # Iteratively interpolate out each axis: after processing axis i the
    # table is keyed by (c_1..c_i, w_{i+1}..w_m) -> partial coefficient.
    table = values
    for axis, degree in enumerate(degrees):
        new_table = {}
        # Group keys by everything except this axis's coordinate.
        groups = {}
        for key, value in table.items():
            rest = key[:axis] + key[axis + 1 :]
            groups.setdefault(rest, []).append((key[axis], value))
        for rest, points in groups.items():
            coeffs = polynomial_interpolate(sorted(points))
            coeffs += [Fraction(0)] * (degree + 1 - len(coeffs))
            for c, coefficient in enumerate(coeffs[: degree + 1]):
                new_key = rest[:axis] + (c,) + rest[axis:]
                new_table[new_key] = coefficient
        table = new_table

    return {key: value for key, value in table.items() if value != 0}


def evaluate_cardinality_polynomial(coefficients, n, weighted_vocabulary):
    """Evaluate reconstructed coefficients at arbitrary weight pairs.

    ``WFOMC = sum_c a[c] * prod_i w_i**c_i * wbar_i**(N_i - c_i)`` —
    valid for any weights, negative included, which is the paper's
    point: an oracle for positive weights suffices.
    """
    preds = list(weighted_vocabulary.vocabulary)
    degrees = [n ** p.arity for p in preds]
    total = Fraction(0)
    for cardinalities, count in coefficients.items():
        term = Fraction(count)
        for p, c, degree in zip(preds, cardinalities, degrees):
            pair = weighted_vocabulary.weight(p.name)
            term *= pair.w ** c * pair.wbar ** (degree - c)
        total += term
    return total
