"""The top-level WFOMC solver: routing between algorithms.

``wfomc(formula, n)`` dispatches to the best applicable algorithm:

1. the FO2 lifted algorithm (polynomial in ``n``) when the sentence uses
   at most two distinct variables and predicates of arity at most two;
2. otherwise lineage grounding plus exact DPLL weighted model counting
   (exponential worst case, the best known general-purpose approach — the
   paper proves a general polynomial algorithm is impossible unless
   #P1 is in PTIME).

``method`` can pin a specific algorithm: ``"fo2"``, ``"lineage"``,
``"enumerate"``.
"""

from __future__ import annotations

from ..errors import NotFO2Error, UnsupportedFormulaError
from ..logic.syntax import num_variables
from ..logic.vocabulary import WeightedVocabulary
from .bruteforce import wfomc_enumerate, wfomc_lineage
from .fo2 import wfomc_fo2

__all__ = ["wfomc", "fomc", "probability"]

_METHODS = ("auto", "fo2", "lineage", "enumerate")


def wfomc(formula, n, weighted_vocabulary=None, method="auto"):
    """Symmetric weighted first-order model count of a sentence.

    Parameters
    ----------
    formula:
        An FO sentence (no free variables); build it with the
        :mod:`repro.logic` constructors or :func:`repro.logic.parse`.
    n:
        Domain size; the domain is ``{1, ..., n}``.
    weighted_vocabulary:
        A :class:`~repro.logic.vocabulary.WeightedVocabulary`; defaults to
        the unweighted vocabulary of the formula (plain model counting).
    method:
        ``"auto"`` (default), ``"fo2"``, ``"lineage"``, or ``"enumerate"``.

    Returns an exact :class:`~fractions.Fraction` (an ``int``-valued one
    for integer weights).
    """
    if method not in _METHODS:
        raise ValueError("unknown method {!r}; expected one of {}".format(method, _METHODS))
    wv = weighted_vocabulary or WeightedVocabulary.counting(formula)

    if method == "fo2":
        return wfomc_fo2(formula, n, wv)
    if method == "lineage":
        return wfomc_lineage(formula, n, wv)
    if method == "enumerate":
        return wfomc_enumerate(formula, n, wv)

    fo2_applicable = num_variables(formula) <= 2 and all(
        p.arity <= 2 for p in wv.vocabulary
    )
    if fo2_applicable:
        try:
            return wfomc_fo2(formula, n, wv)
        except NotFO2Error:
            pass
    return wfomc_lineage(formula, n, wv)


def fomc(formula, n, method="auto"):
    """Unweighted first-order model count (all weights ``(1, 1)``)."""
    result = wfomc(formula, n, method=method)
    assert result.denominator == 1
    return int(result)


def probability(formula, n, weighted_vocabulary=None, method="auto"):
    """Probability of the sentence in the induced distribution.

    ``Pr(Phi) = WFOMC(Phi, n, w, wbar) / WFOMC(true, n, w, wbar)`` — each
    tuple of relation ``R`` is present independently with probability
    ``w_R / (w_R + wbar_R)``.

    Raises :class:`~repro.errors.UnsupportedFormulaError` when the
    normalization constant is zero (e.g. Skolem weights ``(1, -1)``).
    """
    wv = weighted_vocabulary or WeightedVocabulary.counting(formula)
    numerator = wfomc(formula, n, wv, method=method)
    denominator = wv.total_world_weight(n)
    if denominator == 0:
        raise UnsupportedFormulaError(
            "total world weight is zero; the weights have no probabilistic reading"
        )
    return numerator / denominator
