"""The top-level WFOMC solver: routing, result caching, and batch APIs.

``wfomc(formula, n)`` dispatches to the best applicable algorithm:

1. the FO2 lifted algorithm (polynomial in ``n``) when the sentence uses
   at most two distinct variables and predicates of arity at most two;
2. otherwise lineage grounding plus exact DPLL weighted model counting
   (exponential worst case, the best known general-purpose approach — the
   paper proves a general polynomial algorithm is impossible unless
   #P1 is in PTIME).

``method`` can pin a specific algorithm: ``"fo2"``, ``"lineage"``,
``"enumerate"``.

On top of dispatch sit three layers of reuse:

* a bounded LRU **result cache** keyed on ``(formula, n, weights, method)``
  — repeated ``wfomc``/``fomc``/``probability`` calls are free, and the
  grounding layer memoizes lineages so even cache misses at new weights
  reuse the ground formula;
* :func:`wfomc_batch` evaluates one sentence at many domain sizes through
  the shared caches (dispatch is resolved once per domain size, lineage
  and component caches carry over between sizes);
* :func:`wfomc_weight_sweep` evaluates one ``(formula, n)`` instance at
  many weight assignments; when the cardinality grid is small it
  reconstructs the cardinality generating polynomial **once** (cached) via
  :func:`~repro.wfomc.polynomial.wfomc_cardinality_polynomial` and then
  evaluates every weight set by polynomial evaluation, exactly the
  paper's positive-oracle argument.

All of it is per-process; ``persist=True`` (with an optional
``cache_dir=``) additionally reads the component, cardinality-polynomial,
and FO2 cell-table layers through the on-disk store of
:mod:`repro.cache`, so a second process over the same workload
warm-starts from disk with bit-identical results.
"""

from __future__ import annotations

from ..errors import NotFO2Error, UnsupportedFormulaError
from ..grounding.lineage import clear_grounding_caches, grounding_cache_stats
from ..logic.syntax import num_variables
from ..logic.vocabulary import WeightedVocabulary
from ..utils import LRUCache, vocabulary_signature, weights_signature
from .bruteforce import wfomc_enumerate, wfomc_lineage
from .fo2 import clear_fo2_caches, fo2_cache_stats, wfomc_fo2
from .polynomial import (
    evaluate_cardinality_polynomial,
    wfomc_cardinality_polynomial,
)

__all__ = [
    "wfomc",
    "fomc",
    "probability",
    "wfomc_batch",
    "wfomc_weight_sweep",
    "solver_cache_stats",
    "clear_solver_caches",
]

_METHODS = ("auto", "fo2", "lineage", "enumerate")

#: Cached final results are single Fractions, so the cache can be large.
_RESULT_CACHE = LRUCache(maxsize=4096)
#: Cardinality-coefficient tables are dicts of size at most the grid.
_POLYNOMIAL_CACHE = LRUCache(maxsize=64)

#: A weight sweep uses the cardinality polynomial when the interpolation
#: grid (the number of positive-weight oracle calls needed) is at most
#: this multiple of the number of requested weight sets.
_SWEEP_GRID_FACTOR = 4


def solver_cache_stats():
    """Hit/miss statistics for every cache a solver call can touch.

    One consistent view: the solver-level result and cardinality-polynomial
    caches, both FO2 layers (weight-independent cell structures and
    weighted decompositions), and the grounding-layer lineage/universe
    caches, each as ``{entries, hits, misses, hit_rate}``.
    """
    grounding = grounding_cache_stats()
    fo2 = fo2_cache_stats()
    return {
        "results": _RESULT_CACHE.stats(),
        "polynomials": _POLYNOMIAL_CACHE.stats(),
        "fo2_structures": fo2["structures"],
        "fo2_decompositions": fo2["decompositions"],
        "lineages": grounding["lineage"],
        "universes": grounding["universe"],
    }


def clear_solver_caches():
    """Drop every cache :func:`solver_cache_stats` reports: dispatch
    results, cardinality polynomials, FO2 decompositions, and the
    grounding-layer lineage/universe caches."""
    _RESULT_CACHE.clear()
    _POLYNOMIAL_CACHE.clear()
    clear_fo2_caches()
    clear_grounding_caches()


def wfomc(formula, n, weighted_vocabulary=None, method="auto", workers=None,
          branching=None, learn=None, max_learned=None, persist=None,
          cache_dir=None, phase_saving=None):
    """Symmetric weighted first-order model count of a sentence.

    Parameters
    ----------
    formula:
        An FO sentence (no free variables); build it with the
        :mod:`repro.logic` constructors or :func:`repro.logic.parse`.
    n:
        Domain size; the domain is ``{1, ..., n}``.
    weighted_vocabulary:
        A :class:`~repro.logic.vocabulary.WeightedVocabulary`; defaults to
        the unweighted vocabulary of the formula (plain model counting).
    method:
        ``"auto"`` (default), ``"fo2"``, ``"lineage"``, or ``"enumerate"``.
    workers:
        When > 1, grounded counting farms independent top-level lineage
        components to that many worker processes.  The result is
        bit-identical to a serial run, so it shares the result cache.
    branching / learn / max_learned / phase_saving:
        Conflict-driven-search knobs of the grounded counting engine
        (``"evsids"``/``"moms"``, clause learning on/off, learned-database
        bound, backjump phase saving); see
        :class:`~repro.propositional.counter.CountingEngine`.
        They steer the search only — the counted value is knob-independent,
        so all configurations share the result cache.
    persist / cache_dir:
        When ``persist`` is true, the component, cardinality-polynomial,
        and FO2 cell-table caches read through to the on-disk store of
        :mod:`repro.cache` (at ``cache_dir``, ``$REPRO_CACHE_DIR``, or
        ``~/.cache/repro``), shared across processes and by parallel
        workers.  All persisted values are exact, so results are
        bit-identical with the cache cold, warm, or absent.

    Returns an exact :class:`~fractions.Fraction` (an ``int``-valued one
    for integer weights).  Results are cached on
    ``(formula, n, weights, method)``.
    """
    if method not in _METHODS:
        raise ValueError("unknown method {!r}; expected one of {}".format(method, _METHODS))
    wv = weighted_vocabulary or WeightedVocabulary.counting(formula)

    key = (formula, n, weights_signature(wv), method)
    cached = _RESULT_CACHE.get(key)
    if cached is not None:
        return cached

    result = _dispatch(formula, n, wv, method, workers,
                       branching=branching, learn=learn,
                       max_learned=max_learned, persist=persist,
                       cache_dir=cache_dir, phase_saving=phase_saving)
    _RESULT_CACHE.put(key, result)
    return result


def _dispatch(formula, n, wv, method, workers=None, branching=None,
              learn=None, max_learned=None, persist=None, cache_dir=None,
              phase_saving=None):
    engine_knobs = {"branching": branching, "learn": learn,
                    "max_learned": max_learned, "persist": persist,
                    "cache_dir": cache_dir, "phase_saving": phase_saving}
    if method == "fo2":
        return wfomc_fo2(formula, n, wv, persist=persist, cache_dir=cache_dir)
    if method == "lineage":
        return wfomc_lineage(formula, n, wv, workers=workers, **engine_knobs)
    if method == "enumerate":
        return wfomc_enumerate(formula, n, wv)

    fo2_applicable = num_variables(formula) <= 2 and all(
        p.arity <= 2 for p in wv.vocabulary
    )
    if fo2_applicable:
        try:
            return wfomc_fo2(formula, n, wv, persist=persist,
                             cache_dir=cache_dir)
        except NotFO2Error:
            pass
    return wfomc_lineage(formula, n, wv, workers=workers, **engine_knobs)


def fomc(formula, n, method="auto", workers=None, branching=None,
         learn=None, max_learned=None, persist=None, cache_dir=None,
         phase_saving=None):
    """Unweighted first-order model count (all weights ``(1, 1)``)."""
    result = wfomc(formula, n, method=method, workers=workers,
                   branching=branching, learn=learn, max_learned=max_learned,
                   persist=persist, cache_dir=cache_dir,
                   phase_saving=phase_saving)
    assert result.denominator == 1
    return int(result)


def probability(formula, n, weighted_vocabulary=None, method="auto",
                workers=None, branching=None, learn=None, max_learned=None,
                persist=None, cache_dir=None, phase_saving=None,
                compile=None):
    """Probability of the sentence in the induced distribution.

    ``Pr(Phi) = WFOMC(Phi, n, w, wbar) / WFOMC(true, n, w, wbar)`` — each
    tuple of relation ``R`` is present independently with probability
    ``w_R / (w_R + wbar_R)``.

    ``compile=True`` serves the numerator from the knowledge-compilation
    fast path (:func:`repro.compile.compile_wfomc`): the count structure
    is compiled into an arithmetic circuit once per ``(formula, n)`` and
    repeated queries at different weights are circuit evaluations —
    bit-identical to the direct path.

    Raises :class:`~repro.errors.UnsupportedFormulaError` when the
    normalization constant is zero (e.g. Skolem weights ``(1, -1)``).
    """
    wv = weighted_vocabulary or WeightedVocabulary.counting(formula)
    if compile and method != "enumerate":
        from ..compile import compile_wfomc

        compiled = compile_wfomc(formula, n, wv.vocabulary, method=method,
                                 persist=persist, cache_dir=cache_dir)
        numerator = compiled.evaluate(wv)
    else:
        numerator = wfomc(formula, n, wv, method=method, workers=workers,
                          branching=branching, learn=learn,
                          max_learned=max_learned, persist=persist,
                          cache_dir=cache_dir, phase_saving=phase_saving)
    denominator = wv.total_world_weight(n)
    if denominator == 0:
        raise UnsupportedFormulaError(
            "total world weight is zero; the weights have no probabilistic reading"
        )
    return numerator / denominator


def wfomc_batch(formula, ns, weighted_vocabulary=None, method="auto",
                workers=None, branching=None, learn=None, max_learned=None,
                persist=None, cache_dir=None, phase_saving=None,
                compile=None):
    """WFOMC of one sentence at many domain sizes.

    Returns ``{n: WFOMC(formula, n)}``.  All sizes flow through the shared
    caches: the dispatch decision and weights signature are computed once,
    repeated sizes are deduplicated, and the lineage, ground-atom-universe,
    component, and FO2 cell-decomposition caches are shared across sizes,
    so a batch is substantially cheaper than independent :func:`wfomc`
    calls on a cold cache.

    ``compile=True`` routes every size through the knowledge-compilation
    fast path: each ``(formula, n)`` instance is compiled to a circuit
    (cached in memory and, with ``persist``, on disk) and evaluated at
    the requested weights — re-running the batch at new weights then
    costs one circuit evaluation per size.
    """
    if method not in _METHODS:
        raise ValueError("unknown method {!r}; expected one of {}".format(method, _METHODS))
    wv = weighted_vocabulary or WeightedVocabulary.counting(formula)
    signature = weights_signature(wv)

    if compile and method != "enumerate":
        from ..compile import compile_wfomc

        results = {}
        for n in ns:
            if n not in results:
                compiled = compile_wfomc(formula, n, wv.vocabulary,
                                         method=method, persist=persist,
                                         cache_dir=cache_dir)
                results[n] = compiled.evaluate(wv)
        return results

    results = {}
    for n in ns:
        if n in results:
            continue
        key = (formula, n, signature, method)
        cached = _RESULT_CACHE.get(key)
        if cached is None:
            cached = _dispatch(formula, n, wv, method, workers,
                               branching=branching, learn=learn,
                               max_learned=max_learned, persist=persist,
                               cache_dir=cache_dir, phase_saving=phase_saving)
            _RESULT_CACHE.put(key, cached)
        results[n] = cached
    return results


def _cardinality_grid_size(vocabulary, n):
    size = 1
    for p in vocabulary:
        size *= n ** p.arity + 1
    return size


def wfomc_weight_sweep(formula, n, weight_vocabularies, method="auto",
                       via_polynomial=None, workers=None, branching=None,
                       learn=None, max_learned=None, persist=None,
                       cache_dir=None, phase_saving=None, compile=None):
    """WFOMC of one ``(formula, n)`` instance at many weight assignments.

    ``weight_vocabularies`` is an iterable of
    :class:`~repro.logic.vocabulary.WeightedVocabulary` over the same
    vocabulary; the result is the list of counts in input order.

    When ``via_polynomial`` is true (or ``None`` and the interpolation
    grid is small relative to the number of weight sets), the cardinality
    generating polynomial of the instance is reconstructed once — from
    positive-weight oracle calls only, per the paper's Section 2 argument
    — cached, and evaluated at every weight set, negative weights
    included.  Otherwise each weight set is dispatched individually.

    ``compile=True`` takes a third route: the instance is compiled once
    into an arithmetic circuit (:mod:`repro.compile`) and every weight
    set — zeros and negatives included — is a linear-time circuit
    evaluation, bit-identical to the dispatch path.  Unlike the
    cardinality polynomial, the circuit route needs no positive-weight
    oracle grid, so it amortizes even when the grid is large.

    Either way every evaluation flows through the shared caches — the
    memoized lineage and ground-atom universe of ``(formula, n)`` are
    built once and reused by all weight sets (and all oracle calls), and
    :func:`solver_cache_stats` reports the reuse.  With ``persist``, the
    reconstructed coefficient table and every component count read
    through to the on-disk store, which is what turns a repeated sweep in
    a fresh process from recompute-everything into warm-start serving.
    """
    weight_vocabularies = list(weight_vocabularies)
    if not weight_vocabularies:
        return []
    vocabulary = weight_vocabularies[0].vocabulary

    if compile and method != "enumerate":
        # The knowledge-compilation fast path: trace the count structure
        # into an arithmetic circuit once (cached across calls and, with
        # ``persist``, across processes) and serve every weight set by
        # circuit evaluation.  Exact arithmetic keeps the results
        # bit-identical to the dispatch path.
        from ..compile import compile_wfomc

        compiled = compile_wfomc(formula, n, vocabulary, method=method,
                                 persist=persist, cache_dir=cache_dir)
        return compiled.evaluate_batch(weight_vocabularies)

    if via_polynomial is None:
        grid = _cardinality_grid_size(vocabulary, n)
        via_polynomial = grid <= _SWEEP_GRID_FACTOR * len(weight_vocabularies)

    if not via_polynomial:
        return [
            wfomc(formula, n, wv, method=method, workers=workers,
                  branching=branching, learn=learn, max_learned=max_learned,
                  persist=persist, cache_dir=cache_dir,
                  phase_saving=phase_saving)
            for wv in weight_vocabularies
        ]

    # Coefficient vectors are ordered by this vocabulary's iteration
    # order, so the key must be order-*sensitive*: the same predicates in
    # a different order must not share an entry.
    key = (formula, n, vocabulary_signature(vocabulary, ordered=True), method)
    coefficients = _POLYNOMIAL_CACHE.get(key)
    store = None
    if coefficients is None and persist:
        from ..cache import open_store

        store = open_store(cache_dir)
        coefficients = store.get("polynomials", key)
        if coefficients is not None:
            _POLYNOMIAL_CACHE.put(key, coefficients)
    if coefficients is None:
        coefficients = wfomc_cardinality_polynomial(
            formula,
            n,
            vocabulary,
            lambda f, size, wv: wfomc(f, size, wv, method=method,
                                      workers=workers, branching=branching,
                                      learn=learn, max_learned=max_learned,
                                      persist=persist, cache_dir=cache_dir,
                                      phase_saving=phase_saving),
        )
        _POLYNOMIAL_CACHE.put(key, coefficients)
        if store is not None and not store.disabled:
            store.put("polynomials", key, coefficients)
    # Coefficient vectors are ordered by the first vocabulary's predicate
    # order; rebase every weight set onto that vocabulary object so the
    # evaluation order always matches.
    return [
        evaluate_cardinality_polynomial(
            coefficients,
            n,
            WeightedVocabulary(
                vocabulary, {p.name: wv.weight(p.name) for p in vocabulary}
            ),
        )
        for wv in weight_vocabularies
    ]
