"""The top-level WFOMC solver: routing, result caching, and batch APIs.

``wfomc(formula, n)`` dispatches to the best applicable algorithm:

1. the FO2 lifted algorithm (polynomial in ``n``) when the sentence uses
   at most two distinct variables and predicates of arity at most two;
2. otherwise lineage grounding plus exact DPLL weighted model counting
   (exponential worst case, the best known general-purpose approach — the
   paper proves a general polynomial algorithm is impossible unless
   #P1 is in PTIME).

``method`` can pin a specific algorithm: ``"fo2"``, ``"lineage"``,
``"enumerate"``.

On top of dispatch sit three layers of reuse:

* a bounded LRU **result cache** keyed on ``(formula, n, weights, method)``
  — repeated ``wfomc``/``fomc``/``probability`` calls are free, and the
  grounding layer memoizes lineages so even cache misses at new weights
  reuse the ground formula;
* :func:`wfomc_batch` evaluates one sentence at many domain sizes through
  the shared caches (dispatch is resolved once per domain size, lineage
  and component caches carry over between sizes);
* :func:`wfomc_weight_sweep` evaluates one ``(formula, n)`` instance at
  many weight assignments; when the cardinality grid is small it
  reconstructs the cardinality generating polynomial **once** (cached) via
  :func:`~repro.wfomc.polynomial.wfomc_cardinality_polynomial` and then
  evaluates every weight set by polynomial evaluation, exactly the
  paper's positive-oracle argument.

All of it is per-process; ``persist=True`` (with an optional
``cache_dir=``) additionally reads the component, cardinality-polynomial,
and FO2 cell-table layers through the on-disk store of
:mod:`repro.cache`, so a second process over the same workload
warm-starts from disk with bit-identical results.
"""

from __future__ import annotations

from ..errors import NotFO2Error, UnsupportedFormulaError
from ..grounding.lineage import clear_grounding_caches, grounding_cache_stats
from ..logic.syntax import num_variables
from ..logic.vocabulary import WeightedVocabulary
from ..obs import span
from ..options import SolverOptions
from ..utils import LRUCache, vocabulary_signature, weights_signature
from .bruteforce import wfomc_enumerate, wfomc_lineage
from .fo2 import clear_fo2_caches, fo2_cache_stats, wfomc_fo2
from .polynomial import (
    evaluate_cardinality_polynomial,
    wfomc_cardinality_polynomial,
)

__all__ = [
    "wfomc",
    "fomc",
    "probability",
    "wfomc_batch",
    "wfomc_weight_sweep",
    "solver_cache_stats",
    "clear_solver_caches",
]

_METHODS = ("auto", "fo2", "lineage", "enumerate")

#: Cached final results are single Fractions, so the cache can be large.
_RESULT_CACHE = LRUCache(maxsize=4096)
#: Cardinality-coefficient tables are dicts of size at most the grid.
_POLYNOMIAL_CACHE = LRUCache(maxsize=64)

#: A weight sweep uses the cardinality polynomial when the interpolation
#: grid (the number of positive-weight oracle calls needed) is at most
#: this multiple of the number of requested weight sets.
_SWEEP_GRID_FACTOR = 4


def solver_cache_stats():
    """Hit/miss statistics for every cache a solver call can touch.

    One consistent view: the solver-level result and cardinality-polynomial
    caches, both FO2 layers (weight-independent cell structures and
    weighted decompositions), and the grounding-layer lineage/universe
    caches, each as ``{entries, hits, misses, hit_rate}``.
    """
    grounding = grounding_cache_stats()
    fo2 = fo2_cache_stats()
    return {
        "results": _RESULT_CACHE.stats(),
        "polynomials": _POLYNOMIAL_CACHE.stats(),
        "fo2_structures": fo2["structures"],
        "fo2_decompositions": fo2["decompositions"],
        "lineages": grounding["lineage"],
        "universes": grounding["universe"],
    }


def clear_solver_caches():
    """Drop every cache :func:`solver_cache_stats` reports: dispatch
    results, cardinality polynomials, FO2 decompositions, and the
    grounding-layer lineage/universe caches."""
    _RESULT_CACHE.clear()
    _POLYNOMIAL_CACHE.clear()
    clear_fo2_caches()
    clear_grounding_caches()


def _codegen_store(opts):
    """An open store for codegen-source persistence, or ``None``."""
    if opts.backend != "codegen" or not opts.persist:
        return None
    from ..compile.trace import _store_for

    return _store_for(opts.persist, opts.cache_dir)


def wfomc(formula, n, weighted_vocabulary=None, options=None, **legacy):
    """Symmetric weighted first-order model count of a sentence.

    Parameters
    ----------
    formula:
        An FO sentence (no free variables); build it with the
        :mod:`repro.logic` constructors or :func:`repro.logic.parse`.
    n:
        Domain size; the domain is ``{1, ..., n}``.
    weighted_vocabulary:
        A :class:`~repro.logic.vocabulary.WeightedVocabulary`; defaults to
        the unweighted vocabulary of the formula (plain model counting).
    options:
        A :class:`~repro.options.SolverOptions` carrying every knob
        (method, workers, engine search knobs, persistence, compilation,
        evaluation backend) — or a bare method string as shorthand.
        Legacy keyword arguments (``method=``, ``workers=``,
        ``branching=``, ``learn=``, ``max_learned=``, ``persist=``,
        ``cache_dir=``, ``phase_saving=``) keep working through
        :meth:`~repro.options.SolverOptions.from_kwargs` and override
        the corresponding ``options`` fields; the keyword style is
        deprecated in favor of ``options=SolverOptions(...)``.

    Returns an exact :class:`~fractions.Fraction` (an ``int``-valued one
    for integer weights).  Results are cached on
    ``(formula, n, weights, method)``.
    """
    opts = SolverOptions.from_kwargs(options, **legacy)
    wv = weighted_vocabulary or WeightedVocabulary.counting(formula)

    key = (formula, n, weights_signature(wv), opts.method)
    cached = _RESULT_CACHE.get(key)
    if cached is not None:
        return cached

    with span("wfomc", cat="solver", n=n, method=opts.method):
        result = _dispatch(formula, n, wv, opts)
    _RESULT_CACHE.put(key, result)
    return result


def _dispatch(formula, n, wv, opts):
    """Route one instance to the best applicable algorithm.

    Takes the whole :class:`~repro.options.SolverOptions` — the single
    object threaded from every entry point down to the counting layers.
    """
    method = opts.method
    if method == "fo2":
        return wfomc_fo2(formula, n, wv, budget=opts.budget,
                         **opts.store_kwargs())
    if method == "lineage":
        return wfomc_lineage(formula, n, wv, options=opts)
    if method == "enumerate":
        return wfomc_enumerate(formula, n, wv)

    fo2_applicable = num_variables(formula) <= 2 and all(
        p.arity <= 2 for p in wv.vocabulary
    )
    if fo2_applicable:
        try:
            return wfomc_fo2(formula, n, wv, budget=opts.budget,
                             **opts.store_kwargs())
        except NotFO2Error:
            pass
    return wfomc_lineage(formula, n, wv, options=opts)


def fomc(formula, n, options=None, **legacy):
    """Unweighted first-order model count (all weights ``(1, 1)``)."""
    result = wfomc(formula, n, options=options, **legacy)
    assert result.denominator == 1
    return int(result)


def probability(formula, n, weighted_vocabulary=None, options=None, **legacy):
    """Probability of the sentence in the induced distribution.

    ``Pr(Phi) = WFOMC(Phi, n, w, wbar) / WFOMC(true, n, w, wbar)`` — each
    tuple of relation ``R`` is present independently with probability
    ``w_R / (w_R + wbar_R)``.

    ``options.compile`` (or any non-default ``options.backend``) serves
    the numerator from the knowledge-compilation fast path
    (:func:`repro.compile.compile_wfomc`): the count structure is
    compiled into an arithmetic circuit once per ``(formula, n)`` and
    repeated queries at different weights are circuit evaluations —
    bit-identical to the direct path for the exact backends; the
    ``"float"`` backend returns a float with a tracked error bound and
    automatic exact fallback.

    Raises :class:`~repro.errors.UnsupportedFormulaError` when the
    normalization constant is zero (e.g. Skolem weights ``(1, -1)``).
    """
    opts = SolverOptions.from_kwargs(options, **legacy)
    wv = weighted_vocabulary or WeightedVocabulary.counting(formula)
    if opts.compiled and opts.method != "enumerate":
        from ..compile import compile_wfomc

        compiled = compile_wfomc(formula, n, wv.vocabulary,
                                 method=opts.method, budget=opts.budget,
                                 **opts.store_kwargs())
        numerator = compiled.evaluate(wv, backend=opts.backend,
                                      store=_codegen_store(opts))
    else:
        numerator = wfomc(formula, n, wv, options=opts)
    denominator = wv.total_world_weight(n)
    if denominator == 0:
        raise UnsupportedFormulaError(
            "total world weight is zero; the weights have no probabilistic reading"
        )
    return numerator / denominator


def wfomc_batch(formula, ns, weighted_vocabulary=None, options=None, **legacy):
    """WFOMC of one sentence at many domain sizes.

    Returns ``{n: WFOMC(formula, n)}``.  All sizes flow through the shared
    caches: the dispatch decision and weights signature are computed once,
    repeated sizes are deduplicated, and the lineage, ground-atom-universe,
    component, and FO2 cell-decomposition caches are shared across sizes,
    so a batch is substantially cheaper than independent :func:`wfomc`
    calls on a cold cache.

    ``options.compile`` (or a non-default ``options.backend``) routes
    every size through the knowledge-compilation fast path: each distinct
    ``(formula, n)`` instance is compiled **once per call** — a local
    registry pins the compiled circuits for the duration of the batch,
    so neither repeated sizes nor LRU eviction mid-batch re-triggers
    compilation — and evaluated at the requested weights through the
    unified backend surface.  Re-running the batch at new weights then
    costs one circuit evaluation per size.
    """
    opts = SolverOptions.from_kwargs(options, **legacy)
    wv = weighted_vocabulary or WeightedVocabulary.counting(formula)
    signature = weights_signature(wv)

    if opts.compiled and opts.method != "enumerate":
        from ..compile import compile_wfomc

        store = _codegen_store(opts)
        registry = {}
        results = {}
        for n in ns:
            if n in results:
                continue
            compiled = registry.get(n)
            if compiled is None:
                compiled = compile_wfomc(formula, n, wv.vocabulary,
                                         method=opts.method,
                                         budget=opts.budget,
                                         **opts.store_kwargs())
                registry[n] = compiled
            results[n] = compiled.evaluate(wv, backend=opts.backend,
                                           store=store)
        return results

    results = {}
    for n in ns:
        if n in results:
            continue
        key = (formula, n, signature, opts.method)
        cached = _RESULT_CACHE.get(key)
        if cached is None:
            cached = _dispatch(formula, n, wv, opts)
            _RESULT_CACHE.put(key, cached)
        results[n] = cached
    return results


def _cardinality_grid_size(vocabulary, n):
    size = 1
    for p in vocabulary:
        size *= n ** p.arity + 1
    return size


def wfomc_weight_sweep(formula, n, weight_vocabularies, options=None,
                       via_polynomial=None, **legacy):
    """WFOMC of one ``(formula, n)`` instance at many weight assignments.

    ``weight_vocabularies`` is an iterable of
    :class:`~repro.logic.vocabulary.WeightedVocabulary` over the same
    vocabulary; the result is the list of counts in input order.

    When ``via_polynomial`` is true (or ``None`` and the interpolation
    grid is small relative to the number of weight sets), the cardinality
    generating polynomial of the instance is reconstructed once — from
    positive-weight oracle calls only, per the paper's Section 2 argument
    — cached, and evaluated at every weight set, negative weights
    included.  Otherwise each weight set is dispatched individually.

    ``options.compile`` (or a non-default ``options.backend``) takes a
    third route: the instance is compiled once into an arithmetic
    circuit (:mod:`repro.compile`) and the whole sweep — zeros and
    negatives included — is served through the unified
    :meth:`~repro.compile.CompiledWFOMC.evaluate_many` surface.  The
    exact backends (``"exact"``, ``"batched"``, ``"codegen"``) are
    bit-identical to the dispatch path; ``"batched"``/``"codegen"``
    serve all K weight sets in one staged pass over the circuit, which
    is the serving fast path the CI benchmark gates.  Unlike the
    cardinality polynomial, the circuit route needs no positive-weight
    oracle grid, so it amortizes even when the grid is large.

    Either way every evaluation flows through the shared caches — the
    memoized lineage and ground-atom universe of ``(formula, n)`` are
    built once and reused by all weight sets (and all oracle calls), and
    :func:`solver_cache_stats` reports the reuse.  With ``persist``, the
    reconstructed coefficient table, every component count, and the
    codegen backend's generated source read through to the on-disk
    store, which is what turns a repeated sweep in a fresh process from
    recompute-everything into warm-start serving.
    """
    opts = SolverOptions.from_kwargs(options, **legacy)
    weight_vocabularies = list(weight_vocabularies)
    if not weight_vocabularies:
        return []
    vocabulary = weight_vocabularies[0].vocabulary

    if opts.compiled and opts.method != "enumerate":
        # The knowledge-compilation fast path: trace the count structure
        # into an arithmetic circuit once (cached across calls and, with
        # ``persist``, across processes) and serve every weight set by
        # circuit evaluation through the selected backend.
        from ..compile import compile_wfomc

        compiled = compile_wfomc(formula, n, vocabulary, method=opts.method,
                                 budget=opts.budget, **opts.store_kwargs())
        with span("weight_sweep", cat="solver", route="compiled", n=n,
                  k=len(weight_vocabularies)):
            return compiled.evaluate_many(weight_vocabularies,
                                          backend=opts.backend,
                                          store=_codegen_store(opts))

    if via_polynomial is None:
        grid = _cardinality_grid_size(vocabulary, n)
        via_polynomial = grid <= _SWEEP_GRID_FACTOR * len(weight_vocabularies)

    if not via_polynomial:
        with span("weight_sweep", cat="solver", route="dispatch", n=n,
                  k=len(weight_vocabularies)):
            return [wfomc(formula, n, wv, options=opts)
                    for wv in weight_vocabularies]

    # Coefficient vectors are ordered by this vocabulary's iteration
    # order, so the key must be order-*sensitive*: the same predicates in
    # a different order must not share an entry.
    key = (formula, n, vocabulary_signature(vocabulary, ordered=True),
           opts.method)
    coefficients = _POLYNOMIAL_CACHE.get(key)
    store = None
    if coefficients is None and opts.persist:
        from ..cache import open_store

        store = open_store(opts.cache_dir)
        coefficients = store.get("polynomials", key)
        if coefficients is not None:
            _POLYNOMIAL_CACHE.put(key, coefficients)
    if coefficients is None:
        with span("cardinality_polynomial", cat="solver", n=n):
            coefficients = wfomc_cardinality_polynomial(
                formula,
                n,
                vocabulary,
                lambda f, size, wv: wfomc(f, size, wv, options=opts),
            )
        _POLYNOMIAL_CACHE.put(key, coefficients)
        if store is not None and not store.disabled:
            store.put("polynomials", key, coefficients)
    # Coefficient vectors are ordered by the first vocabulary's predicate
    # order; rebase every weight set onto that vocabulary object so the
    # evaluation order always matches.
    return [
        evaluate_cardinality_polynomial(
            coefficients,
            n,
            WeightedVocabulary(
                vocabulary, {p.name: wv.weight(p.name) for p in vocabulary}
            ),
        )
        for wv in weight_vocabularies
    ]
