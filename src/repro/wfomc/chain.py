"""Linear chain queries (Example 3.10): a direct dynamic program.

The chain query

``Q = exists x0 ... xm  R1(x0, x1) & R2(x1, x2) & ... & Rm(x_{m-1}, x_m)``

is gamma-acyclic, so the general algorithm of Theorem 3.6 applies; this
module provides an independent O(m * n^2) dynamic program used to
cross-validate it and to benchmark Example 3.10.

The DP tracks the distribution of the number of "alive" elements at each
level, scanning from ``x_m`` down to ``x_0``: an element ``u`` at level
``j`` is alive iff some tuple ``R_{j+1}(u, v)`` leads to an alive ``v``.
Given ``a`` alive elements at level ``j+1``, each level-``j`` element is
alive independently with probability ``1 - (1 - p_{j+1})**a`` (tuples are
independent, and aliveness at level ``j+1`` depends only on relations
further right).  The query is true iff some level-0 element is alive.
"""

from __future__ import annotations

from collections import defaultdict
from fractions import Fraction

from ..utils import as_fraction, binomial, check_domain_size

__all__ = ["chain_probability"]


def chain_probability(probabilities, domain_sizes):
    """Probability that the chain query is true.

    ``probabilities[j]`` is the tuple probability of relation ``R_{j+1}``
    linking level ``j`` to level ``j+1``; ``domain_sizes[j]`` is the size
    of the domain of variable ``x_j`` (so ``len(domain_sizes) ==
    len(probabilities) + 1``).  Exact rational arithmetic throughout.
    """
    probs = [as_fraction(p) for p in probabilities]
    sizes = [check_domain_size(s) for s in domain_sizes]
    if len(sizes) != len(probs) + 1:
        raise ValueError(
            "need one domain size per variable: {} probabilities require "
            "{} sizes, got {}".format(len(probs), len(probs) + 1, len(sizes))
        )

    # Distribution of the number of alive elements, starting at the last
    # level where every element is trivially alive.
    dist = {sizes[-1]: Fraction(1)}
    for j in range(len(probs) - 1, -1, -1):
        nj = sizes[j]
        p = probs[j]
        new = defaultdict(Fraction)
        for alive, mass in dist.items():
            q = 1 - (1 - p) ** alive
            for b in range(nj + 1):
                new[b] += mass * binomial(nj, b) * q ** b * (1 - q) ** (nj - b)
        dist = dict(new)

    return 1 - dist.get(0, Fraction(0))
