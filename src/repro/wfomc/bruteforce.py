"""Baseline WFOMC solvers: world enumeration and lineage + WMC.

These implement the *definition* of WFOMC (Section 2) and serve as ground
truth for the polynomial-time algorithms:

* :func:`wfomc_enumerate` sums world weights over all ``2**|Tup(n)|``
  structures — purely for tiny validation instances;
* :func:`wfomc_lineage` grounds the sentence to its lineage and runs the
  exact DPLL weighted model counter — exponential in the worst case but
  vastly faster in practice, and the engine behind every construction the
  paper validates by grounding (the SAT gadget, the Turing machine
  encoding Theta_1, MLN semantics).
"""

from __future__ import annotations

from fractions import Fraction

from ..grounding.lineage import ground_atom_weights, lineage
from ..grounding.structures import all_structures, world_weight
from ..logic.evaluate import evaluate
from ..logic.syntax import free_variables
from ..logic.vocabulary import WeightedVocabulary
from ..options import SolverOptions
from ..propositional.counter import wmc_formula
from ..utils import check_domain_size

__all__ = ["wfomc_enumerate", "wfomc_lineage", "fomc_lineage"]


def _check_sentence(formula):
    free = free_variables(formula)
    if free:
        raise ValueError(
            "WFOMC requires a sentence; free variables: {}".format(sorted(v.name for v in free))
        )


def wfomc_enumerate(formula, n, weighted_vocabulary=None):
    """WFOMC by enumerating all structures (the textbook definition)."""
    _check_sentence(formula)
    check_domain_size(n)
    wv = weighted_vocabulary or WeightedVocabulary.counting(formula)
    total = Fraction(0)
    for structure in all_structures(wv.vocabulary, n):
        if evaluate(formula, structure):
            total += world_weight(structure, wv)
    return total


def wfomc_lineage(formula, n, weighted_vocabulary=None, options=None,
                  **legacy):
    """WFOMC via lineage grounding and exact CDCL model counting.

    ``options`` is a :class:`~repro.options.SolverOptions` (legacy
    keyword arguments — ``workers=``, ``branching=``, ``learn=``,
    ``max_learned=``, ``persist=``, ``cache_dir=``, ``phase_saving=`` —
    keep working and are deprecated).  ``workers`` > 1 counts
    independent top-level lineage components on a process pool; the
    result is bit-identical to a serial run.  The conflict-driven-search
    knobs steer the counting engine only (see
    :class:`~repro.propositional.counter.CountingEngine`); the result is
    knob-independent.  ``persist``/``cache_dir`` back the engine's
    component cache with the on-disk store of :mod:`repro.cache`, so
    repeated runs (including separate processes) warm-start from disk.
    """
    opts = SolverOptions.from_kwargs(options, **legacy)
    _check_sentence(formula)
    check_domain_size(n)
    wv = weighted_vocabulary or WeightedVocabulary.counting(formula)
    prop = lineage(formula, n)
    weight_of, universe = ground_atom_weights(wv, n)
    return wmc_formula(prop, weight_of, universe, options=opts)


def fomc_lineage(formula, n, options=None, **legacy):
    """Unweighted first-order model count via the lineage path."""
    result = wfomc_lineage(formula, n, options=options, **legacy)
    assert result.denominator == 1
    return int(result)
