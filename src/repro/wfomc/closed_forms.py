"""Closed-form WFOMC solutions from the paper.

Table 1 and the running examples of Sections 1-2 give explicit formulas:

* ``FOMC(forall x exists y R(x,y), n) = (2**n - 1)**n``
* ``WFOMC(forall x exists y R(x,y), n) = ((w + wbar)**n - wbar**n)**n``
* ``WFOMC(exists y S(y), n) = (w + wbar)**n - wbar**n``
* Table 1 for ``Phi = forall x forall y (R(x) | S(x,y) | T(y))``:
  ``FOMC(Phi, n) = sum_{k,m} C(n,k) C(n,m) 2**(n**2 - k*m)`` and the
  weighted generalization with
  ``W_km = wR**(n-k) wbarR**k wS**(km) (wS+wbarS)**(n**2-km) wT**(n-m) wbarT**m``.

Each function is cross-validated in the test suite against brute force and
against the FO2 lifted algorithm.
"""

from __future__ import annotations

from fractions import Fraction

from ..utils import binomial, check_domain_size
from ..weights import WeightPair

__all__ = [
    "fomc_forall_exists",
    "wfomc_forall_exists",
    "wfomc_exists_unary",
    "table1_fomc",
    "table1_wfomc",
]


def _pair(pair):
    if isinstance(pair, WeightPair):
        return pair
    return WeightPair(*pair)


def fomc_forall_exists(n):
    """``FOMC(forall x exists y R(x,y), n) = (2**n - 1)**n`` (Section 1)."""
    check_domain_size(n)
    return (2 ** n - 1) ** n


def wfomc_forall_exists(n, pair):
    """``WFOMC(forall x exists y R(x,y), n) = ((w+wbar)**n - wbar**n)**n``."""
    check_domain_size(n)
    pair = _pair(pair)
    return ((pair.w + pair.wbar) ** n - pair.wbar ** n) ** n


def wfomc_exists_unary(n, pair):
    """``WFOMC(exists y S(y), n) = (w+wbar)**n - wbar**n`` (Section 2)."""
    check_domain_size(n)
    pair = _pair(pair)
    return (pair.w + pair.wbar) ** n - pair.wbar ** n


def table1_fomc(n):
    """Row 1 of Table 1: the unweighted count for Phi = forall x,y (R(x)|S(x,y)|T(y)).

    ``FOMC(Phi, n) = sum_{k,m=0..n} C(n,k) C(n,m) 2**(n**2 - k*m)``.

    Here ``k`` counts elements with ``R`` false and ``m`` elements with
    ``T`` false; the ``k*m`` cells of ``S`` they pin must be true.
    """
    check_domain_size(n)
    total = 0
    for k in range(n + 1):
        for m in range(n + 1):
            total += binomial(n, k) * binomial(n, m) * 2 ** (n * n - k * m)
    return total


def table1_wfomc(n, pair_r, pair_s, pair_t):
    """Row 2 of Table 1: the symmetric weighted count for the same Phi.

    ``WFOMC(Phi, n, w, wbar) = sum_{k,m} C(n,k) C(n,m) W_km`` with
    ``W_km = wR**(n-k) wbarR**k wS**(km) (wS+wbarS)**(n**2-km)
    wT**(n-m) wbarT**m``.
    """
    check_domain_size(n)
    pr, ps, pt = _pair(pair_r), _pair(pair_s), _pair(pair_t)
    total = Fraction(0)
    for k in range(n + 1):
        for m in range(n + 1):
            w_km = (
                pr.w ** (n - k)
                * pr.wbar ** k
                * ps.w ** (k * m)
                * (ps.w + ps.wbar) ** (n * n - k * m)
                * pt.w ** (n - m)
                * pt.wbar ** m
            )
            total += binomial(n, k) * binomial(n, m) * w_km
    return total
