"""The Ck-hardness reduction for beta-cyclic queries (Section 3.2).

The paper argues every beta-cyclic CQ is "Ck-hard": a weak beta-cycle
``R1 x1 R2 x2 ... xk R1`` inside the query lets the WFOMC of the typed
cycle ``Ck`` be read off from the WFOMC of the query under the
generalized (per-variable-domain) semantics:

* relations **on** the cycle keep their weights; all other relations get
  the neutral weights ``(1, 1)`` — their atoms become free mass;
* variables **on** the cycle keep the Ck domain sizes; all other
  variables get domain size 1.

Then ``WFOMC(Ck, n, w) * (free mass) == WFOMC(Q, n', w')``.  This module
constructs the reduction from any beta-cyclic query and validates the
identity by brute force in the tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, Tuple

from ..errors import ReproError
from ..utils import as_fraction
from .bruteforce import cq_probability_bruteforce
from .query import ConjunctiveQuery

__all__ = ["CkReduction", "reduce_ck_to_query", "typed_cycle", "cycle_probability_bruteforce"]


def typed_cycle(k, probability, n):
    """The typed k-cycle ``Ck = R1(x1,x2), ..., Rk(xk,x1)`` as a CQ."""
    if k < 3:
        raise ValueError("cycles need k >= 3")
    atoms = [
        ("Ck_R{}".format(i), ("ck_x{}".format(i), "ck_x{}".format((i % k) + 1)))
        for i in range(1, k + 1)
    ]
    probs = {"Ck_R{}".format(i): as_fraction(probability) for i in range(1, k + 1)}
    return ConjunctiveQuery(atoms, probs, n)


def cycle_probability_bruteforce(k, probability, n):
    """Ground truth Pr(Ck) by grounding (tiny n only)."""
    return cq_probability_bruteforce(typed_cycle(k, probability, n))


@dataclass
class CkReduction:
    """A reduction instance: evaluate Q to learn Ck.

    Attributes
    ----------
    query:
        The beta-cyclic target query, re-weighted and re-domained: cycle
    relations carry the Ck probability, all others probability 1;
        cycle variables carry the Ck domain size, all others size 1.
    cycle_edges, cycle_nodes:
        The weak beta-cycle found in the target (length k).
    k:
        The cycle length: which ``Ck`` this instance computes.
    """

    query: ConjunctiveQuery
    cycle_edges: Tuple[str, ...]
    cycle_nodes: Tuple[str, ...]

    @property
    def k(self):
        return len(self.cycle_edges)

    def cycle_probability(self):
        """Pr(Ck) read off the target query (brute force on the target).

        With non-cycle relations certain (p = 1) and non-cycle variables
        collapsed to singleton domains, the target's probability *is* the
        cycle's.
        """
        return cq_probability_bruteforce(self.query)


def reduce_ck_to_query(query, probability, n):
    """Build the Section 3.2 reduction from ``Ck`` to a beta-cyclic ``query``.

    ``probability`` and ``n`` are the Ck tuple probability and domain
    size.  Raises :class:`ReproError` when the query is beta-acyclic
    (then no weak beta-cycle exists and the reduction does not apply).
    """
    cycle = query.hypergraph().find_weak_beta_cycle()
    if cycle is None:
        raise ReproError(
            "query is beta-acyclic: no weak beta-cycle, the Ck reduction "
            "does not apply"
        )
    edges, nodes = cycle
    probability = as_fraction(probability)

    new_probs: Dict[str, Fraction] = {}
    for rel in {a.relation for a in query.atoms}:
        new_probs[rel] = probability if rel in edges else Fraction(1)
    new_sizes = {
        v: (n if v in nodes else 1) for v in query.variables
    }
    reduced = ConjunctiveQuery(query.atoms, new_probs, new_sizes)
    return CkReduction(query=reduced, cycle_edges=tuple(edges), cycle_nodes=tuple(nodes))
