"""Clause/CQ duality and inclusion-exclusion (Corollary 3.2 machinery).

The proof of Corollary 3.2 moves between three presentations:

* a **positive clause** is a universally quantified disjunction of
  positive atoms, e.g. ``forall x, y (R(x) | S(x, y))``;
* its **dual CQ** negates the clause: ``Pr(clause) = 1 - Pr'(dual)``
  where the dual CQ uses complemented tuple probabilities ``1 - p``;
* a **disjunction of clauses** (variables renamed apart) is equivalent to
  a single clause over the union of the variables — this is what makes
  inclusion-exclusion over clause subsets close under the clause form.

``cnf_probability`` computes ``Pr(C_1 & ... & C_k)`` by
inclusion-exclusion over unions of clause complements; every term reduces
to a single dual CQ, evaluated by the gamma-acyclic algorithm when
possible and by grounding otherwise.

``conjoin_with_fresh_vocabulary`` implements the final step of the
Corollary: conjoining CQs over *disjoint copies* of the vocabulary makes
their probabilities multiply, packing many queries into one.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Tuple

from ..errors import NotGammaAcyclicError, SelfJoinError
from ..utils import as_fraction
from .bruteforce import cq_probability_bruteforce
from .gamma import gamma_acyclic_probability
from .query import CQAtom, ConjunctiveQuery

__all__ = [
    "PositiveClause",
    "union_clause",
    "dual_query",
    "clause_probability",
    "cnf_probability",
    "conjoin_with_fresh_vocabulary",
]


@dataclass(frozen=True)
class PositiveClause:
    """``forall variables. atom_1 | ... | atom_m`` with positive atoms."""

    atoms: Tuple[CQAtom, ...]

    def variables(self):
        result = []
        for a in self.atoms:
            for v in a.variables:
                if v not in result:
                    result.append(v)
        return tuple(result)

    def rename(self, suffix):
        """A copy with every variable suffixed (for renaming apart)."""
        return PositiveClause(
            tuple(
                CQAtom(a.relation, tuple("{}{}".format(v, suffix) for v in a.variables))
                for a in self.atoms
            )
        )

    def __repr__(self):
        return "forall {}. {}".format(
            ", ".join(self.variables()), " | ".join(repr(a) for a in self.atoms)
        )


def union_clause(clauses):
    """The single clause equivalent to a disjunction of clauses.

    For sentences ``forall xbar phi(xbar)`` and ``forall ybar psi(ybar)``
    with disjoint variables, ``(forall xbar phi) | (forall ybar psi)`` is
    equivalent to ``forall xbar ybar (phi | psi)``: if the merged clause
    held while both disjuncts failed, picking failing witnesses for each
    would contradict it.  Variables are renamed apart by position.
    """
    renamed = [clause.rename("_c{}".format(i)) for i, clause in enumerate(clauses)]
    atoms = tuple(a for clause in renamed for a in clause.atoms)
    return PositiveClause(atoms)


def dual_query(clause, probabilities, domain_sizes):
    """The dual CQ of a positive clause, with complemented probabilities.

    ``Pr(forall xbar. R_1 | ... | R_m) = 1 - Pr(exists xbar. ~R_1 & ... & ~R_m)``
    and the negated atoms form an ordinary CQ once each relation's tuple
    probability ``p`` is replaced by ``1 - p`` ("tuple absent").
    """
    complemented = {r: 1 - as_fraction(p) for r, p in probabilities.items()}
    return ConjunctiveQuery(clause.atoms, complemented, domain_sizes)


def clause_probability(clause, probabilities, domain_sizes):
    """Exact probability of a positive clause via its dual CQ.

    Uses the gamma-acyclic algorithm when the dual qualifies (acyclic and
    self-join free — merged union clauses typically repeat relations) and
    falls back to grounding otherwise.
    """
    dual = dual_query(clause, probabilities, domain_sizes)
    try:
        dual_pr = gamma_acyclic_probability(dual)
    except (NotGammaAcyclicError, SelfJoinError):
        dual_pr = cq_probability_bruteforce(dual)
    return 1 - dual_pr


def cnf_probability(clauses, probabilities, domain_sizes):
    """``Pr(C_1 & ... & C_k)`` by inclusion-exclusion over clause subsets.

    With ``A_i`` the event that clause ``C_i`` fails,
    ``Pr(and C_i) = sum_{s subseteq [k]} (-1)**|s| Pr(and_{i in s} A_i)``
    and ``Pr(and_s A_i) = 1 - Pr(or_s C_i)``, a single-clause probability
    after merging (``2**k - 1`` clause evaluations, as in Corollary 3.2).
    """
    clauses = list(clauses)
    k = len(clauses)
    total = Fraction(0)
    for mask in range(2 ** k):
        subset = [clauses[i] for i in range(k) if mask >> i & 1]
        size = len(subset)
        if size == 0:
            term = Fraction(1)
        else:
            merged = union_clause(subset)
            term = 1 - clause_probability(merged, probabilities, domain_sizes)
        total += (-1) ** size * term
    return total


def conjoin_with_fresh_vocabulary(queries):
    """Pack CQs into one query over disjoint vocabulary copies.

    Returns ``(big_query, factor_probabilities)`` where ``big_query`` is
    the conjunction of the input queries with relation names suffixed by
    the query index, and ``factor_probabilities`` is the list of
    individual probabilities; by independence,
    ``Pr(big_query) = prod(factor_probabilities)`` — the trick in the
    proof of Corollary 3.2 that makes a single CQ as hard as a family.
    """
    atoms = []
    probabilities = {}
    sizes = {}
    factors = []
    for i, q in enumerate(queries):
        for a in q.atoms:
            new_rel = "{}__q{}".format(a.relation, i)
            new_vars = tuple("{}__q{}".format(v, i) for v in a.variables)
            atoms.append(CQAtom(new_rel, new_vars))
            probabilities[new_rel] = q.probabilities[a.relation]
        for v in q.variables:
            sizes["{}__q{}".format(v, i)] = q.domain_sizes[v]
        try:
            factors.append(gamma_acyclic_probability(q))
        except (NotGammaAcyclicError, SelfJoinError):
            factors.append(cq_probability_bruteforce(q))
    big = ConjunctiveQuery(atoms, probabilities, sizes)
    return big, factors
