"""PTIME probability computation for gamma-acyclic CQs (Theorem 3.6).

The algorithm mirrors Fagin's gamma-acyclicity reduction rules, keeping
exact probability bookkeeping at every step (quotes refer to the proof of
Theorem 3.6):

(a) *isolated node* ``x`` in a single atom ``R(x, y, z)``: replace ``R``
    by ``R'(y, z)`` where each tuple holds with probability
    ``1 - (1 - p)**n_x`` (the probability some ``x``-extension exists);
(b) *singleton atom* ``R(x)``: condition on ``k = |R|``;
    ``Pr(Q) = sum_k C(n_x, k) p**k (1-p)**(n_x - k) * p_k`` where ``p_k``
    is the probability of the residual query with ``x`` ranging over
    ``[k]`` — by symmetry only the cardinality matters;
(c) *empty atom* ``R()``: multiply by ``p_R``;
(d) *duplicate atoms* on the same variable set: merge with probability
    ``p_R * p_S``;
(e) *edge-equivalent variables* ``x, y``: merge into one variable with
    domain size ``n_x * n_y``.

The query must be self-join free and its hypergraph gamma-acyclic,
otherwise :class:`~repro.errors.NotGammaAcyclicError` is raised.  All
arithmetic is exact.
"""

from __future__ import annotations

from fractions import Fraction

from ..errors import NotGammaAcyclicError, SelfJoinError
from ..utils import binomial
from .query import ConjunctiveQuery

__all__ = ["gamma_acyclic_probability"]


def gamma_acyclic_probability(query):
    """Exact probability that the gamma-acyclic CQ ``query`` is true."""
    if not isinstance(query, ConjunctiveQuery):
        raise TypeError("expected a ConjunctiveQuery")
    query.require_self_join_free()
    if query.has_repeated_variable():
        raise SelfJoinError(
            "atoms with repeated variables (e.g. R(x, x)) are not supported; "
            "rewrite R(x, x) as a fresh unary relation with the same "
            "tuple probability"
        )

    atoms = frozenset((a.relation, a.variables) for a in query.atoms)
    sizes = dict(query.domain_sizes)
    solver = _GammaSolver(dict(query.probabilities))
    return solver.probability(atoms, sizes)


class _GammaSolver:
    """Recursive evaluator; fresh relation names are created as rules fire."""

    def __init__(self, probabilities):
        self.probabilities = probabilities
        self.memo = {}
        self.fresh = 0

    def _fresh_relation(self, base, probability):
        self.fresh += 1
        name = "{}~{}".format(base, self.fresh)
        self.probabilities[name] = probability
        return name

    def probability(self, atoms, sizes):
        """Pr of the query given atom set and per-variable domain sizes."""
        key = (atoms, tuple(sorted((v, sizes[v]) for v in self._vars(atoms))))
        cached = self.memo.get(key)
        if cached is not None:
            return cached
        result = self._solve(atoms, sizes)
        self.memo[key] = result
        return result

    @staticmethod
    def _vars(atoms):
        result = set()
        for _rel, vs in atoms:
            result |= set(vs)
        return result

    def _solve(self, atoms, sizes):
        atoms = set(atoms)
        multiplier = Fraction(1)

        while True:
            if not atoms:
                return multiplier

            # A variable with an empty domain makes the query false: the
            # existential quantifier has no witness.
            if any(sizes[v] == 0 for v in self._vars(atoms)):
                return Fraction(0)

            # (c) empty atom R(): must be true, probability p_R.
            done = False
            for rel, vs in list(atoms):
                if not vs:
                    multiplier *= self.probabilities[rel]
                    atoms.discard((rel, vs))
                    done = True
            if done:
                continue

            # (d) two atoms on exactly the same variable set: merge.
            by_nodes = {}
            for rel, vs in atoms:
                by_nodes.setdefault(frozenset(vs), []).append((rel, vs))
            merged = False
            for group in by_nodes.values():
                if len(group) > 1:
                    (r1, v1), (r2, v2) = group[0], group[1]
                    p = self.probabilities[r1] * self.probabilities[r2]
                    name = self._fresh_relation(r1, p)
                    atoms.discard((r1, v1))
                    atoms.discard((r2, v2))
                    atoms.add((name, v1))
                    merged = True
                    break
            if merged:
                continue

            # (e) edge-equivalent variables: merge domains.
            occurrence = {}
            for rel, vs in atoms:
                for v in vs:
                    occurrence.setdefault(v, set()).add((rel, vs))
            membership = {}
            for v, occ in occurrence.items():
                membership.setdefault(frozenset(occ), []).append(v)
            merged = False
            for group in membership.values():
                if len(group) > 1:
                    keep, drop = group[0], group[1]
                    new_size = sizes[keep] * sizes[drop]
                    new_atoms = set()
                    for rel, vs in atoms:
                        if drop in vs:
                            vs = tuple(v for v in vs if v != drop)
                        new_atoms.add((rel, vs))
                    atoms = new_atoms
                    sizes = dict(sizes)
                    sizes[keep] = new_size
                    merged = True
                    break
            if merged:
                continue

            # (a) isolated variable in a non-singleton atom: project out.
            projected = False
            for v, occ in occurrence.items():
                if len(occ) == 1:
                    (rel, vs) = next(iter(occ))
                    if len(vs) > 1:
                        p = self.probabilities[rel]
                        p_new = 1 - (1 - p) ** sizes[v]
                        name = self._fresh_relation(rel, p_new)
                        atoms.discard((rel, vs))
                        atoms.add((name, tuple(u for u in vs if u != v)))
                        projected = True
                        break
            if projected:
                continue

            # (b) singleton atom R(x): condition on |R| = k.
            singleton = None
            for rel, vs in atoms:
                if len(vs) == 1:
                    singleton = (rel, vs)
                    break
            if singleton is not None:
                rel, vs = singleton
                x = vs[0]
                p = self.probabilities[rel]
                n_x = sizes[x]
                rest = frozenset(atoms - {singleton})
                if not any(x in a_vs for _r, a_vs in rest):
                    # x occurs nowhere else: Pr(|R| >= 1) factors out.
                    factor = 1 - (1 - p) ** n_x
                    if not rest:
                        return multiplier * factor
                    return multiplier * factor * self.probability(rest, sizes)
                total = Fraction(0)
                for k in range(1, n_x + 1):
                    residual_sizes = dict(sizes)
                    residual_sizes[x] = k
                    p_k = self.probability(rest, residual_sizes)
                    total += binomial(n_x, k) * p ** k * (1 - p) ** (n_x - k) * p_k
                return multiplier * total

            raise NotGammaAcyclicError(
                "no reduction rule applies; the query is not gamma-acyclic "
                "(residual atoms: {})".format(sorted(atoms))
            )
