"""Conjunctive queries: hypergraph acyclicity and lifted probability computation."""

from .query import CQAtom, ConjunctiveQuery
from .hypergraph import Hypergraph
from .gamma import gamma_acyclic_probability
from .bruteforce import cq_probability_bruteforce
from .ck_reduction import CkReduction, reduce_ck_to_query, typed_cycle
from .inclusion_exclusion import (
    PositiveClause,
    clause_probability,
    union_clause,
    cnf_probability,
    dual_query,
    conjoin_with_fresh_vocabulary,
)

__all__ = [
    "CQAtom",
    "ConjunctiveQuery",
    "Hypergraph",
    "gamma_acyclic_probability",
    "cq_probability_bruteforce",
    "CkReduction",
    "reduce_ck_to_query",
    "typed_cycle",
    "PositiveClause",
    "clause_probability",
    "union_clause",
    "cnf_probability",
    "dual_query",
    "conjoin_with_fresh_vocabulary",
]
