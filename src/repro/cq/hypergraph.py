"""Hypergraphs and Fagin's acyclicity hierarchy (Section 3.2, Figure 1).

Fagin [14] defines three increasingly strict notions of acyclicity for
hypergraphs; the paper's Figure 1 places the tractability frontier of
symmetric WFOMC between them:

* **alpha-acyclic** — reducible by the GYO procedure (remove isolated
  nodes; remove edges contained in other edges).  As hard as general CQs
  for symmetric WFOMC (add one atom containing all variables).
* **beta-acyclic** — every subset of the edges is alpha-acyclic;
  equivalently, no *weak beta-cycle*.  Conjectured hard (Ck-hard) in the
  paper when cyclic.
* **gamma-acyclic** — reducible to the empty hypergraph by Fagin's five
  rules (the same rules drive the PTIME counting algorithm of
  Theorem 3.6, implemented in :mod:`repro.cq.gamma`).
"""

from __future__ import annotations

from itertools import combinations

__all__ = ["Hypergraph"]


class Hypergraph:
    """A named hypergraph: ``edges`` maps edge names to frozensets of nodes."""

    def __init__(self, edges):
        self.edges = {name: frozenset(nodes) for name, nodes in edges.items()}

    def nodes(self):
        result = set()
        for nodes in self.edges.values():
            result |= nodes
        return result

    # -- gamma-acyclicity ---------------------------------------------------

    def gamma_reduce(self):
        """Apply Fagin's five reduction rules until none applies.

        Returns the residual edge dict; the hypergraph is gamma-acyclic
        iff the residue is empty.  Rules (named as in Theorem 3.6):

        (a) delete a node that occurs in exactly one edge (if the edge has
            other nodes);
        (b) delete an edge consisting of exactly one node;
        (c) delete an empty edge;
        (d) delete one of two edges with exactly the same nodes;
        (e) merge two nodes that occur in exactly the same edges.
        """
        edges = dict(self.edges)
        changed = True
        while changed and edges:
            changed = False

            # (c) empty edges.
            for name in list(edges):
                if not edges[name]:
                    del edges[name]
                    changed = True
            if changed:
                continue

            # (d) duplicate edges.
            seen = {}
            for name in list(edges):
                key = edges[name]
                if key in seen:
                    del edges[name]
                    changed = True
                else:
                    seen[key] = name
            if changed:
                continue

            # (b) singleton edges.
            for name in list(edges):
                if len(edges[name]) == 1:
                    del edges[name]
                    changed = True
                    break
            if changed:
                continue

            # (a) isolated nodes.
            occurrence = {}
            for name, nodes in edges.items():
                for v in nodes:
                    occurrence.setdefault(v, []).append(name)
            for v, names in occurrence.items():
                if len(names) == 1 and len(edges[names[0]]) > 1:
                    edges[names[0]] = edges[names[0]] - {v}
                    changed = True
                    break
            if changed:
                continue

            # (e) edge-equivalent nodes.
            membership = {}
            for v, names in occurrence.items():
                membership.setdefault(frozenset(names), []).append(v)
            for group in membership.values():
                if len(group) > 1:
                    drop = group[1]
                    edges = {
                        name: (nodes - {drop}) for name, nodes in edges.items()
                    }
                    changed = True
                    break
        return edges

    def is_gamma_acyclic(self):
        return not self.gamma_reduce()

    # -- alpha-acyclicity (GYO) ----------------------------------------------

    def is_alpha_acyclic(self):
        """GYO reduction: True iff the hypergraph reduces to nothing."""
        edges = [set(nodes) for nodes in self.edges.values()]
        changed = True
        while changed and edges:
            changed = False
            # Remove isolated nodes (occur in exactly one edge).
            occurrence = {}
            for i, nodes in enumerate(edges):
                for v in nodes:
                    occurrence.setdefault(v, []).append(i)
            for v, where in occurrence.items():
                if len(where) == 1:
                    edges[where[0]].discard(v)
                    changed = True
            # Remove edges contained in another edge (including empties).
            # When two edges are equal, only one copy may be dropped, so
            # the equality case breaks ties by index.
            kept = []
            for i, nodes in enumerate(edges):
                drop = False
                for j, other in enumerate(edges):
                    if i == j:
                        continue
                    if nodes < other or (nodes == other and i > j):
                        drop = True
                        break
                if drop or not nodes:
                    changed = True
                else:
                    kept.append(nodes)
            edges = kept
        return not edges

    # -- beta-acyclicity ------------------------------------------------------

    def is_beta_acyclic(self):
        """Every nonempty subset of edges is alpha-acyclic (Fagin [14]).

        Exponential in the number of edges, which is fine for queries.
        """
        names = list(self.edges)
        for r in range(1, len(names) + 1):
            for subset in combinations(names, r):
                sub = Hypergraph({name: self.edges[name] for name in subset})
                if not sub.is_alpha_acyclic():
                    return False
        return True

    def find_weak_beta_cycle(self):
        """A weak beta-cycle ``R1 x1 R2 x2 ... xk R1`` if one exists.

        Per Fagin [14] (as used in Section 3.2): a sequence of distinct
        edges ``R1..Rk`` and distinct nodes ``x1..xk`` with ``k >= 3``,
        where ``x_i`` occurs in ``R_i`` and ``R_{i+1}`` but in no other
        edge of the sequence (``R_{k+1} = R_1``).  Returns
        ``(edge_names, node_names)`` or ``None``.  Used by the
        Ck-hardness reduction discussion of Section 3.2.
        """
        names = list(self.edges)

        def valid_cycle(edge_path, node_path):
            """Re-validate every node against the *complete* edge cycle:
            node i must occur, among the cycle's edges, exactly in its two
            adjacent edges (edge i and edge i+1 mod k)."""
            k = len(edge_path)
            for i, v in enumerate(node_path):
                adjacent = {edge_path[i], edge_path[(i + 1) % k]}
                for name in edge_path:
                    if name in adjacent:
                        continue
                    if v in self.edges[name]:
                        return False
            return True

        def extend(edge_path, node_path):
            k = len(edge_path)
            last = edge_path[-1]
            for name in names:
                if name in edge_path:
                    # Closing the cycle back to the start.
                    if name != edge_path[0] or k < 3:
                        continue
                    for v in self.edges[last] & self.edges[name]:
                        if v in node_path:
                            continue
                        if valid_cycle(edge_path, node_path + [v]):
                            return edge_path, node_path + [v]
                    continue
                for v in self.edges[last] & self.edges[name]:
                    if v in node_path:
                        continue
                    result = extend(edge_path + [name], node_path + [v])
                    if result is not None:
                        return result
            return None

        for start in names:
            result = extend([start], [])
            if result is not None:
                return result
        return None

    def __repr__(self):
        parts = ", ".join(
            "{}={{{}}}".format(name, ", ".join(sorted(nodes)))
            for name, nodes in self.edges.items()
        )
        return "Hypergraph({})".format(parts)
