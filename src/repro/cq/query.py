"""Conjunctive queries with per-variable domains (Section 3).

A conjunctive query is an existentially quantified conjunction of positive
relational atoms, e.g. ``exists x, y. R(x) & S(x, y)``.  Following the
paper's generalized semantics (proof of Theorem 3.6), every variable
``x_i`` may range over its own domain ``[n_i]``; the standard semantics is
the special case where all sizes are equal.

Queries here are *Boolean* (all variables quantified) and are evaluated
over tuple-independent probabilistic structures: each ground tuple of
relation ``R`` is present independently with probability ``p_R``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from ..errors import SelfJoinError
from ..logic.syntax import Atom, Var, conj, exists
from ..utils import as_fraction, check_domain_size
from .hypergraph import Hypergraph

__all__ = ["CQAtom", "ConjunctiveQuery"]


@dataclass(frozen=True)
class CQAtom:
    """One atom of a CQ: a relation name applied to variable names."""

    relation: str
    variables: Tuple[str, ...]

    def __repr__(self):
        return "{}({})".format(self.relation, ", ".join(self.variables))


class ConjunctiveQuery:
    """An existentially quantified conjunction of positive atoms.

    Parameters
    ----------
    atoms:
        Iterable of :class:`CQAtom` (or ``(relation, vars)`` pairs).
    probabilities:
        Mapping relation name -> tuple probability (exact rationals).
    domain_sizes:
        Either an int (all variables range over ``[n]``) or a mapping
        variable name -> size, per the generalized semantics.
    """

    def __init__(self, atoms, probabilities, domain_sizes):
        self.atoms = tuple(
            a if isinstance(a, CQAtom) else CQAtom(a[0], tuple(a[1])) for a in atoms
        )
        if not self.atoms:
            raise ValueError("a conjunctive query needs at least one atom")
        self.probabilities = {r: as_fraction(p) for r, p in probabilities.items()}

        names = [a.relation for a in self.atoms]
        missing = set(names) - set(self.probabilities)
        if missing:
            raise ValueError("missing probabilities for relations: {}".format(sorted(missing)))

        variables = []
        for a in self.atoms:
            for v in a.variables:
                if v not in variables:
                    variables.append(v)
        self.variables = tuple(variables)

        if isinstance(domain_sizes, int):
            self.domain_sizes: Dict[str, int] = {v: domain_sizes for v in self.variables}
        else:
            self.domain_sizes = dict(domain_sizes)
        for v in self.variables:
            if v not in self.domain_sizes:
                raise ValueError("no domain size for variable {}".format(v))
            check_domain_size(self.domain_sizes[v])

    def has_self_join(self):
        """True when some relation symbol occurs in two atoms."""
        names = [a.relation for a in self.atoms]
        return len(names) != len(set(names))

    def require_self_join_free(self):
        if self.has_self_join():
            raise SelfJoinError("query has a self-join: {}".format(self))

    def has_repeated_variable(self):
        """True when some atom repeats a variable (e.g. ``R(x, x)``)."""
        return any(len(a.variables) != len(set(a.variables)) for a in self.atoms)

    def hypergraph(self):
        """The associated hypergraph: variables are nodes, atoms are edges."""
        return Hypergraph(
            {a.relation: frozenset(a.variables) for a in self.atoms}
        )

    def is_gamma_acyclic(self):
        return self.hypergraph().is_gamma_acyclic()

    def is_alpha_acyclic(self):
        return self.hypergraph().is_alpha_acyclic()

    def is_beta_acyclic(self):
        return self.hypergraph().is_beta_acyclic()

    def to_formula(self):
        """The query as an FO sentence (requires a uniform domain size)."""
        body = conj(*(Atom(a.relation, tuple(Var(v) for v in a.variables)) for a in self.atoms))
        return exists([Var(v) for v in self.variables], body)

    def __repr__(self):
        return "exists {}. {}".format(
            ", ".join(self.variables), " & ".join(repr(a) for a in self.atoms)
        )
