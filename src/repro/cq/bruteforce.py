"""Ground-truth CQ probability by grounding and exact model counting.

Grounds the existential conjunction over the per-variable domains into a
propositional DNF over ground-tuple variables, then computes its
probability with the exact weighted model counter.  Exponential in the
number of ground tuples; used to validate the gamma-acyclic algorithm.
"""

from __future__ import annotations

import itertools

from ..propositional.counter import wmc_formula
from ..propositional.formula import pand, por, pvar
from ..weights import from_probability

__all__ = ["cq_probability_bruteforce"]


def cq_probability_bruteforce(query):
    """Exact probability of a CQ by grounding (any CQ, small domains only)."""
    variables = query.variables
    domains = [range(1, query.domain_sizes[v] + 1) for v in variables]

    disjuncts = []
    for values in itertools.product(*domains):
        assignment = dict(zip(variables, values))
        conjuncts = [
            pvar((a.relation, tuple(assignment[v] for v in a.variables)))
            for a in query.atoms
        ]
        disjuncts.append(pand(*conjuncts))
    grounded = por(*disjuncts)

    def weight_of(label):
        relation, _args = label
        return from_probability(query.probabilities[relation])

    # Tuples not mentioned in the grounding have mass p + (1 - p) = 1,
    # so the universe can be restricted to the mentioned labels.
    return wmc_formula(grounded, weight_of)
