"""Propositional formulas over arbitrary hashable variable labels.

The grounding of an FO sentence (its *lineage*, Section 2) is a
propositional formula whose variables are ground atoms, represented here
as labels like ``("R", (1, 2))``.  The smart constructors fold constants
and flatten nesting, which keeps lineages compact.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Tuple

__all__ = [
    "PFormula", "PTrue", "PFalse", "PVar", "PNot", "PAnd", "POr",
    "pvar", "pnot", "pand", "por", "prop_vars", "peval",
]


class PFormula:
    """Base class for propositional formula nodes."""

    __slots__ = ()

    def __and__(self, other):
        return pand(self, other)

    def __or__(self, other):
        return por(self, other)

    def __invert__(self):
        return pnot(self)


@dataclass(frozen=True, repr=False)
class PTrue(PFormula):
    def __repr__(self):
        return "T"


@dataclass(frozen=True, repr=False)
class PFalse(PFormula):
    def __repr__(self):
        return "F"


@dataclass(frozen=True, repr=False)
class PVar(PFormula):
    """A propositional variable; ``label`` is any hashable value."""

    label: Any

    def __repr__(self):
        return str(self.label)


@dataclass(frozen=True, repr=False)
class PNot(PFormula):
    body: PFormula

    def __repr__(self):
        return "!{}".format(_paren(self.body))


@dataclass(frozen=True, repr=False)
class PAnd(PFormula):
    parts: Tuple[PFormula, ...]

    def __repr__(self):
        return " & ".join(_paren(p) for p in self.parts)


@dataclass(frozen=True, repr=False)
class POr(PFormula):
    parts: Tuple[PFormula, ...]

    def __repr__(self):
        return " | ".join(_paren(p) for p in self.parts)


def _paren(f):
    if isinstance(f, (PVar, PTrue, PFalse, PNot)):
        return repr(f)
    return "({})".format(repr(f))


_TRUE = PTrue()
_FALSE = PFalse()


def pvar(label):
    """A propositional variable with the given label."""
    return PVar(label)


def pnot(f):
    if isinstance(f, PTrue):
        return _FALSE
    if isinstance(f, PFalse):
        return _TRUE
    if isinstance(f, PNot):
        return f.body
    return PNot(f)


def pand(*parts):
    flat = []
    seen = set()
    for p in parts:
        if isinstance(p, PTrue):
            continue
        if isinstance(p, PFalse):
            return _FALSE
        children = p.parts if isinstance(p, PAnd) else (p,)
        for child in children:
            # Conjunction is idempotent; dropping repeats keeps the
            # lineages of symmetric sentences compact.
            if child not in seen:
                seen.add(child)
                flat.append(child)
    if not flat:
        return _TRUE
    if len(flat) == 1:
        return flat[0]
    return PAnd(tuple(flat))


def por(*parts):
    flat = []
    seen = set()
    for p in parts:
        if isinstance(p, PFalse):
            continue
        if isinstance(p, PTrue):
            return _TRUE
        children = p.parts if isinstance(p, POr) else (p,)
        for child in children:
            if child not in seen:
                seen.add(child)
                flat.append(child)
    if not flat:
        return _FALSE
    if len(flat) == 1:
        return flat[0]
    return POr(tuple(flat))


def prop_vars(f):
    """The set of variable labels occurring in ``f``."""
    result = set()
    stack = [f]
    while stack:
        g = stack.pop()
        if isinstance(g, PVar):
            result.add(g.label)
        elif isinstance(g, PNot):
            stack.append(g.body)
        elif isinstance(g, (PAnd, POr)):
            stack.extend(g.parts)
    return result


def peval(f, assignment):
    """Evaluate ``f`` under ``assignment`` (a dict of label -> bool)."""
    if isinstance(f, PTrue):
        return True
    if isinstance(f, PFalse):
        return False
    if isinstance(f, PVar):
        return bool(assignment[f.label])
    if isinstance(f, PNot):
        return not peval(f.body, assignment)
    if isinstance(f, PAnd):
        return all(peval(p, assignment) for p in f.parts)
    if isinstance(f, POr):
        return any(peval(p, assignment) for p in f.parts)
    raise TypeError("not a propositional formula: {!r}".format(f))
