"""Propositional substrate: formulas, CNF conversion, exact weighted model counting."""

from .formula import PTrue, PFalse, PVar, PNot, PAnd, POr, pvar, pnot, pand, por, prop_vars
from .cnf import CNF, to_cnf
from .counter import (
    CountingEngine,
    EngineStats,
    engine_stats,
    reset_engine,
    shutdown_worker_pool,
    wmc_cnf,
    wmc_formula,
    satisfiable,
    model_count,
)
from .bruteforce import wmc_enumerate, count_models_enumerate

__all__ = [
    "PTrue", "PFalse", "PVar", "PNot", "PAnd", "POr",
    "pvar", "pnot", "pand", "por", "prop_vars",
    "CNF", "to_cnf",
    "CountingEngine", "EngineStats", "engine_stats", "reset_engine",
    "shutdown_worker_pool",
    "wmc_cnf", "wmc_formula", "satisfiable", "model_count",
    "wmc_enumerate", "count_models_enumerate",
]
