"""Exact weighted model counting: a conflict-driven, component-caching #DPLL.

This is the propositional engine behind every grounded computation in the
library (Section 2 reduces WFOMC to WMC of the lineage).  The counter is a
sharpSAT/Cachet-style conflict-driven counting search:

* **watched-literal unit propagation**: every clause watches two of its
  literals through per-literal watch lists, so asserting a literal only
  visits the clauses watching its negation — never the whole clause list.
  Clause state is lazy: satisfied clauses are discovered at residual
  extraction time, not eagerly during propagation;
* **conflict-driven clause learning** (the default, ``learn=True``): each
  component is counted by an iterative search over one persistent trail
  (decision levels, antecedent clause per implied literal).  On conflict
  the engine derives a 1-UIP learned clause from the implication graph,
  adds it to a *side* database consulted during propagation only — learned
  clauses never enter residual extraction, component splitting, or cache
  keys, the standard sound scheme for #SAT — and backjumps to the
  asserting level, re-propagating the asserting literal there and
  recomputing the abandoned levels through the component cache.  The
  database is bounded: when it exceeds ``max_learned`` clauses, the
  highest-LBD half is dropped (glue and reason-locked clauses are kept);
* **EVSIDS branching** (``branching="evsids"``, the default): decision
  variables maximize an exponentially-decayed activity score bumped on
  every variable resolved during conflict analysis, warm-started with
  occurrence counts.  ``branching="moms"`` keeps the classic
  most-occurrences-in-minimum-size-clauses heuristic for ablation, and
  ``learn=False`` restores the learning-free engine;
* one **fused residual pass** per search node: extracting the residual
  formula, splitting it into variable-connected components (union-find),
  and collecting the surviving variables all happen in a single scan.
  When a search keeps producing residuals that neither split nor hit the
  cache, it adaptively switches to a cheaper split-free extraction
  (probing the full pass periodically), so branching-bound instances do
  not pay for canonicalization that never pays off;
* *canonical* component caching: each residual component is renamed to a
  first-occurrence canonical variable numbering before the cache lookup,
  so components that are structurally identical up to that renaming —
  which symmetric lineages of different domain elements produce in
  abundance — share one cache entry.  (This is renaming, not graph
  canonization: isomorphic components whose clauses or literals arrive
  in incompatible orders hash to different entries.)  The cache key
  includes the weight pair of every component variable, which makes the
  cache safe to share across calls with different weight functions;
* **incremental cache keys**: the canonical renaming of a component is
  memoized on the frozen component itself (a weight-independent
  structure), so repeated lookups of the same residual skip the
  re-normalization entirely and only assemble the weight row;
* an opt-in **parallel mode** (``workers=N``): top-level components are
  independent by construction, so they are farmed to a persistent process
  pool.  The parent cache acts as a read-through front (components already
  cached are never dispatched; worker results are merged back under their
  canonical keys), each worker learns clauses locally, and exact
  arithmetic makes the merged result bit-identical to a serial run;
* an opt-in **persistent cache** (``persist=True`` on the wrappers): the
  component cache reads through to the content-addressed on-disk store
  of :mod:`repro.cache`, shared across processes (and by the parallel
  workers), so repeated sweeps warm-start from disk.  Stored values are
  exact, keeping persisted runs bit-identical to cold ones;
* **phase saving** (``phase_saving=True``, the default): variables
  unassigned by a backjump remember their last polarity and later
  decisions branch into it first (w-first order is the fallback) — in an
  exhaustive counting search this only reorders the branches, steering
  where conflicts and learned clauses arise, never the counted value;
* opt-in **Luby restarts** (``restarts=N``): after ``N * luby(i)``
  conflicts the search abandons every decision level and re-enters the
  component from the root, keeping learned clauses and level-0 units.
  A restart is the same move as a backjump to the root — abandoned
  partial sums are recomputed through the component cache, so no branch
  is skipped and the counted value is bit-identical with restarts on or
  off;
* a **trace mode** (:func:`trace_cnf_clauses`): the same search replayed
  symbolically, recording decompositions as arithmetic-circuit nodes for
  the knowledge-compilation subsystem (:mod:`repro.compile`) instead of
  multiplying weights.  Component conjunctions become x-nodes, decision
  splits smoothed +-nodes, literals weight leaves; canonical components
  compile once into templates shared across isomorphic occurrences.

Soundness of learning under component caching deserves a note.  A learned
clause is entailed by the component a search was started on, so using it
for propagation *within that search* is sound as long as every multiplied
context factor is nonzero: the engine never descends under a zero weight
or a zero child count, which guarantees that every sibling component in
the context is satisfiable, and therefore that an implication derived
from a learned clause restricts the current component alone.  Learned
implications of variables outside the current component are blocked
(cross-component implications are the classic unsoundness of naive
learning in #SAT), and learned clauses never leak into child searches.

Weights may be negative (Skolemization needs ``(1, -1)``), so no
optimization may assume counts are monotone or positive; in particular the
pure-literal rule is *not* used for counting (it is used for plain SAT).
Integer weights are kept as machine integers internally and only converted
to :class:`~fractions.Fraction` at the API boundary.

The count is defined over the variables that occur in the clauses; callers
account for never-occurring variables.  Variables that vanish from the
residual formula without being assigned contribute their full mass
``w + wbar``.
"""

from __future__ import annotations

import logging
import os
import sys
import threading
import time
from fractions import Fraction

from ..errors import BudgetExceededError
from ..obs import get_logger, slog, span
from ..options import SolverOptions
from ..resilience.faults import maybe_fire
from ..utils import LRUCache
from ..weights import WeightPair
from .cnf import to_cnf
from .formula import prop_vars

__all__ = [
    "CountingEngine",
    "EngineStats",
    "engine_stats",
    "reset_engine",
    "shutdown_worker_pool",
    "trace_cnf_clauses",
    "cnf_for_formula",
    "wmc_cnf",
    "wmc_formula",
    "model_count",
    "satisfiable",
]

#: Ceiling for the temporary recursion-limit raise in
#: :meth:`CountingEngine.run`; ~50k Python frames fit comfortably in the
#: default 8 MB C stack, far past any instance the engine can finish.
MAX_RECURSION_LIMIT = 50_000

#: Upper bound on shared component-cache entries; the cache is cleared
#: wholesale when it fills (component values are cheap to recompute
#: relative to unbounded memory growth on adversarial workloads).
MAX_CACHE_ENTRIES = 1 << 18

#: Upper bound on memoized canonical-key entries.  Keys are
#: weight-independent renamings, small relative to the values cache.
MAX_KEY_CACHE_ENTRIES = 1 << 16

#: Default bound on the learned-clause database of one component search;
#: exceeding it triggers an LBD-based reduction that drops the worst half.
DEFAULT_MAX_LEARNED = 4096

#: Phase saving (remember the polarity a backjump undid, branch with it
#: first) is on by default; ``phase_saving=False`` restores the fixed
#: w-first branch order everywhere.
DEFAULT_PHASE_SAVING = True

#: Learned clauses with an LBD this small ("glue" clauses) survive every
#: database reduction.
GLUE_LBD = 2


def _luby(i):
    """The ``i``-th term (1-based) of the Luby sequence 1,1,2,1,1,2,4,...

    The standard universally-optimal restart schedule: the restart
    after ``i`` fires once ``unit * luby(i)`` conflicts accumulate.
    """
    k = i.bit_length()
    if i + 1 == 1 << k:
        return 1 << (k - 1)
    return _luby(i - (1 << (k - 1)) + 1)

#: EVSIDS: activity increments grow by 1/0.95 per conflict; activities are
#: rescaled when the increment overflows this bound.
_VSIDS_INV_DECAY = 1.0 / 0.95
_VSIDS_RESCALE = 1e100

#: Adaptive residual extraction: after this many consecutive search nodes
#: whose full extraction neither split the residual nor hit the component
#: cache, the search switches to the cheaper split-free extraction ...
_SPLIT_PATIENCE = 8
#: ... probing the full pass again every this many node evaluations.
_SPLIT_PROBE = 32

#: The EVSIDS activity term joins the branching score only once the
#: *current* component search has seen at least ``_ACTIVITY_MIN_CONFLICTS``
#: conflicts *and* more than one conflict per ``_ACTIVITY_RATE_GATE``
#: decisions (a latch: once crossed, activity branching stays on for the
#: rest of that search).  Below the threshold the order is exactly MOMS:
#: on conflict-light (model-dense) searches, activity — whether carried
#: over from earlier searches of the same engine or accrued from a few
#: stray conflicts — is pure noise that used to cost the random-3-CNF
#: suite its v2 parity, while conflict-rich searches (the refutation-heavy
#: Theta_1 groundings) cross the threshold within a handful of decisions.
_ACTIVITY_RATE_GATE = 16
_ACTIVITY_MIN_CONFLICTS = 8

_BRANCHING_CHOICES = ("evsids", "moms")


class EngineStats:
    """Counters describing the work done by the engine.

    ``propagations`` counts assigned literals, ``watch_moves`` counts
    watch-list relocations during propagation, ``key_hits``/``key_misses``
    describe the canonical-key memo, ``cache_hits``/``cache_misses`` the
    component value cache, and ``parallel_tasks`` the number of top-level
    components dispatched to worker processes.  The conflict-driven search
    adds ``conflicts`` (falsified clauses found during propagation),
    ``learned_clauses`` (1-UIP clauses derived from them),
    ``backjumps``/``backjump_levels`` (non-chronological returns and the
    total number of decision levels they unwound), ``db_reductions``
    (LBD-based learned-database halvings), ``phase_hits`` (decisions
    whose first branch polarity came from a saved phase), and
    ``restarts`` (Luby restarts taken when the ``restarts=`` knob is
    on).  The
    fault-tolerant parallel path adds ``worker_retries`` (crashed pools
    retried once on a fresh pool) and ``degraded_to_serial`` (component
    tasks served in-process after the retry also failed); both paths
    return bit-identical counts.
    """

    __slots__ = ("calls", "decisions", "propagations", "watch_moves",
                 "component_splits", "cache_hits", "cache_misses",
                 "key_hits", "key_misses", "parallel_tasks",
                 "conflicts", "learned_clauses", "backjumps",
                 "backjump_levels", "db_reductions", "phase_hits",
                 "restarts", "worker_retries", "degraded_to_serial")

    def __init__(self):
        self.reset()

    def reset(self):
        self.calls = 0
        self.decisions = 0
        self.propagations = 0
        self.watch_moves = 0
        self.component_splits = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.key_hits = 0
        self.key_misses = 0
        self.parallel_tasks = 0
        self.conflicts = 0
        self.learned_clauses = 0
        self.backjumps = 0
        self.backjump_levels = 0
        self.db_reductions = 0
        self.phase_hits = 0
        self.restarts = 0
        self.worker_retries = 0
        self.degraded_to_serial = 0

    def as_dict(self):
        return {name: getattr(self, name) for name in self.__slots__}

    def hit_rates(self):
        """Per-cache hit rates (``None`` when a cache saw no lookups)."""
        return {
            "cache_hit_rate": _hit_rate(self.cache_hits, self.cache_misses),
            "key_hit_rate": _hit_rate(self.key_hits, self.key_misses),
        }

    def merge_worker(self, counters):
        """Fold a worker task's counter dict into these statistics, so
        parallel runs report the work actually done (``calls`` excluded:
        a worker task is not a separate engine call)."""
        for name, value in counters.items():
            if name != "calls":
                setattr(self, name, getattr(self, name) + value)

    def __repr__(self):
        body = ", ".join("{}={}".format(k, v) for k, v in self.as_dict().items())
        return "EngineStats({})".format(body)


def _hit_rate(hits, misses):
    lookups = hits + misses
    return round(hits / lookups, 4) if lookups else None


#: Caches and stats shared by all engines by default.  The value cache is
#: safe to share because its keys embed the weight pair of every variable
#: in the component; the key cache stores weight-*independent* canonical
#: renamings, so it is safe to share unconditionally.
_SHARED_CACHE = {}
_SHARED_KEY_CACHE = {}
_SHARED_STATS = EngineStats()

#: Memoized CNF conversions for :func:`wmc_formula`.  Lineages are
#: interned by the grounding cache, so repeated counts of the same ground
#: formula (weight sweeps, probability numerators, benchmarks) skip
#: ``to_cnf`` entirely.
_CNF_CACHE = LRUCache(maxsize=64)


#: Serializes :func:`engine_stats` against :func:`reset_engine`: a
#: snapshot assembled while a concurrent reset zeroes the counters one
#: by one would report a torn view (some counters pre-reset, some
#: post), and ``dict(_TRACE_COUNTERS)`` mid-``clear`` can raise.  The
#: lock makes both operations atomic with respect to each other; the
#: engine's hot path never touches it.
_STATS_LOCK = threading.Lock()

#: Structured-log channel for engine degradation events (worker crashes,
#: serial fallbacks).  Silent unless the host configures logging.
_LOG = get_logger("engine")


def engine_stats():
    """Shared engine statistics plus cache sizes and per-cache hit rates.

    Returns a fresh dict (callers may mutate it freely); the reads are
    taken under one lock shared with :func:`reset_engine`, so a
    snapshot is never torn by a concurrent reset.
    """
    with _STATS_LOCK:
        stats = _SHARED_STATS.as_dict()
        stats["cache_entries"] = len(_SHARED_CACHE)
        stats["key_entries"] = len(_SHARED_KEY_CACHE)
        stats["cnf_cache"] = _CNF_CACHE.stats()
        stats["trace_templates"] = len(_TRACE_TEMPLATES)
        stats.update(_TRACE_COUNTERS)
        stats.update(_SHARED_STATS.hit_rates())
    return stats


def reset_engine():
    """Clear the shared caches and zero the shared statistics."""
    with _STATS_LOCK:
        _SHARED_CACHE.clear()
        _SHARED_KEY_CACHE.clear()
        _CNF_CACHE.clear()
        _TRACE_TEMPLATES.clear()
        for name in _TRACE_COUNTERS:
            _TRACE_COUNTERS[name] = 0
        _SHARED_STATS.reset()


def _exact(value):
    """Keep integer-valued weights as machine ints for fast arithmetic."""
    if isinstance(value, int):
        return value
    if isinstance(value, Fraction):
        return value.numerator if value.denominator == 1 else value
    frac = Fraction(value)
    return frac.numerator if frac.denominator == 1 else frac


# -- watched-literal propagation core ---------------------------------------
#
# The propagation state of one search node is four plain containers kept in
# locals for speed:
#
#   clause_lits  list of clause tuples (>= 2 distinct literals each)
#   watches      dict literal -> list of clause indices watching it
#   watch_pair   list of 2-element lists: the literals clause ci watches
#   assign       dict var -> bool (the trail records insertion order)
#
# Watch lists tolerate stale entries (a clause that moved a watch away is
# lazily dropped the next time the old list is scanned), which lets the two
# branch polarities share one watch structure without undo bookkeeping: the
# watched-literal invariant only requires watched literals to be non-false,
# and between polarities the assignment is reset to empty.


def _propagate(clause_lits, watches, watch_pair, assign, trail, queue, stats):
    """Propagate ``queue`` to fixpoint.  Returns ``False`` on conflict.

    Every assignment visits only the watchers of the falsified literal;
    no clause list is ever rescanned.
    """
    propagations = 0
    moves = 0
    qi = 0
    while qi < len(queue):
        lit = queue[qi]
        qi += 1
        if lit > 0:
            var, want = lit, True
        else:
            var, want = -lit, False
        current = assign.get(var)
        if current is not None:
            if current is not want:
                stats.propagations += propagations
                stats.watch_moves += moves
                return False
            continue
        assign[var] = want
        trail.append(var)
        propagations += 1
        false_lit = -lit
        watchlist = watches.get(false_lit)
        if not watchlist:
            continue
        keep = []
        conflict = False
        for idx, ci in enumerate(watchlist):
            pair = watch_pair[ci]
            first, second = pair
            if first == false_lit:
                other = second
            elif second == false_lit:
                other = first
            else:
                continue  # stale entry: the clause moved this watch away
            if other > 0:
                other_var, other_want = other, True
            else:
                other_var, other_want = -other, False
            other_value = assign.get(other_var)
            if other_value is other_want:
                keep.append(ci)  # clause satisfied; leave the watch put
                continue
            moved = False
            for l in clause_lits[ci]:
                if l == other or l == false_lit:
                    continue
                v = l if l > 0 else -l
                value = assign.get(v)
                if value is None or value is (l > 0):
                    pair[0] = other
                    pair[1] = l
                    target = watches.get(l)
                    if target is None:
                        watches[l] = [ci]
                    else:
                        target.append(ci)
                    moved = True
                    moves += 1
                    break
            if moved:
                continue
            keep.append(ci)
            if other_value is None:
                queue.append(other)  # unit: the other watch is forced
            else:
                conflict = True  # other watch false, no replacement
                break
        if conflict:
            # Preserve the unprocessed tail so the watch lists stay
            # consistent for the sibling polarity (ci itself is in keep).
            watches[false_lit] = keep + watchlist[idx + 1:]
            stats.propagations += propagations
            stats.watch_moves += moves
            return False
        watches[false_lit] = keep
    stats.propagations += propagations
    stats.watch_moves += moves
    return True


def _find(parent, x):
    root = x
    while parent[root] != root:
        root = parent[root]
    while parent[x] != root:
        parent[x], x = root, parent[x]
    return root


def _residual_components(clause_lits, assign):
    """One fused pass: extract the residual, split it into components.

    Returns ``(components, residual_vars)`` where ``components`` is a list
    of tuples of residual clause tuples and ``residual_vars`` is a set-like
    view of the unassigned variables still mentioned (the union-find parent
    map, whose keys are exactly those variables).

    After a conflict-free propagation every unsatisfied clause has at
    least two unassigned literals, so no residual clause is empty or unit.
    """
    parent = {}
    residual = []
    assign_get = assign.get
    for c in clause_lits:
        keep = None
        satisfied = False
        for i, l in enumerate(c):
            value = assign_get(l if l > 0 else -l)
            if value is None:
                if keep is not None:
                    keep.append(l)
            elif value is (l > 0):
                satisfied = True
                break
            elif keep is None:
                keep = list(c[:i])
        if satisfied:
            continue
        clause = c if keep is None else tuple(keep)
        l0 = clause[0]
        first = l0 if l0 > 0 else -l0
        if first not in parent:
            parent[first] = first
        for l in clause[1:]:
            v = l if l > 0 else -l
            if v not in parent:
                parent[v] = v
                parent[_find(parent, first)] = v
                continue
            ra, rb = _find(parent, first), _find(parent, v)
            if ra != rb:
                parent[ra] = rb
        residual.append(clause)

    if not residual:
        return [], parent
    groups = {}
    for clause in residual:
        l0 = clause[0]
        root = _find(parent, l0 if l0 > 0 else -l0)
        group = groups.get(root)
        if group is None:
            groups[root] = [clause]
        else:
            group.append(clause)
    return [tuple(g) for g in groups.values()], parent


def _residual_light(clause_lits, assign):
    """Split-free residual extraction for the adaptive fast path.

    Like :func:`_residual_components` but skips the union-find and the
    per-component grouping: returns ``(residual clause tuple, mentioned
    variable set)``.  Used when a search has stopped producing splits or
    cache hits, where the component machinery is pure overhead.
    """
    residual = []
    mentioned = set()
    mentioned_add = mentioned.add
    assign_get = assign.get
    for c in clause_lits:
        keep = None
        satisfied = False
        for i, l in enumerate(c):
            value = assign_get(l if l > 0 else -l)
            if value is None:
                if keep is not None:
                    keep.append(l)
            elif value is (l > 0):
                satisfied = True
                break
            elif keep is None:
                keep = list(c[:i])
        if satisfied:
            continue
        clause = c if keep is None else tuple(keep)
        residual.append(clause)
        for l in clause:
            mentioned_add(l if l > 0 else -l)
    return tuple(residual), mentioned


def _clause_scores(component):
    """Per-variable occurrence counts: overall and in minimum-size clauses
    (the two MOMS signals, also the dynamic term of the VSADS scorer)."""
    occurrences = {}
    occurrences_get = occurrences.get
    short_scores = {}
    short_scores_get = short_scores.get
    min_len = min(len(c) for c in component)
    for c in component:
        short = len(c) == min_len
        for lit in c:
            v = lit if lit > 0 else -lit
            occurrences[v] = occurrences_get(v, 0) + 1
            if short:
                short_scores[v] = short_scores_get(v, 0) + 1
    return occurrences, short_scores


def _moms_var(component):
    """The MOMS decision variable of a component: most occurrences in
    minimum-size clauses, occurrences overall as the tie-break."""
    occurrences, short_scores = _clause_scores(component)
    return max(short_scores,
               key=lambda v: (short_scores[v], occurrences[v], -v))


# -- conflict-driven search core ---------------------------------------------
#
# The CDCL search keeps one persistent trail per component search:
#
#   assign   var -> bool            vlevel  var -> decision level
#   reason   var -> clause index (None for decisions and level-0 units)
#   trail    assignment order (vars)
#
# ``clauses`` holds the component's clauses followed by learned clauses
# (indices >= n_orig).  Learned clauses participate in propagation only;
# implications of variables outside ``allowed`` (the current component of
# the counting recursion) are blocked, which is what keeps learning sound
# under component caching.


def _propagate_trail(clauses, watches, watch_pair, assign, vlevel, reason,
                     trail, queue, level, allowed, n_orig, stats):
    """Propagate ``queue`` (literal, antecedent) pairs to fixpoint.

    Records the decision level and antecedent clause of every assignment,
    so a conflict can be analyzed.  Returns the index of a falsified
    clause, or ``-1`` when propagation completes without conflict.
    """
    propagations = 0
    moves = 0
    qi = 0
    while qi < len(queue):
        lit, why = queue[qi]
        qi += 1
        if lit > 0:
            var, want = lit, True
        else:
            var, want = -lit, False
        current = assign.get(var)
        if current is not None:
            if current is not want:
                # ``why`` forced ``lit`` while ``var`` holds the opposite
                # value, so ``why`` is falsified (decisions and asserting
                # literals always target unassigned variables).
                stats.propagations += propagations
                stats.watch_moves += moves
                return why
            continue
        assign[var] = want
        vlevel[var] = level
        reason[var] = why
        trail.append(var)
        propagations += 1
        false_lit = -lit
        watchlist = watches.get(false_lit)
        if not watchlist:
            continue
        keep = []
        conflict = -1
        for idx, ci in enumerate(watchlist):
            pair = watch_pair[ci]
            first, second = pair
            if first == false_lit:
                other = second
            elif second == false_lit:
                other = first
            else:
                continue  # stale entry: the clause moved this watch away
            if other > 0:
                other_var, other_want = other, True
            else:
                other_var, other_want = -other, False
            other_value = assign.get(other_var)
            if other_value is other_want:
                keep.append(ci)  # clause satisfied; leave the watch put
                continue
            moved = False
            for l in clauses[ci]:
                if l == other or l == false_lit:
                    continue
                v = l if l > 0 else -l
                value = assign.get(v)
                if value is None or value is (l > 0):
                    pair[0] = other
                    pair[1] = l
                    target = watches.get(l)
                    if target is None:
                        watches[l] = [ci]
                    else:
                        target.append(ci)
                    moved = True
                    moves += 1
                    break
            if moved:
                continue
            keep.append(ci)
            if other_value is None:
                if ci >= n_orig and other_var not in allowed:
                    # A learned clause implying a variable outside the
                    # current component: blocked (see module docstring).
                    continue
                queue.append((other, ci))
            else:
                conflict = ci  # other watch false, no replacement
                break
        if conflict >= 0:
            watches[false_lit] = keep + watchlist[idx + 1:]
            stats.propagations += propagations
            stats.watch_moves += moves
            return conflict
        watches[false_lit] = keep
    stats.propagations += propagations
    stats.watch_moves += moves
    return -1


def _analyze_conflict(clauses, conflict, assign, vlevel, reason, trail, level):
    """Derive the 1-UIP learned clause from a falsified clause.

    Resolves the conflict clause against the antecedents of its
    current-level literals, walking the trail backwards, until exactly one
    literal of decision level ``level`` remains — the first unique
    implication point.  Level-0 literals (units entailed by the component)
    are dropped.

    Returns ``(learned, assert_level, lbd, seen)``: the learned clause as
    a literal tuple whose *first* literal is the asserting (negated UIP)
    literal, the backjump level (the deepest level among the remaining
    literals, 0 for a unit), the literal block distance (number of
    distinct decision levels in the clause), and the set of variables
    resolved along the way (for activity bumping).
    """
    seen = set()
    seen_add = seen.add
    lower = []  # literals assigned below the conflict level
    counter = 0
    for l in clauses[conflict]:
        v = l if l > 0 else -l
        lv = vlevel[v]
        if lv == 0 or v in seen:
            continue
        seen_add(v)
        if lv == level:
            counter += 1
        else:
            lower.append(l)
    i = len(trail) - 1
    while True:
        v = trail[i]
        i -= 1
        if v not in seen:
            continue
        counter -= 1
        if counter == 0:
            uip = v
            break
        for l in clauses[reason[v]]:
            u = l if l > 0 else -l
            if u == v:
                continue
            lv = vlevel[u]
            if lv == 0 or u in seen:
                continue
            seen_add(u)
            if lv == level:
                counter += 1
            else:
                lower.append(l)
    uip_lit = -uip if assign[uip] else uip
    learned = (uip_lit,) + tuple(lower)
    if lower:
        levels = {vlevel[l if l > 0 else -l] for l in lower}
        assert_level = max(levels)
        lbd = len(levels) + 1
    else:
        assert_level = 0
        lbd = 1
    return learned, assert_level, lbd, seen


class _SearchNode:
    """One level of the conflict-driven counting search.

    A node counts one residual component: ``acc`` accumulates the value of
    completed decision branches, ``prefix`` carries the current branch's
    weight factor (level literals, vanished variables, cache-hit children),
    and ``start``/``prop_end`` delimit the node's trail segment.  ``key``
    is the component's cache key (``None`` in split-free fast mode, where
    the residual was never canonicalized).
    """

    __slots__ = ("component", "comp_vars", "key", "branches", "branch_idx",
                 "acc", "prefix", "start", "prop_end")

    def __init__(self, component, comp_vars, key, branches, start):
        self.component = component
        self.comp_vars = comp_vars
        self.key = key
        self.branches = branches
        self.branch_idx = -1
        self.acc = 0
        self.prefix = 1
        self.start = start
        self.prop_end = start


def _canonical_structure(component):
    """Weight-independent canonical form of a component.

    Variables are renamed to first-occurrence order; returns the sorted
    renamed clause rows plus the original variables in renaming order (so
    a weight row can be assembled per engine without re-normalizing).
    """
    rename = {}
    rename_get = rename.get
    var_order = []
    rows = []
    for c in component:
        row = []
        for lit in c:
            v = lit if lit > 0 else -lit
            idx = rename_get(v)
            if idx is None:
                idx = len(var_order) + 1
                rename[v] = idx
                var_order.append(v)
            row.append(idx if lit > 0 else -idx)
        row.sort()
        rows.append(tuple(row))
    rows.sort()
    return tuple(rows), tuple(var_order)


def _canonical_entry(component, key_cache, stats):
    """The memoized ``(canonical rows, var order)`` of a component."""
    entry = key_cache.get(component)
    if entry is None:
        stats.key_misses += 1
        entry = _canonical_structure(component)
        if len(key_cache) >= MAX_KEY_CACHE_ENTRIES:
            key_cache.clear()
        key_cache[component] = entry
    else:
        stats.key_hits += 1
    return entry


class CountingEngine:
    """Exact WMC over integer-variable clauses with component caching.

    ``weights`` maps each variable to its ``(w, wbar)`` pair and ``totals``
    to ``w + wbar``; values may be ints or Fractions.  ``cache``/``stats``/
    ``key_cache`` default to module-level shared instances.  ``workers``
    (``None`` or an int > 1) enables process-pool counting of top-level
    components.

    ``learn`` (default ``True``) selects the conflict-driven search with
    1-UIP clause learning; ``False`` restores the learning-free MOMS
    engine.  ``branching`` picks the decision heuristic of the learning
    search: ``"evsids"`` (default) or ``"moms"`` for ablation.
    ``max_learned`` bounds the learned-clause database of one component
    search before an LBD-based reduction drops the worst half.
    ``phase_saving`` (default on) branches each decision into the
    polarity a backjump last undid for that variable.  ``restarts``
    (off by default) enables Luby restarts of the learning search with
    the given unit in conflicts.  All knobs leave the counted value
    bit-identical — they only steer the search.
    """

    __slots__ = ("weights", "totals", "cache", "stats", "key_cache",
                 "workers", "branching", "learn", "max_learned",
                 "activity", "var_inc", "persist_dir", "phase_saving",
                 "restarts", "saved_phase", "search_conflicts",
                 "search_decisions", "search_activity_on", "budget")

    def __init__(self, weights, totals, cache=None, stats=None,
                 key_cache=None, workers=None, branching=None, learn=None,
                 max_learned=None, persist_dir=None, phase_saving=None,
                 restarts=None, budget=None):
        self.weights = weights
        self.totals = totals
        self.cache = _SHARED_CACHE if cache is None else cache
        self.stats = _SHARED_STATS if stats is None else stats
        self.key_cache = _SHARED_KEY_CACHE if key_cache is None else key_cache
        self.workers = workers
        branching = "evsids" if branching is None else branching
        if branching not in _BRANCHING_CHOICES:
            raise ValueError("unknown branching {!r}; expected one of {}"
                             .format(branching, _BRANCHING_CHOICES))
        self.branching = branching
        self.learn = True if learn is None else bool(learn)
        self.max_learned = DEFAULT_MAX_LEARNED if max_learned is None else max_learned
        #: Phase saving: variables unassigned by a backjump remember
        #: their last polarity, and later decisions on them branch into
        #: that polarity first (w-first order is the fallback).  Like
        #: every search knob it never changes the counted value — in an
        #: exhaustive counting search both polarities are explored, the
        #: saved phase only picks which one the search re-enters first,
        #: which steers where conflicts (and thus learned clauses and
        #: backjumps) happen.
        self.phase_saving = (DEFAULT_PHASE_SAVING if phase_saving is None
                             else bool(phase_saving))
        #: Luby restart unit in conflicts (0/None = no restarts).  A
        #: restart abandons every decision level of the current
        #: component search, keeping learned clauses and level-0 units;
        #: abandoned partial sums are recomputed through the component
        #: cache, so the counted value never changes.
        self.restarts = 0 if restarts is None else int(restarts)
        self.saved_phase = {}
        #: When set, top-level components dispatched to worker processes
        #: carry this cache directory so the workers read and write the
        #: same persistent store as the parent.
        self.persist_dir = persist_dir
        #: EVSIDS activities are engine-local and shared across the
        #: component searches of one run, so structure discovered in one
        #: search region steers decisions in the next.  Whether a given
        #: *search* consults them is gated on its own conflict rate (see
        #: ``_ACTIVITY_RATE_GATE``), tracked by the two counters below.
        self.activity = {}
        self.var_inc = 1.0
        self.search_conflicts = 0
        self.search_decisions = 0
        self.search_activity_on = False
        #: Optional :class:`~repro.resilience.limits.Budget`: charged per
        #: decision and per conflict; ``None`` costs one attribute load
        #: per decision.  Never shipped to worker payloads — deadlines
        #: are enforced in the parent while polling futures.
        self.budget = budget

    # -- public entry ------------------------------------------------------

    def run(self, clauses, trusted=False):
        """WMC over exactly the variables occurring in ``clauses``.

        ``trusted`` skips per-clause literal deduplication for callers
        (like :func:`wmc_cnf`) whose clauses are already duplicate-free
        tuples with at least one literal each.
        """
        self.stats.calls += 1
        if trusted:
            normalized = clauses if isinstance(clauses, tuple) else tuple(clauses)
        else:
            normalized = []
            for c in clauses:
                c = tuple(dict.fromkeys(c))  # drop duplicate literals
                if not c:
                    return Fraction(0)
                normalized.append(c)
            normalized = tuple(normalized)
        if not normalized:
            return Fraction(1)
        # Deep instances recurse one frame set per decision level; raise
        # the interpreter limit proportionally but keep a hard cap so a
        # pathological instance raises RecursionError instead of
        # overflowing the C stack, and restore the limit afterwards.
        limit = sys.getrecursionlimit()
        needed = min(12 * len(self.weights) + 1000, MAX_RECURSION_LIMIT)
        if limit < needed:
            sys.setrecursionlimit(needed)
        try:
            return Fraction(self._reduce(normalized))
        except BudgetExceededError as exc:
            # Attach the partial statistics once, at the top level: the
            # inner loops stay free of bookkeeping, and callers see how
            # far the aborted run got.
            if exc.engine_stats is None:
                exc.engine_stats = self.stats
            raise
        finally:
            if limit < needed:
                sys.setrecursionlimit(limit)

    # -- node evaluation ---------------------------------------------------

    def _reduce(self, clauses):
        """Evaluate the top-level node: propagate units, split, recurse."""
        factor = 1
        if any(len(c) == 1 for c in clauses):
            propagated = self._reduce_units(clauses)
            if propagated is None:
                return 0
            factor, components = propagated
            if factor == 0:
                return 0
        else:
            # Unit-free: nothing propagates and no variable vanishes, so
            # the node is exactly its component split — memoized on the
            # frozen clause tuple (tagged so it shares the key cache),
            # which makes a repeated run a handful of dict hits.
            key_cache = self.key_cache
            memo_key = ("split", clauses)
            components = key_cache.get(memo_key)
            if components is None:
                components, _residual_vars = _residual_components(clauses, {})
                if len(key_cache) >= MAX_KEY_CACHE_ENTRIES:
                    key_cache.clear()
                key_cache[memo_key] = components
        if len(components) > 1:
            self.stats.component_splits += 1
            if self.workers and self.workers > 1:
                return factor * self._count_components_parallel(components)
        for component in components:
            value = self._count_component(component)
            if value == 0:
                return 0
            factor *= value
        return factor

    def _reduce_units(self, clauses):
        """Top-level build + unit propagation; ``None`` on conflict,
        otherwise ``(weight factor, residual components)``."""
        watches = {}
        watch_pair = []
        watched = []
        queue = []
        all_vars = set()
        for c in clauses:
            for lit in c:
                all_vars.add(lit if lit > 0 else -lit)
            if len(c) == 1:
                queue.append(c[0])
            else:
                ci = len(watched)
                watched.append(c)
                watch_pair.append([c[0], c[1]])
                watches.setdefault(c[0], []).append(ci)
                watches.setdefault(c[1], []).append(ci)

        assign = {}
        trail = []
        if not _propagate(watched, watches, watch_pair, assign, trail,
                          queue, self.stats):
            return None
        weights = self.weights
        factor = 1
        for v in trail:
            pair = weights[v]
            factor *= pair[0] if assign[v] else pair[1]
        if factor == 0:
            # Sound: the remaining count is finite and multiplied by 0.
            return 0, []
        components, residual_vars = _residual_components(watched, assign)
        totals = self.totals
        for v in all_vars:
            if v not in assign and v not in residual_vars:
                factor *= totals[v]
        return factor, components

    # -- component cache ---------------------------------------------------

    def _component_key(self, component):
        """Cache key for a component: memoized canonical structure plus
        the weight row assembled for this engine's weight function.

        Returns ``(key, var_order)`` — the component's variables in
        first-occurrence order ride along so callers never re-derive the
        variable set.
        """
        rows, var_order = _canonical_entry(component, self.key_cache,
                                           self.stats)
        weights = self.weights
        return (rows, tuple(weights[v] for v in var_order)), var_order

    def _count_component(self, component):
        """Count one variable-connected component through the cache."""
        key, var_order = self._component_key(component)
        cached = self.cache.get(key)
        if cached is not None:
            self.stats.cache_hits += 1
            return cached
        self.stats.cache_misses += 1
        return self._count_component_miss(component, key, var_order)

    def _count_component_miss(self, component, key, var_order):
        """Search a component that missed the cache, then store its value."""
        if self.learn:
            # Each component search earns activity branching with its own
            # conflict rate; the counters are engine attributes (so
            # ``_make_node`` sees them) saved and restored here because
            # searches nest through split-off children.
            saved = (self.search_conflicts, self.search_decisions,
                     self.search_activity_on)
            self.search_conflicts = 0
            self.search_decisions = 0
            self.search_activity_on = False
            try:
                result = self._cdcl_count(component, var_order)
            finally:
                (self.search_conflicts, self.search_decisions,
                 self.search_activity_on) = saved
        else:
            result = self._branch(component, var_order)
        cache = self.cache
        if len(cache) >= MAX_CACHE_ENTRIES:
            cache.clear()
        cache[key] = result
        return result

    # -- conflict-driven counting search -----------------------------------

    def _make_node(self, component, comp_vars, key, start):
        """Create a search node: pick its decision variable and branches.

        The default heuristic is VSADS-style: EVSIDS conflict activity
        plus ``var_inc`` per occurrence in a minimum-size clause of the
        *current* component.  The two terms are self-scaling — on
        conflict-free (model-dense) searches the dynamic MOMS term
        dominates and the engine branches like the legacy counter, while
        accumulating conflicts grow ``var_inc`` exponentially and hand
        control to the learned activities.  The activity term is
        additionally gated on the current search's conflict rate
        (``_ACTIVITY_RATE_GATE``): until this search itself proves
        conflict-rich, stale activity from earlier searches is ignored
        and the order is exactly MOMS.  Zero-weight polarities are
        skipped exactly like the legacy engine (a node with no branches
        completes with value 0).
        """
        self.stats.decisions += 1
        self.search_decisions += 1
        if self.budget is not None:
            self.budget.spend_decision()
        if self.branching == "moms" or not self.search_activity_on:
            var = _moms_var(component)
        else:
            activity_get = self.activity.get
            inc = self.var_inc
            occurrences, short = _clause_scores(component)
            occurrences_get = occurrences.get
            short_get = short.get
            # With no conflict activity yet this is exactly the MOMS
            # order; activity breaks in smoothly as conflicts accumulate.
            var = max(
                comp_vars,
                key=lambda v: (activity_get(v, 0.0) + inc * short_get(v, 0),
                               occurrences_get(v, 0), -v),
            )
        w, wbar = self.weights[var]
        positive_first = True
        if self.phase_saving:
            saved = self.saved_phase.get(var)
            if saved is not None:
                positive_first = saved
                self.stats.phase_hits += 1
        branches = []
        order = (var, -var) if positive_first else (-var, var)
        for lit in order:
            if (w if lit > 0 else wbar) != 0:
                branches.append(lit)
        return _SearchNode(component, comp_vars, key, branches, start)

    def _cdcl_count(self, component, var_order):
        """Count one component with the conflict-driven iterative search.

        The search keeps a single persistent trail: each stack node counts
        one residual component by summing its decision branches, children
        that split off go through the component cache (a lone cache-missed
        child is descended into on the same trail; two or more are truly
        independent and recurse into fresh searches).  Conflicts learn a
        1-UIP clause and backjump to the asserting level; the abandoned
        levels are recomputed through the cache, which is the sound way to
        combine far backtracking with exact counting (no unexplored branch
        is ever skipped).
        """
        stats = self.stats
        weights = self.weights
        totals = self.totals
        cache = self.cache
        activity = self.activity
        evsids = self.branching == "evsids"
        max_learned = self.max_learned
        budget = self.budget

        n_orig = len(component)
        clauses = list(component)
        lbds = []
        watches = {}
        watch_pair = []
        watches_setdefault = watches.setdefault
        for ci, c in enumerate(clauses):
            watch_pair.append([c[0], c[1]])
            watches_setdefault(c[0], []).append(ci)
            watches_setdefault(c[1], []).append(ci)

        assign = {}
        vlevel = {}
        reason = {}
        trail = []

        def handle_conflicts(conflict):
            """Analyze/learn/backjump until propagation settles.

            Returns ``True`` when the search is refuted at level 0 (the
            component, under its level-0 lemmas, is unsatisfiable).
            """
            while conflict >= 0:
                level = len(stack) - 1
                if level == 0:
                    return True
                stats.conflicts += 1
                self.search_conflicts += 1
                if budget is not None:
                    budget.spend_conflict()
                if (not self.search_activity_on
                        and self.search_conflicts >= _ACTIVITY_MIN_CONFLICTS
                        and self.search_conflicts * _ACTIVITY_RATE_GATE
                        > self.search_decisions):
                    self.search_activity_on = True
                learned, a_level, lbd, seen = _analyze_conflict(
                    clauses, conflict, assign, vlevel, reason, trail, level)
                if evsids:
                    inc = self.var_inc
                    bump_get = activity.get
                    for v in seen:
                        activity[v] = bump_get(v, 0.0) + inc
                    inc *= _VSIDS_INV_DECAY
                    if inc > _VSIDS_RESCALE:
                        for v in activity:
                            activity[v] *= 1e-100
                        inc *= 1e-100
                    self.var_inc = inc
                stats.backjumps += 1
                stats.backjump_levels += level - a_level
                del stack[a_level + 1:]
                node = stack[-1]
                if self.phase_saving:
                    saved_phase = self.saved_phase
                    for v in trail[node.prop_end:]:
                        saved_phase[v] = assign[v]
                        del assign[v]
                        del vlevel[v]
                        del reason[v]
                else:
                    for v in trail[node.prop_end:]:
                        del assign[v]
                        del vlevel[v]
                        del reason[v]
                del trail[node.prop_end:]
                uip_lit = learned[0]
                stats.learned_clauses += 1
                if len(learned) > 1:
                    ci = len(clauses)
                    clauses.append(learned)
                    lbds.append(lbd)
                    # Watch the asserting literal plus one literal of the
                    # backjump level, the deepest of the rest, so undoing
                    # deeper levels keeps both watches non-false.
                    second = None
                    for l in learned[1:]:
                        if vlevel[l if l > 0 else -l] == a_level:
                            second = l
                            break
                    watch_pair.append([uip_lit, second])
                    watches_setdefault(uip_lit, []).append(ci)
                    watches_setdefault(second, []).append(ci)
                    why = ci
                else:
                    # Unit lemma: entailed by the component outright, so it
                    # holds at level 0 for the rest of the search (level-0
                    # literals are never resolved by conflict analysis).
                    why = None
                conflict = _propagate_trail(
                    clauses, watches, watch_pair, assign, vlevel, reason,
                    trail, [(uip_lit, why)], a_level, node.comp_vars,
                    n_orig, stats)
            node = stack[-1]
            node.prop_end = len(trail)
            if len(clauses) - n_orig > max_learned:
                self._reduce_learned_db(clauses, lbds, watches, watch_pair,
                                        reason, n_orig)
            return False

        root = _SearchNode(component, set(var_order), None, (None,), 0)
        stack = [root]
        evals = 0
        unproductive = 0
        # Luby restarts: fire after ``unit * luby(i)`` conflicts in this
        # search.  ``restart_at`` is the absolute stats.conflicts mark of
        # the next restart (stats.conflicts only grows within a search).
        restart_unit = self.restarts
        restart_idx = 1
        restart_at = (stats.conflicts + restart_unit * _luby(restart_idx)
                      if restart_unit else None)

        ADVANCE, EVAL, BRANCH_DONE = 0, 1, 2
        state = ADVANCE
        value = 0  # the branch value consumed by BRANCH_DONE

        while True:
            node = stack[-1]
            if state == BRANCH_DONE:
                node.acc += value
                state = ADVANCE
                continue

            if state == ADVANCE:
                node.branch_idx += 1
                for v in trail[node.start:]:
                    del assign[v]
                    del vlevel[v]
                    del reason[v]
                del trail[node.start:]
                if node.branch_idx >= len(node.branches):
                    # Node complete: its accumulator is the standalone
                    # count of its component.
                    result = node.acc
                    stack.pop()
                    if node.key is not None:
                        if len(cache) >= MAX_CACHE_ENTRIES:
                            cache.clear()
                        cache[node.key] = result
                    if not stack:
                        return result
                    value = 0 if result == 0 else stack[-1].prefix * result
                    state = BRANCH_DONE
                    continue
                lit = node.branches[node.branch_idx]
                if lit is None:  # the root's single pseudo-branch
                    node.prop_end = len(trail)
                    state = EVAL
                    continue
                conflict = _propagate_trail(
                    clauses, watches, watch_pair, assign, vlevel, reason,
                    trail, [(lit, None)], len(stack) - 1, node.comp_vars,
                    n_orig, stats)
                if conflict >= 0:
                    if handle_conflicts(conflict):
                        return 0
                    if (restart_at is not None and stats.conflicts >= restart_at
                            and len(stack) > 1):
                        # Luby restart: abandon every decision level and
                        # re-enter from the root — the same move as a
                        # backjump to level 0, so learned clauses and
                        # level-0 units survive and the abandoned partial
                        # sums are recomputed through the component
                        # cache.  The root's accumulator is untouched (it
                        # only ever receives the value of its single
                        # completed branch), so no weight is counted
                        # twice.
                        stats.restarts += 1
                        node = stack[0]
                        del stack[1:]
                        if self.phase_saving:
                            saved_phase = self.saved_phase
                            for v in trail[node.prop_end:]:
                                saved_phase[v] = assign[v]
                                del assign[v]
                                del vlevel[v]
                                del reason[v]
                        else:
                            for v in trail[node.prop_end:]:
                                del assign[v]
                                del vlevel[v]
                                del reason[v]
                        del trail[node.prop_end:]
                        restart_idx += 1
                        restart_at = (stats.conflicts
                                      + restart_unit * _luby(restart_idx))
                else:
                    node.prop_end = len(trail)
                state = EVAL
                continue

            # state == EVAL: the top node's current branch has a settled
            # trail segment; weigh it, extract the residual, and route the
            # children through the cache.
            factor = 1
            for v in trail[node.start:]:
                pair = weights[v]
                factor *= pair[0] if assign[v] else pair[1]
            if factor == 0:
                value = 0
                state = BRANCH_DONE
                continue
            comp_vars = node.comp_vars
            if len(stack) == 1 and not trail:
                # First evaluation of the root: nothing is assigned, so
                # the residual is the component itself (whose cache entry
                # the calling wrapper owns) — descend straight into it.
                stack.append(self._make_node(node.component, comp_vars,
                                             None, 0))
                state = ADVANCE
                continue
            evals += 1
            if unproductive < _SPLIT_PATIENCE or evals % _SPLIT_PROBE == 0:
                components, residual_vars = _residual_components(
                    node.component, assign)
                for v in comp_vars:
                    if v not in assign and v not in residual_vars:
                        factor *= totals[v]
                if not components:
                    value = factor
                    state = BRANCH_DONE
                    continue
                productive = len(components) > 1
                if productive:
                    stats.component_splits += 1
                missed = None
                zero = False
                for comp in components:
                    key, vorder = self._component_key(comp)
                    cached = cache.get(key)
                    if cached is not None:
                        stats.cache_hits += 1
                        productive = True
                        if cached == 0:
                            zero = True
                            break
                        factor *= cached
                    elif missed is None:
                        missed = [(comp, key, vorder)]
                    else:
                        missed.append((comp, key, vorder))
                if productive:
                    unproductive = 0
                else:
                    unproductive += 1
                if zero:
                    value = 0
                    state = BRANCH_DONE
                    continue
                if missed is None:
                    value = factor
                    state = BRANCH_DONE
                    continue
                if len(missed) > 1:
                    # A true decomposition: the children are independent,
                    # so each gets its own fresh search (learned clauses
                    # never cross the boundary).
                    for comp, key, vorder in missed:
                        stats.cache_misses += 1
                        child_value = self._count_component_miss(
                            comp, key, vorder)
                        if child_value == 0:
                            factor = 0
                            break
                        factor *= child_value
                    value = factor
                    state = BRANCH_DONE
                    continue
                comp, key, vorder = missed[0]
                stats.cache_misses += 1
                node.prefix = factor
                stack.append(self._make_node(comp, set(vorder), key,
                                             len(trail)))
                state = ADVANCE
                continue
            # Fast path: the search has stopped producing splits or cache
            # hits, so skip the union-find and canonicalization (value
            # flows up through the trail instead of the cache).
            residual, mentioned = _residual_light(node.component, assign)
            for v in comp_vars:
                if v not in assign and v not in mentioned:
                    factor *= totals[v]
            if not residual:
                value = factor
                state = BRANCH_DONE
                continue
            node.prefix = factor
            stack.append(self._make_node(residual, mentioned, None,
                                         len(trail)))
            state = ADVANCE
            continue

    def _reduce_learned_db(self, clauses, lbds, watches, watch_pair, reason,
                           n_orig):
        """Halve the learned-clause database.

        Glue clauses (LBD <= 2) and reason-locked clauses (antecedents of
        literals still on the trail) always survive; the rest are ranked
        by LBD (newer wins ties) and the worse half is dropped.  Watch
        lists and antecedent indices are remapped in place.
        """
        locked = set()
        for ci in reason.values():
            if ci is not None and ci >= n_orig:
                locked.add(ci)
        keep = []
        candidates = []
        for ci in range(n_orig, len(clauses)):
            if ci in locked or lbds[ci - n_orig] <= GLUE_LBD:
                keep.append(ci)
            else:
                candidates.append(ci)
        candidates.sort(key=lambda ci: (lbds[ci - n_orig], -ci))
        keep.extend(candidates[:len(candidates) // 2])
        keep.sort()
        remap = {}
        kept_clauses = []
        kept_lbds = []
        kept_pairs = []
        for ci in keep:
            remap[ci] = n_orig + len(kept_clauses)
            kept_clauses.append(clauses[ci])
            kept_lbds.append(lbds[ci - n_orig])
            kept_pairs.append(watch_pair[ci])
        del clauses[n_orig:]
        clauses.extend(kept_clauses)
        lbds[:] = kept_lbds
        del watch_pair[n_orig:]
        watch_pair.extend(kept_pairs)
        for lit in list(watches):
            filtered = []
            for ci in watches[lit]:
                if ci < n_orig:
                    filtered.append(ci)
                else:
                    nci = remap.get(ci)
                    if nci is not None:
                        filtered.append(nci)
            if filtered:
                watches[lit] = filtered
            else:
                del watches[lit]
        for var, ci in reason.items():
            if ci is not None and ci >= n_orig:
                reason[var] = remap[ci]
        self.stats.db_reductions += 1

    # -- branching ---------------------------------------------------------

    def _branch(self, component, var_order):
        """Split on a decision variable chosen to maximize propagation.

        ``component`` clauses all have at least two distinct literals (the
        residual extraction guarantees it), so every clause starts with two
        valid watches.  ``var_order`` is the component's variable set (in
        canonical first-occurrence order, from the key memo).
        """
        stats = self.stats
        stats.decisions += 1
        if self.budget is not None:
            self.budget.spend_decision()
        clause_lits = list(component)

        # Build pass: watch lists plus MOMS scores in one scan.
        watches = {}
        watch_pair = []
        occurrences = {}
        occurrences_get = occurrences.get
        short_scores = {}
        short_scores_get = short_scores.get
        watches_setdefault = watches.setdefault
        min_len = min(len(c) for c in clause_lits)
        for ci, c in enumerate(clause_lits):
            short = len(c) == min_len
            for lit in c:
                v = lit if lit > 0 else -lit
                occurrences[v] = occurrences_get(v, 0) + 1
                if short:
                    short_scores[v] = short_scores_get(v, 0) + 1
            watch_pair.append([c[0], c[1]])
            watches_setdefault(c[0], []).append(ci)
            watches_setdefault(c[1], []).append(ci)

        # MOMS: most occurrences in minimum-size clauses, so the other
        # polarity shortens those clauses toward units.
        var = max(
            short_scores,
            key=lambda v: (short_scores[v], occurrences[v], -v),
        )

        weights = self.weights
        totals = self.totals
        w, wbar = weights[var]
        total = 0
        for lit, lit_weight in ((var, w), (-var, wbar)):
            if lit_weight == 0:
                continue
            assign = {}
            trail = []
            if not _propagate(clause_lits, watches, watch_pair, assign,
                              trail, [lit], stats):
                continue
            factor = 1
            for v in trail:
                pair = weights[v]
                factor *= pair[0] if assign[v] else pair[1]
            if factor == 0:
                continue
            components, residual_vars = _residual_components(clause_lits, assign)
            for v in var_order:
                if v not in assign and v not in residual_vars:
                    factor *= totals[v]
            if len(components) > 1:
                stats.component_splits += 1
            for child in components:
                value = self._count_component(child)
                if value == 0:
                    factor = 0
                    break
                factor *= value
            total += factor
        return total

    # -- parallel counting -------------------------------------------------

    def _count_components_parallel(self, components):
        """Count top-level components on a process pool.

        The parent cache is a read-through front: already-cached components
        are never dispatched, and worker results are merged back under
        their canonical keys.  Each worker process keeps its own persistent
        shared cache across tasks.  Multiplication of exact values is
        order-independent, so the result is bit-identical to a serial run.
        """
        stats = self.stats
        results = [None] * len(components)
        pending = []  # one entry per distinct canonical key
        key_indices = {}
        for i, component in enumerate(components):
            key, var_order = self._component_key(component)
            cached = self.cache.get(key)
            if cached is not None:
                stats.cache_hits += 1
                results[i] = cached
                continue
            indices = key_indices.get(key)
            if indices is None:
                # First sight of this key: dispatch one task for it.
                stats.cache_misses += 1
                key_indices[key] = [i]
                pending.append((key, component, var_order))
            else:
                # Isomorphic sibling: reuse the dispatched task's result.
                stats.cache_hits += 1
                indices.append(i)
        if pending:
            self._run_parallel_tasks(pending, key_indices, results)
        total = 1
        for value in results:
            if value == 0:
                return 0
            total *= value
        return total

    def _await_future(self, future, budget):
        """``future.result()``, polling so a budget can interrupt it.

        The budget never rides into worker payloads (sub-engine searches
        stay deterministic and payloads picklable); instead the parent
        polls the future and re-checks the deadline/cancellation token
        between polls, so a timeout fires within one poll interval even
        while workers are busy.
        """
        if budget is None:
            return future.result()
        from concurrent.futures import TimeoutError as FutureTimeout

        while True:
            try:
                return future.result(timeout=_FUTURE_POLL_S)
            except FutureTimeout:
                budget.check()

    def _run_parallel_tasks(self, pending, key_indices, results):
        """Dispatch the pending component tasks with crash supervision.

        The failure ladder keeps counts bit-identical at every rung:

        1. a broken pool (a worker OOM-killed or hard-exited) is
           discarded and every unfinished task resubmitted **once** on a
           fresh pool after a short backoff (``worker_retries``);
        2. a second pool failure — or an unpicklable payload, which a
           retry can never fix — degrades the unfinished tasks to
           in-process serial counting (``degraded_to_serial``), the same
           code path a ``workers=None`` run takes;
        3. any other exception is a real error in the counting code (or
           a tripped budget): the pool is discarded so the *next*
           parallel call starts clean, and the exception propagates.
        """
        import pickle
        from concurrent.futures.process import BrokenProcessPool

        stats = self.stats
        weights = self.weights
        totals = self.totals
        budget = self.budget
        # Worker knobs travel as one picklable SolverOptions — the same
        # object shape every public entry point takes.  The budget is
        # deliberately excluded (see :meth:`_await_future`).
        worker_options = SolverOptions(
            branching=self.branching, learn=self.learn,
            max_learned=self.max_learned,
            persist=True if self.persist_dir is not None else None,
            cache_dir=self.persist_dir,
            phase_saving=self.phase_saving,
            restarts=self.restarts or None)

        def record(key, value, worker_stats):
            if worker_stats is not None:
                stats.merge_worker(worker_stats)
            if len(self.cache) >= MAX_CACHE_ENTRIES:
                self.cache.clear()
            self.cache[key] = value
            for i in key_indices[key]:
                results[i] = value

        remaining = list(pending)
        retried = False
        while remaining:
            done = 0
            try:
                pool = _worker_pool(self.workers)
                futures = []
                for key, component, var_order in remaining:
                    payload = (
                        component,
                        {v: weights[v] for v in var_order},
                        {v: totals[v] for v in var_order},
                        worker_options,
                    )
                    futures.append(
                        (key, pool.submit(_count_component_task, payload)))
                    stats.parallel_tasks += 1
                for key, future in futures:
                    value, worker_stats = self._await_future(future, budget)
                    record(key, value, worker_stats)
                    done += 1
                remaining = []
            except BrokenProcessPool:
                # A dead worker leaves the executor permanently broken;
                # results already collected stay valid (exact values under
                # their canonical keys), only unfinished tasks remain.
                _discard_pool()
                remaining = remaining[done:]
                if not retried:
                    retried = True
                    stats.worker_retries += 1
                    slog(_LOG, logging.WARNING, "worker_pool_retry",
                         unfinished=len(remaining), workers=self.workers)
                    time.sleep(_POOL_RETRY_BACKOFF_S)
                    continue
                slog(_LOG, logging.WARNING, "worker_pool_degraded_to_serial",
                     unfinished=len(remaining), workers=self.workers)
                for key, component, var_order in remaining:
                    stats.degraded_to_serial += 1
                    record(key, self._count_component_miss(
                        component, key, var_order), None)
                remaining = []
            except (pickle.PicklingError, TypeError):
                # The payload cannot cross the process boundary; a fresh
                # pool cannot fix that, so serve the rest in-process.
                remaining = remaining[done:]
                for key, component, var_order in remaining:
                    stats.degraded_to_serial += 1
                    record(key, self._count_component_miss(
                        component, key, var_order), None)
                remaining = []
            except BaseException:
                # A genuine task exception or a tripped budget: the pool
                # may hold queued work for futures nobody will consume;
                # drop it so the next parallel call starts a fresh pool.
                _discard_pool()
                raise


def _clause_vars(clauses):
    result = set()
    for c in clauses:
        for lit in c:
            result.add(abs(lit))
    return result


# -- circuit tracing ----------------------------------------------------------
#
# Trace mode replays the counting search symbolically: instead of
# multiplying weights it records the search's decompositions as arithmetic-
# circuit nodes in a caller-supplied builder (see repro.compile.circuit for
# the IR).  Component conjunctions become x-nodes, decision splits become
# smoothed +-nodes (every branch carries a literal or total leaf for each
# component variable, so sibling branches always cover the same scope),
# literals become weight leaves, and vanished variables become w+wbar
# total leaves.  Because the circuit must stay *weight-symbolic*, trace
# mode never prunes zero-weight branches and never consults the weighted
# component cache; sharing comes from two weight-independent layers:
#
# * every component is compiled in its canonical variable space once and
#   memoized as a *template* (keyed on the canonical rows, the same
#   structures the engine's key cache memoizes), so isomorphic components
#   -- which symmetric lineages produce in abundance -- are traced once
#   and stamped out per occurrence;
# * instantiated templates pass through the builder's hash-consing, so
#   repeated occurrences of the *same* component collapse to one shared
#   subcircuit reference and the DAG is no larger than the search.

#: Weight-independent compiled component templates, shared across traces
#: (cleared wholesale at the bound, like the canonical-key cache).
_TRACE_TEMPLATES = {}
MAX_TRACE_TEMPLATE_ENTRIES = 1 << 14

_TRACE_COUNTERS = {"traced_components": 0, "trace_template_hits": 0,
                   "trace_template_misses": 0}


def _trace_search(component, comp_vars, builder, key_cache, stats,
                  budget=None):
    """Trace one connected component's counting search into the builder.

    Mirrors the learning-free search (:meth:`CountingEngine._branch`)
    with MOMS decisions, but emits nodes instead of multiplying weights:
    both polarities are always explored (a conflicted polarity simply
    contributes no branch), so the resulting +-node is correct for every
    weight assignment, zeros and negatives included.
    """
    stats.decisions += 1
    if budget is not None:
        budget.tick()
    clause_lits = list(component)
    watches = {}
    watch_pair = []
    watches_setdefault = watches.setdefault
    for ci, c in enumerate(clause_lits):
        watch_pair.append([c[0], c[1]])
        watches_setdefault(c[0], []).append(ci)
        watches_setdefault(c[1], []).append(ci)
    var = _moms_var(component)
    branches = []
    for lit in (var, -var):
        assign = {}
        trail = []
        if not _propagate(clause_lits, watches, watch_pair, assign, trail,
                          [lit], stats):
            continue
        factors = [builder.lit(v, assign[v]) for v in trail]
        components, residual_vars = _residual_components(clause_lits, assign)
        for v in comp_vars:
            if v not in assign and v not in residual_vars:
                factors.append(builder.tot(v))
        for child in components:
            factors.append(_trace_component(child, builder, key_cache, stats,
                                            budget))
        branches.append(builder.times(factors))
    return builder.plus(branches)


def _trace_component(component, builder, key_cache, stats, budget=None):
    """Emit one component's subcircuit, sharing canonical templates."""
    rows, var_order = _canonical_entry(component, key_cache, stats)
    memo = builder.memo
    memo_key = (rows, var_order)
    node = memo.get(memo_key)
    if node is not None:
        return node
    template = _TRACE_TEMPLATES.get(rows)
    if template is None:
        _TRACE_COUNTERS["trace_template_misses"] += 1
        sub = builder.spawn()
        root = _trace_search(rows, range(1, len(var_order) + 1), sub,
                             key_cache, stats, budget)
        template = sub.extract(root)
        if len(_TRACE_TEMPLATES) >= MAX_TRACE_TEMPLATE_ENTRIES:
            _TRACE_TEMPLATES.clear()
        _TRACE_TEMPLATES[rows] = template
    else:
        _TRACE_COUNTERS["trace_template_hits"] += 1
    _TRACE_COUNTERS["traced_components"] += 1
    node = builder.emit_template(template, var_order)
    memo[memo_key] = node
    return node


def trace_cnf_clauses(clauses, builder, key_cache=None, stats=None,
                      trusted=False, budget=None):
    """Trace the counting search over ``clauses`` into circuit nodes.

    The symbolic twin of :meth:`CountingEngine.run`: returns the builder
    id of a node whose value at any weight assignment ``var -> (w,
    wbar)`` equals the WMC of the clauses over exactly the variables
    they mention.  ``builder`` is a
    :class:`repro.compile.circuit.CircuitBuilder` (any object with the
    same ``lit``/``tot``/``const``/``times``/``plus``/``spawn``/
    ``extract``/``emit_template``/``memo`` protocol).  ``trusted`` skips
    per-clause literal deduplication exactly like :meth:`~CountingEngine.run`.
    ``budget`` (a :class:`~repro.resilience.limits.Budget`) bounds the
    trace; the template/builder memos only ever store completed
    subcircuits, so an aborted trace retried later warm-starts.
    """
    key_cache = _SHARED_KEY_CACHE if key_cache is None else key_cache
    stats = _SHARED_STATS if stats is None else stats
    if trusted:
        normalized = clauses if isinstance(clauses, tuple) else tuple(clauses)
    else:
        normalized = []
        for c in clauses:
            c = tuple(dict.fromkeys(c))
            if not c:
                return builder.const(0)
            normalized.append(c)
        normalized = tuple(normalized)
    if not normalized:
        return builder.const(1)

    all_vars = set()
    watches = {}
    watch_pair = []
    watched = []
    queue = []
    for c in normalized:
        for lit in c:
            all_vars.add(lit if lit > 0 else -lit)
        if len(c) == 1:
            queue.append(c[0])
        else:
            ci = len(watched)
            watched.append(c)
            watch_pair.append([c[0], c[1]])
            watches.setdefault(c[0], []).append(ci)
            watches.setdefault(c[1], []).append(ci)
    assign = {}
    trail = []
    if not _propagate(watched, watches, watch_pair, assign, trail, queue,
                      stats):
        return builder.const(0)

    limit = sys.getrecursionlimit()
    needed = min(12 * len(all_vars) + 1000, MAX_RECURSION_LIMIT)
    if limit < needed:
        sys.setrecursionlimit(needed)
    try:
        with span("trace_cnf", cat="engine", vars=len(all_vars),
                  clauses=len(normalized)):
            factors = [builder.lit(v, assign[v]) for v in trail]
            components, residual_vars = _residual_components(watched, assign)
            for v in all_vars:
                if v not in assign and v not in residual_vars:
                    factors.append(builder.tot(v))
            for component in components:
                factors.append(_trace_component(component, builder, key_cache,
                                                stats, budget))
            return builder.times(factors)
    finally:
        if limit < needed:
            sys.setrecursionlimit(limit)


# -- worker pool -------------------------------------------------------------

_POOL = None
_POOL_SIZE = 0

#: Backoff before retrying crashed component tasks on a fresh pool, and
#: the poll interval at which a budgeted parent re-checks its deadline
#: while waiting on worker futures.  Module-level so tests can shrink
#: them.
_POOL_RETRY_BACKOFF_S = 0.05
_FUTURE_POLL_S = 0.2


def _worker_pool(workers):
    """A persistent process pool, rebuilt only when the size changes."""
    global _POOL, _POOL_SIZE
    if _POOL is None or _POOL_SIZE != workers:
        import atexit
        from concurrent.futures import ProcessPoolExecutor

        if _POOL is not None:
            _POOL.shutdown(wait=True)
        else:
            # Join workers before interpreter teardown starts; repeated
            # registration is avoided by only registering on first use.
            atexit.register(shutdown_worker_pool)
        _POOL = ProcessPoolExecutor(max_workers=workers)
        _POOL_SIZE = workers
    return _POOL


def shutdown_worker_pool():
    """Shut down the parallel-counting process pool, if one is running."""
    global _POOL, _POOL_SIZE
    if _POOL is not None:
        _POOL.shutdown(wait=True)
        _POOL = None
        _POOL_SIZE = 0


def _discard_pool():
    """Abandon the pool without waiting (used on failure paths, where the
    executor may be broken or the caller is unwinding an interrupt)."""
    global _POOL, _POOL_SIZE
    if _POOL is not None:
        _POOL.shutdown(wait=False, cancel_futures=True)
        _POOL = None
        _POOL_SIZE = 0


def _count_component_task(payload):
    """Worker-side entry: count one component with worker-local caches.

    Returns ``(value, stats counters)`` — the worker's per-task counters
    travel back so the parent can report the work done in parallel mode.
    The worker's *caches* stay module-shared across its tasks; only the
    statistics object is task-local.  The payload's knobs travel as one
    :class:`~repro.options.SolverOptions`; when the parent persists, its
    ``cache_dir`` carries the resolved store directory and the worker
    reads/writes the same on-disk store through its own store-backed
    cache front.
    """
    if maybe_fire("worker_crash"):
        # Fault injection (see repro.resilience.faults): die the way an
        # OOM kill does — no exception, no cleanup, the raw exit that
        # breaks a ProcessPoolExecutor for good.
        os._exit(17)
    component, weights, totals, opts = payload
    cache = None
    if opts.persist and opts.cache_dir is not None:
        from ..cache import persistent_component_cache

        cache = persistent_component_cache(opts.cache_dir, mem=_SHARED_CACHE)
    limit = sys.getrecursionlimit()
    needed = min(12 * len(weights) + 1000, MAX_RECURSION_LIMIT)
    if limit < needed:
        sys.setrecursionlimit(needed)
    try:
        stats = EngineStats()
        engine = CountingEngine(weights, totals, cache=cache, stats=stats,
                                branching=opts.branching, learn=opts.learn,
                                max_learned=opts.max_learned,
                                phase_saving=opts.phase_saving,
                                restarts=opts.restarts)
        value = engine._count_component(component)
        return value, stats.as_dict()
    finally:
        if limit < needed:
            sys.setrecursionlimit(limit)


# -- public wrappers ---------------------------------------------------------


def wmc_cnf(cnf, weight_of_label, engine_cache=None, stats=None, options=None,
            **legacy):
    """Exact WMC of a :class:`~repro.propositional.cnf.CNF`.

    ``weight_of_label`` maps a variable label to a
    :class:`~repro.weights.WeightPair` (or a ``(w, wbar)`` tuple).
    Auxiliary Tseitin variables weigh ``(1, 1)``.  Labeled variables that
    appear in no clause contribute their full mass ``w + wbar``.

    ``engine_cache``/``stats`` override the shared component cache and
    statistics (callers wanting isolation pass fresh instances).
    ``options`` is a :class:`~repro.options.SolverOptions` (legacy
    keyword arguments — ``workers=``, ``branching=``, ``learn=``,
    ``max_learned=``, ``persist=``, ``cache_dir=``, ``phase_saving=``,
    ``restarts=`` —
    keep working and are deprecated).  ``workers`` enables process-pool
    counting of top-level components; the result is bit-identical to a
    serial run.  ``branching``, ``learn`` and ``max_learned`` configure
    the conflict-driven search (see :class:`CountingEngine`); they never
    change the counted value.

    ``persist`` layers the on-disk component store of
    :mod:`repro.cache` under the in-memory cache (``cache_dir``
    overrides the store location): component values computed by any
    process using the same store are reused, and worker processes share
    it.  Persisted values are exact, so the count stays bit-identical;
    an unusable store silently degrades to in-memory caching.
    """
    opts = SolverOptions.from_kwargs(options, **legacy)
    if cnf.contradictory:
        return Fraction(0)

    weights = {}
    totals = {}
    for v in range(1, cnf.num_vars + 1):
        label = cnf.labels.get(v)
        if label is None:
            pair = WeightPair(1, 1)
        else:
            pair = weight_of_label(label)
            if not isinstance(pair, WeightPair):
                pair = WeightPair(*pair)
        w, wbar = _exact(pair.w), _exact(pair.wbar)
        weights[v] = (w, wbar)
        totals[v] = w + wbar

    persist_dir = None
    if opts.persist:
        from ..cache import persistent_component_cache

        mem = _SHARED_CACHE if engine_cache is None else engine_cache
        backed = persistent_component_cache(opts.cache_dir, mem=mem)
        if backed is not None:
            engine_cache = backed
            persist_dir = backed.store.directory

    engine = CountingEngine(weights, totals, cache=engine_cache, stats=stats,
                            workers=opts.workers, branching=opts.branching,
                            learn=opts.learn, max_learned=opts.max_learned,
                            persist_dir=persist_dir,
                            phase_saving=opts.phase_saving,
                            restarts=opts.restarts,
                            budget=opts.budget)
    clauses = tuple(cnf.clauses)
    # ``to_cnf`` guarantees duplicate-free, non-empty clauses.
    with span("wmc_cnf", cat="engine", vars=cnf.num_vars,
              clauses=len(clauses)):
        result = engine.run(clauses, trusted=True)

    # Labeled variables never mentioned by any clause are unconstrained.
    used = _clause_vars(clauses)
    for v in cnf.original_vars():
        if v not in used:
            result *= totals[v]
    return Fraction(result)


def cnf_for_formula(formula, universe=()):
    """The memoized CNF conversion of ``(formula, universe)``.

    Shared by :func:`wmc_formula` and the circuit compiler
    (:mod:`repro.compile`), so counting a formula and compiling it use
    one and the same CNF — a prerequisite for bit-identical results.
    The returned CNF is cached and must be treated as read-only.
    """
    key = (formula, tuple(universe) if universe else None)
    cnf = _CNF_CACHE.get(key)
    if cnf is None:
        labels = set(universe) or prop_vars(formula)
        cnf = to_cnf(formula, extra_labels=sorted(labels, key=repr))
        _CNF_CACHE.put(key, cnf)
    return cnf


def wmc_formula(formula, weight_of_label, universe=(), options=None, **legacy):
    """Exact WMC of an arbitrary propositional formula.

    ``universe`` optionally lists labels that define the full variable set
    (labels absent from the formula still contribute ``w + wbar``).

    CNF conversions are memoized on ``(formula, universe)`` — formula
    nodes are immutable and lineages are interned by the grounding layer,
    so repeated counts of one ground formula at different weights skip
    the conversion.  The cached CNF is treated as read-only.

    ``options`` is a :class:`~repro.options.SolverOptions`; legacy
    keyword arguments keep working (deprecated — see :func:`wmc_cnf` for
    the knobs).  The counted value is knob-independent.
    """
    opts = SolverOptions.from_kwargs(options, **legacy)
    cnf = cnf_for_formula(formula, universe)
    return wmc_cnf(cnf, weight_of_label, options=opts)


def model_count(formula, universe=()):
    """Number of satisfying assignments (over ``universe`` if given)."""
    result = wmc_formula(formula, lambda _label: WeightPair(1, 1), universe)
    assert result.denominator == 1
    return int(result)


def satisfiable(formula):
    """DPLL satisfiability with early exit (used for spectrum queries)."""
    cnf = to_cnf(formula)
    if cnf.contradictory:
        return False
    clauses = []
    for c in cnf.clauses:
        c = tuple(dict.fromkeys(c))
        if not c:
            return False
        clauses.append(c)
    return _sat(tuple(clauses))


def _sat_residual(clauses):
    """Watched-literal BCP plus residual extraction for the SAT path.

    Returns the residual clause tuple, or ``None`` on conflict.  Shares
    the counting engine's propagation core, so conditioning never rescans
    the clause list either: a decision is just an extra unit clause.
    """
    watches = {}
    watch_pair = []
    watched = []
    queue = []
    for c in clauses:
        if len(c) == 1:
            queue.append(c[0])
        else:
            ci = len(watched)
            watched.append(c)
            watch_pair.append([c[0], c[1]])
            watches.setdefault(c[0], []).append(ci)
            watches.setdefault(c[1], []).append(ci)
    assign = {}
    if queue and not _propagate(watched, watches, watch_pair, assign, [],
                                queue, _SAT_STATS):
        return None
    residual = []
    for c in watched:
        keep = None
        satisfied = False
        for i, l in enumerate(c):
            v = l if l > 0 else -l
            value = assign.get(v)
            if value is None:
                if keep is not None:
                    keep.append(l)
            elif value is (l > 0):
                satisfied = True
                break
            elif keep is None:
                keep = list(c[:i])
        if satisfied:
            continue
        residual.append(c if keep is None else tuple(keep))
    return tuple(residual)


#: SAT queries do not contribute to the shared counting statistics.
_SAT_STATS = EngineStats()


def _sat(clauses):
    reduced = _sat_residual(clauses)
    if reduced is None:
        return False
    if not reduced:
        return True

    # Pure literal elimination is sound for SAT (not for counting).
    polarity = {}
    for c in reduced:
        for lit in c:
            v = lit if lit > 0 else -lit
            polarity[v] = polarity.get(v, 0) | (1 if lit > 0 else 2)
    for v, pol in polarity.items():
        if pol != 3:
            return _sat(reduced + (((v if pol == 1 else -v),),))

    occurrences = {}
    for c in reduced:
        for lit in c:
            v = lit if lit > 0 else -lit
            occurrences[v] = occurrences.get(v, 0) + 1
    var = max(occurrences, key=lambda v: (occurrences[v], -v))
    return _sat(reduced + ((var,),)) or _sat(reduced + ((-var,),))
