"""Exact weighted model counting by DPLL with component decomposition.

This is the propositional engine behind every grounded computation in the
library (Section 2 reduces WFOMC to WMC of the lineage).  The counter is a
classic #DPLL:

* unit propagation with exact weight bookkeeping,
* connected-component decomposition (components share no variables, so
  their counts multiply),
* formula caching keyed on the residual clause set,
* branching on a most-occurring variable.

Weights may be negative (Skolemization needs ``(1, -1)``), so no
optimization may assume counts are monotone or positive; in particular the
pure-literal rule is *not* used for counting (it is used for plain SAT).

The count is defined over the variables that occur in the clauses; callers
account for never-occurring variables.  Variables that vanish from the
residual formula without being assigned contribute their full mass
``w + wbar``.
"""

from __future__ import annotations

from fractions import Fraction

from ..weights import WeightPair
from .cnf import to_cnf
from .formula import prop_vars

__all__ = ["wmc_cnf", "wmc_formula", "model_count", "satisfiable"]


def _clause_vars(clauses):
    result = set()
    for c in clauses:
        for lit in c:
            result.add(abs(lit))
    return result


def _condition(clauses, lit):
    """Clauses after asserting ``lit``; ``None`` signals a conflict."""
    new = []
    for c in clauses:
        if lit in c:
            continue
        if -lit in c:
            reduced = tuple(l for l in c if l != -lit)
            if not reduced:
                return None
            new.append(reduced)
        else:
            new.append(c)
    return new


class _Counter:
    def __init__(self, weights, totals):
        # weights[v] = (w, wbar); totals[v] = w + wbar
        self.weights = weights
        self.totals = totals
        self.cache = {}

    def lit_weight(self, lit):
        w, wbar = self.weights[abs(lit)]
        return w if lit > 0 else wbar

    def count(self, clauses):
        """WMC over exactly the variables occurring in ``clauses``."""
        if not clauses:
            return Fraction(1)
        for c in clauses:
            if not c:
                return Fraction(0)

        key = frozenset(clauses)
        cached = self.cache.get(key)
        if cached is not None:
            return cached

        result = self._count_inner(clauses)
        self.cache[key] = result
        return result

    def _count_inner(self, clauses):
        # Unit propagation.
        factor = Fraction(1)
        current = list(clauses)
        while True:
            unit = None
            for c in current:
                if len(c) == 1:
                    unit = c[0]
                    break
            if unit is None:
                break
            before = _clause_vars(current)
            current = _condition(current, unit)
            if current is None:
                return Fraction(0)
            factor *= self.lit_weight(unit)
            lost = before - {abs(unit)} - _clause_vars(current)
            for v in lost:
                factor *= self.totals[v]
            if factor == 0:
                # Still sound: remaining count is finite and multiplied by 0.
                return Fraction(0)
            if not current:
                return factor

        # Component decomposition via union-find over variables.
        components = self._split_components(current)
        if len(components) > 1:
            total = factor
            for comp in components:
                total *= self.count(tuple(comp))
                if total == 0:
                    return Fraction(0)
            return total

        # Branch on a most frequent variable.
        occurrences = {}
        for c in current:
            for lit in c:
                occurrences[abs(lit)] = occurrences.get(abs(lit), 0) + 1
        var = max(occurrences, key=lambda v: (occurrences[v], -v))

        total = Fraction(0)
        before = _clause_vars(current)
        for lit in (var, -var):
            conditioned = _condition(current, lit)
            if conditioned is None:
                continue
            sub_factor = self.lit_weight(lit)
            lost = before - {var} - _clause_vars(conditioned)
            for v in lost:
                sub_factor *= self.totals[v]
            total += sub_factor * self.count(tuple(conditioned))
        return factor * total

    @staticmethod
    def _split_components(clauses):
        """Partition clauses into variable-connected components."""
        parent = {}

        def find(x):
            root = x
            while parent[root] != root:
                root = parent[root]
            while parent[x] != root:
                parent[x], x = root, parent[x]
            return root

        def union(a, b):
            ra, rb = find(a), find(b)
            if ra != rb:
                parent[ra] = rb

        for c in clauses:
            first = abs(c[0])
            if first not in parent:
                parent[first] = first
            for lit in c[1:]:
                v = abs(lit)
                if v not in parent:
                    parent[v] = v
                union(first, v)

        groups = {}
        for c in clauses:
            root = find(abs(c[0]))
            groups.setdefault(root, []).append(c)
        return list(groups.values())


def wmc_cnf(cnf, weight_of_label):
    """Exact WMC of a :class:`~repro.propositional.cnf.CNF`.

    ``weight_of_label`` maps a variable label to a
    :class:`~repro.weights.WeightPair` (or a ``(w, wbar)`` tuple).
    Auxiliary Tseitin variables weigh ``(1, 1)``.  Labeled variables that
    appear in no clause contribute their full mass ``w + wbar``.
    """
    if cnf.contradictory:
        return Fraction(0)

    weights = {}
    totals = {}
    for v in range(1, cnf.num_vars + 1):
        label = cnf.labels.get(v)
        if label is None:
            pair = WeightPair(1, 1)
        else:
            pair = weight_of_label(label)
            if not isinstance(pair, WeightPair):
                pair = WeightPair(*pair)
        weights[v] = (pair.w, pair.wbar)
        totals[v] = pair.w + pair.wbar

    counter = _Counter(weights, totals)
    clauses = tuple(cnf.clauses)
    result = counter.count(clauses)

    # Labeled variables never mentioned by any clause are unconstrained.
    used = _clause_vars(clauses)
    for v in cnf.original_vars():
        if v not in used:
            result *= totals[v]
    return result


def wmc_formula(formula, weight_of_label, universe=()):
    """Exact WMC of an arbitrary propositional formula.

    ``universe`` optionally lists labels that define the full variable set
    (labels absent from the formula still contribute ``w + wbar``).
    """
    labels = set(universe) or prop_vars(formula)
    cnf = to_cnf(formula, extra_labels=sorted(labels, key=repr))
    return wmc_cnf(cnf, weight_of_label)


def model_count(formula, universe=()):
    """Number of satisfying assignments (over ``universe`` if given)."""
    result = wmc_formula(formula, lambda _label: WeightPair(1, 1), universe)
    assert result.denominator == 1
    return int(result)


def satisfiable(formula):
    """DPLL satisfiability with early exit (used for spectrum queries)."""
    cnf = to_cnf(formula)
    if cnf.contradictory:
        return False
    clauses = [tuple(c) for c in cnf.clauses]
    return _sat(clauses)


def _sat(clauses):
    while True:
        if not clauses:
            return True
        unit = None
        for c in clauses:
            if not c:
                return False
            if len(c) == 1:
                unit = c[0]
                break
        if unit is None:
            break
        clauses = _condition(clauses, unit)
        if clauses is None:
            return False

    if not clauses:
        return True

    # Pure literal elimination is sound for SAT.
    polarity = {}
    for c in clauses:
        for lit in c:
            v = abs(lit)
            polarity[v] = polarity.get(v, 0) | (1 if lit > 0 else 2)
    for v, pol in polarity.items():
        if pol != 3:
            lit = v if pol == 1 else -v
            reduced = _condition(clauses, lit)
            if reduced is None:
                return False
            return _sat(reduced)

    occurrences = {}
    for c in clauses:
        for lit in c:
            occurrences[abs(lit)] = occurrences.get(abs(lit), 0) + 1
    var = max(occurrences, key=lambda v: (occurrences[v], -v))
    for lit in (var, -var):
        conditioned = _condition(clauses, lit)
        if conditioned is not None and _sat(conditioned):
            return True
    return False
