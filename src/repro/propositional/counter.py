"""Exact weighted model counting: a watched-literal, component-caching #DPLL.

This is the propositional engine behind every grounded computation in the
library (Section 2 reduces WFOMC to WMC of the lineage).  The counter is a
sharpSAT-style #DPLL:

* **watched-literal unit propagation**: every clause watches two of its
  literals through per-literal watch lists, so asserting a literal only
  visits the clauses watching its negation — never the whole clause list.
  Clause state is lazy: satisfied clauses are discovered at residual
  extraction time, not eagerly during propagation;
* one **fused residual pass** per branch: extracting the residual formula,
  splitting it into variable-connected components (union-find), and
  collecting the surviving variables all happen in a single scan;
* *canonical* component caching: each residual component is renamed to a
  first-occurrence canonical variable numbering before the cache lookup,
  so components that are structurally identical up to that renaming —
  which symmetric lineages of different domain elements produce in
  abundance — share one cache entry.  (This is renaming, not graph
  canonization: isomorphic components whose clauses or literals arrive
  in incompatible orders hash to different entries.)  The cache key
  includes the weight pair of every component variable, which makes the
  cache safe to share across calls with different weight functions;
* **incremental cache keys**: the canonical renaming of a component is
  memoized on the frozen component itself (a weight-independent
  structure), so repeated lookups of the same residual skip the
  re-normalization entirely and only assemble the weight row;
* unit-propagation-aware branching: decisions pick the variable with the
  most occurrences in minimum-length clauses (a MOMS heuristic), so at
  least one branch immediately triggers propagation;
* an opt-in **parallel mode** (``workers=N``): top-level components are
  independent by construction, so they are farmed to a persistent process
  pool.  The parent cache acts as a read-through front (components already
  cached are never dispatched; worker results are merged back under their
  canonical keys), and exact arithmetic makes the merged result
  bit-identical to a serial run.

Weights may be negative (Skolemization needs ``(1, -1)``), so no
optimization may assume counts are monotone or positive; in particular the
pure-literal rule is *not* used for counting (it is used for plain SAT).
Integer weights are kept as machine integers internally and only converted
to :class:`~fractions.Fraction` at the API boundary.

The count is defined over the variables that occur in the clauses; callers
account for never-occurring variables.  Variables that vanish from the
residual formula without being assigned contribute their full mass
``w + wbar``.
"""

from __future__ import annotations

import sys
from fractions import Fraction

from ..utils import LRUCache
from ..weights import WeightPair
from .cnf import to_cnf
from .formula import prop_vars

__all__ = [
    "CountingEngine",
    "EngineStats",
    "engine_stats",
    "reset_engine",
    "shutdown_worker_pool",
    "wmc_cnf",
    "wmc_formula",
    "model_count",
    "satisfiable",
]

#: Ceiling for the temporary recursion-limit raise in
#: :meth:`CountingEngine.run`; ~50k Python frames fit comfortably in the
#: default 8 MB C stack, far past any instance the engine can finish.
MAX_RECURSION_LIMIT = 50_000

#: Upper bound on shared component-cache entries; the cache is cleared
#: wholesale when it fills (component values are cheap to recompute
#: relative to unbounded memory growth on adversarial workloads).
MAX_CACHE_ENTRIES = 1 << 18

#: Upper bound on memoized canonical-key entries.  Keys are
#: weight-independent renamings, small relative to the values cache.
MAX_KEY_CACHE_ENTRIES = 1 << 16


class EngineStats:
    """Counters describing the work done by the engine.

    ``propagations`` counts assigned literals, ``watch_moves`` counts
    watch-list relocations during propagation, ``key_hits``/``key_misses``
    describe the canonical-key memo, ``cache_hits``/``cache_misses`` the
    component value cache, and ``parallel_tasks`` the number of top-level
    components dispatched to worker processes.
    """

    __slots__ = ("calls", "decisions", "propagations", "watch_moves",
                 "component_splits", "cache_hits", "cache_misses",
                 "key_hits", "key_misses", "parallel_tasks")

    def __init__(self):
        self.reset()

    def reset(self):
        self.calls = 0
        self.decisions = 0
        self.propagations = 0
        self.watch_moves = 0
        self.component_splits = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.key_hits = 0
        self.key_misses = 0
        self.parallel_tasks = 0

    def as_dict(self):
        return {name: getattr(self, name) for name in self.__slots__}

    def hit_rates(self):
        """Per-cache hit rates (``None`` when a cache saw no lookups)."""
        return {
            "cache_hit_rate": _hit_rate(self.cache_hits, self.cache_misses),
            "key_hit_rate": _hit_rate(self.key_hits, self.key_misses),
        }

    def merge_worker(self, counters):
        """Fold a worker task's counter dict into these statistics, so
        parallel runs report the work actually done (``calls`` excluded:
        a worker task is not a separate engine call)."""
        for name, value in counters.items():
            if name != "calls":
                setattr(self, name, getattr(self, name) + value)

    def __repr__(self):
        body = ", ".join("{}={}".format(k, v) for k, v in self.as_dict().items())
        return "EngineStats({})".format(body)


def _hit_rate(hits, misses):
    lookups = hits + misses
    return round(hits / lookups, 4) if lookups else None


#: Caches and stats shared by all engines by default.  The value cache is
#: safe to share because its keys embed the weight pair of every variable
#: in the component; the key cache stores weight-*independent* canonical
#: renamings, so it is safe to share unconditionally.
_SHARED_CACHE = {}
_SHARED_KEY_CACHE = {}
_SHARED_STATS = EngineStats()

#: Memoized CNF conversions for :func:`wmc_formula`.  Lineages are
#: interned by the grounding cache, so repeated counts of the same ground
#: formula (weight sweeps, probability numerators, benchmarks) skip
#: ``to_cnf`` entirely.
_CNF_CACHE = LRUCache(maxsize=64)


def engine_stats():
    """Shared engine statistics plus cache sizes and per-cache hit rates."""
    stats = _SHARED_STATS.as_dict()
    stats["cache_entries"] = len(_SHARED_CACHE)
    stats["key_entries"] = len(_SHARED_KEY_CACHE)
    stats["cnf_cache"] = _CNF_CACHE.stats()
    stats.update(_SHARED_STATS.hit_rates())
    return stats


def reset_engine():
    """Clear the shared caches and zero the shared statistics."""
    _SHARED_CACHE.clear()
    _SHARED_KEY_CACHE.clear()
    _CNF_CACHE.clear()
    _SHARED_STATS.reset()


def _exact(value):
    """Keep integer-valued weights as machine ints for fast arithmetic."""
    if isinstance(value, int):
        return value
    if isinstance(value, Fraction):
        return value.numerator if value.denominator == 1 else value
    frac = Fraction(value)
    return frac.numerator if frac.denominator == 1 else frac


# -- watched-literal propagation core ---------------------------------------
#
# The propagation state of one search node is four plain containers kept in
# locals for speed:
#
#   clause_lits  list of clause tuples (>= 2 distinct literals each)
#   watches      dict literal -> list of clause indices watching it
#   watch_pair   list of 2-element lists: the literals clause ci watches
#   assign       dict var -> bool (the trail records insertion order)
#
# Watch lists tolerate stale entries (a clause that moved a watch away is
# lazily dropped the next time the old list is scanned), which lets the two
# branch polarities share one watch structure without undo bookkeeping: the
# watched-literal invariant only requires watched literals to be non-false,
# and between polarities the assignment is reset to empty.


def _propagate(clause_lits, watches, watch_pair, assign, trail, queue, stats):
    """Propagate ``queue`` to fixpoint.  Returns ``False`` on conflict.

    Every assignment visits only the watchers of the falsified literal;
    no clause list is ever rescanned.
    """
    propagations = 0
    moves = 0
    qi = 0
    while qi < len(queue):
        lit = queue[qi]
        qi += 1
        if lit > 0:
            var, want = lit, True
        else:
            var, want = -lit, False
        current = assign.get(var)
        if current is not None:
            if current is not want:
                stats.propagations += propagations
                stats.watch_moves += moves
                return False
            continue
        assign[var] = want
        trail.append(var)
        propagations += 1
        false_lit = -lit
        watchlist = watches.get(false_lit)
        if not watchlist:
            continue
        keep = []
        conflict = False
        for idx, ci in enumerate(watchlist):
            pair = watch_pair[ci]
            first, second = pair
            if first == false_lit:
                other = second
            elif second == false_lit:
                other = first
            else:
                continue  # stale entry: the clause moved this watch away
            if other > 0:
                other_var, other_want = other, True
            else:
                other_var, other_want = -other, False
            other_value = assign.get(other_var)
            if other_value is other_want:
                keep.append(ci)  # clause satisfied; leave the watch put
                continue
            moved = False
            for l in clause_lits[ci]:
                if l == other or l == false_lit:
                    continue
                v = l if l > 0 else -l
                value = assign.get(v)
                if value is None or value is (l > 0):
                    pair[0] = other
                    pair[1] = l
                    target = watches.get(l)
                    if target is None:
                        watches[l] = [ci]
                    else:
                        target.append(ci)
                    moved = True
                    moves += 1
                    break
            if moved:
                continue
            keep.append(ci)
            if other_value is None:
                queue.append(other)  # unit: the other watch is forced
            else:
                conflict = True  # other watch false, no replacement
                break
        if conflict:
            # Preserve the unprocessed tail so the watch lists stay
            # consistent for the sibling polarity (ci itself is in keep).
            watches[false_lit] = keep + watchlist[idx + 1:]
            stats.propagations += propagations
            stats.watch_moves += moves
            return False
        watches[false_lit] = keep
    stats.propagations += propagations
    stats.watch_moves += moves
    return True


def _find(parent, x):
    root = x
    while parent[root] != root:
        root = parent[root]
    while parent[x] != root:
        parent[x], x = root, parent[x]
    return root


def _residual_components(clause_lits, assign):
    """One fused pass: extract the residual, split it into components.

    Returns ``(components, residual_vars)`` where ``components`` is a list
    of tuples of residual clause tuples and ``residual_vars`` is a set-like
    view of the unassigned variables still mentioned (the union-find parent
    map, whose keys are exactly those variables).

    After a conflict-free propagation every unsatisfied clause has at
    least two unassigned literals, so no residual clause is empty or unit.
    """
    parent = {}
    residual = []
    assign_get = assign.get
    for c in clause_lits:
        keep = None
        satisfied = False
        for i, l in enumerate(c):
            value = assign_get(l if l > 0 else -l)
            if value is None:
                if keep is not None:
                    keep.append(l)
            elif value is (l > 0):
                satisfied = True
                break
            elif keep is None:
                keep = list(c[:i])
        if satisfied:
            continue
        clause = c if keep is None else tuple(keep)
        l0 = clause[0]
        first = l0 if l0 > 0 else -l0
        if first not in parent:
            parent[first] = first
        for l in clause[1:]:
            v = l if l > 0 else -l
            if v not in parent:
                parent[v] = v
                parent[_find(parent, first)] = v
                continue
            ra, rb = _find(parent, first), _find(parent, v)
            if ra != rb:
                parent[ra] = rb
        residual.append(clause)

    if not residual:
        return [], parent
    groups = {}
    for clause in residual:
        l0 = clause[0]
        root = _find(parent, l0 if l0 > 0 else -l0)
        group = groups.get(root)
        if group is None:
            groups[root] = [clause]
        else:
            group.append(clause)
    return [tuple(g) for g in groups.values()], parent


def _canonical_structure(component):
    """Weight-independent canonical form of a component.

    Variables are renamed to first-occurrence order; returns the sorted
    renamed clause rows plus the original variables in renaming order (so
    a weight row can be assembled per engine without re-normalizing).
    """
    rename = {}
    rename_get = rename.get
    var_order = []
    rows = []
    for c in component:
        row = []
        for lit in c:
            v = lit if lit > 0 else -lit
            idx = rename_get(v)
            if idx is None:
                idx = len(var_order) + 1
                rename[v] = idx
                var_order.append(v)
            row.append(idx if lit > 0 else -idx)
        row.sort()
        rows.append(tuple(row))
    rows.sort()
    return tuple(rows), tuple(var_order)


class CountingEngine:
    """Exact WMC over integer-variable clauses with component caching.

    ``weights`` maps each variable to its ``(w, wbar)`` pair and ``totals``
    to ``w + wbar``; values may be ints or Fractions.  ``cache``/``stats``/
    ``key_cache`` default to module-level shared instances.  ``workers``
    (``None`` or an int > 1) enables process-pool counting of top-level
    components.
    """

    __slots__ = ("weights", "totals", "cache", "stats", "key_cache", "workers")

    def __init__(self, weights, totals, cache=None, stats=None,
                 key_cache=None, workers=None):
        self.weights = weights
        self.totals = totals
        self.cache = _SHARED_CACHE if cache is None else cache
        self.stats = _SHARED_STATS if stats is None else stats
        self.key_cache = _SHARED_KEY_CACHE if key_cache is None else key_cache
        self.workers = workers

    # -- public entry ------------------------------------------------------

    def run(self, clauses, trusted=False):
        """WMC over exactly the variables occurring in ``clauses``.

        ``trusted`` skips per-clause literal deduplication for callers
        (like :func:`wmc_cnf`) whose clauses are already duplicate-free
        tuples with at least one literal each.
        """
        self.stats.calls += 1
        if trusted:
            normalized = clauses if isinstance(clauses, tuple) else tuple(clauses)
        else:
            normalized = []
            for c in clauses:
                c = tuple(dict.fromkeys(c))  # drop duplicate literals
                if not c:
                    return Fraction(0)
                normalized.append(c)
            normalized = tuple(normalized)
        if not normalized:
            return Fraction(1)
        # Deep instances recurse one frame set per decision level; raise
        # the interpreter limit proportionally but keep a hard cap so a
        # pathological instance raises RecursionError instead of
        # overflowing the C stack, and restore the limit afterwards.
        limit = sys.getrecursionlimit()
        needed = min(12 * len(self.weights) + 1000, MAX_RECURSION_LIMIT)
        if limit < needed:
            sys.setrecursionlimit(needed)
        try:
            return Fraction(self._reduce(normalized))
        finally:
            if limit < needed:
                sys.setrecursionlimit(limit)

    # -- node evaluation ---------------------------------------------------

    def _reduce(self, clauses):
        """Evaluate the top-level node: propagate units, split, recurse."""
        factor = 1
        if any(len(c) == 1 for c in clauses):
            propagated = self._reduce_units(clauses)
            if propagated is None:
                return 0
            factor, components = propagated
            if factor == 0:
                return 0
        else:
            # Unit-free: nothing propagates and no variable vanishes, so
            # the node is exactly its component split — memoized on the
            # frozen clause tuple (tagged so it shares the key cache),
            # which makes a repeated run a handful of dict hits.
            key_cache = self.key_cache
            memo_key = ("split", clauses)
            components = key_cache.get(memo_key)
            if components is None:
                components, _residual_vars = _residual_components(clauses, {})
                if len(key_cache) >= MAX_KEY_CACHE_ENTRIES:
                    key_cache.clear()
                key_cache[memo_key] = components
        if len(components) > 1:
            self.stats.component_splits += 1
            if self.workers and self.workers > 1:
                return factor * self._count_components_parallel(components)
        for component in components:
            value = self._count_component(component)
            if value == 0:
                return 0
            factor *= value
        return factor

    def _reduce_units(self, clauses):
        """Top-level build + unit propagation; ``None`` on conflict,
        otherwise ``(weight factor, residual components)``."""
        watches = {}
        watch_pair = []
        watched = []
        queue = []
        all_vars = set()
        for c in clauses:
            for lit in c:
                all_vars.add(lit if lit > 0 else -lit)
            if len(c) == 1:
                queue.append(c[0])
            else:
                ci = len(watched)
                watched.append(c)
                watch_pair.append([c[0], c[1]])
                watches.setdefault(c[0], []).append(ci)
                watches.setdefault(c[1], []).append(ci)

        assign = {}
        trail = []
        if not _propagate(watched, watches, watch_pair, assign, trail,
                          queue, self.stats):
            return None
        weights = self.weights
        factor = 1
        for v in trail:
            pair = weights[v]
            factor *= pair[0] if assign[v] else pair[1]
        if factor == 0:
            # Sound: the remaining count is finite and multiplied by 0.
            return 0, []
        components, residual_vars = _residual_components(watched, assign)
        totals = self.totals
        for v in all_vars:
            if v not in assign and v not in residual_vars:
                factor *= totals[v]
        return factor, components

    # -- component cache ---------------------------------------------------

    def _component_key(self, component):
        """Cache key for a component: memoized canonical structure plus
        the weight row assembled for this engine's weight function.

        Returns ``(key, var_order)`` — the component's variables in
        first-occurrence order ride along so callers never re-derive the
        variable set.
        """
        key_cache = self.key_cache
        entry = key_cache.get(component)
        if entry is None:
            self.stats.key_misses += 1
            entry = _canonical_structure(component)
            if len(key_cache) >= MAX_KEY_CACHE_ENTRIES:
                key_cache.clear()
            key_cache[component] = entry
        else:
            self.stats.key_hits += 1
        rows, var_order = entry
        weights = self.weights
        return (rows, tuple(weights[v] for v in var_order)), var_order

    def _count_component(self, component):
        """Count one variable-connected component through the cache."""
        key, var_order = self._component_key(component)
        cached = self.cache.get(key)
        if cached is not None:
            self.stats.cache_hits += 1
            return cached
        self.stats.cache_misses += 1
        result = self._branch(component, var_order)
        if len(self.cache) >= MAX_CACHE_ENTRIES:
            self.cache.clear()
        self.cache[key] = result
        return result

    # -- branching ---------------------------------------------------------

    def _branch(self, component, var_order):
        """Split on a decision variable chosen to maximize propagation.

        ``component`` clauses all have at least two distinct literals (the
        residual extraction guarantees it), so every clause starts with two
        valid watches.  ``var_order`` is the component's variable set (in
        canonical first-occurrence order, from the key memo).
        """
        stats = self.stats
        stats.decisions += 1
        clause_lits = list(component)

        # Build pass: watch lists plus MOMS scores in one scan.
        watches = {}
        watch_pair = []
        occurrences = {}
        occurrences_get = occurrences.get
        short_scores = {}
        short_scores_get = short_scores.get
        watches_setdefault = watches.setdefault
        min_len = min(len(c) for c in clause_lits)
        for ci, c in enumerate(clause_lits):
            short = len(c) == min_len
            for lit in c:
                v = lit if lit > 0 else -lit
                occurrences[v] = occurrences_get(v, 0) + 1
                if short:
                    short_scores[v] = short_scores_get(v, 0) + 1
            watch_pair.append([c[0], c[1]])
            watches_setdefault(c[0], []).append(ci)
            watches_setdefault(c[1], []).append(ci)

        # MOMS: most occurrences in minimum-size clauses, so the other
        # polarity shortens those clauses toward units.
        var = max(
            short_scores,
            key=lambda v: (short_scores[v], occurrences[v], -v),
        )

        weights = self.weights
        totals = self.totals
        w, wbar = weights[var]
        total = 0
        for lit, lit_weight in ((var, w), (-var, wbar)):
            if lit_weight == 0:
                continue
            assign = {}
            trail = []
            if not _propagate(clause_lits, watches, watch_pair, assign,
                              trail, [lit], stats):
                continue
            factor = 1
            for v in trail:
                pair = weights[v]
                factor *= pair[0] if assign[v] else pair[1]
            if factor == 0:
                continue
            components, residual_vars = _residual_components(clause_lits, assign)
            for v in var_order:
                if v not in assign and v not in residual_vars:
                    factor *= totals[v]
            if len(components) > 1:
                stats.component_splits += 1
            for child in components:
                value = self._count_component(child)
                if value == 0:
                    factor = 0
                    break
                factor *= value
            total += factor
        return total

    # -- parallel counting -------------------------------------------------

    def _count_components_parallel(self, components):
        """Count top-level components on a process pool.

        The parent cache is a read-through front: already-cached components
        are never dispatched, and worker results are merged back under
        their canonical keys.  Each worker process keeps its own persistent
        shared cache across tasks.  Multiplication of exact values is
        order-independent, so the result is bit-identical to a serial run.
        """
        stats = self.stats
        weights = self.weights
        totals = self.totals
        results = [None] * len(components)
        pending = []  # one entry per distinct canonical key
        key_indices = {}
        for i, component in enumerate(components):
            key, var_order = self._component_key(component)
            cached = self.cache.get(key)
            if cached is not None:
                stats.cache_hits += 1
                results[i] = cached
                continue
            indices = key_indices.get(key)
            if indices is None:
                # First sight of this key: dispatch one task for it.
                stats.cache_misses += 1
                key_indices[key] = [i]
                pending.append((key, component, var_order))
            else:
                # Isomorphic sibling: reuse the dispatched task's result.
                stats.cache_hits += 1
                indices.append(i)
        if pending:
            pool = _worker_pool(self.workers)
            futures = []
            try:
                for key, component, var_order in pending:
                    payload = (
                        component,
                        {v: weights[v] for v in var_order},
                        {v: totals[v] for v in var_order},
                    )
                    futures.append((key, pool.submit(_count_component_task, payload)))
                    stats.parallel_tasks += 1
                for key, future in futures:
                    value, worker_stats = future.result()
                    stats.merge_worker(worker_stats)
                    if len(self.cache) >= MAX_CACHE_ENTRIES:
                        self.cache.clear()
                    self.cache[key] = value
                    for i in key_indices[key]:
                        results[i] = value
            except BaseException:
                # A dead worker (OOM kill, crash) leaves the executor
                # permanently broken; drop it so the next parallel call
                # starts a fresh pool instead of failing forever.
                _discard_pool()
                raise
        total = 1
        for value in results:
            if value == 0:
                return 0
            total *= value
        return total


def _clause_vars(clauses):
    result = set()
    for c in clauses:
        for lit in c:
            result.add(abs(lit))
    return result


# -- worker pool -------------------------------------------------------------

_POOL = None
_POOL_SIZE = 0


def _worker_pool(workers):
    """A persistent process pool, rebuilt only when the size changes."""
    global _POOL, _POOL_SIZE
    if _POOL is None or _POOL_SIZE != workers:
        import atexit
        from concurrent.futures import ProcessPoolExecutor

        if _POOL is not None:
            _POOL.shutdown(wait=True)
        else:
            # Join workers before interpreter teardown starts; repeated
            # registration is avoided by only registering on first use.
            atexit.register(shutdown_worker_pool)
        _POOL = ProcessPoolExecutor(max_workers=workers)
        _POOL_SIZE = workers
    return _POOL


def shutdown_worker_pool():
    """Shut down the parallel-counting process pool, if one is running."""
    global _POOL, _POOL_SIZE
    if _POOL is not None:
        _POOL.shutdown(wait=True)
        _POOL = None
        _POOL_SIZE = 0


def _discard_pool():
    """Abandon the pool without waiting (used on failure paths, where the
    executor may be broken or the caller is unwinding an interrupt)."""
    global _POOL, _POOL_SIZE
    if _POOL is not None:
        _POOL.shutdown(wait=False, cancel_futures=True)
        _POOL = None
        _POOL_SIZE = 0


def _count_component_task(payload):
    """Worker-side entry: count one component with worker-local caches.

    Returns ``(value, stats counters)`` — the worker's per-task counters
    travel back so the parent can report the work done in parallel mode.
    The worker's *caches* stay module-shared across its tasks; only the
    statistics object is task-local.
    """
    component, weights, totals = payload
    limit = sys.getrecursionlimit()
    needed = min(12 * len(weights) + 1000, MAX_RECURSION_LIMIT)
    if limit < needed:
        sys.setrecursionlimit(needed)
    try:
        stats = EngineStats()
        engine = CountingEngine(weights, totals, stats=stats)
        value = engine._count_component(component)
        return value, stats.as_dict()
    finally:
        if limit < needed:
            sys.setrecursionlimit(limit)


# -- public wrappers ---------------------------------------------------------


def wmc_cnf(cnf, weight_of_label, engine_cache=None, stats=None, workers=None):
    """Exact WMC of a :class:`~repro.propositional.cnf.CNF`.

    ``weight_of_label`` maps a variable label to a
    :class:`~repro.weights.WeightPair` (or a ``(w, wbar)`` tuple).
    Auxiliary Tseitin variables weigh ``(1, 1)``.  Labeled variables that
    appear in no clause contribute their full mass ``w + wbar``.

    ``engine_cache``/``stats`` override the shared component cache and
    statistics (callers wanting isolation pass fresh instances).
    ``workers`` enables process-pool counting of top-level components;
    the result is bit-identical to a serial run.
    """
    if cnf.contradictory:
        return Fraction(0)

    weights = {}
    totals = {}
    for v in range(1, cnf.num_vars + 1):
        label = cnf.labels.get(v)
        if label is None:
            pair = WeightPair(1, 1)
        else:
            pair = weight_of_label(label)
            if not isinstance(pair, WeightPair):
                pair = WeightPair(*pair)
        w, wbar = _exact(pair.w), _exact(pair.wbar)
        weights[v] = (w, wbar)
        totals[v] = w + wbar

    engine = CountingEngine(weights, totals, cache=engine_cache, stats=stats,
                            workers=workers)
    clauses = tuple(cnf.clauses)
    # ``to_cnf`` guarantees duplicate-free, non-empty clauses.
    result = engine.run(clauses, trusted=True)

    # Labeled variables never mentioned by any clause are unconstrained.
    used = _clause_vars(clauses)
    for v in cnf.original_vars():
        if v not in used:
            result *= totals[v]
    return Fraction(result)


def wmc_formula(formula, weight_of_label, universe=(), workers=None):
    """Exact WMC of an arbitrary propositional formula.

    ``universe`` optionally lists labels that define the full variable set
    (labels absent from the formula still contribute ``w + wbar``).

    CNF conversions are memoized on ``(formula, universe)`` — formula
    nodes are immutable and lineages are interned by the grounding layer,
    so repeated counts of one ground formula at different weights skip
    the conversion.  The cached CNF is treated as read-only.
    """
    key = (formula, tuple(universe) if universe else None)
    cnf = _CNF_CACHE.get(key)
    if cnf is None:
        labels = set(universe) or prop_vars(formula)
        cnf = to_cnf(formula, extra_labels=sorted(labels, key=repr))
        _CNF_CACHE.put(key, cnf)
    return wmc_cnf(cnf, weight_of_label, workers=workers)


def model_count(formula, universe=()):
    """Number of satisfying assignments (over ``universe`` if given)."""
    result = wmc_formula(formula, lambda _label: WeightPair(1, 1), universe)
    assert result.denominator == 1
    return int(result)


def satisfiable(formula):
    """DPLL satisfiability with early exit (used for spectrum queries)."""
    cnf = to_cnf(formula)
    if cnf.contradictory:
        return False
    clauses = []
    for c in cnf.clauses:
        c = tuple(dict.fromkeys(c))
        if not c:
            return False
        clauses.append(c)
    return _sat(tuple(clauses))


def _sat_residual(clauses):
    """Watched-literal BCP plus residual extraction for the SAT path.

    Returns the residual clause tuple, or ``None`` on conflict.  Shares
    the counting engine's propagation core, so conditioning never rescans
    the clause list either: a decision is just an extra unit clause.
    """
    watches = {}
    watch_pair = []
    watched = []
    queue = []
    for c in clauses:
        if len(c) == 1:
            queue.append(c[0])
        else:
            ci = len(watched)
            watched.append(c)
            watch_pair.append([c[0], c[1]])
            watches.setdefault(c[0], []).append(ci)
            watches.setdefault(c[1], []).append(ci)
    assign = {}
    if queue and not _propagate(watched, watches, watch_pair, assign, [],
                                queue, _SAT_STATS):
        return None
    residual = []
    for c in watched:
        keep = None
        satisfied = False
        for i, l in enumerate(c):
            v = l if l > 0 else -l
            value = assign.get(v)
            if value is None:
                if keep is not None:
                    keep.append(l)
            elif value is (l > 0):
                satisfied = True
                break
            elif keep is None:
                keep = list(c[:i])
        if satisfied:
            continue
        residual.append(c if keep is None else tuple(keep))
    return tuple(residual)


#: SAT queries do not contribute to the shared counting statistics.
_SAT_STATS = EngineStats()


def _sat(clauses):
    reduced = _sat_residual(clauses)
    if reduced is None:
        return False
    if not reduced:
        return True

    # Pure literal elimination is sound for SAT (not for counting).
    polarity = {}
    for c in reduced:
        for lit in c:
            v = lit if lit > 0 else -lit
            polarity[v] = polarity.get(v, 0) | (1 if lit > 0 else 2)
    for v, pol in polarity.items():
        if pol != 3:
            return _sat(reduced + (((v if pol == 1 else -v),),))

    occurrences = {}
    for c in reduced:
        for lit in c:
            v = lit if lit > 0 else -lit
            occurrences[v] = occurrences.get(v, 0) + 1
    var = max(occurrences, key=lambda v: (occurrences[v], -v))
    return _sat(reduced + ((var,),)) or _sat(reduced + ((-var,),))
