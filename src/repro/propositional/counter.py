"""Exact weighted model counting: a component-caching #DPLL engine.

This is the propositional engine behind every grounded computation in the
library (Section 2 reduces WFOMC to WMC of the lineage).  The counter is a
sharpSAT-style #DPLL:

* queue-based unit propagation with exact weight bookkeeping,
* connected-component decomposition (components share no variables, so
  their counts multiply),
* *canonical* component caching: each residual component is renamed to a
  canonical variable numbering before the cache lookup, so isomorphic
  components produced anywhere in the search — or by symmetric lineages of
  different domain elements — share one cache entry.  The cache key
  includes the weight pair of every component variable, which makes the
  cache safe to share across calls with different weight functions;
* unit-propagation-aware branching: decisions pick the variable with the
  most occurrences in minimum-length clauses (a MOMS heuristic), so at
  least one branch immediately triggers propagation.

Weights may be negative (Skolemization needs ``(1, -1)``), so no
optimization may assume counts are monotone or positive; in particular the
pure-literal rule is *not* used for counting (it is used for plain SAT).
Integer weights are kept as machine integers internally and only converted
to :class:`~fractions.Fraction` at the API boundary.

The count is defined over the variables that occur in the clauses; callers
account for never-occurring variables.  Variables that vanish from the
residual formula without being assigned contribute their full mass
``w + wbar``.
"""

from __future__ import annotations

import sys
from fractions import Fraction

from ..weights import WeightPair
from .cnf import to_cnf
from .formula import prop_vars

__all__ = [
    "CountingEngine",
    "EngineStats",
    "engine_stats",
    "reset_engine",
    "wmc_cnf",
    "wmc_formula",
    "model_count",
    "satisfiable",
]

#: Ceiling for the temporary recursion-limit raise in
#: :meth:`CountingEngine.run`; ~50k Python frames fit comfortably in the
#: default 8 MB C stack, far past any instance the engine can finish.
MAX_RECURSION_LIMIT = 50_000

#: Upper bound on shared component-cache entries; the cache is cleared
#: wholesale when it fills (component values are cheap to recompute
#: relative to unbounded memory growth on adversarial workloads).
MAX_CACHE_ENTRIES = 1 << 18


class EngineStats:
    """Counters describing the work done by the engine."""

    __slots__ = ("calls", "decisions", "propagations", "component_splits",
                 "cache_hits", "cache_misses")

    def __init__(self):
        self.reset()

    def reset(self):
        self.calls = 0
        self.decisions = 0
        self.propagations = 0
        self.component_splits = 0
        self.cache_hits = 0
        self.cache_misses = 0

    def as_dict(self):
        return {name: getattr(self, name) for name in self.__slots__}

    def __repr__(self):
        body = ", ".join("{}={}".format(k, v) for k, v in self.as_dict().items())
        return "EngineStats({})".format(body)


#: Cache and stats shared by all engines by default.  Safe because cache
#: keys embed the weight pair of every variable in the component.
_SHARED_CACHE = {}
_SHARED_STATS = EngineStats()


def engine_stats():
    """Shared engine statistics plus the current component-cache size."""
    stats = _SHARED_STATS.as_dict()
    stats["cache_entries"] = len(_SHARED_CACHE)
    return stats


def reset_engine():
    """Clear the shared component cache and zero the shared statistics."""
    _SHARED_CACHE.clear()
    _SHARED_STATS.reset()


def _exact(value):
    """Keep integer-valued weights as machine ints for fast arithmetic."""
    if isinstance(value, int):
        return value
    frac = Fraction(value)
    return frac.numerator if frac.denominator == 1 else frac


class CountingEngine:
    """Exact WMC over integer-variable clauses with component caching.

    ``weights`` maps each variable to its ``(w, wbar)`` pair and ``totals``
    to ``w + wbar``; values may be ints or Fractions.  ``cache``/``stats``
    default to module-level shared instances.
    """

    __slots__ = ("weights", "totals", "cache", "stats")

    def __init__(self, weights, totals, cache=None, stats=None):
        self.weights = weights
        self.totals = totals
        self.cache = _SHARED_CACHE if cache is None else cache
        self.stats = _SHARED_STATS if stats is None else stats

    # -- public entry ------------------------------------------------------

    def run(self, clauses):
        """WMC over exactly the variables occurring in ``clauses``."""
        self.stats.calls += 1
        clauses = [tuple(c) for c in clauses]
        for c in clauses:
            if not c:
                return Fraction(0)
        if not clauses:
            return Fraction(1)
        # Deep instances recurse one frame set per decision level; raise
        # the interpreter limit proportionally but keep a hard cap so a
        # pathological instance raises RecursionError instead of
        # overflowing the C stack, and restore the limit afterwards.
        limit = sys.getrecursionlimit()
        needed = min(12 * len(self.weights) + 1000, MAX_RECURSION_LIMIT)
        if limit < needed:
            sys.setrecursionlimit(needed)
        try:
            return Fraction(self._count(clauses))
        finally:
            if limit < needed:
                sys.setrecursionlimit(limit)

    # -- core recursion ----------------------------------------------------

    def _count(self, clauses):
        """Count a residual formula: propagate, split, recurse."""
        propagated = self._propagate(clauses)
        if propagated is None:
            return 0
        factor, residual = propagated
        if factor == 0 or not residual:
            return factor
        components = self._split_components(residual)
        if len(components) > 1:
            self.stats.component_splits += 1
        total = factor
        for component in components:
            value = self._count_component(component)
            if value == 0:
                return 0
            total *= value
        return total

    def _propagate(self, clauses):
        """Unit propagation to fixpoint.

        Returns ``(factor, residual)`` — the weight mass of forced and
        vanished variables times the remaining clause list — or ``None``
        on conflict.
        """
        factor = 1
        current = clauses
        assigned = None
        before = None
        while True:
            units = set()
            for c in current:
                if len(c) == 1:
                    lit = c[0]
                    if -lit in units:
                        return None
                    units.add(lit)
            if not units:
                break
            if before is None:
                before = set()
                for c in current:
                    for lit in c:
                        before.add(abs(lit))
                assigned = set()
            self.stats.propagations += len(units)
            weights = self.weights
            for lit in units:
                v = abs(lit)
                assigned.add(v)
                w, wbar = weights[v]
                factor *= w if lit > 0 else wbar
            new = []
            for c in current:
                keep = None
                satisfied = False
                for i, lit in enumerate(c):
                    if lit in units:
                        satisfied = True
                        break
                    if -lit in units:
                        if keep is None:
                            keep = list(c[:i])
                    elif keep is not None:
                        keep.append(lit)
                if satisfied:
                    continue
                if keep is None:
                    new.append(c)
                elif keep:
                    new.append(tuple(keep))
                else:
                    return None
            current = new
            if factor == 0:
                # Sound: the remaining count is finite and multiplied by 0.
                return 0, ()
        if before is not None:
            after = set()
            for c in current:
                for lit in c:
                    after.add(abs(lit))
            totals = self.totals
            for v in before - assigned - after:
                factor *= totals[v]
        return factor, current

    def _count_component(self, component):
        """Count one variable-connected component through the cache."""
        key = self._canonical_key(component)
        cached = self.cache.get(key)
        if cached is not None:
            self.stats.cache_hits += 1
            return cached
        self.stats.cache_misses += 1
        result = self._branch(component)
        if len(self.cache) >= MAX_CACHE_ENTRIES:
            self.cache.clear()
        self.cache[key] = result
        return result

    def _canonical_key(self, component):
        """Rename variables to first-occurrence order; key on structure
        plus the weight pair of each renamed variable."""
        rename = {}
        weight_row = []
        weights = self.weights
        rows = []
        for c in component:
            row = []
            for lit in c:
                v = abs(lit)
                idx = rename.get(v)
                if idx is None:
                    idx = len(rename) + 1
                    rename[v] = idx
                    weight_row.append(weights[v])
                row.append(idx if lit > 0 else -idx)
            row.sort(key=_lit_order)
            rows.append(tuple(row))
        rows.sort()
        return tuple(rows), tuple(weight_row)

    def _branch(self, clauses):
        """Split on a decision variable chosen to maximize propagation."""
        self.stats.decisions += 1
        var = self._pick_variable(clauses)
        before = set()
        for c in clauses:
            for lit in c:
                before.add(abs(lit))
        before.discard(var)
        w, wbar = self.weights[var]
        totals = self.totals
        total = 0
        for lit, lit_weight in ((var, w), (-var, wbar)):
            if lit_weight == 0:
                continue
            new = []
            after = set()
            conflict = False
            for c in clauses:
                if lit in c:
                    continue
                if -lit in c:
                    keep = tuple(l for l in c if l != -lit)
                    if not keep:
                        conflict = True
                        break
                    new.append(keep)
                    for l in keep:
                        after.add(abs(l))
                else:
                    new.append(c)
                    for l in c:
                        after.add(abs(l))
            if conflict:
                continue
            sub = lit_weight
            for v in before - after:
                sub *= totals[v]
            if new:
                sub *= self._count(new)
            total += sub
        return total

    @staticmethod
    def _pick_variable(clauses):
        """MOMS: most occurrences in minimum-size clauses, so the other
        polarity shortens those clauses toward units."""
        min_len = min(len(c) for c in clauses)
        occurrences = {}
        short_scores = {}
        for c in clauses:
            short = len(c) == min_len
            for lit in c:
                v = abs(lit)
                occurrences[v] = occurrences.get(v, 0) + 1
                if short:
                    short_scores[v] = short_scores.get(v, 0) + 1
        return max(
            short_scores,
            key=lambda v: (short_scores[v], occurrences[v], -v),
        )

    @staticmethod
    def _split_components(clauses):
        """Partition clauses into variable-connected components."""
        parent = {}

        def find(x):
            root = x
            while parent[root] != root:
                root = parent[root]
            while parent[x] != root:
                parent[x], x = root, parent[x]
            return root

        for c in clauses:
            first = abs(c[0])
            if first not in parent:
                parent[first] = first
            for lit in c[1:]:
                v = abs(lit)
                if v not in parent:
                    parent[v] = v
                ra, rb = find(first), find(v)
                if ra != rb:
                    parent[ra] = rb

        groups = {}
        for c in clauses:
            root = find(abs(c[0]))
            groups.setdefault(root, []).append(c)
        return list(groups.values())


def _lit_order(lit):
    return (abs(lit), lit)


def _clause_vars(clauses):
    result = set()
    for c in clauses:
        for lit in c:
            result.add(abs(lit))
    return result


def _condition(clauses, lit):
    """Clauses after asserting ``lit``; ``None`` signals a conflict."""
    new = []
    for c in clauses:
        if lit in c:
            continue
        if -lit in c:
            reduced = tuple(l for l in c if l != -lit)
            if not reduced:
                return None
            new.append(reduced)
        else:
            new.append(c)
    return new


def wmc_cnf(cnf, weight_of_label, engine_cache=None, stats=None):
    """Exact WMC of a :class:`~repro.propositional.cnf.CNF`.

    ``weight_of_label`` maps a variable label to a
    :class:`~repro.weights.WeightPair` (or a ``(w, wbar)`` tuple).
    Auxiliary Tseitin variables weigh ``(1, 1)``.  Labeled variables that
    appear in no clause contribute their full mass ``w + wbar``.

    ``engine_cache``/``stats`` override the shared component cache and
    statistics (callers wanting isolation pass fresh instances).
    """
    if cnf.contradictory:
        return Fraction(0)

    weights = {}
    totals = {}
    for v in range(1, cnf.num_vars + 1):
        label = cnf.labels.get(v)
        if label is None:
            pair = WeightPair(1, 1)
        else:
            pair = weight_of_label(label)
            if not isinstance(pair, WeightPair):
                pair = WeightPair(*pair)
        w, wbar = _exact(pair.w), _exact(pair.wbar)
        weights[v] = (w, wbar)
        totals[v] = w + wbar

    engine = CountingEngine(weights, totals, cache=engine_cache, stats=stats)
    clauses = tuple(cnf.clauses)
    result = engine.run(clauses)

    # Labeled variables never mentioned by any clause are unconstrained.
    used = _clause_vars(clauses)
    for v in cnf.original_vars():
        if v not in used:
            result *= totals[v]
    return Fraction(result)


def wmc_formula(formula, weight_of_label, universe=()):
    """Exact WMC of an arbitrary propositional formula.

    ``universe`` optionally lists labels that define the full variable set
    (labels absent from the formula still contribute ``w + wbar``).
    """
    labels = set(universe) or prop_vars(formula)
    cnf = to_cnf(formula, extra_labels=sorted(labels, key=repr))
    return wmc_cnf(cnf, weight_of_label)


def model_count(formula, universe=()):
    """Number of satisfying assignments (over ``universe`` if given)."""
    result = wmc_formula(formula, lambda _label: WeightPair(1, 1), universe)
    assert result.denominator == 1
    return int(result)


def satisfiable(formula):
    """DPLL satisfiability with early exit (used for spectrum queries)."""
    cnf = to_cnf(formula)
    if cnf.contradictory:
        return False
    clauses = [tuple(c) for c in cnf.clauses]
    return _sat(clauses)


def _sat(clauses):
    while True:
        if not clauses:
            return True
        unit = None
        for c in clauses:
            if not c:
                return False
            if len(c) == 1:
                unit = c[0]
                break
        if unit is None:
            break
        clauses = _condition(clauses, unit)
        if clauses is None:
            return False

    if not clauses:
        return True

    # Pure literal elimination is sound for SAT.
    polarity = {}
    for c in clauses:
        for lit in c:
            v = abs(lit)
            polarity[v] = polarity.get(v, 0) | (1 if lit > 0 else 2)
    for v, pol in polarity.items():
        if pol != 3:
            lit = v if pol == 1 else -v
            reduced = _condition(clauses, lit)
            if reduced is None:
                return False
            return _sat(reduced)

    occurrences = {}
    for c in clauses:
        for lit in c:
            occurrences[abs(lit)] = occurrences.get(abs(lit), 0) + 1
    var = max(occurrences, key=lambda v: (occurrences[v], -v))
    for lit in (var, -var):
        conditioned = _condition(clauses, lit)
        if conditioned is not None and _sat(conditioned):
            return True
    return False
