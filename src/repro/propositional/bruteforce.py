"""Brute-force weighted model counting by assignment enumeration.

This is the semantic definition of WMC (Eq. 2-3 of the paper), used as the
ground truth the DPLL counter is validated against.  Exponential in the
number of variables.
"""

from __future__ import annotations

import itertools
from fractions import Fraction

from ..weights import WeightPair
from .formula import peval, prop_vars

__all__ = ["wmc_enumerate", "count_models_enumerate"]


def wmc_enumerate(formula, weight_of_label, universe=()):
    """WMC by enumerating all assignments over the variable universe."""
    labels = sorted(set(universe) or prop_vars(formula), key=repr)
    pairs = []
    for label in labels:
        pair = weight_of_label(label)
        if not isinstance(pair, WeightPair):
            pair = WeightPair(*pair)
        pairs.append(pair)

    total = Fraction(0)
    for bits in itertools.product((False, True), repeat=len(labels)):
        assignment = dict(zip(labels, bits))
        if peval(formula, assignment):
            weight = Fraction(1)
            for bit, pair in zip(bits, pairs):
                weight *= pair.w if bit else pair.wbar
            total += weight
    return total


def count_models_enumerate(formula, universe=()):
    """Number of satisfying assignments by enumeration."""
    result = wmc_enumerate(formula, lambda _label: WeightPair(1, 1), universe)
    assert result.denominator == 1
    return int(result)
