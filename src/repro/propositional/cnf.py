"""CNF conversion with exact model-count preservation.

Two paths are used:

* a *direct* conversion when the formula is already (close to) clausal —
  this is the common case for lineages of universally quantified sentences;
* a *Tseitin* encoding otherwise.  Tseitin auxiliary variables are
  functionally determined by the original variables (each auxiliary is
  forced by unit propagation once its definition's inputs are set), so
  giving them the weight pair ``(1, 1)`` preserves the weighted model count
  exactly: each model of the original formula extends to exactly one model
  of the CNF with the same weight.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Tuple

from .formula import PAnd, PFalse, PNot, POr, PTrue, PVar

__all__ = ["CNF", "to_cnf"]


@dataclass
class CNF:
    """A CNF over integer variables ``1..num_vars``.

    ``clauses`` holds tuples of nonzero ints (DIMACS-style literals).
    ``labels`` maps variable index to the original label for the non-
    auxiliary variables; auxiliary (Tseitin) variables have no label and
    always carry weight ``(1, 1)``.
    """

    num_vars: int = 0
    clauses: List[Tuple[int, ...]] = field(default_factory=list)
    labels: Dict[int, Any] = field(default_factory=dict)
    index_of: Dict[Any, int] = field(default_factory=dict)
    contradictory: bool = False

    def var_for(self, label):
        """The variable index for ``label``, creating it if needed."""
        idx = self.index_of.get(label)
        if idx is None:
            self.num_vars += 1
            idx = self.num_vars
            self.index_of[label] = idx
            self.labels[idx] = label
        return idx

    def aux_var(self):
        """A fresh auxiliary (unlabeled) variable."""
        self.num_vars += 1
        return self.num_vars

    def add_clause(self, lits):
        clause = tuple(lits)
        if not clause:
            self.contradictory = True
        self.clauses.append(clause)

    def original_vars(self):
        """Indices of the labeled (non-auxiliary) variables."""
        return set(self.labels)


def _as_clause(f):
    """If ``f`` is a disjunction of literals, return it as literal list.

    A literal is ``(positive, label)``.  Returns ``None`` if not clausal.
    """
    parts = f.parts if isinstance(f, POr) else (f,)
    lits = []
    for p in parts:
        if isinstance(p, PVar):
            lits.append((True, p.label))
        elif isinstance(p, PNot) and isinstance(p.body, PVar):
            lits.append((False, p.body.label))
        else:
            return None
    return lits


def to_cnf(formula, extra_labels=()):
    """Convert a propositional formula to :class:`CNF`.

    ``extra_labels`` forces the given labels to be registered as variables
    even if they do not occur in the formula (callers use this so that
    "don't care" ground atoms still contribute their ``w + wbar`` factor
    to the weighted count).
    """
    cnf = CNF()
    for label in extra_labels:
        cnf.var_for(label)

    if isinstance(formula, PTrue):
        return cnf
    if isinstance(formula, PFalse):
        cnf.add_clause(())
        return cnf

    # Fast path: a conjunction of clauses converts without auxiliaries.
    conjuncts = formula.parts if isinstance(formula, PAnd) else (formula,)
    direct = []
    for c in conjuncts:
        clause = _as_clause(c)
        if clause is None:
            direct = None
            break
        direct.append(clause)
    if direct is not None:
        # Lineages of symmetric sentences routinely ground the same clause
        # many times and produce tautologies (x | !x).  Both are dropped:
        # duplicates are idempotent under conjunction, and a tautological
        # clause constrains nothing (its variables stay registered via
        # ``var_for`` so they still contribute their ``w + wbar`` mass).
        seen = set()
        for clause in direct:
            lits = []
            lit_set = set()
            tautology = False
            for pos, lbl in clause:
                lit = cnf.var_for(lbl) if pos else -cnf.var_for(lbl)
                if -lit in lit_set:
                    tautology = True
                if lit not in lit_set:
                    lit_set.add(lit)
                    lits.append(lit)
            if tautology:
                continue
            key = frozenset(lit_set)
            if key in seen:
                continue
            seen.add(key)
            cnf.add_clause(lits)
        return cnf

    # General path: Tseitin encoding. Returns a literal for each node.
    cache = {}

    def encode(g):
        if g in cache:
            return cache[g]
        if isinstance(g, PVar):
            lit = cnf.var_for(g.label)
        elif isinstance(g, PNot):
            lit = -encode(g.body)
        elif isinstance(g, PAnd):
            lits = [encode(p) for p in g.parts]
            d = cnf.aux_var()
            for l in lits:
                cnf.add_clause((-d, l))
            cnf.add_clause([d] + [-l for l in lits])
            lit = d
        elif isinstance(g, POr):
            lits = [encode(p) for p in g.parts]
            d = cnf.aux_var()
            for l in lits:
                cnf.add_clause((d, -l))
            cnf.add_clause([-d] + lits)
            lit = d
        elif isinstance(g, PTrue):
            d = cnf.aux_var()
            cnf.add_clause((d,))
            lit = d
        elif isinstance(g, PFalse):
            d = cnf.aux_var()
            cnf.add_clause((-d,))
            lit = d
        else:
            raise TypeError("not a propositional formula: {!r}".format(g))
        cache[g] = lit
        return lit

    root = encode(formula)
    cnf.add_clause((root,))
    return cnf
