"""``repro.obs``: zero-dependency tracing, histograms, structured logs.

The observability layer of the WFOMC stack, threaded through every
package but **off by default** and CI-gated at <= 5% overhead when on
(``benchmarks/bench_obs.py`` / ``check_regression.py --obs-overhead``,
the same discipline as the budget-bookkeeping gate):

* :mod:`.trace` — lightweight spans into a bounded ring buffer,
  contextvar-nested across threads, exported as Chrome/Perfetto
  ``trace_event`` JSON (``repro trace <command>``, ``--trace FILE``);
* :mod:`.hist` — fixed-bucket log-scale latency histograms with
  lock-cheap ``record`` and p50/p95/p99 snapshots, used by the daemon
  for per-endpoint and per-phase latency;
* :mod:`.slog` — structured JSON logging over stdlib ``logging``
  (``repro.*`` hierarchy): the daemon's per-request access log, slow-
  request log, and warn-level events at every degradation point.

Instrumentation never changes results: spans and histograms observe the
exact pipeline, they do not steer it, and the serve chaos/differential
suites pin bit-identical answers with observability on.
"""

from .hist import Histogram
from .slog import (
    JsonFormatter,
    configure_logging,
    get_logger,
    new_request_id,
    slog,
)
from .trace import (
    TraceRecorder,
    carry,
    current_span_id,
    disable_tracing,
    enable_tracing,
    export_trace,
    span,
    trace_events,
    tracing_enabled,
)

__all__ = [
    "Histogram",
    "JsonFormatter",
    "TraceRecorder",
    "carry",
    "configure_logging",
    "current_span_id",
    "disable_tracing",
    "enable_tracing",
    "export_trace",
    "get_logger",
    "new_request_id",
    "slog",
    "span",
    "trace_events",
    "tracing_enabled",
]
