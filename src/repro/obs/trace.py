"""Lightweight spans: where does a WFOMC request actually spend its time?

A *span* is one timed region of one thread — ``with span("compile",
cat="registry", n=5): ...`` — recorded into a process-global bounded
ring buffer when tracing is enabled and costing one dict build plus one
predicate check when it is not (tracing is **off by default**; the CI
overhead gate in ``benchmarks/bench_obs.py`` holds the enabled cost on
the Theta_1 serving workload to <= 5%).

Spans nest through a :mod:`contextvars` variable, so the parent
relationship survives ``await`` boundaries on the event loop; work
submitted to a thread pool keeps its parent when the submitter wraps
the callable with :func:`carry` (plain ``run_in_executor`` does not
propagate context).  The serve daemon does exactly that, so a request's
span tree spans the loop thread *and* its executor thread.

The buffer exports as Chrome/Perfetto ``trace_event`` JSON
(:func:`export_trace`, or :func:`trace_events` for the raw list):
complete ``"X"`` events carrying ``span_id``/``parent_id`` args, so the
tree is reconstructible even where parent and child ran on different
threads.  ``repro trace <command>`` and the ``--trace FILE`` flag on
the counting commands wrap a CLI run in one enable/export pair; load
the file at ``chrome://tracing`` or https://ui.perfetto.dev.

Everything is monotonic-clock (``time.monotonic_ns``) and thread-safe;
the ring buffer drops the *oldest* events under pressure and counts the
drops, so a long-running daemon can keep tracing enabled without
unbounded memory.
"""

from __future__ import annotations

import contextvars
import itertools
import json
import os
import threading
import time
from collections import deque

__all__ = [
    "TraceRecorder",
    "carry",
    "current_span_id",
    "disable_tracing",
    "enable_tracing",
    "export_trace",
    "span",
    "trace_events",
    "tracing_enabled",
]

#: Default ring-buffer capacity (completed spans retained).
DEFAULT_CAPACITY = 65536

#: The active recorder, or ``None`` — the one branch ``span()`` takes
#: when tracing is off.
_RECORDER = None
_RECORDER_LOCK = threading.Lock()

#: Span id of the innermost open span in this context (0 = root).
_CURRENT = contextvars.ContextVar("repro_obs_parent", default=0)
_IDS = itertools.count(1)


class TraceRecorder:
    """A bounded, thread-safe ring buffer of completed spans."""

    __slots__ = ("capacity", "dropped", "started_ns", "_events", "_lock")

    def __init__(self, capacity=DEFAULT_CAPACITY):
        self.capacity = max(1, int(capacity))
        self.dropped = 0
        self.started_ns = time.monotonic_ns()
        self._events = deque(maxlen=self.capacity)
        self._lock = threading.Lock()

    def record(self, name, cat, start_ns, dur_ns, tid, span_id, parent_id,
               args):
        with self._lock:
            if len(self._events) == self.capacity:
                self.dropped += 1
            self._events.append(
                (name, cat, start_ns, dur_ns, tid, span_id, parent_id, args))

    def __len__(self):
        with self._lock:
            return len(self._events)

    def snapshot(self):
        """The recorded span tuples, oldest first (a consistent copy)."""
        with self._lock:
            return list(self._events)


class _NullSpan:
    """The shared do-nothing span handed out while tracing is off."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return False


_NULL = _NullSpan()


class _LiveSpan:
    __slots__ = ("name", "cat", "args", "_recorder", "_id", "_token",
                 "_start_ns")

    def __init__(self, recorder, name, cat, args):
        self._recorder = recorder
        self.name = name
        self.cat = cat
        self.args = args

    def __enter__(self):
        self._id = next(_IDS)
        self._token = _CURRENT.set(self._id)
        self._start_ns = time.monotonic_ns()
        return self

    def __exit__(self, exc_type, exc, tb):
        end_ns = time.monotonic_ns()
        token = self._token
        parent_id = token.old_value
        if parent_id is contextvars.Token.MISSING:
            parent_id = 0
        _CURRENT.reset(token)
        if exc_type is not None:
            args = dict(self.args)
            args["error"] = exc_type.__name__
        else:
            args = self.args
        self._recorder.record(
            self.name, self.cat, self._start_ns, end_ns - self._start_ns,
            threading.get_ident(), self._id, parent_id, args)
        return False


def span(name, cat="repro", **args):
    """A context manager timing one region; near-free when tracing is off.

    ``cat`` groups spans by layer (``solver``, ``compile``, ``engine``,
    ``cache``, ``serve``, ...); keyword ``args`` become the Chrome
    event's ``args`` payload (keep them small and JSON-friendly).
    """
    recorder = _RECORDER
    if recorder is None:
        return _NULL
    return _LiveSpan(recorder, name, cat, args)


def tracing_enabled():
    """Whether a recorder is active."""
    return _RECORDER is not None


def current_span_id():
    """Span id of the innermost open span in this context (0 = none)."""
    return _CURRENT.get()


def enable_tracing(capacity=DEFAULT_CAPACITY):
    """Install (or return the already-active) process-global recorder."""
    global _RECORDER
    with _RECORDER_LOCK:
        if _RECORDER is None:
            _RECORDER = TraceRecorder(capacity)
        return _RECORDER


def disable_tracing():
    """Stop recording; returns the detached recorder (or ``None``).

    The recorder keeps its events, so the usual shape is
    ``export_trace(path, recorder=disable_tracing())``.
    """
    global _RECORDER
    with _RECORDER_LOCK:
        recorder, _RECORDER = _RECORDER, None
        return recorder


def carry(fn):
    """Wrap ``fn`` so it runs in the submitter's context on another thread.

    ``loop.run_in_executor`` (unlike ``asyncio.to_thread``) does not
    propagate :mod:`contextvars`; submitting ``carry(fn)`` instead of
    ``fn`` keeps the open span's parent relationship across the hop.
    A no-op passthrough while tracing is off.
    """
    if _RECORDER is None:
        return fn
    ctx = contextvars.copy_context()
    return lambda: ctx.run(fn)


def trace_events(recorder=None):
    """The recorded spans as Chrome ``trace_event`` dicts.

    Complete events (``"ph": "X"``) with microsecond timestamps relative
    to the recorder's start, plus metadata events naming the process and
    each thread.  ``span_id``/``parent_id`` ride in ``args`` so the span
    *tree* survives cross-thread parentage.
    """
    recorder = recorder or _RECORDER
    if recorder is None:
        return []
    pid = os.getpid()
    events = []
    tids = {}
    for name, cat, start_ns, dur_ns, tid, span_id, parent_id, args in \
            recorder.snapshot():
        tids.setdefault(tid, len(tids))
        payload = dict(args)
        payload["span_id"] = span_id
        payload["parent_id"] = parent_id
        events.append({
            "name": name,
            "cat": cat,
            "ph": "X",
            "ts": (start_ns - recorder.started_ns) / 1000.0,
            "dur": dur_ns / 1000.0,
            "pid": pid,
            "tid": tids[tid],
            "args": payload,
        })
    meta = [{
        "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
        "args": {"name": "repro"},
    }]
    for tid, short in sorted(tids.items(), key=lambda kv: kv[1]):
        meta.append({
            "name": "thread_name", "ph": "M", "pid": pid, "tid": short,
            "args": {"name": "thread-{}".format(tid)},
        })
    return meta + events


def export_trace(path_or_file, recorder=None):
    """Write the Chrome trace JSON document; returns the event count.

    ``path_or_file`` is a filesystem path or an open text file.  The
    document shape is ``{"traceEvents": [...], "displayTimeUnit": "ms"}``
    plus a ``droppedEvents`` count when the ring buffer overflowed.
    """
    recorder = recorder or _RECORDER
    events = trace_events(recorder)
    document = {"traceEvents": events, "displayTimeUnit": "ms"}
    if recorder is not None and recorder.dropped:
        document["droppedEvents"] = recorder.dropped
    if hasattr(path_or_file, "write"):
        json.dump(document, path_or_file)
    else:
        with open(path_or_file, "w") as fh:
            json.dump(document, fh)
    return len(events)
