"""Fixed-bucket log-scale latency histograms with lock-cheap recording.

The serving tier needs quantiles, not averages: a p99 regression hides
completely inside a mean.  :class:`Histogram` covers 1 microsecond to
about one hour in 64 geometric buckets (factor ``sqrt(2)``, so bucket
boundaries are ~41% apart — plenty for latency work), records in O(1)
under a mutex held for a few instructions, and snapshots to
``count/sum/min/max/p50/p95/p99`` without stopping writers.

Quantiles are read from the bucket histogram: the reported value is the
upper bound of the bucket containing the q-th observation, clamped into
the observed ``[min, max]`` — i.e. at most one bucket factor above the
true quantile, and exact at the extremes.  That is the standard
fixed-bucket trade (Prometheus histograms make the same one) and it
keeps ``record`` allocation-free.

Everything is stdlib; instances are safe to share across threads and
cheap enough to keep per endpoint *and* per phase.
"""

from __future__ import annotations

import math
import threading

__all__ = ["Histogram"]

#: Lowest bucket upper bound, in seconds (everything faster lands here).
_LOW_S = 1e-6
#: Geometric growth factor between bucket upper bounds.
_FACTOR = 2.0 ** 0.5
_LOG_FACTOR = math.log(_FACTOR)
#: Bucket count: covers up to _LOW_S * _FACTOR**63 ~ 2.9e3 s (~48 min);
#: slower observations land in the last bucket (the snapshot's ``max``
#: stays exact regardless).
_BUCKETS = 64

#: Upper bound of each bucket, precomputed once.
_BOUNDS = tuple(_LOW_S * _FACTOR ** i for i in range(_BUCKETS))


class Histogram:
    """A thread-safe log-scale histogram of durations in seconds."""

    __slots__ = ("_lock", "_counts", "count", "total", "min", "max")

    def __init__(self):
        self._lock = threading.Lock()
        self._counts = [0] * _BUCKETS
        self.count = 0
        self.total = 0.0
        self.min = None
        self.max = None

    def record(self, seconds):
        """Record one observation (negatives clamp to zero)."""
        value = seconds if seconds > 0.0 else 0.0
        if value <= _LOW_S:
            index = 0
        else:
            index = min(_BUCKETS - 1,
                        1 + int(math.log(value / _LOW_S) / _LOG_FACTOR))
        with self._lock:
            self._counts[index] += 1
            self.count += 1
            self.total += value
            if self.min is None or value < self.min:
                self.min = value
            if self.max is None or value > self.max:
                self.max = value

    @staticmethod
    def _quantile(counts, count, lo, hi, q):
        """Upper bound of the bucket holding the q-th observation."""
        if count == 0:
            return None
        rank = q * count
        seen = 0
        for index, bucket_count in enumerate(counts):
            seen += bucket_count
            if seen >= rank:
                value = _BOUNDS[index]
                break
        else:
            value = _BOUNDS[-1]
        # Clamp into the observed range: the extremes are known exactly.
        if hi is not None:
            value = min(value, hi)
        if lo is not None:
            value = max(value, lo)
        return value

    def snapshot(self, buckets=False):
        """A consistent ``{count, sum, min, max, p50, p95, p99}`` view.

        With ``buckets=True`` the nonzero buckets ride along as
        ``[[upper_bound_s, count], ...]`` (the Prometheus exposition and
        the tests read them).
        """
        with self._lock:
            counts = list(self._counts)
            view = {
                "count": self.count,
                "sum": self.total,
                "min": self.min,
                "max": self.max,
            }
        for name, q in (("p50", 0.50), ("p95", 0.95), ("p99", 0.99)):
            view[name] = self._quantile(counts, view["count"], view["min"],
                                        view["max"], q)
        if buckets:
            view["buckets"] = [[_BOUNDS[i], c]
                               for i, c in enumerate(counts) if c]
        return view

    def __repr__(self):
        return "Histogram(count={}, sum={:.6f})".format(self.count,
                                                        self.total)
