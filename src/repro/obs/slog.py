"""Structured JSON logging on the stdlib: the ``repro.*`` logger tree.

The library logs *events*, not prose: every record is one JSON object
per line — ``{"ts", "level", "logger", "event", ...fields}`` — so a
daemon's stderr is grep-able and machine-shippable without a log-parsing
layer.  Everything rides on :mod:`logging`, which keeps the usual
contracts: levels, propagation, and the ability for an embedding
application to install its own handlers instead.

Usage::

    log = get_logger("serve.access")
    slog(log, logging.INFO, "request",
         id=req_id, path="/v1/wfomc", status=200, ms=12.3)

Library discipline: importing :mod:`repro` never configures logging.
The serve daemon calls :func:`configure_logging` at startup so its
access log and the warn-level degradation events (store disabled,
breaker open, worker crash recovery, backend ladder) come out as JSON
lines; a plain library user sees only stdlib default behavior
(warnings and above via the last-resort stderr handler).

Request ids: :func:`new_request_id` mints the 16-hex-char ids the
daemon generates for requests that do not carry an ``X-Request-Id``
header of their own.
"""

from __future__ import annotations

import json
import logging
import time
import uuid

__all__ = [
    "JsonFormatter",
    "configure_logging",
    "get_logger",
    "new_request_id",
    "slog",
]

#: Root of the library's logger hierarchy.
LOGGER_ROOT = "repro"

#: Attribute marking handlers installed by :func:`configure_logging`,
#: so re-configuration replaces rather than stacks them.
_MANAGED = "_repro_slog_handler"


class JsonFormatter(logging.Formatter):
    """One JSON object per record; extra ``slog`` fields inline."""

    def format(self, record):
        document = {
            "ts": round(record.created, 6),
            "level": record.levelname.lower(),
            "logger": record.name,
            "event": record.getMessage(),
        }
        fields = getattr(record, "slog_fields", None)
        if fields:
            for key, value in fields.items():
                if key not in document:
                    document[key] = value
        if record.exc_info and record.exc_info[0] is not None:
            document["exc_type"] = record.exc_info[0].__name__
            document["exc"] = str(record.exc_info[1])
        return json.dumps(document, default=str)


def get_logger(name=""):
    """A logger under the ``repro`` hierarchy (``""`` for the root)."""
    if not name:
        return logging.getLogger(LOGGER_ROOT)
    return logging.getLogger(LOGGER_ROOT + "." + name)


def slog(logger, level, event, **fields):
    """Emit one structured event; free when the level is disabled."""
    if logger.isEnabledFor(level):
        logger.log(level, event, extra={"slog_fields": fields})


def configure_logging(stream=None, level=logging.INFO):
    """Attach one JSON handler to the ``repro`` logger (idempotent).

    Returns the handler.  Records stop propagating to the root logger
    so a host application's plain-text handlers do not double-print the
    daemon's access log.
    """
    root = get_logger()
    for handler in list(root.handlers):
        if getattr(handler, _MANAGED, False):
            root.removeHandler(handler)
    handler = logging.StreamHandler(stream)
    handler.setFormatter(JsonFormatter())
    setattr(handler, _MANAGED, True)
    root.addHandler(handler)
    root.setLevel(level)
    root.propagate = False
    return handler


def new_request_id():
    """A fresh 16-hex-char request id (collision odds are cosmological)."""
    return uuid.uuid4().hex[:16]


def monotonic_ms():
    """Monotonic milliseconds — the daemon's latency arithmetic unit."""
    return time.monotonic() * 1000.0
