"""Tests for propositional formulas, CNF conversion, and the WMC engine.

The DPLL counter is the load-bearing substrate of every grounded
computation, so it gets property tests against assignment enumeration,
including with negative weights.
"""


from hypothesis import given, settings

from repro.propositional.bruteforce import count_models_enumerate, wmc_enumerate
from repro.propositional.cnf import to_cnf
from repro.propositional.counter import (
    model_count,
    satisfiable,
    wmc_formula,
)
from repro.propositional.formula import (
    PAnd,
    PFalse,
    POr,
    PTrue,
    pand,
    peval,
    pnot,
    por,
    prop_vars,
    pvar,
)
from repro.weights import WeightPair

from .strategies import fractions, prop_formulas

a, b, c = pvar("a"), pvar("b"), pvar("c")


class TestFormulaConstructors:
    def test_pand_flattens_and_folds(self):
        assert pand(a, pand(b, c)) == PAnd((a, b, c))
        assert pand() == PTrue()
        assert pand(a, PFalse()) == PFalse()
        assert pand(a) == a

    def test_por_flattens_and_folds(self):
        assert por(a, por(b, c)) == POr((a, b, c))
        assert por() == PFalse()
        assert por(a, PTrue()) == PTrue()

    def test_pnot_folds(self):
        assert pnot(pnot(a)) == a
        assert pnot(PTrue()) == PFalse()

    def test_prop_vars(self):
        assert prop_vars(pand(a, pnot(por(b, c)))) == {"a", "b", "c"}

    def test_peval(self):
        f = por(pand(a, b), pnot(c))
        assert peval(f, {"a": True, "b": True, "c": True})
        assert not peval(f, {"a": False, "b": True, "c": True})


class TestCNF:
    def test_clausal_formula_direct(self):
        f = pand(por(a, b), por(pnot(a), c))
        cnf = to_cnf(f)
        # No auxiliary variables for a clausal input.
        assert cnf.num_vars == 3
        assert len(cnf.clauses) == 2

    def test_tseitin_for_non_clausal(self):
        f = por(pand(a, b), pand(pnot(a), c))
        cnf = to_cnf(f)
        assert cnf.num_vars > 3

    def test_contradiction(self):
        cnf = to_cnf(PFalse())
        assert cnf.contradictory

    def test_tseitin_preserves_model_count(self):
        f = por(pand(a, b), pand(pnot(a), c))
        assert model_count(f) == count_models_enumerate(f)

    @settings(max_examples=60, deadline=None)
    @given(prop_formulas())
    def test_tseitin_count_property(self, f):
        universe = sorted(prop_vars(f))
        assert model_count(f, universe) == count_models_enumerate(f, universe)


class TestWMC:
    def test_single_variable(self):
        weights = {"a": WeightPair(2, 3)}
        assert wmc_formula(a, weights.__getitem__) == 2
        assert wmc_formula(pnot(a), weights.__getitem__) == 3

    def test_unconstrained_variable_contributes_total(self):
        weights = {"a": WeightPair(2, 3), "b": WeightPair(5, 7)}
        assert wmc_formula(a, weights.__getitem__, universe=["a", "b"]) == 2 * 12

    def test_negative_weights(self):
        # Skolem-style cancellation: a free (1, -1) variable zeroes the count.
        weights = {"a": WeightPair(1, 1), "b": WeightPair(1, -1)}
        assert wmc_formula(a, weights.__getitem__, universe=["a", "b"]) == 0

    def test_contradiction_counts_zero(self):
        assert model_count(pand(a, pnot(a))) == 0

    def test_tautology(self):
        assert model_count(por(a, pnot(a))) == 2

    @settings(max_examples=60, deadline=None)
    @given(prop_formulas(), fractions(), fractions(), fractions(), fractions())
    def test_wmc_matches_enumeration(self, f, wa, wb, wc, wd):
        pairs = {
            "a": WeightPair(wa, 1),
            "b": WeightPair(wb, 2),
            "c": WeightPair(wc, wd),
            "d": WeightPair(1, wd),
        }
        universe = ["a", "b", "c", "d"]
        fast = wmc_formula(f, pairs.__getitem__, universe)
        slow = wmc_enumerate(f, pairs.__getitem__, universe)
        assert fast == slow

    def test_component_decomposition_correctness(self):
        # Two independent components: counts multiply.
        f = pand(por(a, b), por(c, pvar("d")))
        assert model_count(f) == 9

    def test_large_independent_product(self):
        # 20 independent clauses: DPLL must not blow up.
        f = pand(*(por(pvar("x{}".format(i)), pvar("y{}".format(i))) for i in range(20)))
        assert model_count(f) == 3 ** 20


class TestSAT:
    def test_satisfiable(self):
        assert satisfiable(pand(por(a, b), pnot(a)))

    def test_unsatisfiable(self):
        assert not satisfiable(pand(a, pnot(a)))

    def test_deep_unsat(self):
        f = pand(por(a, b), por(pnot(a), b), pnot(b))
        assert not satisfiable(f)

    @settings(max_examples=60, deadline=None)
    @given(prop_formulas())
    def test_sat_iff_count_positive(self, f):
        assert satisfiable(f) == (count_models_enumerate(f) > 0)
