"""Tests for MLN semantics (Example 1.1) and the WFOMC reduction (Example 1.2)."""

from fractions import Fraction

import pytest

from repro.logic.parser import parse
from repro.mln import (
    HARD,
    MLN,
    MLNConstraint,
    mln_partition_bruteforce,
    mln_probability_bruteforce,
    mln_probability_wfomc,
    reduce_to_wfomc,
)


SPOUSE = MLN([(3, parse("Spouse(x, y) & Female(x) -> Male(y)"))])


class TestMLNModel:
    def test_constraint_weight_coercion(self):
        c = MLNConstraint("1/2", parse("P(x)"))
        assert c.weight == Fraction(1, 2)

    def test_hard_constraint(self):
        c = MLNConstraint(HARD, parse("forall x. P(x)"))
        assert c.is_hard()

    def test_free_variables_sorted(self):
        c = MLNConstraint(2, parse("R(y, x)"))
        assert tuple(v.name for v in c.free_variables()) == ("x", "y")

    def test_vocabulary_collected(self):
        assert set(SPOUSE.vocabulary.names()) == {"Spouse", "Female", "Male"}

    def test_world_weight_counts_groundings(self):
        # MLN with (2, P(x)): weight = 2^|P|.
        mln = MLN([(2, parse("P(x)"))])
        from repro.grounding.structures import Structure

        assert mln.world_weight(Structure(3, {"P": {(1,), (3,)}})) == 4
        assert mln.world_weight(Structure(3, {"P": set()})) == 1

    def test_hard_constraint_zeroes_weight(self):
        mln = MLN([(HARD, parse("forall x. P(x)")), (2, parse("Q(x)"))])
        from repro.grounding.structures import Structure

        assert mln.world_weight(Structure(2, {"P": {(1,)}, "Q": {(1,)}})) == 0
        assert mln.world_weight(Structure(2, {"P": {(1,), (2,)}, "Q": {(1,)}})) == 2


class TestPartitionFunction:
    def test_single_unary_soft_constraint(self):
        # (w, P(x)): partition = sum over P-subsets w^|P| = (1 + w)^n.
        mln = MLN([(3, parse("P(x)"))])
        for n in (1, 2, 3):
            assert mln_partition_bruteforce(mln, n) == 4 ** n

    def test_symmetric_wfomc_special_case(self):
        # The paper: symmetric WFOMC == MLN with one constraint (w_i, R_i(x_i)).
        mln = MLN([(2, parse("R(x, y)"))])
        for n in (1, 2):
            assert mln_partition_bruteforce(mln, n) == 3 ** (n * n)


class TestReduction:
    def test_reduction_weight_is_one_over_w_minus_one(self):
        red = reduce_to_wfomc(SPOUSE)
        aux = [p for p in red.weighted_vocabulary.vocabulary if p.name.startswith("MR")]
        assert len(aux) == 1
        pair = red.weighted_vocabulary.weight(aux[0].name)
        assert pair.w == Fraction(1, 2)  # 1/(3-1)
        assert pair.wbar == 1

    def test_negative_weight_for_w_below_one(self):
        mln = MLN([(Fraction(1, 2), parse("P(x)"))])
        red = reduce_to_wfomc(mln)
        aux = [p for p in red.weighted_vocabulary.vocabulary if p.name.startswith("MR")]
        pair = red.weighted_vocabulary.weight(aux[0].name)
        assert pair.w == -2  # 1/(1/2 - 1)

    def test_weight_one_constraint_dropped(self):
        mln = MLN([(1, parse("P(x)")), (2, parse("Q(x)"))])
        red = reduce_to_wfomc(mln)
        aux = [p for p in red.weighted_vocabulary.vocabulary if p.name.startswith("MR")]
        assert len(aux) == 1

    @pytest.mark.parametrize("n", [1, 2])
    def test_spouse_example(self, n):
        q = parse("exists x. exists y. Spouse(x, y) & Female(x) & Male(y)")
        assert mln_probability_bruteforce(SPOUSE, q, n) == mln_probability_wfomc(
            SPOUSE, q, n
        )

    @pytest.mark.parametrize("n", [1, 2])
    def test_friends_smokers(self, n):
        mln = MLN(
            [
                (Fraction(7, 2), parse("Smokes(x) & Friends(x, y) -> Smokes(y)")),
                (HARD, parse("forall x. ~Friends(x, x)")),
            ]
        )
        q = parse("exists x. Smokes(x)")
        assert mln_probability_bruteforce(mln, q, n) == mln_probability_wfomc(mln, q, n)

    @pytest.mark.parametrize("w", [Fraction(1, 3), Fraction(1, 2), 2, 5])
    def test_various_weights(self, w):
        mln = MLN([(w, parse("P(x) -> Q(x)"))])
        q = parse("exists x. Q(x)")
        n = 2
        assert mln_probability_bruteforce(mln, q, n) == mln_probability_wfomc(mln, q, n)

    def test_weight_zero_soft_constraint(self):
        # w = 0 forbids satisfied groundings entirely (weight 0 worlds).
        mln = MLN([(0, parse("P(x) & Q(x)"))])
        q = parse("exists x. P(x)")
        n = 2
        assert mln_probability_bruteforce(mln, q, n) == mln_probability_wfomc(mln, q, n)

    def test_query_with_fresh_predicate(self):
        # Query mentions a predicate not in the MLN: neutral (1,1) weights.
        mln = MLN([(2, parse("P(x)"))])
        q = parse("exists x. New(x)")
        got = mln_probability_wfomc(mln, q, 2)
        assert got == Fraction(3, 4)  # Pr(exists x New(x)) = 1 - (1/2)^2


class TestReductionUsesLiftedSolver:
    def test_fo2_mln_scales(self):
        # The reduction output is FO2, so inference at n = 10 must work
        # (grounded enumeration would need 2^110 worlds).
        mln = MLN([(3, parse("Smokes(x) & Friends(x, y) -> Smokes(y)"))])
        q = parse("exists x. Smokes(x)")
        p = mln_probability_wfomc(mln, q, 10)
        assert 0 < p < 1
