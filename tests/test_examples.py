"""Smoke tests: every example script runs to completion.

The examples double as integration tests — each asserts its own exact
identities internally (they `assert` agreement between methods).
"""

import importlib
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

EXAMPLES = [
    "quickstart",
    "mln_smokers",
    "mln_weight_learning",
    "knowledge_base",
    "zero_one_laws",
    "lifted_rules_limits",
    pytest.param("complexity_tour", marks=pytest.mark.slow),
]


@pytest.fixture()
def examples_on_path():
    sys.path.insert(0, str(EXAMPLES_DIR))
    try:
        yield
    finally:
        sys.path.remove(str(EXAMPLES_DIR))


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_runs(name, examples_on_path, capsys):
    module = importlib.import_module(name)
    module.main()
    out = capsys.readouterr().out
    assert out.strip(), "example {} produced no output".format(name)
