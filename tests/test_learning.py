"""Tests for circuit-based MLN weight learning (``repro.mln.learning``).

The headline property: feeding the learner the *exact* model
distribution of a known MLN as weighted observations makes the true
weights a stationary point of the likelihood (moment matching), so the
gradient vanishes **exactly** there — a rational identity, asserted
with ``==`` — and gradient ascent started elsewhere recovers the
weights.  Gradients are additionally validated against finite
differences of the log-likelihood on rational perturbations.
"""

from fractions import Fraction

import pytest

from repro import HARD, MLN, parse
from repro.grounding.structures import all_structures
from repro.mln import (
    mln_average_log_likelihood,
    mln_likelihood_gradient,
    mln_weight_learn,
    reduction_template,
)


def _model_distribution(mln, n):
    """The MLN's exact world distribution as weighted observations."""
    worlds = []
    partition = Fraction(0)
    for structure in all_structures(mln.vocabulary, n):
        weight = mln.world_weight(structure)
        if weight:
            worlds.append((weight, structure))
            partition += weight
    return [(weight / partition, structure) for weight, structure in worlds]


def _smokers(w_implies, w_smokes):
    return MLN([
        (w_implies, parse("Smokes(x) & Friends(x, y) -> Smokes(y)")),
        (w_smokes, parse("Smokes(x)")),
        (HARD, parse("forall x. ~Friends(x, x)")),
    ])


class TestGradient:
    def test_gradient_vanishes_exactly_at_the_generating_weights(self):
        true_mln = MLN([(Fraction(1, 2), parse("Smokes(x)"))])
        observations = _model_distribution(true_mln, 2)
        gradient = mln_likelihood_gradient(true_mln, observations, 2)
        assert gradient == [Fraction(0)]

    def test_smokers_gradient_vanishes_at_the_truth(self):
        true_mln = _smokers(3, Fraction(1, 2))
        observations = _model_distribution(true_mln, 2)
        gradient = mln_likelihood_gradient(true_mln, observations, 2)
        assert gradient == [Fraction(0), Fraction(0)]

    def test_gradient_matches_finite_differences(self):
        true_mln = _smokers(3, Fraction(1, 2))
        observations = _model_distribution(true_mln, 2)
        mln = _smokers(2, Fraction(1, 4))
        gradient = mln_likelihood_gradient(mln, observations, 2)
        h = Fraction(1, 512)
        for i in range(2):
            def shifted(delta, i=i):
                constraints = []
                for j, c in enumerate(mln.constraints):
                    if not c.is_hard() and j == i:
                        constraints.append((c.weight + delta, c.formula))
                    else:
                        constraints.append(c)
                return MLN(constraints)

            fd = (mln_average_log_likelihood(shifted(h), observations, 2)
                  - mln_average_log_likelihood(shifted(-h), observations, 2)
                  ) / (2 * float(h))
            assert abs(float(gradient[i]) - fd) < 1e-3

    def test_weight_one_initialization_is_rejected(self):
        mln = MLN([(1, parse("Smokes(x)"))])
        with pytest.raises(ValueError):
            mln_likelihood_gradient(mln, _model_distribution(
                MLN([(2, parse("Smokes(x)"))]), 2), 2)


class TestWeightLearning:
    def test_recovers_single_weight_exactly_enough(self):
        true_mln = MLN([(Fraction(1, 2), parse("Smokes(x)"))])
        observations = _model_distribution(true_mln, 2)
        init = MLN([(Fraction(1, 4), parse("Smokes(x)"))])
        result = mln_weight_learn(init, observations, 2, steps=120,
                                  learning_rate=Fraction(1, 2))
        assert abs(result.weights[0] - Fraction(1, 2)) < Fraction(1, 50)
        assert result.converged or result.steps_taken == 120

    def test_recovers_smokers_weights(self):
        true_mln = _smokers(3, Fraction(1, 2))
        observations = _model_distribution(true_mln, 2)
        init = _smokers(2, Fraction(1, 4))
        result = mln_weight_learn(init, observations, 2, steps=300,
                                  learning_rate=Fraction(1))
        assert abs(result.weights[0] - 3) < Fraction(1, 5)
        assert abs(result.weights[1] - Fraction(1, 2)) < Fraction(1, 20)
        # Likelihood improved over the initialization.
        assert (mln_average_log_likelihood(result.mln, observations, 2)
                > mln_average_log_likelihood(init, observations, 2))
        # Hard constraints survive untouched, soft weights moved.
        assert len(result.mln.hard_constraints()) == 1
        assert result.history  # per-step snapshots for inspection

    def test_iterates_stay_on_their_side_of_the_pole(self):
        # A below-1 weight must never cross the w = 1 reduction pole,
        # however aggressive the learning rate.
        true_mln = MLN([(Fraction(1, 2), parse("Smokes(x)"))])
        observations = _model_distribution(true_mln, 2)
        init = MLN([(Fraction(9, 10), parse("Smokes(x)"))])
        result = mln_weight_learn(init, observations, 2, steps=30,
                                  learning_rate=Fraction(50))
        for _step, weights in result.history:
            assert 0 < weights[0] < 1

    def test_bare_structures_are_accepted_as_observations(self):
        mln = MLN([(2, parse("Smokes(x)"))])
        worlds = [s for _w, s in _model_distribution(mln, 1)]
        gradient = mln_likelihood_gradient(mln, worlds, 1)
        assert len(gradient) == 1

    def test_no_soft_constraints_is_a_noop(self):
        mln = MLN([(HARD, parse("forall x. ~Friends(x, x)"))])
        worlds = [s for _w, s in _model_distribution(
            MLN([(2, parse("Friends(x, y)")),
                 (HARD, parse("forall x. ~Friends(x, x)"))]), 1)]
        result = mln_weight_learn(mln, worlds, 1)
        assert result.converged and result.weights == []


class TestReductionTemplate:
    def test_keep_all_soft_retains_weight_one_constraints(self):
        mln = MLN([(1, parse("P(x)")), (2, parse("Q(x)"))])
        _gamma, dropped, _wv = reduction_template(mln)
        _gamma, kept, _wv = reduction_template(mln, keep_all_soft=True)
        assert len(dropped) == 1
        assert len(kept) == 2

    def test_template_matches_legacy_reduction(self):
        from repro.mln import reduce_to_wfomc

        mln = _smokers(3, Fraction(1, 2))
        reduction = reduce_to_wfomc(mln)
        gamma, entries, _wv = reduction_template(mln)
        assert gamma == reduction.gamma
        names = {name for _c, name, _a in entries}
        reduced_names = {
            p.name for p in reduction.weighted_vocabulary.vocabulary
            if p.name not in {q.name for q in mln.vocabulary}
        }
        assert names == reduced_names
