"""Tests for the networked cache tier (blob server / client / tiering).

Round-trips through a real in-process :class:`BlobServer`, fleet
warm-start through :class:`TieredStore`, ``$REPRO_STORE_URL`` wiring in
:func:`open_store`, and the client's failure discipline — retry with
backoff, circuit-breaker disable and re-probe, torn-payload rejection —
driven deterministically by the ``net_*`` fault kinds of
:mod:`repro.resilience.faults`.
"""

import threading
from fractions import Fraction

import pytest

from repro.cache import open_store
from repro.cache.netstore import (
    BlobServer,
    NetworkStoreClient,
    TieredStore,
)
from repro.cache.store import PersistentStore, key_digest
from repro.propositional.cnf import CNF
from repro.propositional.counter import EngineStats, wmc_cnf
from repro.resilience.faults import clear_plan, install_plan
from repro.weights import WeightPair


@pytest.fixture(autouse=True)
def _fast_and_clean(monkeypatch):
    # Millisecond backoff/probe schedules, no ambient fault plan, and no
    # cross-test store registry leakage.
    from repro.cache import netstore, store

    monkeypatch.setattr(netstore, "_NET_RETRY_BASE_S", 0.001)
    monkeypatch.setattr(netstore, "_NET_RETRY_CAP_S", 0.002)
    monkeypatch.setattr(netstore, "_NET_PROBE_INTERVAL_S", 0.0)
    monkeypatch.delenv("REPRO_FAULT_PLAN", raising=False)
    monkeypatch.delenv("REPRO_STORE_URL", raising=False)
    clear_plan()
    saved = dict(store._STORES)
    store._STORES.clear()
    yield
    clear_plan()
    for s in store._STORES.values():
        try:
            s.close()
        except Exception:
            pass
    store._STORES.clear()
    store._STORES.update(saved)


@pytest.fixture()
def server(tmp_path):
    backing = PersistentStore(str(tmp_path / "tier"))
    srv = BlobServer(backing)
    yield srv
    srv.close()
    backing.close()


def _tiered(tmp_path, name, url):
    return TieredStore(PersistentStore(str(tmp_path / name)), url)


class TestBlobRoundTrip:
    def test_raw_get_put_via_http(self, tmp_path, server):
        client = NetworkStoreClient(server.url)
        digest = key_digest("components", ("k", 1))
        assert client.get_raw("components", digest) is None
        assert client.put_raw("components", digest, b'["t",1,2]') is True
        assert client.get_raw("components", digest) == b'["t",1,2]'
        assert client.stats()["writes"] == 1

    def test_healthz_and_stats(self, server):
        import json
        import urllib.request

        with urllib.request.urlopen(server.url + "/healthz") as resp:
            assert resp.status == 200
        with urllib.request.urlopen(server.url + "/stats") as resp:
            stats = json.loads(resp.read())
        assert stats["path"].endswith("store.sqlite")

    def test_unknown_paths_are_404(self, server):
        import urllib.error
        import urllib.request

        with pytest.raises(urllib.error.HTTPError):
            urllib.request.urlopen(server.url + "/kv/components/zz")


class TestTieredStore:
    def test_fleet_warm_start(self, tmp_path, server):
        # Worker A computes and shares; worker B (fresh local store)
        # finds the entry through the tier and writes it through.
        a = _tiered(tmp_path, "a", server.url)
        a.put("components", ("comp", 7), Fraction(22, 7))
        a.flush()
        b = _tiered(tmp_path, "b", server.url)
        assert b.get("components", ("comp", 7)) == Fraction(22, 7)
        assert b.remote.hits == 1
        # ... and the write-through makes the next read local.
        assert b.get("components", ("comp", 7)) == Fraction(22, 7)
        assert b.remote.hits == 1
        a.close()
        b.close()

    def test_local_hit_never_touches_the_network(self, tmp_path, server):
        t = _tiered(tmp_path, "a", server.url)
        t.put("components", ("x",), 5)
        assert t.get("components", ("x",)) == 5
        assert t.remote.hits == t.remote.misses == 0
        t.close()

    def test_interface_delegates_to_local(self, tmp_path, server):
        import os

        t = _tiered(tmp_path, "a", server.url)
        assert t.pid == os.getpid()
        assert t.disabled is False
        assert isinstance(t.entry_counts(), dict)
        assert "remote" in t.stats()
        t.close()

    def test_open_store_honors_env_url(self, tmp_path, server, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "local"))
        monkeypatch.setenv("REPRO_STORE_URL", server.url)
        t = open_store()
        assert isinstance(t, TieredStore)
        assert t.remote.url.startswith(server.url)
        # The same directory opened plainly shares the local instance.
        assert open_store(remote_url="") is t.local

    def test_counting_warm_start_through_the_tier(self, tmp_path, server):
        cnf = CNF()
        for v in range(1, 7):
            cnf.var_for(v)
        for clause in ((1, 2), (-2, 3), (3, 4, -5), (-1, 5, 6), (2, -6)):
            cnf.add_clause(clause)
        pairs = {v: WeightPair(Fraction(v, 2), Fraction(1, v))
                 for v in range(1, 7)}
        cold = _tiered(tmp_path, "a", server.url)
        reference = wmc_cnf(cnf, pairs.__getitem__, engine_cache={},
                            stats=EngineStats())
        # Store every component through worker A's tier...
        from repro.cache.adapters import StoreBackedComponentCache

        cache_a = StoreBackedComponentCache(cold, mem={})
        got = wmc_cnf(cnf, pairs.__getitem__, engine_cache=cache_a,
                      stats=EngineStats())
        assert got == reference
        cold.flush()
        # ... and worker B, with an empty local store, reuses them.
        warm = _tiered(tmp_path, "b", server.url)
        cache_b = StoreBackedComponentCache(warm, mem={})
        stats = EngineStats()
        assert wmc_cnf(cnf, pairs.__getitem__, engine_cache=cache_b,
                       stats=stats) == reference
        assert warm.remote.hits > 0
        cold.close()
        warm.close()


class TestNetworkFaults:
    def test_transient_http_error_is_retried(self, tmp_path, server):
        client = NetworkStoreClient(server.url)
        digest = key_digest("components", ("r",))
        client.put_raw("components", digest, b"1")
        install_plan("net_http_error@1")
        assert client.get_raw("components", digest) == b"1"
        assert client.retries == 1
        assert client.disabled is False

    def test_timeouts_exhaust_retries_and_open_the_breaker(
            self, tmp_path, server):
        client = NetworkStoreClient(server.url, max_retries=2)
        digest = key_digest("components", ("t",))
        install_plan("net_timeout~1")  # every request times out
        assert client.get_raw("components", digest) is None
        assert client.disabled is True
        assert client.retries == 2

    def test_breaker_reprobes_and_recovers(self, tmp_path, server):
        client = NetworkStoreClient(server.url, max_retries=0)
        digest = key_digest("components", ("p",))
        client.put_raw("components", digest, b"7")
        install_plan("net_refused@2")  # only the 2nd request is refused
        assert client.get_raw("components", digest) == b"7"
        assert client.get_raw("components", digest) is None  # breaker opens
        assert client.disabled is True
        clear_plan()
        # The probe interval is patched to 0: the next call re-probes
        # /healthz, closes the breaker, and serves the read.
        assert client.get_raw("components", digest) == b"7"
        assert client.reenables == 1

    def test_probe_schedule_pinned_with_fake_clock(
            self, tmp_path, server, monkeypatch):
        # The documented breaker contract, pinned on an injected clock:
        # the first probe fires at the *base* interval after the breaker
        # opens, the interval doubles only after a probe actually
        # fails, and a successful probe resets the schedule.
        from repro.cache import netstore

        monkeypatch.setattr(netstore, "_NET_PROBE_INTERVAL_S", 0.5)
        now = [0.0]
        client = NetworkStoreClient(server.url, max_retries=0,
                                    clock=lambda: now[0])
        probes = []
        real_once = client._request_once

        def counting_once(method, path, body=None):
            if path == "/healthz":
                probes.append(now[0])
            return real_once(method, path, body)

        client._request_once = counting_once
        digest = key_digest("components", ("sched",))
        client.put_raw("components", digest, b"9")
        install_plan("net_refused~1")  # everything refused from here
        assert client.get_raw("components", digest) is None
        assert client.disabled is True
        # Armed at the base interval: nothing probes before t=0.5.
        now[0] = 0.49
        assert client.available() is False
        assert probes == []
        # First probe exactly at the base interval; it fails, so the
        # interval doubles to 1.0 — next probe due at 1.5.
        now[0] = 0.5
        assert client.available() is False
        assert probes == [0.5]
        now[0] = 1.49
        client.available()
        assert probes == [0.5]
        now[0] = 1.5
        client.available()
        assert probes == [0.5, 1.5]
        # Doubling again: 1.5 + 2.0 = 3.5.
        now[0] = 3.5
        client.available()
        assert probes == [0.5, 1.5, 3.5]
        # The tier comes back; the probe at 3.5 + 4.0 = 7.5 succeeds.
        clear_plan()
        now[0] = 7.5
        assert client.available() is True
        assert client.reenables == 1
        assert probes == [0.5, 1.5, 3.5, 7.5]
        # Success reset the schedule: a fresh failure arms at the base
        # interval again, not at the last doubled value.
        install_plan("net_refused~1")
        assert client.get_raw("components", digest) is None
        now[0] = 8.0
        client.available()
        assert probes == [0.5, 1.5, 3.5, 7.5, 8.0]

    def test_no_duplicate_inflight_probes(self, tmp_path, server):
        # The duplicate-probe regression: the /healthz probe runs
        # outside the breaker lock (deliberately — no network I/O under
        # a lock), so pre-fix two callers racing past ``available()``
        # while one probe was still on the wire both probed.  A second
        # caller must skip while a probe is in flight.
        client = NetworkStoreClient(server.url, max_retries=0)
        in_probe = threading.Event()
        release = threading.Event()
        probes = []
        real_once = client._request_once

        def slow_probe(method, path, body=None):
            if path == "/healthz":
                probes.append(path)
                in_probe.set()
                release.wait(10)
            return real_once(method, path, body)

        client._request_once = slow_probe
        install_plan("net_refused@1")
        digest = key_digest("components", ("dup",))
        assert client.get_raw("components", digest) is None
        assert client.disabled is True
        clear_plan()
        # The fixture's zero probe interval makes the probe due at
        # once; park it on the wire on a helper thread.
        prober = threading.Thread(target=client.available)
        prober.start()
        try:
            assert in_probe.wait(10)
            # A concurrent caller arrives mid-probe: skip, don't probe.
            assert client.available() is False
            assert len(probes) == 1
        finally:
            release.set()
            prober.join(10)
        assert client.available() is True
        assert client.reenables == 1
        assert len(probes) == 1

    def test_torn_payload_reads_as_miss(self, tmp_path, server):
        tiered = _tiered(tmp_path, "a", server.url)
        tiered.put("components", ("torn",), Fraction(355, 113))
        tiered.flush()
        fresh = _tiered(tmp_path, "b", server.url)
        install_plan("net_torn_payload@1")
        assert fresh.get("components", ("torn",)) is None
        clear_plan()
        assert fresh.get("components", ("torn",)) == Fraction(355, 113)
        tiered.close()
        fresh.close()

    def test_dead_tier_degrades_to_local_only(self, tmp_path):
        # A URL nothing listens on: refused connections exhaust retries,
        # the breaker opens, and the store behaves like a local one.
        t = _tiered(tmp_path, "a", "http://127.0.0.1:9")
        t.remote.max_retries = 0
        t.put("components", ("local",), 11)
        t.flush()
        assert t.get("components", ("local",)) == 11
        assert t.get("components", ("absent",)) is None
        assert t.remote.disabled is True
        t.close()

    def test_counting_is_bit_identical_under_network_faults(
            self, tmp_path, server):
        cnf = CNF()
        for v in range(1, 9):
            cnf.var_for(v)
        for clause in ((1, -2, 3), (2, 4), (-3, 5), (5, -6, 7),
                       (-7, 8), (-4, 6, -8), (1, 7)):
            cnf.add_clause(clause)
        pairs = {v: WeightPair(Fraction(2, v), Fraction(v, 3))
                 for v in range(1, 9)}
        reference = wmc_cnf(cnf, pairs.__getitem__, engine_cache={},
                            stats=EngineStats())
        from repro.cache.adapters import StoreBackedComponentCache

        install_plan("seed=3;net_timeout?0.3;net_torn_payload?0.2")
        for name in ("a", "b", "c"):
            tiered = _tiered(tmp_path, name, server.url)
            tiered.remote.max_retries = 1
            cache = StoreBackedComponentCache(tiered, mem={})
            got = wmc_cnf(cnf, pairs.__getitem__, engine_cache=cache,
                          stats=EngineStats())
            assert got == reference
            tiered.flush()
            tiered.close()
