"""Tests for the QBF gadget (Theorem 4.1(2): PSPACE-hardness of spectra)."""

import pytest

from repro.complexity.qbf import QBF, evaluate_qbf, qbf_gadget
from repro.complexity.spectrum import has_model
from repro.propositional.formula import pand, pnot, por, pvar

X1, X2 = pvar("X1"), pvar("X2")
IFF = por(pand(X1, X2), pand(pnot(X1), pnot(X2)))


class TestQBFEvaluator:
    def test_forall_exists_iff(self):
        q = QBF(("forall", "exists"), ("X1", "X2"), IFF)
        assert evaluate_qbf(q)

    def test_exists_forall_iff(self):
        q = QBF(("exists", "forall"), ("X1", "X2"), IFF)
        assert not evaluate_qbf(q)

    def test_quantifier_order_matters(self):
        f = por(X1, X2)
        assert evaluate_qbf(QBF(("exists", "forall"), ("X1", "X2"), f))
        assert not evaluate_qbf(QBF(("forall", "forall"), ("X1", "X2"), f))

    def test_validation(self):
        with pytest.raises(ValueError):
            QBF(("forall",), ("X1", "X2"), X1)
        with pytest.raises(ValueError):
            QBF(("some",), ("X1",), X1)


class TestGadgetSpectrum:
    @pytest.mark.parametrize(
        "quants,matrix",
        [
            (("forall", "exists"), IFF),
            (("exists", "forall"), IFF),
            (("exists", "forall"), por(X1, X2)),
            (("forall", "forall"), por(X1, X2)),
            (("exists", "exists"), pand(X1, pnot(X2))),
            (("forall", "exists"), pand(X1, X2)),
        ],
    )
    def test_model_exists_iff_qbf_true(self, quants, matrix):
        q = QBF(quants, ("X1", "X2"), matrix)
        sentence = qbf_gadget(q)
        assert has_model(sentence, 3) == evaluate_qbf(q)

    def test_too_few_variables_rejected(self):
        with pytest.raises(ValueError):
            qbf_gadget(QBF(("exists",), ("X1",), X1))
