"""Test package for the repro library (enables relative strategy imports)."""
