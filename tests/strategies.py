"""Shared hypothesis strategies for randomized property tests."""

from __future__ import annotations

from fractions import Fraction

from hypothesis import strategies as st

from repro.logic.syntax import (
    Atom,
    Eq,
    Var,
    conj,
    disj,
    exists,
    forall,
    neg,
)
from repro.logic.vocabulary import WeightedVocabulary
from repro.propositional.formula import pand, pnot, por, pvar

X, Y = Var("x"), Var("y")

#: A small fixed vocabulary used by random-sentence strategies.
FO2_ARITIES = {"P": 1, "Q": 1, "R": 2, "S": 2}


def fractions(min_num=-3, max_num=4, denominators=(1, 2, 3)):
    """Small exact rationals, including negatives (Skolem-style weights)."""
    return st.builds(
        Fraction,
        st.integers(min_value=min_num, max_value=max_num),
        st.sampled_from(denominators),
    )


def probabilities():
    """Rationals in [0, 1] with small denominators."""
    return st.integers(min_value=0, max_value=6).map(lambda k: Fraction(k, 6))


def weighted_vocabularies(names_arities=None, allow_negative=True):
    """Random symmetric weight assignments over a fixed vocabulary."""
    names_arities = names_arities or FO2_ARITIES
    weight = fractions() if allow_negative else fractions(min_num=0)
    return st.fixed_dictionaries(
        {name: st.tuples(weight, weight) for name in names_arities}
    ).map(lambda w: WeightedVocabulary.from_weights(w, names_arities))


def _atoms(variables):
    choices = []
    for v in variables:
        choices.append(Atom("P", (v,)))
        choices.append(Atom("Q", (v,)))
    for v in variables:
        for u in variables:
            choices.append(Atom("R", (v, u)))
            choices.append(Atom("S", (v, u)))
    if len(variables) >= 2:
        choices.append(Eq(variables[0], variables[1]))
    return st.sampled_from(choices)


def quantifier_free(variables, max_depth=3):
    """Random quantifier-free formulas over the given variables."""
    base = _atoms(variables)
    return st.recursive(
        base,
        lambda inner: st.one_of(
            inner.map(neg),
            st.tuples(inner, inner).map(lambda t: conj(*t)),
            st.tuples(inner, inner).map(lambda t: disj(*t)),
        ),
        max_leaves=max_depth * 2,
    )


@st.composite
def fo2_sentences(draw):
    """Random FO2 sentences with up to two nested quantifier blocks."""
    inner = draw(quantifier_free((X, Y)))
    pattern = draw(st.sampled_from(["AA", "AE", "EA", "EE", "A", "E"]))
    if pattern == "AA":
        return forall([X, Y], inner)
    if pattern == "AE":
        return forall([X], exists([Y], inner))
    if pattern == "EA":
        return exists([X], forall([Y], inner))
    if pattern == "EE":
        return exists([X, Y], inner)
    one_var = draw(quantifier_free((X,)))
    if pattern == "A":
        return forall([X], one_var)
    return exists([X], one_var)


@st.composite
def fo2_nested_sentences(draw):
    """FO2 sentences with deeper nesting and Boolean structure on top."""
    first = draw(fo2_sentences())
    second = draw(fo2_sentences())
    op = draw(st.sampled_from(["and", "or", "not", "single"]))
    if op == "and":
        return conj(first, second)
    if op == "or":
        return disj(first, second)
    if op == "not":
        return neg(first)
    return first


@st.composite
def prop_formulas(draw, labels=("a", "b", "c", "d")):
    """Random propositional formulas over a few labels."""
    base = st.sampled_from([pvar(l) for l in labels])
    formula = st.recursive(
        base,
        lambda inner: st.one_of(
            inner.map(pnot),
            st.lists(inner, min_size=2, max_size=3).map(lambda fs: pand(*fs)),
            st.lists(inner, min_size=2, max_size=3).map(lambda fs: por(*fs)),
        ),
        max_leaves=8,
    )
    return draw(formula)


@st.composite
def cnf_clause_lists(draw, num_vars=5, max_clauses=8):
    """Random CNF clause lists over integer variables 1..num_vars."""
    literals = st.integers(min_value=1, max_value=num_vars).flatmap(
        lambda v: st.sampled_from([v, -v])
    )
    clause = st.lists(literals, min_size=1, max_size=3).map(tuple)
    return draw(st.lists(clause, min_size=0, max_size=max_clauses))
