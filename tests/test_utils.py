"""Unit tests for repro.utils."""

from fractions import Fraction

import pytest
from hypothesis import given, strategies as st

from repro.errors import DomainSizeError
from repro.utils import (
    as_fraction,
    binomial,
    check_domain_size,
    falling_factorial,
    multinomial,
    polynomial_interpolate,
    powerset,
    prod,
    weak_compositions,
)


class TestAsFraction:
    def test_int_passthrough(self):
        assert as_fraction(7) == Fraction(7)

    def test_fraction_passthrough(self):
        f = Fraction(2, 3)
        assert as_fraction(f) is f

    def test_string(self):
        assert as_fraction("1/3") == Fraction(1, 3)

    def test_float_rejected(self):
        with pytest.raises(TypeError):
            as_fraction(0.5)

    def test_bool_rejected(self):
        with pytest.raises(TypeError):
            as_fraction(True)

    def test_other_rejected(self):
        with pytest.raises(TypeError):
            as_fraction(object())


class TestBinomial:
    def test_small_values(self):
        assert binomial(5, 2) == 10
        assert binomial(4, 0) == 1
        assert binomial(4, 4) == 1

    def test_out_of_range_is_zero(self):
        assert binomial(3, 5) == 0
        assert binomial(3, -1) == 0
        assert binomial(-2, 0) == 0

    @given(st.integers(0, 20), st.integers(0, 20))
    def test_pascal_identity(self, n, k):
        assert binomial(n + 1, k + 1) == binomial(n, k) + binomial(n, k + 1)


class TestMultinomial:
    def test_binomial_special_case(self):
        assert multinomial([3, 2]) == binomial(5, 3)

    def test_three_parts(self):
        assert multinomial([1, 1, 1]) == 6

    def test_empty(self):
        assert multinomial([]) == 1

    @given(st.lists(st.integers(0, 5), min_size=1, max_size=4))
    def test_matches_iterated_binomials(self, counts):
        total = sum(counts)
        expected = 1
        remaining = total
        for c in counts:
            expected *= binomial(remaining, c)
            remaining -= c
        assert multinomial(counts) == expected


class TestWeakCompositions:
    def test_count_matches_stars_and_bars(self):
        for n in range(5):
            for k in range(1, 4):
                got = list(weak_compositions(n, k))
                assert len(got) == binomial(n + k - 1, k - 1)
                assert all(sum(c) == n and len(c) == k for c in got)
                assert len(set(got)) == len(got)

    def test_zero_parts(self):
        assert list(weak_compositions(0, 0)) == [()]
        assert list(weak_compositions(3, 0)) == []


class TestProd:
    def test_mixed_types(self):
        assert prod([2, Fraction(1, 2), 3]) == 3

    def test_empty(self):
        assert prod([]) == 1


class TestFallingFactorial:
    def test_values(self):
        assert falling_factorial(5, 2) == 20
        assert falling_factorial(5, 0) == 1
        assert falling_factorial(3, 5) == 0


class TestInterpolation:
    def test_recovers_quadratic(self):
        # f(x) = 2x^2 - 3x + 1
        points = [(x, 2 * x * x - 3 * x + 1) for x in range(3)]
        coeffs = polynomial_interpolate(points)
        assert coeffs == [Fraction(1), Fraction(-3), Fraction(2)]

    def test_duplicate_x_rejected(self):
        with pytest.raises(ValueError):
            polynomial_interpolate([(1, 1), (1, 2)])

    @given(st.lists(st.integers(-5, 5), min_size=1, max_size=5))
    def test_roundtrip_random_polynomials(self, coeffs):
        def f(x):
            return sum(c * x ** i for i, c in enumerate(coeffs))

        points = [(x, f(x)) for x in range(len(coeffs))]
        got = polynomial_interpolate(points)
        # Interpolation recovers the polynomial (maybe padded with zeros).
        for i in range(len(coeffs)):
            expected = Fraction(coeffs[i])
            actual = got[i] if i < len(got) else Fraction(0)
            assert actual == expected


class TestCheckDomainSize:
    def test_valid(self):
        assert check_domain_size(0) == 0
        assert check_domain_size(10) == 10

    def test_negative_rejected(self):
        with pytest.raises(DomainSizeError):
            check_domain_size(-1)

    def test_bool_rejected(self):
        with pytest.raises(DomainSizeError):
            check_domain_size(True)

    def test_float_rejected(self):
        with pytest.raises(DomainSizeError):
            check_domain_size(2.0)


class TestPowerset:
    def test_size(self):
        assert len(list(powerset([1, 2, 3]))) == 8

    def test_empty(self):
        assert list(powerset([])) == [()]
