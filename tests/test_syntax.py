"""Unit tests for the FO syntax kernel."""

import pytest

from repro.logic.syntax import (
    FALSE,
    TRUE,
    And,
    Atom,
    Bottom,
    Const,
    Eq,
    Exists,
    Forall,
    Iff,
    Implies,
    Not,
    Or,
    Top,
    Var,
    all_variables,
    atoms_of,
    conj,
    disj,
    exists,
    forall,
    free_variables,
    is_quantifier_free,
    is_sentence,
    neg,
    num_variables,
    predicates_of,
    substitute,
    variables,
)

x, y, z = Var("x"), Var("y"), Var("z")
R = lambda *args: Atom("R", args)
P = lambda a: Atom("P", (a,))


class TestConstructors:
    def test_conj_flattens(self):
        f = conj(P(x), conj(P(y), P(z)))
        assert isinstance(f, And)
        assert len(f.parts) == 3

    def test_conj_identity(self):
        assert conj() == TRUE
        assert conj(P(x)) == P(x)
        assert conj(P(x), TRUE) == P(x)

    def test_conj_absorbs_false(self):
        assert conj(P(x), FALSE) == FALSE

    def test_disj_flattens(self):
        f = disj(P(x), disj(P(y), P(z)))
        assert isinstance(f, Or)
        assert len(f.parts) == 3

    def test_disj_identity(self):
        assert disj() == FALSE
        assert disj(P(x), FALSE) == P(x)
        assert disj(P(x), TRUE) == TRUE

    def test_neg_folds(self):
        assert neg(TRUE) == FALSE
        assert neg(FALSE) == TRUE
        assert neg(neg(P(x))) == P(x)

    def test_quantifier_helpers(self):
        f = forall([x, y], R(x, y))
        assert isinstance(f, Forall)
        assert isinstance(f.body, Forall)
        g = exists(x, P(x))
        assert isinstance(g, Exists)

    def test_operator_sugar(self):
        f = P(x) & P(y)
        assert isinstance(f, And)
        g = P(x) | P(y)
        assert isinstance(g, Or)
        assert ~P(x) == Not(P(x))
        assert (P(x) >> P(y)) == Implies(P(x), P(y))

    def test_variables_helper(self):
        a, b = variables("a b")
        assert a == Var("a")
        assert variables("solo") == Var("solo")


class TestStructuralQueries:
    def test_free_variables(self):
        f = forall([x], R(x, y))
        assert free_variables(f) == {y}

    def test_free_variables_shadowing(self):
        f = conj(P(x), exists([x], P(x)))
        assert free_variables(f) == {x}

    def test_free_variables_eq(self):
        assert free_variables(Eq(x, Const(1))) == {x}

    def test_all_variables_counts_bound(self):
        f = forall([x], exists([y], R(x, y)))
        assert all_variables(f) == {"x", "y"}

    def test_num_variables_fo2_with_reuse(self):
        # exists x (P(x) & exists y (R(x,y) & exists x R(y,x))) uses 2 names.
        f = exists([x], conj(P(x), exists([y], conj(R(x, y), exists([x], R(y, x))))))
        assert num_variables(f) == 2

    def test_predicates_of(self):
        f = conj(P(x), R(x, y), Eq(x, y))
        assert predicates_of(f) == {"P": 1, "R": 2}

    def test_predicates_conflicting_arity(self):
        f = conj(Atom("R", (x,)), R(x, y))
        with pytest.raises(ValueError):
            predicates_of(f)

    def test_atoms_of(self):
        f = forall([x], disj(P(x), neg(R(x, y))))
        assert atoms_of(f) == {P(x), R(x, y)}

    def test_is_quantifier_free(self):
        assert is_quantifier_free(conj(P(x), R(x, y)))
        assert not is_quantifier_free(exists([x], P(x)))

    def test_is_sentence(self):
        assert is_sentence(forall([x, y], R(x, y)))
        assert not is_sentence(R(x, y))


class TestSubstitute:
    def test_basic(self):
        f = R(x, y)
        assert substitute(f, {x: Const(1)}) == R(Const(1), y)

    def test_shadowing(self):
        f = exists([x], R(x, y))
        got = substitute(f, {x: Const(1), y: Const(2)})
        assert got == exists([x], R(x, Const(2)))

    def test_eq(self):
        assert substitute(Eq(x, y), {x: z}) == Eq(z, y)

    def test_empty_mapping(self):
        f = forall([x], P(x))
        assert substitute(f, {}) is f

    def test_through_connectives(self):
        f = Implies(P(x), Iff(P(y), R(x, y)))
        got = substitute(f, {y: z})
        assert got == Implies(P(x), Iff(P(z), R(x, z)))


class TestRepr:
    def test_atom_repr(self):
        assert repr(R(x, y)) == "R(x, y)"
        assert repr(Atom("Z", ())) == "Z"

    def test_quantifier_repr(self):
        assert "forall x" in repr(forall([x], P(x)))

    def test_constants_repr(self):
        assert repr(Top()) == "true"
        assert repr(Bottom()) == "false"
