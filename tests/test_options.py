"""SolverOptions: the one options object behind every entry point.

Pins the API redesign's contract: ``from_kwargs``/``to_kwargs`` round-trip
exactly (hypothesis-generated options), legacy keyword calls resolve to
the same object as explicit construction, unknown keywords fail with
:class:`TypeError` like the old signatures did, and entry points produce
bit-identical results whichever calling style is used.
"""

import dataclasses
import pickle
from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.logic.parser import parse
from repro.options import BACKEND_NAMES, BRANCHINGS, METHODS, SolverOptions


def solver_options():
    """Hypothesis strategy over every valid field combination."""
    return st.builds(
        SolverOptions,
        method=st.sampled_from(METHODS),
        workers=st.one_of(st.none(), st.integers(min_value=0, max_value=4)),
        branching=st.one_of(st.none(), st.sampled_from(BRANCHINGS)),
        learn=st.one_of(st.none(), st.booleans()),
        max_learned=st.one_of(st.none(),
                              st.integers(min_value=0, max_value=1 << 12)),
        persist=st.one_of(st.none(), st.booleans()),
        cache_dir=st.one_of(st.none(), st.just("/tmp/some-cache")),
        phase_saving=st.one_of(st.none(), st.booleans()),
        compile=st.one_of(st.none(), st.booleans()),
        backend=st.one_of(st.none(), st.sampled_from(BACKEND_NAMES)),
    )


class TestRoundTrip:
    @settings(max_examples=120, deadline=None)
    @given(options=solver_options())
    def test_to_kwargs_from_kwargs_round_trips(self, options):
        assert SolverOptions.from_kwargs(None, **options.to_kwargs()) == options

    @settings(max_examples=60, deadline=None)
    @given(options=solver_options())
    def test_from_kwargs_passes_instances_through(self, options):
        assert SolverOptions.from_kwargs(options) is options

    @settings(max_examples=60, deadline=None)
    @given(options=solver_options())
    def test_replace_round_trips_every_field(self, options):
        rebuilt = SolverOptions().replace(
            **{f.name: getattr(options, f.name)
               for f in dataclasses.fields(SolverOptions)})
        assert rebuilt == options

    @settings(max_examples=60, deadline=None)
    @given(options=solver_options())
    def test_pickles_for_worker_payloads(self, options):
        assert pickle.loads(pickle.dumps(options)) == options

    def test_to_kwargs_drops_defaults(self):
        assert SolverOptions().to_kwargs() == {}
        assert SolverOptions(workers=2).to_kwargs() == {"workers": 2}


class TestFromKwargs:
    def test_method_string_shorthand(self):
        assert SolverOptions.from_kwargs("fo2") == SolverOptions(method="fo2")

    def test_legacy_kwargs_override_base(self):
        base = SolverOptions(method="lineage", workers=2)
        merged = SolverOptions.from_kwargs(base, workers=4, persist=True)
        assert merged == SolverOptions(method="lineage", workers=4,
                                       persist=True)
        # None kwargs mean "keep the base value" (old signature defaults).
        assert SolverOptions.from_kwargs(base, workers=None) == base

    def test_unknown_keyword_is_a_type_error(self):
        with pytest.raises(TypeError, match="wrokers"):
            SolverOptions.from_kwargs(None, wrokers=2)

    def test_bad_options_value_is_a_type_error(self):
        with pytest.raises(TypeError):
            SolverOptions.from_kwargs(42)


class TestValidation:
    def test_enumerated_fields_validate(self):
        with pytest.raises(ValueError, match="method"):
            SolverOptions(method="fo3")
        with pytest.raises(ValueError, match="branching"):
            SolverOptions(branching="vsids")
        with pytest.raises(ValueError, match="backend"):
            SolverOptions(backend="gpu")
        with pytest.raises(ValueError, match="workers"):
            SolverOptions(workers=-1)
        with pytest.raises(ValueError, match="max_learned"):
            SolverOptions(max_learned=-5)

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            SolverOptions().method = "fo2"

    def test_compiled_property(self):
        assert not SolverOptions().compiled
        assert SolverOptions(compile=True).compiled
        assert SolverOptions(backend="codegen").compiled
        assert SolverOptions(backend="exact").compiled


class TestEntryPointEquivalence:
    """Legacy keyword calls and options= calls are bit-identical."""

    SENTENCE = "forall x, y. (R(x) | S(x, y))"

    def test_wfomc_both_styles_agree(self):
        from repro.wfomc.solver import wfomc

        f = parse(self.SENTENCE)
        legacy = wfomc(f, 3, method="lineage")
        modern = wfomc(f, 3, options=SolverOptions(method="lineage"))
        positional_method = wfomc(f, 3, None, "lineage")
        assert legacy == modern == positional_method

    def test_mln_both_styles_agree(self):
        from repro.mln import MLN, mln_probability

        mln = MLN([(Fraction(3), parse("R(x)"))])
        query = parse("exists x. R(x)")
        legacy = mln_probability(mln, query, 2, method="lineage")
        modern = mln_probability(
            mln, query, 2, options=SolverOptions(method="lineage"))
        assert legacy == modern

    def test_wmc_both_styles_agree(self):
        from repro.propositional.counter import wmc_formula
        from repro.propositional.formula import por, pvar

        formula = por(pvar("a"), pvar("b"))
        weight = lambda v: (Fraction(1, 2), Fraction(1, 3))  # noqa: E731
        legacy = wmc_formula(formula, weight, branching="moms")
        modern = wmc_formula(
            formula, weight, options=SolverOptions(branching="moms"))
        assert legacy == modern
