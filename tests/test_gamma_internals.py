"""White-box tests for the gamma-acyclic solver (Theorem 3.6 internals)."""

from fractions import Fraction


from repro.cq import ConjunctiveQuery, cq_probability_bruteforce, gamma_acyclic_probability
from repro.cq.gamma import _GammaSolver

HALF = Fraction(1, 2)


class TestMemoization:
    def test_memo_reuses_residuals(self):
        # The rule-(b) recursion evaluates the same residual at many k;
        # the memo must be populated.
        q = ConjunctiveQuery(
            [("A", ("x",)), ("R", ("x", "y")), ("B", ("y",))],
            {"A": HALF, "R": HALF, "B": HALF},
            4,
        )
        solver = _GammaSolver(dict(q.probabilities))
        atoms = frozenset((a.relation, a.variables) for a in q.atoms)
        solver.probability(atoms, dict(q.domain_sizes))
        assert len(solver.memo) > 1

    def test_fresh_relation_probabilities_tracked(self):
        solver = _GammaSolver({"R": HALF})
        name = solver._fresh_relation("R", Fraction(3, 4))
        assert solver.probabilities[name] == Fraction(3, 4)
        assert name != "R"


class TestRuleInteractions:
    def test_rule_a_then_b_cascade(self):
        # R(x, y) with both ends hanging: (a) projects y, then (b)
        # conditions on the unary residue.
        q = ConjunctiveQuery(
            [("R", ("x", "y")), ("P", ("x",))], {"R": HALF, "P": HALF}, 3
        )
        assert gamma_acyclic_probability(q) == cq_probability_bruteforce(q)

    def test_zero_size_mid_recursion(self):
        # Rule (b) with k down to 1; n_x = 1 forces deep residuals with
        # singleton domains.
        q = ConjunctiveQuery(
            [("P", ("x",)), ("R", ("x", "y")), ("Q", ("y",))],
            {"P": HALF, "R": Fraction(1, 3), "Q": Fraction(1, 4)},
            1,
        )
        assert gamma_acyclic_probability(q) == cq_probability_bruteforce(q)

    def test_four_level_chain_with_units(self):
        atoms = [
            ("A", ("w",)),
            ("R", ("w", "x")),
            ("S", ("x", "y")),
            ("T", ("y", "z")),
            ("B", ("z",)),
        ]
        probs = {k: Fraction(1, 2 + i) for i, k in enumerate("ARSTB")}
        q = ConjunctiveQuery(atoms, probs, 2)
        assert gamma_acyclic_probability(q) == cq_probability_bruteforce(q)

    def test_wide_star_with_shared_center(self):
        atoms = [("R{}".format(i), ("c", "x{}".format(i))) for i in range(4)]
        probs = {"R{}".format(i): Fraction(1, i + 2) for i in range(4)}
        q = ConjunctiveQuery(atoms, probs, 2)
        assert gamma_acyclic_probability(q) == cq_probability_bruteforce(q)

    def test_ternary_atom_projection(self):
        # Isolated variables in a ternary atom: two applications of (a).
        q = ConjunctiveQuery(
            [("R", ("x", "y", "z")), ("P", ("z",))],
            {"R": HALF, "P": Fraction(1, 3)},
            2,
        )
        assert gamma_acyclic_probability(q) == cq_probability_bruteforce(q)
