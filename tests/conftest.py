"""Pytest configuration: markers and hypothesis profiles.

Two hypothesis profiles: ``dev`` (the default — random seeds, so local
runs keep exploring new inputs) and ``ci`` (derandomized with a fixed
example budget, so the differential fuzz suite is reproducible across
CI runs and a red build always points at a deterministic input).
Select with ``HYPOTHESIS_PROFILE=ci``.
"""

import os

from hypothesis import HealthCheck, settings

settings.register_profile("dev", deadline=None)
settings.register_profile(
    "ci",
    deadline=None,
    derandomize=True,
    max_examples=60,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "slow: long-running exact-validation tests (grounded Theta_1 etc.)"
    )
