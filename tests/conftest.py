"""Pytest configuration: register the 'slow' marker."""


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "slow: long-running exact-validation tests (grounded Theta_1 etc.)"
    )
