"""Tests for the baseline WFOMC solvers (definition vs lineage engine)."""

from fractions import Fraction

import pytest
from hypothesis import given, settings

from repro.logic.parser import parse
from repro.logic.vocabulary import WeightedVocabulary
from repro.wfomc.bruteforce import fomc_lineage, wfomc_enumerate, wfomc_lineage

from .strategies import fo2_nested_sentences, weighted_vocabularies


class TestKnownCounts:
    def test_forall_exists_paper_example(self):
        # Section 1: FOMC(forall x exists y R(x,y), n) = (2^n - 1)^n.
        f = parse("forall x. exists y. R(x, y)")
        for n in range(4):
            assert fomc_lineage(f, n) == (2 ** n - 1) ** n

    def test_exists_unary(self):
        # Section 2: WFOMC(exists y S(y)) = (w + wbar)^n - wbar^n.
        f = parse("exists y. S(y)")
        wv = WeightedVocabulary.from_weights({"S": (2, 3)}, {"S": 1})
        for n in range(4):
            assert wfomc_lineage(f, n, wv) == 5 ** n - 3 ** n

    def test_true_sentence_counts_everything(self):
        f = parse("forall x. (P(x) | ~P(x))")
        assert fomc_lineage(f, 3) == 2 ** 3

    def test_unsatisfiable_counts_zero(self):
        f = parse("exists x. (P(x) & ~P(x))")
        assert fomc_lineage(f, 3) == 0

    def test_empty_domain(self):
        assert fomc_lineage(parse("forall x. P(x)"), 0) == 1
        assert fomc_lineage(parse("exists x. P(x)"), 0) == 0

    def test_free_variables_rejected(self):
        with pytest.raises(ValueError):
            wfomc_lineage(parse("P(x)"), 2)


class TestEnumerationAgreesWithLineage:
    @pytest.mark.parametrize(
        "text",
        [
            "forall x. exists y. R(x, y)",
            "forall x, y. (R(x, y) -> R(y, x))",
            "exists x. (P(x) & forall y. R(x, y))",
            "forall x, y. (R(x, y) | x = y)",
        ],
    )
    def test_agreement(self, text):
        f = parse(text)
        for n in (1, 2):
            assert wfomc_enumerate(f, n) == wfomc_lineage(f, n)

    @settings(max_examples=15, deadline=None)
    @given(fo2_nested_sentences(), weighted_vocabularies())
    def test_agreement_weighted_random(self, f, wv):
        assert wfomc_enumerate(f, 2, wv) == wfomc_lineage(f, 2, wv)


class TestWeightSemantics:
    def test_weight_of_single_world(self):
        # forall x P(x) has exactly one model; weight w^n.
        f = parse("forall x. P(x)")
        wv = WeightedVocabulary.from_weights({"P": (Fraction(1, 3), 5)}, {"P": 1})
        assert wfomc_lineage(f, 2, wv) == Fraction(1, 9)

    def test_total_weight_identity(self):
        # WFOMC(true) = prod (w + wbar)^(n^arity).
        f = parse("forall x. (P(x) | ~P(x))")
        wv = WeightedVocabulary.from_weights({"P": (2, 3)}, {"P": 1})
        for n in (0, 1, 2, 3):
            assert wfomc_lineage(f, n, wv) == wv.total_world_weight(n)

    def test_negative_weights(self):
        # With Skolem weights (1, -1), sum over both values of P(a) is 0
        # unless the sentence pins every atom.
        f = parse("forall x. (P(x) | ~P(x))")
        wv = WeightedVocabulary.from_weights({"P": (1, -1)}, {"P": 1})
        assert wfomc_lineage(f, 2, wv) == 0
        g = parse("forall x. P(x)")
        assert wfomc_lineage(g, 2, wv) == 1
