"""The circuit-evaluation backend subsystem end to end.

Covers the :class:`~repro.compile.backends.EvalBackend` strategy layer
(resolution, the unified ``Circuit.evaluate``/``evaluate_many``
surface), the batched interpreter, the float64 path with tracked error
bounds and automatic exact fallback, per-circuit code generation with
its source validator and store persistence, the one-compilation-per-
``(formula, n)`` property of ``wfomc_batch(compile=True)``, the shared
compiled route of ``mln_query_sweep``, and the CLI ``--backend`` flag.
"""

from fractions import Fraction

import pytest

from repro.compile import compile_wfomc, clear_compile_cache, compile_stats
from repro.compile.backends import (
    FloatBackend,
    backend_stats,
    clear_backend_stats,
    get_backend,
)
from repro.compile.codegen import (
    CODEGEN_FORMAT,
    batch_source,
    compile_source,
    scalar_source,
    validate_source,
)
from repro.compile.trace import CIRCUITS_NS, compile_cnf
from repro.logic.parser import parse
from repro.logic.syntax import predicates_of
from repro.logic.vocabulary import WeightedVocabulary
from repro.options import SolverOptions
from repro.propositional.cnf import CNF
from repro.wfomc.solver import wfomc, wfomc_batch, wfomc_weight_sweep


def _instance(text="forall x, y. (R(x) | S(x, y) | T(y))", n=2, k=6):
    f = parse(text)
    arities = predicates_of(f)
    vocabularies = [
        WeightedVocabulary.from_weights(
            {name: (Fraction(j, 3), 1) if name == sorted(arities)[0]
             else (1, 1) for name in arities},
            arities)
        for j in range(1, k + 1)
    ]
    return f, n, vocabularies


def _small_circuit():
    cnf = CNF()
    for v in (1, 2, 3):
        cnf.var_for(v)
    cnf.add_clause((1, 2))
    cnf.add_clause((-2, 3))
    return compile_cnf(cnf)


class TestBackendResolution:
    def test_names_resolve(self):
        for name in ("exact", "batched", "float", "codegen"):
            assert get_backend(name).name == name

    def test_none_is_exact(self):
        assert get_backend(None).name == "exact"

    def test_instances_pass_through(self):
        backend = FloatBackend(rel_tol=1e-6)
        assert get_backend(backend) is backend

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="gpu"):
            get_backend("gpu")


class TestUnifiedSurface:
    """Circuit.evaluate/evaluate_many: one entry, every backend agrees."""

    def test_exact_backends_bit_identical(self):
        f, n, vocabularies = _instance()
        compiled = compile_wfomc(f, n, method="lineage")
        reference = compiled.evaluate_many(vocabularies)
        assert all(isinstance(v, Fraction) for v in reference)
        for backend in ("exact", "batched", "codegen"):
            many = compiled.evaluate_many(vocabularies, backend=backend)
            assert many == reference, backend
            assert all(
                (a.numerator, a.denominator) == (b.numerator, b.denominator)
                for a, b in zip(reference, many)), backend
            singles = [compiled.evaluate(wv, backend=backend)
                       for wv in vocabularies]
            assert singles == reference, backend

    def test_uniform_batch_broadcasts(self):
        f, n, vocabularies = _instance()
        compiled = compile_wfomc(f, n, method="lineage")
        same = [vocabularies[0]] * 4
        reference = compiled.evaluate(vocabularies[0])
        for backend in ("batched", "codegen"):
            assert compiled.evaluate_many(same, backend=backend) == (
                [reference] * 4), backend

    def test_empty_batch(self):
        f, n, _ = _instance()
        compiled = compile_wfomc(f, n, method="lineage")
        for backend in ("exact", "batched", "codegen"):
            assert compiled.evaluate_many([], backend=backend) == []

    def test_circuit_evaluate_batch_alias(self):
        circuit = _small_circuit()
        weights = lambda v: (Fraction(1, 2), 1)  # noqa: E731
        assert circuit.evaluate_batch([weights]) == (
            circuit.evaluate_many([weights]))


class TestFloatBackend:
    def test_value_within_tracked_bound(self):
        circuit = _small_circuit()
        weights = lambda v: (Fraction(1, 3), Fraction(2, 7))  # noqa: E731
        exact = circuit.evaluate(weights)
        value, bound = FloatBackend().evaluate_bounds(circuit, weights)
        assert abs(Fraction(value) - exact) <= Fraction(bound)

    def test_returns_float_when_bound_is_tight(self):
        circuit = _small_circuit()
        weights = lambda v: (Fraction(1, 2), 1)  # noqa: E731
        clear_backend_stats()
        got = circuit.evaluate(weights, backend="float")
        assert isinstance(got, float)
        assert got == float(circuit.evaluate(weights))
        assert backend_stats()["float_fallbacks"] == 0

    def test_catastrophic_cancellation_falls_back_to_exact(self):
        # Empty CNF over one variable: WMC = w + wbar.  With
        # w = 10**20 + 1 and wbar = -10**20 the float pass cancels to 0
        # while the exact value is 1 — the tracked bound crosses the
        # decision threshold and the backend must recompute exactly.
        cnf = CNF()
        cnf.var_for(1)
        circuit = compile_cnf(cnf)
        weights = lambda v: (Fraction(10 ** 20 + 1), Fraction(-10 ** 20))  # noqa: E731
        clear_backend_stats()
        got = circuit.evaluate(weights, backend="float")
        assert got == 1.0
        assert backend_stats()["float_fallbacks"] == 1


class TestCodegen:
    def test_sources_validate_and_execute(self):
        circuit = _small_circuit()
        src = scalar_source(circuit)
        assert validate_source(src)
        fn = compile_source(src)
        weights = lambda v: (Fraction(1, 2), 1)  # noqa: E731
        from repro.compile.backends import leaf_values

        flat = leaf_values(circuit.leaf_keys(), weights)
        assert Fraction(fn(flat)) == circuit.evaluate(weights)

    def test_validator_rejects_structural_tampering(self):
        circuit = _small_circuit()
        src = batch_source(circuit, frozenset([0]))
        assert validate_source(src, batch=True)
        assert not validate_source(
            src.replace("    return", "    import os\n    return"),
            batch=True)
        assert not validate_source(src + "\n    v9 = v0.__class__",
                                   batch=True)
        assert not validate_source(src + '\n    v9 = "x"', batch=True)
        # The conditional tail only compares _s names against 0/1.
        assert not validate_source(
            src + "\n    v9 = v0 if _s1 == 2 else v0", batch=True)

    def test_grammar_sound_sources_fail_closed_without_builtins(self):
        # Names pass the charset, but exec sees empty __builtins__ and
        # only F/zip — a smuggled call has nothing to reach.
        evil = "def _circuit_eval(L):\n    v0 = eval(L)\n    return v0"
        assert validate_source(evil)
        with pytest.raises(NameError):
            compile_source(evil)([1])

    def test_store_round_trip_and_tamper_rejection(self, tmp_path):
        from repro.cache import open_store

        store = open_store(str(tmp_path))
        circuit = _small_circuit()
        weights = lambda v: (Fraction(1, 2), 1)  # noqa: E731
        exact = circuit.evaluate(weights)
        clear_backend_stats()
        assert circuit.evaluate(weights, backend="codegen",
                                store=store) == exact
        assert backend_stats()["codegen_store_hits"] == 0
        # A fresh circuit object (empty runtime cache) warm-loads the
        # persisted source instead of regenerating.
        fresh = type(circuit)(circuit.rows, circuit.root)
        assert fresh.evaluate(weights, backend="codegen",
                              store=store) == exact
        assert backend_stats()["codegen_store_hits"] == 1
        # Tamper the stored payload: the validator must reject it and
        # the backend must regenerate, still returning the exact value.
        key = ("codegen", CODEGEN_FORMAT, "scalar", circuit.root,
               circuit.rows)
        assert store.get(CIRCUITS_NS, key) is not None
        store.put(CIRCUITS_NS, key,
                  ("codegen-src", CODEGEN_FORMAT,
                   "def _circuit_eval(L):\n    v0 = L.__class__\n    return v0"))
        clear_backend_stats()
        tampered = type(circuit)(circuit.rows, circuit.root)
        assert tampered.evaluate(weights, backend="codegen",
                                 store=store) == exact
        assert backend_stats()["codegen_store_hits"] == 0

    def test_node_limit_falls_back_to_interpreters(self, monkeypatch):
        import repro.compile.backends as backends

        monkeypatch.setattr(backends, "CODEGEN_NODE_LIMIT", 1)
        f, n, vocabularies = _instance()
        compiled = compile_wfomc(f, n, method="lineage")
        reference = compiled.evaluate_many(vocabularies)
        clear_backend_stats()
        assert compiled.evaluate_many(vocabularies,
                                      backend="codegen") == reference
        stats = backend_stats()
        assert stats["codegen_batches"] == 0
        assert stats["batched_batches"] == 1


class TestSolverIntegration:
    def test_batch_compiles_once_per_size(self):
        f, _n, vocabularies = _instance()
        clear_compile_cache()
        before = compile_stats()["compiled"]
        results = wfomc_batch(f, [2, 3], vocabularies[0],
                              options=SolverOptions(backend="codegen"))
        compiled_count = compile_stats()["compiled"] - before
        assert compiled_count == 2  # one circuit per distinct n, reused
        direct = {n: wfomc(f, n, vocabularies[0]) for n in (2, 3)}
        assert results == direct

    def test_weight_sweep_backends_match_direct(self):
        f, n, vocabularies = _instance()
        direct = wfomc_weight_sweep(f, n, vocabularies,
                                    via_polynomial=False)
        for backend in ("batched", "codegen"):
            got = wfomc_weight_sweep(
                f, n, vocabularies,
                options=SolverOptions(backend=backend))
            assert got == direct, backend

    def test_float_backend_sweep_is_close(self):
        f, n, vocabularies = _instance()
        direct = wfomc_weight_sweep(f, n, vocabularies,
                                    via_polynomial=False)
        got = wfomc_weight_sweep(f, n, vocabularies,
                                 options=SolverOptions(backend="float"))
        for exact, approx in zip(direct, got):
            assert isinstance(approx, float)
            if exact == 0:
                assert approx == 0.0
            else:
                assert abs(Fraction(approx) - exact) <= (
                    abs(exact) * Fraction(1, 10 ** 8))

    def test_mln_query_sweep_compiled_route_matches_loop(self):
        from repro.mln import MLN, mln_query_sweep

        mlns = [MLN([(Fraction(w, 2), parse("S(x, y)")),
                     (Fraction(3), parse("P(x)"))])
                for w in (5, 7, 9)]
        query = parse("exists x. P(x)")
        plain = mln_query_sweep(mlns, query, 2)
        for backend in (None, "batched", "codegen"):
            opts = SolverOptions(compile=True, backend=backend)
            assert mln_query_sweep(mlns, query, 2, options=opts) == plain

    def test_mln_query_sweep_pole_falls_back(self):
        from repro.mln import MLN, mln_query_sweep

        # A weight-1 soft constraint sits on the pole of the frozen
        # reduction template; the sweep must fall back to the per-MLN
        # loop and still be exact.
        mlns = [MLN([(Fraction(w), parse("P(x)"))]) for w in (1, 2)]
        query = parse("exists x. P(x)")
        plain = mln_query_sweep(mlns, query, 2)
        compiled = mln_query_sweep(mlns, query, 2,
                                   options=SolverOptions(compile=True))
        assert compiled == plain


class TestCLI:
    def test_sweep_backend_flag_matches_interpreter(self, capsys):
        from repro.cli import main

        argv = ["sweep", "forall x, y. (R(x) | S(x, y))", "3",
                "--vary", "R", "--values", "1/2,1,2"]
        assert main(argv) == 0
        plain = capsys.readouterr().out
        for backend in ("batched", "codegen"):
            assert main(argv + ["--backend", backend]) == 0
            assert capsys.readouterr().out == plain

    def test_probability_float_backend(self, capsys):
        from repro.cli import main

        assert main(["probability", "exists x. P(x)", "3",
                     "--backend", "float"]) == 0
        out = capsys.readouterr().out
        assert "0.875" in out
