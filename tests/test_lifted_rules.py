"""Tests for the lifted rule engine — including its designed incompleteness.

The paper (Theorem 3.7 discussion) observes that the known lifted
inference rules compute FO2 but not Q_S4.  The engine must therefore (a)
agree exactly with the Appendix C cell algorithm on FO2 inputs, and (b)
fail with :class:`RulesIncompleteError` on Q_S4.
"""

from fractions import Fraction

import pytest
from hypothesis import given, settings

from repro.errors import UnsupportedFormulaError
from repro.lifted import RulesIncompleteError, lifted_wfomc
from repro.logic.parser import parse
from repro.logic.vocabulary import WeightedVocabulary
from repro.wfomc.bruteforce import wfomc_lineage
from repro.wfomc.fo2 import wfomc_fo2
from repro.wfomc.qs4 import QS4_SENTENCE

from .strategies import fo2_nested_sentences, weighted_vocabularies


FO2_CASES = [
    "forall x. exists y. R(x, y)",
    "forall x, y. (R(x) | S(x, y) | T(y))",
    "forall x, y. (R(x, y) -> R(y, x))",
    "exists x. P(x)",
    "forall x, y. (Smokes(x) & Friends(x, y) -> Smokes(y))",
    "forall x. (P(x) <-> exists y. R(x, y))",
    "exists x. exists y. (P(x) & S(x, y) & Q(y))",
    "(exists x. P(x)) & (forall x. exists y. S(x, y))",
]


class TestAgreementWithFO2:
    @pytest.mark.parametrize("text", FO2_CASES)
    def test_matches_cell_algorithm(self, text):
        f = parse(text)
        for n in (0, 1, 2, 3):
            assert lifted_wfomc(f, n) == wfomc_fo2(f, n), (text, n)

    def test_weighted(self):
        f = parse("forall x, y. (R(x) | S(x, y) | T(y))")
        wv = WeightedVocabulary.from_weights(
            {"R": (2, 1), "S": (Fraction(1, 2), Fraction(1, 3)), "T": (1, 4)},
            {"R": 1, "S": 2, "T": 1},
        )
        for n in (1, 2, 3):
            assert lifted_wfomc(f, n, wv) == wfomc_fo2(f, n, wv)

    def test_polynomial_scaling(self):
        f = parse("forall x. exists y. R(x, y)")
        assert lifted_wfomc(f, 20) == (2 ** 20 - 1) ** 20

    @settings(max_examples=20, deadline=None)
    @given(fo2_nested_sentences(), weighted_vocabularies())
    def test_random_fo2(self, f, wv):
        try:
            got = lifted_wfomc(f, 2, wv)
        except (RulesIncompleteError, UnsupportedFormulaError):
            # Equality / repeated-variable atoms / genuinely stuck theories
            # are outside the rule set — that is allowed; wrong answers are
            # not.
            return
        assert got == wfomc_lineage(f, 2, wv)


class TestIncompleteness:
    def test_qs4_escapes_the_rules(self):
        # The headline: Q_S4 is PTIME (Theorem 3.7) but no lifted rule
        # applies to it.
        with pytest.raises(RulesIncompleteError):
            lifted_wfomc(QS4_SENTENCE, 3)

    def test_qs4_dp_still_computes_it(self):
        from repro.wfomc.qs4 import wfomc_qs4

        assert wfomc_qs4(3) == wfomc_lineage(QS4_SENTENCE, 3)

    def test_transitivity_escapes(self):
        f = parse("forall x, y, z. (E(x, y) & E(y, z) -> E(x, z))")
        with pytest.raises(RulesIncompleteError):
            lifted_wfomc(f, 3)


class TestRejections:
    def test_equality_rejected(self):
        f = parse("forall x, y. (R(x, y) | x = y)")
        with pytest.raises(UnsupportedFormulaError):
            lifted_wfomc(f, 2)

    def test_repeated_variable_rejected(self):
        f = parse("forall x. ~R(x, x)")
        with pytest.raises(UnsupportedFormulaError):
            lifted_wfomc(f, 2)


class TestRuleInternals:
    def test_independence_rule(self):
        # Two predicate-disjoint conjuncts: counts multiply.
        f = parse("(forall x. P(x)) & (exists x. Q(x))")
        for n in (1, 2, 3):
            assert lifted_wfomc(f, n) == 1 * (2 ** n - 1)

    def test_atom_counting_binomial(self):
        # forall x (P(x) | Q(x)): condition on |P| = k; count = 3^n.
        f = parse("forall x. (P(x) | Q(x))")
        for n in (1, 2, 3, 4):
            assert lifted_wfomc(f, n) == 3 ** n

    def test_pair_rule_symmetric_clause(self):
        # Symmetry needs the pair rule (separator positions clash).
        f = parse("forall x, y. (R(x, y) -> R(y, x))")
        # Symmetric digraphs with free diagonal: 2^n * 2^C(n,2) ... with
        # both orientations tied: each unordered pair has 2 allowed states
        # of 4? (R(a,b) <-> R(b,a)): 2 choices per pair, 2 per loop.
        for n in (1, 2, 3, 4):
            assert lifted_wfomc(f, n) == 2 ** n * 2 ** (n * (n - 1) // 2)
