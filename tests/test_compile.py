"""Tests for the knowledge-compilation subsystem (``repro.compile``).

Layers: white-box units for the circuit IR (hash-consing, folding,
evaluation, gradients, smoothing, serialization), equivalence of
compiled circuits with direct counting across the CNF / formula /
lineage / FO2 entry points, exact gradient validation against
interpolated derivatives, persistence through the on-disk store, and
the solver-level ``compile=`` fast paths.
"""

import itertools
from fractions import Fraction

import pytest

from repro.compile import (
    CircuitBuilder,
    Circuit,
    clear_compile_cache,
    compile_cnf,
    compile_formula,
    compile_lineage,
    compile_stats,
    compile_wfomc,
)
from repro.cache import decode_value, encode_value
from repro.logic.parser import parse
from repro.logic.vocabulary import WeightedVocabulary
from repro.propositional.cnf import CNF
from repro.propositional.counter import (
    EngineStats,
    engine_stats,
    reset_engine,
    wmc_cnf,
    wmc_formula,
)
from repro.propositional.formula import pand, pnot, por, pvar
from repro.utils import polynomial_interpolate
from repro.weights import WeightPair
from repro.wfomc.bruteforce import wfomc_lineage
from repro.wfomc.solver import (
    probability,
    wfomc,
    wfomc_batch,
    wfomc_weight_sweep,
)


def _cnf(clauses, num_vars):
    cnf = CNF()
    for v in range(1, num_vars + 1):
        cnf.var_for(v)
    for clause in clauses:
        cnf.add_clause(clause)
    return cnf


def _pairs_fn(pairs):
    return lambda label: pairs[label - 1]


class TestCircuitBuilder:
    def test_hash_consing_shares_structurally_equal_nodes(self):
        b = CircuitBuilder()
        x1 = b.lit("x", True)
        x2 = b.lit("x", True)
        assert x1 == x2
        p1 = b.times([x1, b.lit("y", False)])
        p2 = b.times([b.lit("y", False), x1])  # commutative: same node
        assert p1 == p2

    def test_constant_folding(self):
        b = CircuitBuilder()
        x = b.lit("x", True)
        assert b.times([b.const(2), b.const(3)]) == b.const(6)
        assert b.times([x, b.const(0)]) == b.const(0)
        assert b.times([x, b.const(1)]) == x
        assert b.plus([x, b.const(0)]) == x
        assert b.plus([b.const(2), b.const(-2)]) == b.const(0)
        assert b.pow(x, 0) == b.const(1)
        assert b.pow(x, 1) == x
        assert b.pow(b.const(3), 4) == b.const(81)

    def test_duplicate_children_are_powers_not_sets(self):
        b = CircuitBuilder()
        x = b.lit("x", True)
        square = b.times([x, x])
        circuit = b.build(square)
        assert circuit.evaluate({"x": (3, 1)}) == 9

    def test_empty_operators(self):
        b = CircuitBuilder()
        assert b.times([]) == b.const(1)
        assert b.plus([]) == b.const(0)

    def test_is_zero(self):
        b = CircuitBuilder()
        assert b.is_zero(b.const(0))
        assert not b.is_zero(b.const(2))
        assert not b.is_zero(b.lit("x", True))


class TestCircuitEvaluation:
    def _example(self):
        # (x + ~x * tot(y)) * 3 ^ see manual value below
        b = CircuitBuilder()
        x = b.lit("x", True)
        nx = b.lit("x", False)
        ty = b.tot("y")
        node = b.plus([b.times([x, b.tot("y")]),
                       b.times([nx, ty])])
        root = b.times([node, b.const(3)])
        return b.build(root)

    def test_evaluate_matches_manual_computation(self):
        c = self._example()
        weights = {"x": (Fraction(1, 2), 2), "y": (5, -1)}
        # (1/2 * 4 + 2 * 4) * 3 = 30
        assert c.evaluate(weights) == 30

    def test_gradient_matches_hand_derivative(self):
        c = self._example()
        weights = {"x": (Fraction(1, 2), 2), "y": (5, -1)}
        value, grads = c.gradient(weights)
        assert value == 30
        # d/dw_x = tot(y) * 3 = 12; d/dwbar_x likewise 12
        assert grads["x"] == (12, 12)
        # d/dw_y = d/dwbar_y = (w_x + wbar_x) * 3 = 15/2
        assert grads["y"] == (Fraction(15, 2), Fraction(15, 2))

    def test_gradient_handles_zero_valued_product_children(self):
        b = CircuitBuilder()
        root = b.times([b.lit("x", True), b.lit("y", True)])
        c = b.build(root)
        value, grads = c.gradient({"x": (0, 1), "y": (7, 1)})
        assert value == 0
        assert grads["x"] == (7, 0)  # the cofactor, no division by zero
        assert grads["y"] == (0, 0)

    def test_pow_gradient(self):
        b = CircuitBuilder()
        c = b.build(b.pow(b.lit("x", True), 3))
        value, grads = c.gradient({"x": (Fraction(2), 1)})
        assert value == 8
        assert grads["x"] == (12, 0)  # 3 * x^2

    def test_degree_and_depth_and_stats(self):
        c = self._example()
        assert c.degree("x") == 1
        assert c.degree("y") == 1
        stats = c.stats()
        assert stats["nodes"] == len(c)
        assert stats["depth"] == c.depth()
        assert stats["vars"] == 2

    def test_evaluate_batch(self):
        c = self._example()
        w1 = {"x": (1, 1), "y": (1, 1)}
        w2 = {"x": (2, 0), "y": (0, 3)}
        assert c.evaluate_batch([w1, w2]) == [c.evaluate(w1), c.evaluate(w2)]


class TestSmoothing:
    def test_unsmooth_plus_is_detected_and_repaired(self):
        b = CircuitBuilder()
        root = b.plus([b.lit("x", True), b.lit("y", True)])
        c = b.build(root)
        assert not c.is_smooth()
        smoothed = c.smooth()
        assert smoothed.is_smooth()
        # Each branch gained the other variable's total factor.
        weights = {"x": (2, 3), "y": (5, 7)}
        assert smoothed.evaluate(weights) == 2 * (5 + 7) + 5 * (2 + 3)

    def test_traced_circuits_are_smooth_by_construction(self):
        cnf = _cnf([(1, 2), (-2, 3), (1, -3)], 4)
        circuit = compile_cnf(cnf)
        assert circuit.is_smooth()
        # Smoothing an already-smooth circuit changes nothing observable.
        weights = {v: (Fraction(1, 3), 2) for v in range(1, 5)}
        assert circuit.smooth().evaluate(weights) == circuit.evaluate(weights)


class TestSerialization:
    def test_payload_roundtrip_through_store_codec(self):
        cnf = _cnf([(1, 2), (-1, 3), (2, -3)], 3)
        circuit = compile_cnf(cnf)
        payload = decode_value(encode_value(circuit.to_payload()))
        restored = Circuit.from_payload(payload)
        weights = {v: (Fraction(2, 3), -1) for v in range(1, 4)}
        assert restored.evaluate(weights) == circuit.evaluate(weights)
        value, grads = restored.gradient(weights)
        assert (value, grads) == circuit.gradient(weights)

    def test_foreign_payloads_degrade_to_none(self):
        assert Circuit.from_payload(None) is None
        assert Circuit.from_payload(("other", 1, 0, ())) is None
        assert Circuit.from_payload(("accirc", 999, 0, ())) is None


def _enumeration(clauses, pairs):
    total = Fraction(0)
    for bits in itertools.product((False, True), repeat=len(pairs)):
        if all(any(bits[abs(l) - 1] == (l > 0) for l in c) for c in clauses):
            weight = Fraction(1)
            for bit, pair in zip(bits, pairs):
                weight *= pair[0] if bit else pair[1]
            total += weight
    return total


class TestCompileCNF:
    def test_matches_wmc_cnf_at_many_weights(self):
        clauses = [(1, 2, -3), (-1, 4), (2, 3), (-4, -2, 1)]
        cnf = _cnf(clauses, 5)  # variable 5 occurs in no clause
        circuit = compile_cnf(cnf)
        for pairs in (
            [WeightPair(1, 1)] * 5,
            [WeightPair(Fraction(1, 2), 2), WeightPair(0, 1),
             WeightPair(1, -1), WeightPair(3, Fraction(-1, 3)),
             WeightPair(2, 5)],
        ):
            direct = wmc_cnf(cnf, lambda v: pairs[v - 1], engine_cache={},
                             stats=EngineStats())
            compiled = circuit.evaluate(lambda v: tuple(pairs[v - 1]))
            assert compiled == direct
            assert (compiled.numerator, compiled.denominator) == (
                direct.numerator, direct.denominator)

    def test_contradictory_cnf_compiles_to_zero(self):
        cnf = _cnf([(1,), ()], 2)
        assert compile_cnf(cnf).evaluate({1: (1, 1), 2: (1, 1)}) == 0

    def test_empty_cnf_counts_unconstrained_mass(self):
        cnf = _cnf([], 2)
        assert compile_cnf(cnf).evaluate({1: (2, 3), 2: (1, 4)}) == 25

    def test_tseitin_auxiliaries_are_baked_out(self):
        # A non-clausal formula forces the Tseitin path in to_cnf.
        formula = por(pand(pvar("a"), pvar("b")),
                      pand(pvar("c"), pnot(pvar("a"))))
        circuit = compile_formula(formula)
        assert set(circuit.leaf_keys()) <= {"a", "b", "c"}
        for w in ((1, 1), (Fraction(1, 2), Fraction(1, 3))):
            weights = {label: w for label in ("a", "b", "c")}
            direct = wmc_formula(formula, lambda label: WeightPair(*w))
            assert circuit.evaluate(weights) == direct

    def test_gradient_is_exact_on_multilinear_wmc(self):
        # WMC is degree-1 in every (w_v, wbar_v) coordinate, so central
        # differences are *exactly* the derivative — no tolerance.
        clauses = [(1, -2), (2, 3), (-1, -3), (1, 2, 3)]
        cnf = _cnf(clauses, 3)
        circuit = compile_cnf(cnf)
        pairs = [(Fraction(2, 3), 1), (Fraction(-1, 2), 2), (3, Fraction(1, 5))]
        value, grads = circuit.gradient(_pairs_fn(pairs))
        assert value == _enumeration(clauses, pairs)
        h = Fraction(1, 9)
        for v in (1, 2, 3):
            for side in (0, 1):
                def shifted(delta):
                    def fn(u):
                        if u == v:
                            pair = list(pairs[u - 1])
                            pair[side] += delta
                            return tuple(pair)
                        return pairs[u - 1]
                    return fn
                fd = (circuit.evaluate(shifted(h))
                      - circuit.evaluate(shifted(-h))) / (2 * h)
                assert fd == grads[v][side]


class TestCompileLineage:
    def test_matches_wfomc_lineage_across_weight_vectors(self):
        sentence = parse("forall x, y. (R(x) | S(x, y))")
        circuit = compile_lineage(sentence, 3)
        for w_r, w_s in ((Fraction(1, 2), 2), (1, 1), (-1, Fraction(1, 3))):
            wv = WeightedVocabulary.from_weights(
                {"R": (w_r, 1), "S": (w_s, 1)}, {"R": 1, "S": 2})
            direct = wfomc_lineage(sentence, 3, wv)
            compiled = circuit.evaluate(
                lambda label: tuple(wv.weight(label[0])))
            assert compiled == direct

    def test_template_cache_shares_isomorphic_components(self):
        reset_engine()
        sentence = parse("forall x, y. (R(x) | S(x, y) | T(y))")
        compile_lineage(sentence, 3)
        stats = engine_stats()
        # Symmetric lineages re-encounter renamed copies of the same
        # component: the canonical templates must be reused.
        assert stats["trace_template_hits"] > 0


class TestCompileWFOMC:
    SENTENCES = [
        ("forall x. exists y. R(x, y)", 3),
        ("forall x. (P(x) | exists y. (R(x, y) & ~P(y)))", 2),
        ("exists x. forall y. (R(x, y) | x = y)", 3),
    ]

    @pytest.mark.parametrize("text,n", SENTENCES)
    def test_fo2_and_lineage_kinds_agree_with_the_solver(self, text, n):
        sentence = parse(text)
        weighted = WeightedVocabulary.uniform(
            WeightedVocabulary.counting(sentence).vocabulary,
            WeightPair(Fraction(1, 2), Fraction(3, 2)))
        reference = wfomc(sentence, n, weighted, method="lineage")
        for method in ("auto", "fo2", "lineage"):
            compiled = compile_wfomc(sentence, n, method=method)
            assert compiled.evaluate(weighted) == reference

    def test_kind_dispatch(self):
        fo2 = compile_wfomc(parse("forall x. exists y. R(x, y)"), 2)
        assert fo2.kind == "fo2"
        three_var = compile_wfomc(
            parse("forall x, y, z. (R(x, y) | R(y, z))"), 2)
        assert three_var.kind == "lineage"

    def test_domain_size_zero_routes_to_lineage(self):
        sentence = parse("forall x. exists y. R(x, y)")
        compiled = compile_wfomc(sentence, 0, method="fo2")
        assert compiled.kind == "lineage"
        assert compiled.evaluate(WeightedVocabulary.counting(sentence)) == 1

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError):
            compile_wfomc(parse("exists x. P(x)"), 2, method="enumerate")

    def test_compiled_cache_hits(self):
        clear_compile_cache()
        sentence = parse("forall x. exists y. R(x, y)")
        first = compile_wfomc(sentence, 3)
        second = compile_wfomc(sentence, 3)
        assert first is second
        stats = compile_stats()
        assert stats["compiled"] == 1
        assert stats["circuits"]["hits"] >= 1

    def test_gradient_matches_interpolated_derivative(self):
        # WFOMC is a polynomial in each predicate's w coordinate; the
        # derivative read off d+1 evaluation points by exact Lagrange
        # interpolation must equal the circuit gradient exactly.
        sentence = parse("forall x, y. (R(x, y) | R(y, x))")
        for method in ("fo2", "lineage"):
            compiled = compile_wfomc(sentence, 3, method=method)
            base = WeightedVocabulary.from_weights(
                {"R": (Fraction(1, 2), Fraction(2, 3))}, {"R": 2})
            value, grads = compiled.gradient(base)
            assert value == wfomc(sentence, 3, base, method="lineage")
            degree = 9 + 1  # at most n**2 atoms, degree <= 9; margin
            points = []
            for t in range(degree + 1):
                shifted = base.with_weight(
                    "R", WeightPair(Fraction(1, 2) + t, Fraction(2, 3)))
                points.append((t, compiled.evaluate(shifted)))
            coefficients = polynomial_interpolate(points)
            assert coefficients[1] == grads["R"][0]


class TestPersistence:
    def test_circuits_roundtrip_through_the_store(self, tmp_path):
        cache_dir = str(tmp_path / "circ-store")
        sentence = parse("forall x, y. (R(x) | S(x, y))")
        wv = WeightedVocabulary.from_weights(
            {"R": (Fraction(1, 2), 1), "S": (2, 1)}, {"R": 1, "S": 2})
        clear_compile_cache()
        first = compile_wfomc(sentence, 3, method="lineage", persist=True,
                              cache_dir=cache_dir)
        expected = first.evaluate(wv)
        from repro.cache import open_store

        open_store(cache_dir).flush()
        # A cold in-memory state must be served from disk.
        clear_compile_cache()
        reset_engine()
        second = compile_wfomc(sentence, 3, method="lineage", persist=True,
                               cache_dir=cache_dir)
        assert compile_stats()["compile_store_hits"] == 1
        assert second.evaluate(wv) == expected

    def test_store_serves_fo2_circuits_with_fixed_pairs(self, tmp_path):
        cache_dir = str(tmp_path / "fo2-store")
        sentence = parse("forall x. exists y. R(x, y)")
        wv = WeightedVocabulary.from_weights({"R": (Fraction(1, 3), 2)},
                                             {"R": 2})
        clear_compile_cache()
        first = compile_wfomc(sentence, 3, persist=True, cache_dir=cache_dir)
        expected = first.evaluate(wv)
        from repro.cache import open_store

        open_store(cache_dir).flush()
        clear_compile_cache()
        second = compile_wfomc(sentence, 3, persist=True, cache_dir=cache_dir)
        assert second.kind == "fo2"
        assert second.fixed_pairs == first.fixed_pairs
        assert second.evaluate(wv) == expected


class TestSolverFastPaths:
    def test_weight_sweep_compile_is_bit_identical(self):
        sentence = parse("forall x, y. (R(x) | S(x, y))")
        arities = {"R": 1, "S": 2}
        vocabularies = [
            WeightedVocabulary.from_weights(
                {"R": (Fraction(k, 2), 1), "S": (1, 1)}, arities)
            for k in range(1, 6)
        ]
        direct = wfomc_weight_sweep(sentence, 3, vocabularies,
                                    method="lineage", via_polynomial=False)
        compiled = wfomc_weight_sweep(sentence, 3, vocabularies,
                                      method="lineage", compile=True)
        assert compiled == direct
        for a, b in zip(compiled, direct):
            assert (a.numerator, a.denominator) == (b.numerator, b.denominator)

    def test_batch_compile_matches_direct(self):
        sentence = parse("forall x. exists y. R(x, y)")
        direct = wfomc_batch(sentence, [1, 2, 3])
        compiled = wfomc_batch(sentence, [1, 2, 3], compile=True)
        assert compiled == direct

    def test_probability_compile_matches_direct(self):
        sentence = parse("exists x. P(x)")
        wv = WeightedVocabulary.from_weights(
            {"P": (Fraction(1, 3), Fraction(2, 3))}, {"P": 1})
        assert (probability(sentence, 3, wv, compile=True)
                == probability(sentence, 3, wv))

    def test_enumerate_method_ignores_compile(self):
        sentence = parse("exists x. P(x)")
        assert (wfomc_weight_sweep(
                    sentence, 2, [WeightedVocabulary.counting(sentence)],
                    method="enumerate", compile=True)
                == wfomc_weight_sweep(
                    sentence, 2, [WeightedVocabulary.counting(sentence)],
                    method="enumerate"))
