"""Integration tests: every solver stack against every other, end to end.

These tests exercise the full pipelines on shared inputs — the strongest
correctness statement the repository makes is that all of these
independent computation paths agree exactly.
"""

from fractions import Fraction


from repro import (
    ConjunctiveQuery,
    MLN,
    WeightedVocabulary,
    fomc,
    lifted_wfomc,
    parse,
    probability,
    wfomc,
)
from repro.cq import (
    PositiveClause,
    CQAtom,
    clause_probability,
    cq_probability_bruteforce,
    gamma_acyclic_probability,
)
from repro.mln import mln_probability_bruteforce, mln_probability_wfomc
from repro.transforms import positivize, skolemize, wfomc_without_equality
from repro.weights import from_probability
from repro.wfomc.bruteforce import wfomc_lineage
from repro.wfomc.fo2 import wfomc_fo2


class TestFiveWayAgreement:
    """enumerate == lineage == FO2 cells == lifted rules == closed form."""

    def test_forall_exists(self):
        f = parse("forall x. exists y. R(x, y)")
        n = 2
        values = {
            "enumerate": wfomc(f, n, method="enumerate"),
            "lineage": wfomc(f, n, method="lineage"),
            "fo2": wfomc_fo2(f, n),
            "rules": lifted_wfomc(f, n),
            "closed": Fraction((2 ** n - 1) ** n),
        }
        assert len(set(values.values())) == 1, values

    def test_table1_sentence(self):
        from repro.wfomc.closed_forms import table1_fomc

        f = parse("forall x, y. (R(x) | S(x, y) | T(y))")
        n = 2
        values = {
            wfomc(f, n, method="enumerate"),
            wfomc(f, n, method="lineage"),
            wfomc_fo2(f, n),
            lifted_wfomc(f, n),
            Fraction(table1_fomc(n)),
        }
        assert len(values) == 1


class TestTransformPipelines:
    def test_skolemize_positivize_equality_chain(self):
        # The full Corollary 3.2 preprocessing over a sentence with all
        # three features: existential, negation, equality.
        f = parse("forall x. exists y. (R(x, y) & ~P(y) & x != y)")
        wv = WeightedVocabulary.counting(f)
        g, wv2 = skolemize(f, wv)
        h, wv3 = positivize(g, wv2)
        for n in (1, 2):
            expected = wfomc_lineage(f, n, wv)
            assert wfomc_lineage(h, n, wv3) == expected
            assert wfomc_without_equality(h, n, wv3) == expected


class TestClauseAndQueryViews:
    def test_clause_vs_fo_solver_vs_dual(self):
        # One object, three views: FO sentence, positive clause, dual CQ.
        probs = {"R": Fraction(1, 3), "S": Fraction(1, 4)}
        clause = PositiveClause((CQAtom("R", ("x",)), CQAtom("S", ("x", "y"))))
        sentence = parse("forall x, y. (R(x) | S(x, y))")
        wv = WeightedVocabulary.from_weights(
            {k: from_probability(p) for k, p in probs.items()}, {"R": 1, "S": 2}
        )
        for n in (1, 2, 3):
            via_clause = clause_probability(clause, probs, n)
            via_fo = probability(sentence, n, wv)
            dual = ConjunctiveQuery(
                clause.atoms, {k: 1 - p for k, p in probs.items()}, n
            )
            via_dual = 1 - cq_probability_bruteforce(dual)
            assert via_clause == via_fo == via_dual


class TestMLNFullStack:
    def test_mln_three_ways(self):
        mln = MLN([(2, parse("P(x) -> Q(x)"))])
        query = parse("exists x. (P(x) & Q(x))")
        n = 2
        exact = mln_probability_bruteforce(mln, query, n)
        via_auto = mln_probability_wfomc(mln, query, n)
        via_lineage = mln_probability_wfomc(mln, query, n, method="lineage")
        assert exact == via_auto == via_lineage


class TestPaperIdentitiesEndToEnd:
    def test_section1_example(self):
        # FOMC(forall x exists y R(x,y), n) = (2^n - 1)^n, via the public API.
        assert fomc(parse("forall x. exists y. R(x, y)"), 6) == (2 ** 6 - 1) ** 6

    def test_spectrum_vs_counting(self):
        from repro.complexity.spectrum import has_model

        f = parse("forall x. exists y. (M(x, y) & x != y)")
        for n in (1, 2, 3):
            assert has_model(f, n) == (fomc(f, n, method="lineage") > 0)

    def test_gamma_acyclic_vs_fo2_on_shared_fragment(self):
        # The CQ exists x,y (P(x) & S(x,y) & Q(y)) is both gamma-acyclic
        # and FO2: two PTIME algorithms from different sections agree.
        probs = {"P": Fraction(1, 2), "S": Fraction(1, 3), "Q": Fraction(1, 4)}
        q = ConjunctiveQuery(
            [("P", ("x",)), ("S", ("x", "y")), ("Q", ("y",))], probs, 3
        )
        sentence = parse("exists x. exists y. (P(x) & S(x, y) & Q(y))")
        wv = WeightedVocabulary.from_weights(
            {k: from_probability(p) for k, p in probs.items()},
            {"P": 1, "S": 2, "Q": 1},
        )
        assert gamma_acyclic_probability(q) == probability(sentence, 3, wv)
