"""Tests for the Ck-hardness reduction (Section 3.2)."""

from fractions import Fraction

import pytest

from repro.cq import ConjunctiveQuery
from repro.cq.ck_reduction import (
    cycle_probability_bruteforce,
    reduce_ck_to_query,
    typed_cycle,
)
from repro.errors import ReproError

HALF = Fraction(1, 2)
THIRD = Fraction(1, 3)


def _triangle_plus(extra_atoms, extra_probs):
    atoms = [
        ("R", ("x", "y")),
        ("S", ("y", "z")),
        ("T", ("z", "x")),
    ] + extra_atoms
    probs = {"R": HALF, "S": HALF, "T": HALF}
    probs.update(extra_probs)
    return ConjunctiveQuery(atoms, probs, 2)


class TestTypedCycle:
    def test_c3_shape(self):
        q = typed_cycle(3, HALF, 2)
        assert len(q.atoms) == 3
        assert not q.is_beta_acyclic()

    def test_too_short_rejected(self):
        with pytest.raises(ValueError):
            typed_cycle(2, HALF, 2)

    def test_c3_probability_small(self):
        # Pr(C3) over n = 1: a single triangle of three independent
        # tuples: p^3.
        assert cycle_probability_bruteforce(3, HALF, 1) == HALF ** 3


class TestReduction:
    def test_beta_acyclic_rejected(self):
        chain = ConjunctiveQuery(
            [("R", ("x", "y")), ("S", ("y", "z"))], {"R": HALF, "S": HALF}, 2
        )
        with pytest.raises(ReproError):
            reduce_ck_to_query(chain, HALF, 2)

    @pytest.mark.parametrize("n", [1, 2])
    def test_triangle_reduces_to_itself(self, n):
        q = _triangle_plus([], {})
        reduction = reduce_ck_to_query(q, THIRD, n)
        assert reduction.k == 3
        assert reduction.cycle_probability() == cycle_probability_bruteforce(
            3, THIRD, n
        )

    @pytest.mark.parametrize("n", [1, 2])
    def test_triangle_with_satellite_atoms(self, n):
        # Extra relations off the cycle become certain (p = 1) and extra
        # variables collapse; the cycle probability must be preserved.
        q = _triangle_plus(
            [("U", ("x",)), ("V", ("z", "w"))],
            {"U": Fraction(2, 5), "V": Fraction(3, 7)},
        )
        reduction = reduce_ck_to_query(q, HALF, n)
        assert reduction.k == 3
        assert set(reduction.cycle_edges) == {"R", "S", "T"}
        # Non-cycle relations were made certain.
        assert reduction.query.probabilities["U"] == 1
        assert reduction.query.probabilities["V"] == 1
        # Non-cycle variables have singleton domains.
        assert reduction.query.domain_sizes["w"] == 1
        assert reduction.cycle_probability() == cycle_probability_bruteforce(
            3, HALF, n
        )

    def test_four_cycle(self):
        atoms = [
            ("A", ("x1", "x2")),
            ("B", ("x2", "x3")),
            ("C", ("x3", "x4")),
            ("D", ("x4", "x1")),
        ]
        q = ConjunctiveQuery(
            atoms, {k: HALF for k in "ABCD"}, 1
        )
        reduction = reduce_ck_to_query(q, THIRD, 1)
        assert reduction.k == 4
        assert reduction.cycle_probability() == cycle_probability_bruteforce(
            4, THIRD, 1
        )
