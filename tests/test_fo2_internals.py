"""White-box tests for the FO2 cell decomposition (Appendix C internals)."""


import pytest

from repro.logic.parser import parse
from repro.logic.scott import scott_normalize, skolemize_scott
from repro.logic.vocabulary import WeightedVocabulary
from repro.wfomc.fo2 import FO2CellDecomposition, _combine_universal
from repro.errors import NotFO2Error


def _decomposition(text, weights=None):
    f = parse(text)
    wv = weights or WeightedVocabulary.counting(f)
    sentences, wv1 = scott_normalize(f, wv)
    universal, wv2 = skolemize_scott(sentences, wv1)
    matrix = _combine_universal(universal)
    return FO2CellDecomposition(matrix, wv2), wv2


class TestCells:
    def test_pure_binary_has_reflexive_slots(self):
        decomposition, _ = _decomposition("forall x, y. (R(x, y) | R(y, x))")
        kinds = [kind for _name, kind in decomposition.type_slots if _name == "R"]
        assert kinds == ["refl"]

    def test_unary_predicates_become_slots(self):
        decomposition, _ = _decomposition("forall x. (P(x) | Q(x))")
        names = {name for name, kind in decomposition.type_slots if kind == "unary"}
        assert {"P", "Q"} <= names

    def test_unused_predicates_excluded_from_slots(self):
        # A vocabulary with an extra predicate not in the sentence: the
        # decomposition must ignore it (the caller masses it separately).
        f = parse("forall x. P(x)")
        wv = WeightedVocabulary.from_weights(
            {"P": (1, 1), "Unused": (1, 1)}, {"P": 1, "Unused": 2}
        )
        sentences, wv1 = scott_normalize(f, wv)
        universal, wv2 = skolemize_scott(sentences, wv1)
        matrix = _combine_universal(universal)
        decomposition = FO2CellDecomposition(matrix, wv2)
        assert "Unused" not in decomposition.matrix_preds

    def test_run_at_zero_elements(self):
        decomposition, _ = _decomposition("forall x, y. R(x, y)")
        zero = {name: False for name in decomposition.zero_preds}
        assert decomposition.run(0, zero) == 1


class TestCombineUniversal:
    def test_three_variable_prefix_rejected(self):
        from repro.logic.scott import UniversalSentence
        from repro.logic.syntax import Var, Atom

        sentence = UniversalSentence(
            (Var("a"), Var("b"), Var("c")),
            Atom("T", (Var("a"), Var("b"))),
        )
        with pytest.raises(NotFO2Error):
            _combine_universal([sentence])

    def test_variable_renaming(self):
        from repro.logic.scott import UniversalSentence
        from repro.logic.syntax import Var, Atom, free_variables

        s1 = UniversalSentence((Var("u"), Var("v")), Atom("R", (Var("u"), Var("v"))))
        s2 = UniversalSentence((Var("a"),), Atom("P", (Var("a"),)))
        matrix = _combine_universal([s1, s2])
        names = {v.name for v in free_variables(matrix)}
        assert names <= {"fo2_x", "fo2_y"}


class TestWeightedCells:
    def test_cell_weights_multiply_unary_and_reflexive(self):
        wv = WeightedVocabulary.from_weights(
            {"P": (2, 3), "R": (5, 7)}, {"P": 1, "R": 2}
        )
        decomposition, wv2 = _decomposition("forall x, y. (P(x) | R(x, y))", wv)
        # A 1-type fixing P(x)=True, R(x,x)=True weighs 2 * 5 (times any
        # Scott/Skolem slots, which weigh 1).
        bits_all_true = tuple(True for _ in decomposition.type_slots)
        weight = decomposition._type_weight(bits_all_true)
        assert weight == 10
