"""Tests for Lemmas 3.3-3.5: the WFOMC-preserving reductions.

Each transformation is checked exactly against the lineage engine — the
paper's claims are identities, so any deviation is a bug.
"""

from fractions import Fraction

import pytest
from hypothesis import given, settings

from repro.logic.parser import parse
from repro.logic.syntax import (
    Atom,
    Eq,
    Not,
    And,
    Or,
    Forall,
    Exists,
    is_quantifier_free,
)
from repro.logic.transform import prenex
from repro.logic.vocabulary import WeightedVocabulary
from repro.transforms import (
    positivize,
    skolemize,
    wfomc_without_equality,
)
from repro.wfomc.bruteforce import wfomc_lineage

from .strategies import fo2_nested_sentences, weighted_vocabularies


def _is_positive(f):
    """No negation anywhere (after constructor folding)."""
    if isinstance(f, (Atom, Eq)):
        return True
    if isinstance(f, Not):
        return False
    if isinstance(f, (And, Or)):
        return all(_is_positive(p) for p in f.parts)
    if isinstance(f, (Forall, Exists)):
        return _is_positive(f.body)
    return True


class TestSkolemize(object):
    """Lemma 3.3: removing existential quantifiers."""

    @pytest.mark.parametrize(
        "text",
        [
            "forall x. exists y. R(x, y)",
            "exists x. P(x)",
            "exists x. forall y. exists z. (R(x, y) | S(y, z))",
            "forall x. (P(x) -> exists y. (R(x, y) & ~P(y)))",
            "exists x, y. (R(x, y) & x != y)",
        ],
    )
    def test_wfomc_preserved(self, text):
        f = parse(text)
        wv = WeightedVocabulary.counting(f)
        g, wv2 = skolemize(f, wv)
        for n in (1, 2):
            assert wfomc_lineage(f, n, wv) == wfomc_lineage(g, n, wv2), (text, n)

    def test_result_is_universal(self):
        f = parse("exists x. forall y. exists z. (R(x, y) | S(y, z))")
        g, _ = skolemize(f, WeightedVocabulary.counting(f))
        prefix, matrix = prenex(g)
        assert all(q == "forall" for q, _v in prefix)
        assert is_quantifier_free(matrix)

    def test_skolem_weights_are_one_minus_one(self):
        f = parse("forall x. exists y. R(x, y)")
        _, wv2 = skolemize(f, WeightedVocabulary.counting(f))
        pairs = [wv2.weight(p.name) for p in wv2.vocabulary if p.name.startswith("Sk")]
        assert pairs and all((p.w, p.wbar) == (1, -1) for p in pairs)

    def test_plain_model_count_not_preserved(self):
        # The paper's remark: FOMC(Phi) != FOMC(Phi') in general — only the
        # weighted count survives, via the negative weights.
        f = parse("forall x. exists y. R(x, y)")
        wv = WeightedVocabulary.counting(f)
        g, wv2 = skolemize(f, wv)
        unweighted = WeightedVocabulary.uniform(wv2.vocabulary)
        n = 2
        assert wfomc_lineage(f, n, wv) != wfomc_lineage(g, n, unweighted)

    @settings(max_examples=15, deadline=None)
    @given(fo2_nested_sentences(), weighted_vocabularies())
    def test_wfomc_preserved_random(self, f, wv):
        g, wv2 = skolemize(f, wv)
        assert wfomc_lineage(f, 2, wv) == wfomc_lineage(g, 2, wv2)


class TestPositivize(object):
    """Lemma 3.4: removing negation from universal sentences."""

    @pytest.mark.parametrize(
        "text",
        [
            "forall x, y. (R(x, y) -> ~S(x, y))",
            "forall x. ~P(x)",
            "forall x, y. (~R(x, y) | ~R(y, x) | P(x))",
            "forall x, y. (R(x, y) | x != y)",
        ],
    )
    def test_wfomc_preserved(self, text):
        f = parse(text)
        wv = WeightedVocabulary.counting(f)
        g, wv2 = positivize(f, wv)
        for n in (1, 2):
            assert wfomc_lineage(f, n, wv) == wfomc_lineage(g, n, wv2), (text, n)

    def test_output_is_positive(self):
        f = parse("forall x, y. (~R(x, y) | ~S(x, y) | x != y)")
        g, _ = positivize(f, WeightedVocabulary.counting(f))
        assert _is_positive(g)

    def test_existential_rejected(self):
        f = parse("exists x. ~P(x)")
        with pytest.raises(ValueError):
            positivize(f, WeightedVocabulary.counting(f))

    def test_pipeline_skolemize_then_positivize(self):
        # The Corollary 3.2 pipeline start: Lemma 3.3 then Lemma 3.4.
        f = parse("forall x. exists y. (R(x, y) & ~P(y))")
        wv = WeightedVocabulary.counting(f)
        g, wv2 = skolemize(f, wv)
        h, wv3 = positivize(g, wv2)
        assert _is_positive(h)
        for n in (1, 2):
            assert wfomc_lineage(f, n, wv) == wfomc_lineage(h, n, wv3)


class TestEqualityRemoval(object):
    """Lemma 3.5: removing the equality predicate."""

    @pytest.mark.parametrize(
        "text",
        [
            "forall x, y. (R(x, y) | x = y)",
            "exists x, y. (R(x, y) & x != y)",
            "forall x. exists y. (R(x, y) & x != y)",
        ],
    )
    def test_wfomc_preserved(self, text):
        f = parse(text)
        wv = WeightedVocabulary.counting(f)
        for n in (0, 1, 2):
            assert wfomc_without_equality(f, n, wv) == wfomc_lineage(f, n, wv)

    def test_weighted(self):
        f = parse("forall x, y. (R(x, y) | x = y)")
        wv = WeightedVocabulary.from_weights({"R": (Fraction(1, 3), 2)}, {"R": 2})
        for n in (1, 2):
            assert wfomc_without_equality(f, n, wv) == wfomc_lineage(f, n, wv)

    def test_oracle_called_polynomially(self):
        f = parse("forall x, y. (R(x, y) | x = y)")
        wv = WeightedVocabulary.counting(f)
        calls = []

        def counting_oracle(formula, n, weighted_vocab):
            calls.append(n)
            return wfomc_lineage(formula, n, weighted_vocab)

        n = 2
        wfomc_without_equality(f, n, wv, oracle=counting_oracle)
        assert len(calls) == n * n + 1
