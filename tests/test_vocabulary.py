"""Tests for predicates, vocabularies, and weighted vocabularies."""

from fractions import Fraction

import pytest

from repro.errors import WeightError
from repro.logic.parser import parse
from repro.logic.syntax import Atom, Var, Const
from repro.logic.vocabulary import Predicate, Vocabulary, WeightedVocabulary
from repro.weights import WeightPair

x = Var("x")


class TestPredicate:
    def test_callable_builds_atom(self):
        R = Predicate("R", 2)
        assert R(x, x) == Atom("R", (x, x))

    def test_int_args_become_constants(self):
        R = Predicate("R", 2)
        assert R(1, 2) == Atom("R", (Const(1), Const(2)))

    def test_arity_checked(self):
        R = Predicate("R", 2)
        with pytest.raises(TypeError):
            R(x)

    def test_bad_term_rejected(self):
        P = Predicate("P", 1)
        with pytest.raises(TypeError):
            P("not a term")


class TestVocabulary:
    def test_of_formula(self):
        vocab = Vocabulary.of_formula(parse("forall x. (P(x) | exists y. R(x, y))"))
        assert set(vocab.names()) == {"P", "R"}
        assert vocab["R"].arity == 2

    def test_conflicting_arity_rejected(self):
        with pytest.raises(ValueError):
            Vocabulary([Predicate("R", 1), Predicate("R", 2)])

    def test_num_ground_tuples(self):
        vocab = Vocabulary([Predicate("P", 1), Predicate("R", 2)])
        assert vocab.num_ground_tuples(3) == 3 + 9
        assert vocab.num_ground_tuples(0) == 0

    def test_zero_ary(self):
        vocab = Vocabulary([Predicate("Z", 0)])
        assert vocab.num_ground_tuples(5) == 1

    def test_extend(self):
        vocab = Vocabulary([Predicate("P", 1)])
        bigger = vocab.extend([Predicate("R", 2)])
        assert "R" in bigger and "P" in bigger
        assert "R" not in vocab


class TestWeightedVocabulary:
    def test_from_weights(self):
        wv = WeightedVocabulary.from_weights(
            {"R": (1, 2), "P": ("1/2", 1)}, {"R": 2, "P": 1}
        )
        assert wv.weight("P").w == Fraction(1, 2)

    def test_missing_weight_rejected(self):
        vocab = Vocabulary([Predicate("P", 1)])
        with pytest.raises(WeightError):
            WeightedVocabulary(vocab, {})

    def test_unknown_weight_rejected(self):
        vocab = Vocabulary([Predicate("P", 1)])
        with pytest.raises(WeightError):
            WeightedVocabulary(vocab, {"P": (1, 1), "Q": (1, 1)})

    def test_counting_defaults(self):
        wv = WeightedVocabulary.counting(parse("forall x. P(x)"))
        assert wv.weight("P") == WeightPair(1, 1)

    def test_extend_rejects_duplicates(self):
        wv = WeightedVocabulary.counting(parse("forall x. P(x)"))
        with pytest.raises(WeightError):
            wv.extend({"P": (1, 1)}, {"P": 1})

    def test_with_weight(self):
        wv = WeightedVocabulary.counting(parse("forall x. P(x)"))
        wv2 = wv.with_weight("P", (2, 3))
        assert wv2.weight("P") == WeightPair(2, 3)
        assert wv.weight("P") == WeightPair(1, 1)

    def test_fresh_name(self):
        wv = WeightedVocabulary.counting(parse("forall x. P(x)"))
        assert wv.fresh_name("P") == "P_1"
        assert wv.fresh_name("Q") == "Q"

    def test_total_world_weight(self):
        # WFOMC(true, n) = prod (w + wbar)^(n^arity): Section 1.
        wv = WeightedVocabulary.from_weights({"R": (1, 1)}, {"R": 2})
        assert wv.total_world_weight(3) == 2 ** 9

    def test_total_world_weight_skolem_is_zero(self):
        wv = WeightedVocabulary.from_weights({"A": (1, -1)}, {"A": 1})
        assert wv.total_world_weight(2) == 0
