"""Tests for the counting Turing machine simulator (Lemma 3.8 substrate)."""

import pytest

from repro.complexity.turing import LEFT, RIGHT, CountingTM, Transition


def _branching_machine():
    """One state; reading 1 forks into two writes; always moves right."""
    return CountingTM(
        states=["q0"],
        initial="q0",
        accepting=["q0"],
        num_tapes=1,
        active_tape={"q0": 0},
        delta={
            ("q0", 1): [Transition("q0", 1, RIGHT), Transition("q0", 0, RIGHT)],
            ("q0", 0): [Transition("q0", 0, RIGHT)],
        },
    )


class TestValidation:
    def test_bad_initial_state(self):
        with pytest.raises(ValueError):
            CountingTM(["q0"], "q1", ["q0"], 1, {"q0": 0}, {})

    def test_bad_accepting_state(self):
        with pytest.raises(ValueError):
            CountingTM(["q0"], "q0", ["qX"], 1, {"q0": 0}, {})

    def test_missing_active_tape(self):
        with pytest.raises(ValueError):
            CountingTM(["q0", "q1"], "q0", ["q0"], 1, {"q0": 0}, {})

    def test_bad_write_symbol(self):
        with pytest.raises(ValueError):
            Transition("q0", 2, RIGHT)

    def test_bad_move(self):
        with pytest.raises(ValueError):
            Transition("q0", 1, 0)


class TestInitialConfiguration:
    def test_input_tape_layout(self):
        tm = _branching_machine()
        config = tm.initial_configuration(3, 2)
        assert config.tapes[0] == (1, 1, 1, 0, 0, 0)
        assert config.heads == (0,)
        assert config.state == "q0"

    def test_multi_tape_blanks(self):
        tm = CountingTM(
            ["q0"], "q0", ["q0"], 2, {"q0": 0}, {("q0", 1): [Transition("q0", 1, RIGHT)]}
        )
        config = tm.initial_configuration(2, 1)
        assert config.tapes[1] == (0, 0)


class TestCounting:
    def test_branching_counts(self):
        # n time points -> n-1 transitions, each reading a fresh 1: 2^(n-1).
        tm = _branching_machine()
        for n in (1, 2, 3, 4, 5):
            assert tm.count_accepting(n, 1) == 2 ** (n - 1)

    def test_rejecting_state_counts_zero(self):
        tm = CountingTM(
            states=["q0", "qrej"],
            initial="q0",
            accepting=["q0"],
            num_tapes=1,
            active_tape={"q0": 0, "qrej": 0},
            delta={
                ("q0", 1): [Transition("qrej", 1, RIGHT)],
                ("q0", 0): [Transition("qrej", 0, RIGHT)],
                ("qrej", 1): [Transition("qrej", 1, RIGHT)],
                ("qrej", 0): [Transition("qrej", 0, RIGHT)],
            },
        )
        assert tm.count_accepting(3, 1) == 0

    def test_dead_computation_not_counted(self):
        # No transition on symbol 1: the machine dies immediately (n >= 2).
        tm = CountingTM(
            states=["q0"],
            initial="q0",
            accepting=["q0"],
            num_tapes=1,
            active_tape={"q0": 0},
            delta={("q0", 0): [Transition("q0", 0, RIGHT)]},
        )
        assert tm.count_accepting(2, 1) == 0
        # With n = 1 there are no transitions at all; initial state accepts.
        assert tm.count_accepting(1, 1) == 1

    def test_distinct_configuration_semantics(self):
        # Two transitions that produce the SAME configuration count once
        # (left/right clamp to the same cell on a one-cell tape).
        tm = CountingTM(
            states=["q0"],
            initial="q0",
            accepting=["q0"],
            num_tapes=1,
            active_tape={"q0": 0},
            delta={
                ("q0", 1): [Transition("q0", 1, LEFT), Transition("q0", 1, RIGHT)],
                ("q0", 0): [Transition("q0", 0, RIGHT)],
            },
        )
        # n = 2, epochs = 1: tape has 2 cells; head at 0: LEFT clamps to 0,
        # RIGHT goes to 1 -> two distinct successors.
        assert tm.count_accepting(2, 1) == 2

    def test_zero_input_rejected(self):
        with pytest.raises(ValueError):
            _branching_machine().count_accepting(0, 1)

    def test_epochs_extend_runtime(self):
        tm = _branching_machine()
        # With 2 epochs: 2n - 1 transitions, but only the first n cells hold
        # 1s and each is consumed once; once past them only 0s: no branching.
        assert tm.count_accepting(2, 2) == 2 ** 2  # reads cells 0,1 (1s), 2 (0)


class TestPaths:
    def test_run_paths_enumerates_count(self):
        tm = _branching_machine()
        for n in (1, 2, 3):
            paths = list(tm.run_paths(n, 1))
            assert len(paths) == tm.count_accepting(n, 1)
            # Paths are distinct configuration sequences.
            assert len(set(paths)) == len(paths)

    def test_path_length(self):
        tm = _branching_machine()
        for path in tm.run_paths(3, 1):
            assert len(path) == 3  # epochs*n time points
