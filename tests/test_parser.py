"""Unit tests for the formula parser."""

import pytest

from repro.errors import ParseError
from repro.logic.parser import parse
from repro.logic.syntax import (
    And,
    Atom,
    Const,
    Eq,
    Exists,
    Forall,
    Iff,
    Implies,
    Not,
    Or,
    TRUE,
    FALSE,
    Var,
)

x, y = Var("x"), Var("y")


class TestAtoms:
    def test_relational_atom(self):
        assert parse("R(x, y)") == Atom("R", (x, y))

    def test_zero_ary_atom(self):
        assert parse("Z") == Atom("Z", ())

    def test_constant_argument(self):
        assert parse("R(x, 3)") == Atom("R", (x, Const(3)))

    def test_equality(self):
        assert parse("x = y") == Eq(x, y)

    def test_disequality(self):
        assert parse("x != y") == Not(Eq(x, y))

    def test_true_false(self):
        assert parse("true") == TRUE
        assert parse("false") == FALSE


class TestConnectives:
    def test_and_flattens(self):
        f = parse("P(x) & Q(x) & R(x, y)")
        assert isinstance(f, And)
        assert len(f.parts) == 3

    def test_or(self):
        f = parse("P(x) | Q(x)")
        assert isinstance(f, Or)

    def test_precedence_and_over_or(self):
        f = parse("P(x) | Q(x) & S(x)")
        assert isinstance(f, Or)
        assert isinstance(f.parts[1], And)

    def test_negation(self):
        assert parse("~P(x)") == Not(Atom("P", (x,)))

    def test_double_negation_folds(self):
        assert parse("~~P(x)") == Atom("P", (x,))

    def test_implication_right_associative(self):
        f = parse("P(x) -> Q(x) -> S(x)")
        assert isinstance(f, Implies)
        assert isinstance(f.consequent, Implies)

    def test_iff(self):
        f = parse("P(x) <-> Q(x)")
        assert isinstance(f, Iff)

    def test_parentheses(self):
        f = parse("(P(x) | Q(x)) & S(x)")
        assert isinstance(f, And)


class TestQuantifiers:
    def test_forall(self):
        f = parse("forall x. P(x)")
        assert f == Forall(x, Atom("P", (x,)))

    def test_exists(self):
        f = parse("exists x. P(x)")
        assert isinstance(f, Exists)

    def test_multiple_vars(self):
        f = parse("forall x, y. R(x, y)")
        assert isinstance(f, Forall)
        assert isinstance(f.body, Forall)

    def test_quantifier_scopes_over_connectives(self):
        f = parse("forall x. P(x) & Q(x)")
        assert isinstance(f, Forall)
        assert isinstance(f.body, And)

    def test_nested(self):
        f = parse("forall x. exists y. R(x, y)")
        assert isinstance(f, Forall)
        assert isinstance(f.body, Exists)


class TestErrors:
    def test_trailing_garbage(self):
        with pytest.raises(ParseError):
            parse("P(x) P(y)")

    def test_unclosed_paren(self):
        with pytest.raises(ParseError):
            parse("(P(x)")

    def test_missing_dot(self):
        with pytest.raises(ParseError):
            parse("forall x P(x)")

    def test_uppercase_variable_rejected(self):
        with pytest.raises(ParseError):
            parse("forall X. P(X)")

    def test_bad_character(self):
        with pytest.raises(ParseError):
            parse("P(x) @ Q(x)")

    def test_lone_term(self):
        with pytest.raises(ParseError):
            parse("x")


class TestRoundTrip:
    @pytest.mark.parametrize(
        "text",
        [
            "forall x. exists y. R(x, y)",
            "forall x, y. (R(x) | S(x, y) | T(y))",
            "exists x, y. R(x, y) & x != y",
            "forall x. (P(x) -> exists y. (R(x, y) & ~P(y)))",
            "Z | ~Z",
        ],
    )
    def test_parse_repr_parse(self, text):
        f = parse(text)
        assert parse(repr(f)) == f
