"""Tests for the weights-as-polynomial argument (Section 2).

The paper: WFOMC with negative weights reduces to polynomially many
oracle calls with positive weights.  We reconstruct the cardinality
polynomial and check it reproduces WFOMC at arbitrary weight pairs.
"""

from fractions import Fraction

import pytest

from repro.logic.parser import parse
from repro.logic.vocabulary import Vocabulary, WeightedVocabulary
from repro.weights import WeightPair
from repro.wfomc.bruteforce import wfomc_lineage
from repro.wfomc.polynomial import (
    evaluate_cardinality_polynomial,
    wfomc_cardinality_polynomial,
)


def _coefficients(formula, n):
    vocab = Vocabulary.of_formula(formula)
    return vocab, wfomc_cardinality_polynomial(formula, n, vocab, wfomc_lineage)


class TestReconstruction:
    def test_exists_unary(self):
        # exists y S(y): models with |S| = c number C(n, c) for c >= 1.
        f = parse("exists y. S(y)")
        n = 3
        vocab, coeffs = _coefficients(f, n)
        from math import comb

        assert coeffs == {(c,): comb(n, c) for c in range(1, n + 1)}

    def test_coefficients_are_model_counts(self):
        # forall x, y (R(x, y) -> R(y, x)) at n = 2: models by |R|.
        f = parse("forall x, y. (R(x, y) -> R(y, x))")
        vocab, coeffs = _coefficients(f, 2)
        # Valid worlds: diagonal free (2 loops), off-diagonal pair tied.
        # |R| in {0,1,2,3,4}: count subsets: loops L (|L| in 0..2),
        # pair P in {absent(0), both(2)}.
        expected = {}
        from math import comb

        for loops in range(3):
            for pair in (0, 2):
                c = loops + pair
                expected[c] = expected.get(c, 0) + comb(2, loops)
        expected = {(c,): v for c, v in expected.items() if v}
        assert coeffs == expected

    def test_total_count_is_coefficient_sum(self):
        f = parse("forall x. exists y. R(x, y)")
        n = 2
        _vocab, coeffs = _coefficients(f, n)
        assert sum(coeffs.values()) == (2 ** n - 1) ** n


class TestNegativeWeightsFromPositiveOracle:
    @pytest.mark.parametrize(
        "pairs",
        [
            {"R": WeightPair(1, -1)},
            {"R": WeightPair(-2, 3)},
            {"R": WeightPair(Fraction(-1, 2), Fraction(1, 3))},
        ],
    )
    def test_single_relation(self, pairs):
        f = parse("forall x. exists y. R(x, y)")
        n = 2
        vocab, coeffs = _coefficients(f, n)
        wv = WeightedVocabulary(vocab, pairs)
        reconstructed = evaluate_cardinality_polynomial(coeffs, n, wv)
        assert reconstructed == wfomc_lineage(f, n, wv)

    def test_two_relations(self):
        f = parse("forall x. (P(x) | exists y. R(x, y))")
        n = 2
        vocab, coeffs = _coefficients(f, n)
        wv = WeightedVocabulary(
            vocab, {"P": WeightPair(2, -1), "R": WeightPair(-1, 3)}
        )
        assert evaluate_cardinality_polynomial(coeffs, n, wv) == wfomc_lineage(
            f, n, wv
        )

    def test_unweighted_special_case(self):
        f = parse("exists x. P(x)")
        n = 3
        vocab, coeffs = _coefficients(f, n)
        wv = WeightedVocabulary.uniform(vocab)
        assert evaluate_cardinality_polynomial(coeffs, n, wv) == 2 ** n - 1
