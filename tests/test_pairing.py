"""Tests for the Lemma 3.8 pairing function and machine enumeration."""

import pytest
from hypothesis import given, strategies as st

from repro.complexity.pairing import (
    budget,
    ceil_log3,
    clocked_run_budget,
    decode_pair,
    encode_pair,
    machine_index_of,
    machine_pair_at,
)


class TestCeilLog3:
    def test_values(self):
        assert ceil_log3(1) == 0
        assert ceil_log3(3) == 1
        assert ceil_log3(4) == 2
        assert ceil_log3(9) == 2
        assert ceil_log3(10) == 3

    def test_invalid(self):
        with pytest.raises(ValueError):
            ceil_log3(0)


class TestPairingFunction:
    def test_example_value(self):
        # e(1, 1) = 2 * 3^0 * 7 = 14.
        assert encode_pair(1, 1) == 14

    @given(st.integers(1, 8), st.integers(1, 30))
    def test_roundtrip(self, i, j):
        assert decode_pair(encode_pair(i, j)) == (i, j)

    @given(st.integers(1, 6), st.integers(1, 12))
    def test_property_b_budget_bound(self, i, j):
        # Lemma 3.8 property (b): e(i, j) >= (i j^i + i)^2.
        assert encode_pair(i, j) >= budget(i, j)

    @given(st.integers(1, 8), st.integers(1, 30), st.integers(1, 8), st.integers(1, 30))
    def test_injectivity(self, i1, j1, i2, j2):
        if (i1, j1) != (i2, j2):
            assert encode_pair(i1, j1) != encode_pair(i2, j2)

    def test_decode_rejects_non_encodings(self):
        for bad in (1, 3, 5, 2 * 3, 4):  # wrong residues / i = 0 / j = 0
            with pytest.raises(ValueError):
                decode_pair(bad)


class TestMachineEnumeration:
    def test_first_pairs(self):
        # Diagonal order: (1,1), (2,1), (1,2), (3,1), (2,2), (1,3), ...
        assert [machine_pair_at(i) for i in range(1, 7)] == [
            (1, 1),
            (2, 1),
            (1, 2),
            (3, 1),
            (2, 2),
            (1, 3),
        ]

    @given(st.integers(1, 200))
    def test_roundtrip(self, index):
        r, s = machine_pair_at(index)
        assert machine_index_of(r, s) == index

    @given(st.integers(1, 500))
    def test_index_dominates_clock_parameter(self, index):
        # The dovetailing invariant the proof needs: i >= s.
        _r, s = machine_pair_at(index)
        assert index >= s

    def test_every_pair_enumerated(self):
        seen = {machine_pair_at(i) for i in range(1, 56)}
        # The first 10 anti-diagonals are complete.
        for d in range(1, 10):
            for s in range(1, d + 1):
                assert (d + 1 - s, s) in seen


class TestClock:
    def test_clock_budget(self):
        assert clocked_run_budget(2, 3) == 2 * 9 + 2

    @given(st.integers(1, 5), st.integers(1, 10))
    def test_clock_dominated_by_encoding(self, s, j):
        # Machine i >= s runs within (i j^i + i)^2 >= s j^s + s steps.
        i = max(s, 1)
        assert budget(i, j) >= clocked_run_budget(s, j)
