"""Fault-injection differential suite.

The contract under test: **no injected fault may change a counted
value**.  Every fault class of :mod:`repro.resilience.faults` — store
busy/locked errors (retried), disk-full (graceful disable), runtime
corruption (delete-and-recreate), torn writes (decode-failure misses),
and worker crashes (pool retry, then serial degradation) — is injected
into real end-to-end runs of the public entry points with persistence
on, and the result is compared bit for bit against a fault-free
baseline computed from cold caches.
"""

from fractions import Fraction

import pytest

from repro import (
    MLN,
    SolverOptions,
    WeightPair,
    mln_probability_wfomc,
    parse,
    probability,
    wfomc,
    wfomc_weight_sweep,
)
from repro.cache.store import close_all_stores
from repro.compile.wfomc import clear_compile_cache
from repro.grounding.lineage import clear_grounding_caches
from repro.logic.syntax import predicates_of
from repro.logic.vocabulary import Predicate, Vocabulary, WeightedVocabulary
from repro.propositional.counter import reset_engine, shutdown_worker_pool
from repro.resilience.faults import clear_plan, install_plan
from repro.wfomc.fo2 import clear_fo2_caches
from repro.wfomc.solver import clear_solver_caches


def _cold():
    """Drop every in-memory cache and store handle, as a new process would."""
    close_all_stores()
    reset_engine()
    clear_grounding_caches()
    clear_fo2_caches()
    clear_solver_caches()
    clear_compile_cache()


@pytest.fixture(autouse=True)
def _fast_retries_and_clean_plan(monkeypatch):
    import repro.cache.store as S

    # The injected busy storms would otherwise spend real wall-clock in
    # backoff sleeps; shrinking the constants keeps the ladder identical.
    monkeypatch.setattr(S, "_RETRY_BASE_S", 0.0001)
    monkeypatch.setattr(S, "_RETRY_CAP_S", 0.001)
    clear_plan()
    _cold()
    yield
    clear_plan()
    _cold()


def _wv(formula, weights):
    arities = predicates_of(formula)
    vocab = Vocabulary(Predicate(n, a) for n, a in sorted(arities.items()))
    pairs = {name: WeightPair(1, 1) for name in arities}
    pairs.update(weights)
    return WeightedVocabulary(vocab, pairs)


def run_wfomc_fo2(**opts):
    formula = parse("forall x. exists y. R(x, y)")
    return wfomc(formula, 5, _wv(formula, {"R": WeightPair(Fraction(1, 2), 2)}),
                 options=SolverOptions(**opts))


def run_wfomc_lineage(**opts):
    formula = parse("forall x, y. (R(x) | S(x, y) | T(y))")
    return wfomc(formula, 2, _wv(formula, {"R": WeightPair(Fraction(2, 3), 1)}),
                 options=SolverOptions(method="lineage", **opts))


def run_probability(**opts):
    formula = parse("exists x. P(x)")
    return probability(formula, 3, _wv(formula, {}),
                       options=SolverOptions(**opts))


def run_sweep_compiled(**opts):
    formula = parse("forall x, y. (R(x) | S(x, y))")
    base = _wv(formula, {})
    vocabularies = [base.with_weight("R", WeightPair(Fraction(k, 2), 1))
                    for k in (1, 2, 3)]
    return tuple(wfomc_weight_sweep(
        formula, 3, vocabularies,
        options=SolverOptions(compile=True, **opts)))


def run_mln(**opts):
    mln = MLN([(2, parse("P(x) -> Q(x)"))])
    return mln_probability_wfomc(mln, parse("exists x. Q(x)"), 2,
                                 options=SolverOptions(**opts))


ENTRY_POINTS = [run_wfomc_fo2, run_wfomc_lineage, run_probability,
                run_sweep_compiled, run_mln]

STORE_PLANS = [
    "store_busy@1,2",                 # transient storm, retries absorb it
    "seed=11;store_busy?0.4",         # random contention, reproducible
    "store_torn_write~2",             # every other read comes back torn
    "store_corrupt@2",                # runtime corruption -> recreate
    "store_disk_full@2",              # disk fills -> graceful disable
    "seed=3;store_busy?0.25;store_torn_write?0.25;store_disk_full@9",
]


@pytest.mark.parametrize("runner", ENTRY_POINTS,
                         ids=lambda f: f.__name__)
@pytest.mark.parametrize("plan", STORE_PLANS)
def test_store_faults_never_change_results(runner, plan, tmp_path):
    baseline = runner()
    _cold()
    install_plan(plan)
    faulted = runner(persist=True, cache_dir=str(tmp_path / "store"))
    assert faulted == baseline
    clear_plan()
    # And the store the faulted run left behind (possibly degraded,
    # recreated, or half-populated) must still warm-start a clean run
    # to the same value.
    _cold()
    again = runner(persist=True, cache_dir=str(tmp_path / "store"))
    assert again == baseline


@pytest.mark.parametrize("spec,expect", [
    ("worker_crash@1:once={marker}", "retried"),
    ("worker_crash~1", "degraded"),
])
def test_worker_crashes_never_change_results(spec, expect, tmp_path,
                                             monkeypatch):
    formula = parse("forall x, y. (R(x) | S(x, y) | T(y))")
    wv = _wv(formula, {"S": WeightPair(Fraction(1, 3), 2)})
    baseline = wfomc(formula, 2, wv,
                     options=SolverOptions(method="lineage"))
    _cold()
    monkeypatch.setenv(
        "REPRO_FAULT_PLAN",
        spec.format(marker=tmp_path / "crash-marker"))
    shutdown_worker_pool()  # fresh workers that inherit the plan
    try:
        faulted = wfomc(formula, 2, wv,
                        options=SolverOptions(method="lineage", workers=2))
        assert faulted == baseline
    finally:
        shutdown_worker_pool()


def test_store_fault_during_parallel_persist_run(tmp_path, monkeypatch):
    # Faults on two subsystems at once: workers persist through the same
    # store the parent uses while the store throws transient errors.
    formula = parse("forall x, y. (R(x) | S(x, y) | T(y))")
    wv = _wv(formula, {})
    baseline = wfomc(formula, 2, wv, options=SolverOptions(method="lineage"))
    _cold()
    monkeypatch.setenv("REPRO_FAULT_PLAN", "seed=5;store_busy?0.3")
    shutdown_worker_pool()
    try:
        faulted = wfomc(
            formula, 2, wv,
            options=SolverOptions(method="lineage", workers=2, persist=True,
                                  cache_dir=str(tmp_path / "shared")))
        assert faulted == baseline
    finally:
        shutdown_worker_pool()
