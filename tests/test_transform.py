"""Tests for NNF, prenex form, and matrix CNF — semantic equivalence checked
against brute-force evaluation over all small structures."""


import pytest
from hypothesis import given, settings

from repro.grounding.structures import all_structures
from repro.logic.evaluate import evaluate
from repro.logic.parser import parse
from repro.logic.syntax import (
    And,
    Exists,
    Forall,
    Iff,
    Implies,
    Not,
    Or,
    Var,
    is_quantifier_free,
)
from repro.logic.transform import (
    matrix_to_cnf_clauses,
    nnf,
    prenex,
    simplify,
    split_prenex,
)
from repro.logic.vocabulary import Vocabulary

from .strategies import fo2_nested_sentences

x, y = Var("x"), Var("y")


def _equivalent_on_small_structures(f, g, max_n=2):
    """Check semantic equivalence of two sentences by enumeration."""
    vocab_f = Vocabulary.of_formula(f)
    vocab_g = Vocabulary.of_formula(g)
    names = {p.name: p for p in vocab_f}
    for p in vocab_g:
        names.setdefault(p.name, p)
    vocab = Vocabulary(names.values())
    for n in range(1, max_n + 1):
        for structure in all_structures(vocab, n):
            if evaluate(f, structure) != evaluate(g, structure):
                return False, (n, structure)
    return True, None


class TestNNF:
    def test_no_implications_left(self):
        f = parse("forall x. (P(x) -> Q(x))")
        g = nnf(f)

        def has_impl(h):
            if isinstance(h, (Implies, Iff)):
                return True
            if isinstance(h, Not):
                return has_impl(h.body)
            if isinstance(h, (And, Or)):
                return any(has_impl(p) for p in h.parts)
            if isinstance(h, (Forall, Exists)):
                return has_impl(h.body)
            return False

        assert not has_impl(g)

    def test_negations_pushed_to_atoms(self):
        f = parse("~(forall x. (P(x) & Q(x)))")
        g = nnf(f)
        assert isinstance(g, Exists)
        assert isinstance(g.body, Or)

    @pytest.mark.parametrize(
        "text",
        [
            "forall x. (P(x) -> Q(x))",
            "~(exists x. (P(x) | ~Q(x)))",
            "forall x. (P(x) <-> exists y. R(x, y))",
            "~(P(1) <-> Q(1))",
        ],
    )
    def test_nnf_preserves_semantics(self, text):
        f = parse(text)
        ok, witness = _equivalent_on_small_structures(f, nnf(f))
        assert ok, witness

    @settings(max_examples=30, deadline=None)
    @given(fo2_nested_sentences())
    def test_nnf_preserves_semantics_random(self, f):
        ok, witness = _equivalent_on_small_structures(f, nnf(f), max_n=2)
        assert ok, witness


class TestPrenex:
    def test_matrix_is_quantifier_free(self):
        f = parse("forall x. (P(x) -> exists y. R(x, y))")
        prefix, matrix = prenex(f)
        assert is_quantifier_free(matrix)
        assert [q for q, _ in prefix] == ["forall", "exists"]

    def test_variables_renamed_apart(self):
        f = parse("(exists x. P(x)) & (exists x. Q(x))")
        prefix, matrix = prenex(f)
        names = [v.name for _, v in prefix]
        assert len(names) == len(set(names))

    def test_negation_flips_quantifiers(self):
        f = parse("~(exists x. P(x))")
        prefix, _ = prenex(f)
        assert [q for q, _ in prefix] == ["forall"]

    @pytest.mark.parametrize(
        "text",
        [
            "forall x. (P(x) -> exists y. R(x, y))",
            "(exists x. P(x)) | (forall x. Q(x))",
            "~(forall x. exists y. R(x, y))",
            "(forall x. P(x)) <-> Z",
        ],
    )
    def test_prenex_preserves_semantics(self, text):
        f = parse(text)
        g = split_prenex(*prenex(f))
        ok, witness = _equivalent_on_small_structures(f, g)
        assert ok, witness

    @settings(max_examples=30, deadline=None)
    @given(fo2_nested_sentences())
    def test_prenex_preserves_semantics_random(self, f):
        g = split_prenex(*prenex(f))
        ok, witness = _equivalent_on_small_structures(f, g, max_n=2)
        assert ok, witness


class TestSimplify:
    def test_folds_constants(self):
        f = parse("P(x) & true")
        assert simplify(f) == parse("P(x)")

    def test_iff_with_true(self):
        f = Iff(parse("P(x)"), parse("true"))
        assert simplify(f) == parse("P(x)")

    def test_quantifier_over_constant(self):
        f = Forall(x, parse("true"))
        assert repr(simplify(f)) == "true"


class TestMatrixCNF:
    def test_clause_structure(self):
        f = parse("(P(x) | Q(x)) & R(x, y)")
        clauses = matrix_to_cnf_clauses(f)
        assert len(clauses) == 2

    def test_distribution(self):
        f = parse("P(x) | (Q(x) & R(x, y))")
        clauses = matrix_to_cnf_clauses(f)
        assert len(clauses) == 2
        assert all(len(c) == 2 for c in clauses)

    def test_tautology_dropped(self):
        f = parse("P(x) | ~P(x)")
        assert matrix_to_cnf_clauses(f) == []

    def test_false_matrix(self):
        f = parse("P(x) & ~P(x)")
        clauses = matrix_to_cnf_clauses(f)
        # Two unit clauses that contradict (not folded to the empty clause).
        assert len(clauses) == 2

    def test_cnf_preserves_semantics(self):
        f = parse("(P(x) -> Q(x)) & (Q(x) -> P(x))")
        clauses = matrix_to_cnf_clauses(f)
        # Rebuild a formula from the clause list and compare semantics.
        from repro.logic.syntax import conj, disj, neg, forall

        rebuilt = conj(
            *(
                disj(*(atom if sign else neg(atom) for sign, atom in clause))
                for clause in clauses
            )
        )
        ok, witness = _equivalent_on_small_structures(
            forall([x], f), forall([x], rebuilt)
        )
        assert ok, witness
