"""Tests for the top-level solver router and probability computation."""

from fractions import Fraction

import pytest

from repro import fomc, parse, probability, wfomc
from repro.errors import UnsupportedFormulaError
from repro.logic.vocabulary import WeightedVocabulary


class TestRouting:
    def test_auto_uses_fo2_for_fo2(self):
        f = parse("forall x. exists y. R(x, y)")
        # n = 12 is infeasible for grounding (2^144 worlds); auto must lift.
        assert wfomc(f, 12) == (2 ** 12 - 1) ** 12

    def test_auto_falls_back_for_fo3(self):
        f = parse("forall x, y, z. (R(x, y) & R(y, z) -> R(x, z))")
        # Transitivity: count transitive digraphs on 2 nodes = 13.
        assert wfomc(f, 2) == 13

    def test_method_pinning(self):
        f = parse("forall x. exists y. R(x, y)")
        for method in ("fo2", "lineage", "enumerate"):
            assert wfomc(f, 2, method=method) == 9

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError):
            wfomc(parse("exists x. P(x)"), 2, method="magic")

    def test_fomc_returns_int(self):
        result = fomc(parse("exists x. P(x)"), 3)
        assert isinstance(result, int)
        assert result == 2 ** 3 - 1


class TestProbability:
    def test_uniform_probability(self):
        # Pr(exists x P(x)) with p = 1/2 per atom: 1 - 2^-n.
        f = parse("exists x. P(x)")
        for n in (1, 2, 3):
            assert probability(f, n) == 1 - Fraction(1, 2 ** n)

    def test_weighted_probability(self):
        f = parse("exists x. P(x)")
        wv = WeightedVocabulary.from_weights({"P": (1, 3)}, {"P": 1})
        # p = 1/4 per atom.
        for n in (1, 2):
            assert probability(f, n, wv) == 1 - Fraction(3, 4) ** n

    def test_zero_normalization_rejected(self):
        f = parse("exists x. P(x)")
        wv = WeightedVocabulary.from_weights({"P": (1, -1)}, {"P": 1})
        with pytest.raises(UnsupportedFormulaError):
            probability(f, 2, wv)

    def test_tautology_has_probability_one(self):
        f = parse("forall x. (P(x) | ~P(x))")
        assert probability(f, 4) == 1


class TestCrossMethodAgreement:
    @pytest.mark.parametrize(
        "text",
        [
            "forall x. exists y. R(x, y)",
            "forall x, y. (R(x) | S(x, y) | T(y))",
            "exists x. (P(x) & forall y. S(x, y))",
        ],
    )
    def test_all_methods_agree(self, text):
        f = parse(text)
        for n in (1, 2):
            results = {
                method: wfomc(f, n, method=method)
                for method in ("fo2", "lineage", "enumerate")
            }
            assert len(set(results.values())) == 1, results
