"""Tests for spectrum membership (the associated decision problem)."""


from repro.complexity.spectrum import has_model, in_spectrum, spectrum
from repro.logic.parser import parse


class TestHasModel:
    def test_cq_has_model_everywhere(self):
        # The paper: every CQ has a model over any domain of size n >= 1.
        f = parse("exists x, y. (R(x) & S(x, y))")
        assert spectrum(f, 4) == {1, 2, 3, 4}

    def test_unsatisfiable(self):
        f = parse("(exists x. P(x)) & (forall x. ~P(x))")
        assert spectrum(f, 3) == set()

    def test_even_spectrum(self):
        # "Every element has a distinct partner": models exist iff n is even.
        f = parse(
            "(forall x. exists y. (M(x, y) & x != y)) & "
            "(forall x, y. (M(x, y) -> M(y, x))) & "
            "(forall x. forall y. forall z. (M(x, y) & M(x, z) -> y = z))"
        )
        assert spectrum(f, 4) == {2, 4}

    def test_at_least_three(self):
        f = parse("exists x, y. exists z. (x != y & y != z & x != z)")
        assert spectrum(f, 5) == {3, 4, 5}

    def test_in_spectrum_alias(self):
        f = parse("exists x. P(x)")
        assert in_spectrum(f, 1)
        assert has_model(f, 1)

    def test_spectrum_membership_vs_fomc(self):
        # n in Spec(Phi) iff FOMC(Phi, n) > 0 — the Jaeger-Van den Broeck
        # observation from Section 1.
        from repro.wfomc.solver import fomc

        f = parse("forall x. exists y. (R(x, y) & x != y)")
        for n in (1, 2, 3):
            assert has_model(f, n) == (fomc(f, n, method="lineage") > 0)
