"""Tests for grounding/lineage: truth of the lineage == truth of the sentence."""


import pytest
from hypothesis import given, settings

from repro.grounding.lineage import ground_atom_weights, lineage
from repro.grounding.structures import all_structures, ground_tuples
from repro.logic.evaluate import evaluate
from repro.logic.parser import parse
from repro.logic.vocabulary import Vocabulary, WeightedVocabulary
from repro.propositional.formula import PFalse, PTrue, peval, prop_vars

from .strategies import fo2_nested_sentences


def _structure_assignment(structure, vocabulary):
    return {
        (pred, args): structure.holds(pred, args)
        for pred, args in ground_tuples(vocabulary, structure.n)
    }


class TestLineageBasics:
    def test_ground_atom(self):
        f = parse("R(1, 2)")
        g = lineage(f, 2)
        assert prop_vars(g) == {("R", (1, 2))}

    def test_equality_folds(self):
        assert isinstance(lineage(parse("1 = 1"), 2), PTrue)
        assert isinstance(lineage(parse("1 = 2"), 2), PFalse)

    def test_forall_expands_to_and(self):
        g = lineage(parse("forall x. P(x)"), 3)
        assert len(prop_vars(g)) == 3

    def test_exists_over_empty_domain_is_false(self):
        assert isinstance(lineage(parse("exists x. P(x)"), 0), PFalse)

    def test_forall_over_empty_domain_is_true(self):
        assert isinstance(lineage(parse("forall x. P(x)"), 0), PTrue)

    def test_free_variable_rejected(self):
        with pytest.raises(ValueError):
            lineage(parse("P(x)"), 2)

    def test_lineage_size_polynomial(self):
        # forall x exists y R(x,y): lineage has n^2 distinct atoms.
        g = lineage(parse("forall x. exists y. R(x, y)"), 4)
        assert len(prop_vars(g)) == 16


class TestLineageSemantics:
    @pytest.mark.parametrize(
        "text",
        [
            "forall x. exists y. R(x, y)",
            "forall x, y. (R(x, y) -> R(y, x))",
            "exists x. (P(x) & forall y. (R(x, y) | x = y))",
            "forall x. exists y. (R(x, y) & x != y)",
        ],
    )
    def test_lineage_truth_equals_evaluation(self, text):
        f = parse(text)
        vocab = Vocabulary.of_formula(f)
        for n in (1, 2):
            g = lineage(f, n)
            for structure in all_structures(vocab, n):
                assignment = _structure_assignment(structure, vocab)
                assert peval(g, assignment) == evaluate(f, structure)

    @settings(max_examples=25, deadline=None)
    @given(fo2_nested_sentences())
    def test_lineage_truth_random(self, f):
        vocab = Vocabulary.of_formula(f)
        n = 2
        g = lineage(f, n)
        for structure in all_structures(vocab, n):
            assignment = _structure_assignment(structure, vocab)
            assert peval(g, assignment) == evaluate(f, structure)


class TestGroundAtomWeights:
    def test_universe_is_tup_n(self):
        wv = WeightedVocabulary.from_weights({"P": (1, 1), "R": (2, 3)}, {"P": 1, "R": 2})
        weight_of, universe = ground_atom_weights(wv, 2)
        assert len(universe) == 2 + 4
        assert weight_of(("R", (1, 2))).w == 2
        assert weight_of(("P", (2,))).wbar == 1
