"""Tests for conjunctive queries and the gamma-acyclic algorithm (Thm 3.6)."""

from fractions import Fraction

import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.cq import (
    ConjunctiveQuery,
    cq_probability_bruteforce,
    gamma_acyclic_probability,
)
from repro.errors import NotGammaAcyclicError, SelfJoinError

from .strategies import probabilities


def _query(atoms, probs, sizes):
    return ConjunctiveQuery(atoms, probs, sizes)


HALF = Fraction(1, 2)


class TestConjunctiveQuery:
    def test_variables_ordered_by_first_occurrence(self):
        q = _query([("R", ("b", "a")), ("S", ("c",))], {"R": HALF, "S": HALF}, 2)
        assert q.variables == ("b", "a", "c")

    def test_uniform_domain(self):
        q = _query([("R", ("x", "y"))], {"R": HALF}, 3)
        assert q.domain_sizes == {"x": 3, "y": 3}

    def test_missing_probability_rejected(self):
        with pytest.raises(ValueError):
            _query([("R", ("x",))], {}, 2)

    def test_missing_domain_rejected(self):
        with pytest.raises(ValueError):
            _query([("R", ("x",))], {"R": HALF}, {"y": 2})

    def test_self_join_detection(self):
        q = _query([("R", ("x", "y")), ("R", ("y", "z"))], {"R": HALF}, 2)
        assert q.has_self_join()
        with pytest.raises(SelfJoinError):
            q.require_self_join_free()

    def test_to_formula(self):
        q = _query([("R", ("x", "y"))], {"R": HALF}, 2)
        from repro.logic.parser import parse

        assert q.to_formula() == parse("exists x. exists y. R(x, y)")


class TestGammaAlgorithmExact:
    def test_single_binary_atom(self):
        q = _query([("R", ("x", "y"))], {"R": HALF}, 2)
        assert gamma_acyclic_probability(q) == 1 - HALF ** 4

    def test_single_unary_atom(self):
        q = _query([("S", ("x",))], {"S": Fraction(1, 3)}, 3)
        assert gamma_acyclic_probability(q) == 1 - Fraction(2, 3) ** 3

    def test_zero_probability(self):
        q = _query([("R", ("x", "y"))], {"R": Fraction(0)}, 2)
        assert gamma_acyclic_probability(q) == 0

    def test_certain_relation(self):
        q = _query([("R", ("x", "y"))], {"R": Fraction(1)}, 2)
        assert gamma_acyclic_probability(q) == 1

    def test_empty_domain(self):
        q = _query([("R", ("x", "y"))], {"R": HALF}, {"x": 0, "y": 2})
        assert gamma_acyclic_probability(q) == 0

    @pytest.mark.parametrize(
        "atoms",
        [
            # Chains, stars, and the paper's Example 3.10 shape.
            [("R", ("x", "y")), ("S", ("y", "z"))],
            [("R", ("x", "y")), ("S", ("y",)), ("T", ("y", "z"))],
            [("R", ("x",)), ("S", ("x", "y")), ("T", ("y",))],
            [("R", ("x", "y")), ("S", ("x", "y"))],       # duplicate edge rule
            [("R", ("x", "y", "z")), ("S", ("z",))],       # isolated node rule
        ],
    )
    @pytest.mark.parametrize("n", [1, 2])
    def test_matches_bruteforce(self, atoms, n):
        rels = {a[0] for a in atoms}
        probs = {r: Fraction(1, 2 + i) for i, r in enumerate(sorted(rels))}
        q = _query(atoms, probs, n)
        assert gamma_acyclic_probability(q) == cq_probability_bruteforce(q)

    def test_rectangular_domains(self):
        q = _query(
            [("R", ("x", "y")), ("S", ("y", "z"))],
            {"R": HALF, "S": Fraction(1, 3)},
            {"x": 2, "y": 1, "z": 3},
        )
        assert gamma_acyclic_probability(q) == cq_probability_bruteforce(q)

    def test_edge_equivalent_variables_rule(self):
        # x and y occur in exactly the same atoms: rule (e) merges them.
        q = _query(
            [("R", ("x", "y")), ("S", ("x", "y"))],
            {"R": HALF, "S": Fraction(1, 3)},
            2,
        )
        assert gamma_acyclic_probability(q) == cq_probability_bruteforce(q)


class TestGammaAlgorithmRejections:
    def test_triangle_rejected(self):
        q = _query(
            [("R", ("x", "y")), ("S", ("y", "z")), ("T", ("z", "x"))],
            {"R": HALF, "S": HALF, "T": HALF},
            2,
        )
        with pytest.raises(NotGammaAcyclicError):
            gamma_acyclic_probability(q)

    def test_self_join_rejected(self):
        q = _query([("R", ("x", "y")), ("R", ("y", "z"))], {"R": HALF}, 2)
        with pytest.raises(SelfJoinError):
            gamma_acyclic_probability(q)

    def test_repeated_variable_rejected(self):
        q = _query([("R", ("x", "x"))], {"R": HALF}, 2)
        with pytest.raises(SelfJoinError):
            gamma_acyclic_probability(q)


class TestGammaAlgorithmRandom:
    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["x", "y", "z"]),
                st.sampled_from(["x", "y", "z", "u"]),
            ),
            min_size=1,
            max_size=3,
        ),
        probabilities(),
        st.integers(min_value=1, max_value=2),
    )
    def test_random_acyclic_queries(self, var_pairs, p, n):
        atoms = []
        probs = {}
        for i, (a, b) in enumerate(var_pairs):
            rel = "R{}".format(i)
            if a == b:
                atoms.append((rel, (a,)))
            else:
                atoms.append((rel, (a, b)))
            probs[rel] = p
        q = _query(atoms, probs, n)
        assume(q.is_gamma_acyclic())
        assert gamma_acyclic_probability(q) == cq_probability_bruteforce(q)
