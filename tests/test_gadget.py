"""Tests for the #SAT gadget (Theorem 4.1(1) / Figure 2)."""

import pytest

from repro.complexity.gadget import gadget_model_count_identity, sat_gadget
from repro.logic.syntax import num_variables, predicates_of
from repro.propositional.formula import pand, pnot, por, pvar
from repro.wfomc.bruteforce import fomc_lineage

X1, X2, X3 = pvar("X1"), pvar("X2"), pvar("X3")


class TestShape:
    def test_gadget_is_fo2(self):
        f = sat_gadget(por(X1, X2), ["X1", "X2"])
        assert num_variables(f) == 2

    def test_fixed_vocabulary(self):
        f = sat_gadget(por(X1, X2), ["X1", "X2"])
        assert predicates_of(f) == {"A": 1, "B": 1, "C": 1, "R": 2, "S": 2}

    def test_single_variable_rejected(self):
        with pytest.raises(ValueError):
            sat_gadget(X1, ["X1"])


class TestCountingIdentity:
    @pytest.mark.parametrize(
        "name,formula,sharp",
        [
            ("or", por(X1, X2), 3),
            ("and", pand(X1, X2), 1),
            ("xor", por(pand(X1, pnot(X2)), pand(pnot(X1), X2)), 2),
            ("iff", por(pand(X1, X2), pand(pnot(X1), pnot(X2))), 2),
            ("contradiction", pand(X1, pnot(X1)), 0),
            ("tautology", por(X1, pnot(X1)), 4),
            ("negative_unit", pand(pnot(X1), pnot(X2)), 1),
        ],
    )
    def test_two_variable_formulas(self, name, formula, sharp):
        lhs, rhs = gadget_model_count_identity(formula, ["X1", "X2"], fomc_lineage)
        assert lhs == rhs
        from math import factorial

        assert rhs == factorial(3) * sharp

    def test_unused_listed_variable_doubles_count(self):
        # F = X1 over variables [X1, X2]: #F = 2 over the larger universe.
        lhs, rhs = gadget_model_count_identity(X1, ["X1", "X2"], fomc_lineage)
        assert lhs == rhs == 6 * 2


@pytest.mark.slow
class TestThreeVariables:
    def test_three_variable_formula(self):
        # #(X1 & (X2 | X3)) = 3; domain size 4.
        f = pand(X1, por(X2, X3))
        lhs, rhs = gadget_model_count_identity(f, ["X1", "X2", "X3"], fomc_lineage)
        assert lhs == rhs
        from math import factorial

        assert rhs == factorial(4) * 3
