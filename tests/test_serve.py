"""Tests for the ``repro serve`` daemon.

An in-process :class:`ReproServer` (event loop on a background thread,
real sockets, ``http.client`` requests) checks the wire protocol, exact
parity with direct library calls, deadline propagation and the 2x-
deadline bound, admission control, draining, and graceful degradation.
A subprocess test exercises the CLI entry point and the SIGTERM drain.
The chaos test replays the acceptance criterion: concurrent requests
under an injected fault plan answer bit-identically to fault-free
evaluation or fail with typed retriable errors.
"""

import asyncio
import http.client
import json
import os
import signal
import socket
import subprocess
import sys
import threading
import time
from fractions import Fraction

import pytest

from repro import (
    SolverOptions,
    mln_query_sweep,
    parse,
    probability,
    wfomc,
    wfomc_weight_sweep,
)
from repro.logic import WeightedVocabulary
from repro.resilience.faults import clear_plan, install_plan
from repro.serve import ReproServer, ServeConfig
from repro.serve.daemon import ReproServer as _Daemon
from repro.weights import WeightPair

EXISTS = "forall x. exists y. R(x, y)"


@pytest.fixture(autouse=True)
def _no_ambient_faults(monkeypatch):
    monkeypatch.delenv("REPRO_FAULT_PLAN", raising=False)
    monkeypatch.delenv("REPRO_STORE_URL", raising=False)
    clear_plan()
    yield
    clear_plan()


class ServerHandle:
    """A live server on a background event-loop thread."""

    def __init__(self, config):
        self.config = config
        self.server = None
        self.loop = None
        self._stop = None
        self._closed = False
        self._ready = threading.Event()
        self._thread = threading.Thread(
            target=lambda: asyncio.run(self._amain()), daemon=True)
        self._thread.start()
        assert self._ready.wait(15), "server did not start"

    async def _amain(self):
        self.loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        self.server = ReproServer(self.config)
        await self.server.start()
        self._ready.set()
        await self._stop.wait()
        await self.server.shutdown()

    def request(self, method, path, payload=None, timeout=120):
        conn = http.client.HTTPConnection(*self.server.address,
                                          timeout=timeout)
        try:
            body = json.dumps(payload) if payload is not None else None
            conn.request(method, path, body=body)
            resp = conn.getresponse()
            data = json.loads(resp.read())
            return resp.status, data, dict(resp.headers)
        finally:
            conn.close()

    def close(self):
        if self._closed:
            return
        self._closed = True
        if self.loop is not None:
            try:
                self.loop.call_soon_threadsafe(self._stop.set)
            except RuntimeError:
                pass
        self._thread.join(30)


@pytest.fixture()
def serve():
    handles = []

    def make(**kwargs):
        handle = ServerHandle(ServeConfig(**kwargs))
        handles.append(handle)
        return handle

    yield make
    for handle in handles:
        handle.close()


class TestProtocol:
    def test_health_ready_metrics(self, serve):
        h = serve()
        status, body, _ = h.request("GET", "/healthz")
        assert (status, body["ok"], body["draining"]) == (200, True, False)
        status, body, _ = h.request("GET", "/readyz")
        assert status == 200 and body["ok"] is True
        status, body, _ = h.request("GET", "/metrics")
        assert status == 200
        for section in ("server", "admission", "registry", "engine",
                        "solver_caches", "compile", "store"):
            assert section in body

    def test_wfomc_matches_library(self, serve):
        h = serve()
        status, body, _ = h.request(
            "POST", "/v1/wfomc", {"formula": EXISTS, "n": 5})
        assert status == 200
        assert body["result"] == str(wfomc(parse(EXISTS), 5)) == "28629151"

    def test_probability_with_weights(self, serve):
        h = serve()
        status, body, _ = h.request(
            "POST", "/v1/probability",
            {"formula": EXISTS, "n": 3, "weights": {"R": ["1/2", "1"]}})
        assert status == 200
        f = parse(EXISTS)
        wv = WeightedVocabulary.counting(f).with_weight(
            "R", WeightPair(Fraction(1, 2), 1))
        assert Fraction(body["result"]) == probability(f, 3, wv)

    def test_weight_sweep_matches_library(self, serve):
        h = serve()
        values = [Fraction(1), Fraction(2), Fraction(1, 2)]
        status, body, _ = h.request(
            "POST", "/v1/wfomc_weight_sweep",
            {"formula": EXISTS, "n": 3, "vary": "R",
             "values": ["1", "2", "1/2"], "wbar": "1"})
        assert status == 200
        f = parse(EXISTS)
        base = WeightedVocabulary.counting(f)
        expected = wfomc_weight_sweep(
            f, 3, [base.with_weight("R", WeightPair(v, 1)) for v in values])
        assert body["result"]["values"] == [str(v) for v in values]
        assert body["result"]["results"] == [str(v) for v in expected]

    def test_mln_query_sweep_matches_library(self, serve):
        from repro import HARD, MLN

        h = serve()
        status, body, _ = h.request(
            "POST", "/v1/mln_query_sweep",
            {"query": "S(1)", "n": 3,
             "mlns": [[["2", "S(x)"]], [["3", "S(x)"]], [["hard", "S(x)"]]]})
        assert status == 200
        mlns = [MLN([(Fraction(2), parse("S(x)"))]),
                MLN([(Fraction(3), parse("S(x)"))]),
                MLN([(HARD, parse("S(x)"))])]
        expected = mln_query_sweep(mlns, parse("S(1)"), 3)
        assert body["result"] == [str(v) for v in expected]

    def test_unknown_endpoint_is_404(self, serve):
        h = serve()
        assert h.request("GET", "/nope")[0] == 404
        assert h.request("POST", "/v1/nope", {})[0] == 404

    def test_non_post_verb_is_405(self, serve):
        h = serve()
        assert h.request("PUT", "/v1/wfomc", {})[0] == 405

    def test_bad_json_and_bad_fields_are_typed_400(self, serve):
        h = serve()
        conn = http.client.HTTPConnection(*h.server.address, timeout=30)
        conn.request("POST", "/v1/wfomc", body=b"{nope")
        resp = conn.getresponse()
        data = json.loads(resp.read())
        conn.close()
        assert resp.status == 400
        assert data["error"]["retriable"] is False
        for payload in (
                {"n": 3},                                   # missing formula
                {"formula": EXISTS},                        # missing n
                {"formula": EXISTS, "n": "three"},          # bad type
                {"formula": "forall x. R(x", "n": 3},       # parse error
                {"formula": EXISTS, "n": 3,
                 "weights": {"Q": ["1", "1"]}},             # unknown pred
                {"formula": EXISTS, "n": 3, "deadline_ms": -1},
        ):
            status, body, _ = h.request("POST", "/v1/wfomc", payload)
            assert status == 400, payload
            assert body["ok"] is False and body["error"]["retriable"] is False

    def test_keep_alive_serves_multiple_requests(self, serve):
        h = serve()
        conn = http.client.HTTPConnection(*h.server.address, timeout=30)
        try:
            for _ in range(3):
                conn.request("POST", "/v1/wfomc", body=json.dumps(
                    {"formula": EXISTS, "n": 4}))
                resp = conn.getresponse()
                assert resp.status == 200
                assert json.loads(resp.read())["result"] == str(
                    wfomc(parse(EXISTS), 4))
        finally:
            conn.close()


class TestDeadlines:
    def test_expired_deadline_is_typed_504_within_2x(self, serve):
        # A hard instance (transitivity-like, seconds of search) with a
        # short deadline: the budget trips inside the engine, and the
        # daemon's backstop bounds the total at 2x the deadline even if
        # it did not.  Fresh predicate names dodge the result caches.
        h = serve()
        deadline_s = 0.3
        started = time.monotonic()
        status, body, _ = h.request(
            "POST", "/v1/wfomc",
            {"formula": "forall x. forall y. exists z."
                        " ((T0(x,y) & T0(y,z)) -> T0(x,z))",
             "n": 5, "deadline_ms": deadline_s * 1000})
        elapsed = time.monotonic() - started
        assert status == 504
        assert body["error"]["type"] == "BudgetExceededError"
        assert body["error"]["retriable"] is True
        # 2x the deadline plus slack for HTTP/JSON and a loaded CI box.
        assert elapsed < 2 * deadline_s + 1.0

    def test_zero_deadline_trips_immediately(self, serve):
        h = serve()
        started = time.monotonic()
        status, body, _ = h.request(
            "POST", "/v1/wfomc",
            {"formula": "forall x. forall y. exists z."
                        " ((T1(x,y) & T1(y,z)) -> T1(x,z))",
             "n": 5, "deadline_ms": 0})
        assert status == 504
        assert body["error"]["type"] == "BudgetExceededError"
        assert time.monotonic() - started < 5.0

    def test_generous_deadline_succeeds(self, serve):
        h = serve()
        status, body, _ = h.request(
            "POST", "/v1/wfomc",
            {"formula": EXISTS, "n": 5, "deadline_ms": 60000})
        assert status == 200 and body["result"] == "28629151"

    def test_default_deadline_applies(self, serve):
        h = serve(default_deadline_ms=100.0)
        status, body, _ = h.request(
            "POST", "/v1/wfomc",
            {"formula": "forall x. forall y. exists z."
                        " ((T2(x,y) & T2(y,z)) -> T2(x,z))", "n": 5})
        assert status == 504
        assert body["error"]["type"] == "BudgetExceededError"


class TestAdmission:
    def test_overload_sheds_with_429_and_retry_after(self, serve):
        h = serve(max_concurrency=1, queue_depth=0)
        started = threading.Event()
        release = threading.Event()

        def stuck(call, options):
            started.set()
            release.wait(30)
            return Fraction(1)

        h.server._evaluate = stuck
        results = []
        blocker = threading.Thread(
            target=lambda: results.append(h.request(
                "POST", "/v1/wfomc", {"formula": EXISTS, "n": 3})))
        blocker.start()
        try:
            assert started.wait(15)
            status, body, headers = h.request(
                "POST", "/v1/wfomc", {"formula": EXISTS, "n": 3})
            assert status == 429
            assert body["error"]["type"] == "ServiceOverloadedError"
            assert body["error"]["retriable"] is True
            assert int(headers["Retry-After"]) >= 1
        finally:
            release.set()
            blocker.join(30)
        assert results and results[0][0] == 200

    def test_draining_rejects_new_requests_with_503(self, serve):
        h = serve()
        h.loop.call_soon_threadsafe(setattr, h.server, "draining", True)
        deadline = time.monotonic() + 5
        while not h.server.draining and time.monotonic() < deadline:
            time.sleep(0.01)
        status, body, _ = h.request(
            "POST", "/v1/wfomc", {"formula": EXISTS, "n": 3})
        assert status == 503
        assert body["error"]["type"] == "ServiceDrainingError"
        assert body["error"]["retriable"] is True
        assert h.request("GET", "/readyz")[0] == 503
        assert h.request("GET", "/healthz")[0] == 200


class TestDegradation:
    def test_ladder_orders_backends_then_direct(self):
        opts = SolverOptions(compile=True, backend="codegen")
        ladder = _Daemon._degradation_ladder(opts)
        assert [o.backend for o in ladder] == [
            "codegen", "batched", "exact", None]
        assert ladder[-1].compiled is False
        assert _Daemon._degradation_ladder(SolverOptions()) == [
            SolverOptions()]

    def test_compile_failure_degrades_to_direct_count(
            self, serve, monkeypatch):
        import repro.compile

        def boom(*args, **kwargs):
            raise RuntimeError("injected compile crash")

        monkeypatch.setattr(repro.compile, "compile_wfomc", boom)
        h = serve(options=SolverOptions(compile=True))
        status, body, _ = h.request(
            "POST", "/v1/wfomc", {"formula": EXISTS, "n": 4})
        assert status == 200
        assert body["result"] == str(wfomc(parse(EXISTS), 4))
        snap = h.server.registry.snapshot()
        assert snap["failures"] == 1
        assert snap["degraded_direct"] == 1
        # The failure is memoised: the next request degrades without
        # re-attempting the compile.
        status, body, _ = h.request(
            "POST", "/v1/wfomc", {"formula": EXISTS, "n": 4})
        assert status == 200
        assert h.server.registry.snapshot()["failures"] == 1

    def test_registry_single_flight_under_concurrency(self, serve):
        h = serve(options=SolverOptions(compile=True), max_concurrency=4)
        threads = []
        results = []
        lock = threading.Lock()

        def hit():
            out = h.request("POST", "/v1/wfomc",
                            {"formula": "forall x. exists y. SF(x, y)",
                             "n": 5})
            with lock:
                results.append(out)

        for _ in range(6):
            threads.append(threading.Thread(target=hit))
        for t in threads:
            t.start()
        for t in threads:
            t.join(60)
        assert all(status == 200 and body["result"] == "28629151"
                   for status, body, _ in results)
        assert h.server.registry.snapshot()["compiles"] == 1


class TestChaosDifferential:
    def test_concurrent_requests_under_faults_are_bit_identical(
            self, serve, tmp_path):
        # The acceptance criterion: N concurrent requests under injected
        # store and worker faults answer exactly what fault-free
        # evaluation answers, or fail with typed retriable errors.
        from repro.wfomc.solver import clear_solver_caches

        requests = []
        for i in range(4):
            formula = "forall x. exists y. C{}(x, y)".format(i)
            requests.append((
                "/v1/wfomc",
                {"formula": formula, "n": 4,
                 "weights": {"C{}".format(i): [str(Fraction(i + 1, 2)), "1"]}},
                str(wfomc(parse(formula), 4,
                          WeightedVocabulary.counting(parse(formula))
                          .with_weight("C{}".format(i),
                                       WeightPair(Fraction(i + 1, 2), 1))))))
        for i in range(4):
            formula = "forall x. forall y. (D{0}(x, y) -> D{0}(y, x))".format(i)
            requests.append((
                "/v1/wfomc", {"formula": formula, "n": 3},
                str(wfomc(parse(formula), 3))))
        clear_solver_caches()

        h = serve(options=SolverOptions(
            persist=True, cache_dir=str(tmp_path / "cache"), workers=2),
            max_concurrency=4, queue_depth=32)
        install_plan(
            "seed=5;store_busy?0.25;store_torn_write?0.15;worker_crash?0.1")
        results = [None] * (2 * len(requests))
        threads = []

        def run(idx, path, payload, expected):
            status, body, _ = h.request("POST", path, payload)
            results[idx] = (status, body, expected)

        for round_ in range(2):
            for j, (path, payload, expected) in enumerate(requests):
                idx = round_ * len(requests) + j
                threads.append(threading.Thread(
                    target=run, args=(idx, path, payload, expected)))
        for t in threads:
            t.start()
        for t in threads:
            t.join(180)
        clear_plan()
        assert all(r is not None for r in results)
        for status, body, expected in results:
            if status == 200:
                assert body["result"] == expected
            else:
                assert status in (429, 503, 504), body
                assert body["error"]["retriable"] is True
        h.close()
        from repro.cache.store import _STORES

        store = _STORES.pop(os.path.abspath(str(tmp_path / "cache")), None)
        if store is not None:
            store.close()


class TestSigtermDrain:
    def _spawn(self, *extra):
        env = dict(os.environ)
        root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        env["PYTHONPATH"] = os.path.join(root, "src")
        env.pop("REPRO_FAULT_PLAN", None)
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve", "--port", "0",
             *extra],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, env=env,
            cwd=root, text=True)
        line = proc.stdout.readline()
        assert "listening on http://" in line, (line, proc.stderr.read())
        hostport = line.strip().rsplit("http://", 1)[1]
        host, port = hostport.split(":")
        return proc, host, int(port)

    def _post(self, host, port, payload, timeout=120):
        conn = http.client.HTTPConnection(host, port, timeout=timeout)
        try:
            conn.request("POST", "/v1/wfomc", body=json.dumps(payload))
            resp = conn.getresponse()
            return resp.status, json.loads(resp.read())
        finally:
            conn.close()

    def test_sigterm_drains_inflight_and_exits_cleanly(self):
        # ~0.3s of real search in flight when SIGTERM lands: the
        # response must still arrive, bit-identical, and the process
        # must exit 0 with the listener closed to new connections.
        slow = "forall x. forall y. exists z. (G(x,z) & G(z,y))"
        expected = str(wfomc(parse(slow), 4))
        proc, host, port = self._spawn("--drain-timeout", "30")
        try:
            outcome = {}

            def inflight():
                outcome["response"] = self._post(
                    host, port, {"formula": slow, "n": 4})

            t = threading.Thread(target=inflight)
            t.start()
            time.sleep(0.15)
            proc.send_signal(signal.SIGTERM)
            t.join(60)
            assert proc.wait(timeout=60) == 0
            status, body = outcome["response"]
            assert status == 200 and body["result"] == expected
            with pytest.raises(OSError):
                socket.create_connection((host, port), timeout=2).close()
        finally:
            if proc.poll() is None:
                proc.kill()
            proc.stdout.close()
            proc.stderr.close()
